//! End-to-end tests over real sockets: pipelining, read-your-writes,
//! cross-shard requests, the wire error taxonomy, concurrent clients,
//! and durable restart on file-backed shard WALs.

use quit_service::{Client, Reply, Request, Server, ServiceConfig};

fn start(config: ServiceConfig) -> Server {
    let (server, _) = Server::start_in_memory(config, "127.0.0.1:0").unwrap();
    server
}

#[test]
fn sync_roundtrip_all_ops() {
    let server = start(ServiceConfig::small(3));
    let mut c = Client::connect(server.local_addr()).unwrap();

    c.insert(10, 100).unwrap();
    assert_eq!(c.get(10).unwrap(), Some(100));
    assert_eq!(c.get(11).unwrap(), None);

    let entries: Vec<(u64, u64)> = (0..1000u64).map(|k| (k * 3, k)).collect();
    c.insert_batch(&entries).unwrap();

    assert_eq!(c.delete(10).unwrap(), Some(100));
    assert_eq!(c.delete(10).unwrap(), None);

    // Range spanning the whole keyspace (crosses every shard boundary).
    let got = c.range(0, u64::MAX, 0).unwrap();
    assert_eq!(got.len(), 1000);
    assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "globally sorted");
    // Limited range truncates in key order.
    let got = c.range(0, u64::MAX, 10).unwrap();
    assert_eq!(got.len(), 10);
    assert_eq!(got[9].0, 27);

    let stats = c.stats().unwrap();
    assert_eq!(stats.len, 1000);
    assert_eq!(stats.shards, 3);

    drop(c);
    server.shutdown().unwrap();
}

#[test]
fn pipelined_burst_coalesces_and_replies_to_every_id() {
    let server = start(ServiceConfig::small(4));
    let mut c = Client::connect(server.local_addr()).unwrap();

    // 5000 near-sorted single inserts, all in flight before one reply is
    // read: the server-side batcher must coalesce them into per-shard
    // runs yet still answer each id individually.
    let mut ids = Vec::new();
    for i in 0..5000u64 {
        let key = i.wrapping_mul(u64::MAX / 5000);
        ids.push(c.send(&Request::Insert { key, value: i }).unwrap());
    }
    c.flush().unwrap();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..ids.len() {
        let (id, reply) = c.recv().unwrap();
        assert_eq!(reply.unwrap(), Reply::Inserted);
        assert!(seen.insert(id), "duplicate reply for id {id}");
    }
    assert_eq!(seen.len(), ids.len());
    assert_eq!(c.pending(), 0);

    let stats = c.stats().unwrap();
    assert_eq!(stats.len, 5000);
    // The whole point: a pipelined near-sorted stream must ride each
    // shard's fast path, not pay 5000 top-down descents.
    assert!(
        stats.fastpath_rate() > 0.9,
        "pipelined sorted inserts must stay on the fast path, rate {}",
        stats.fastpath_rate()
    );
    // And coalescing must reach the WAL too: appends count records (all
    // 5000 are logged), but each buffered run commits as one group, so
    // fsyncs stay far below one-per-key.
    assert_eq!(stats.wal_appends, 5000);
    assert!(
        stats.wal_fsyncs < 1000,
        "batcher must coalesce WAL commits, got {} fsyncs",
        stats.wal_fsyncs
    );

    drop(c);
    server.shutdown().unwrap();
}

#[test]
fn reads_observe_writes_from_the_same_connection() {
    let server = start(ServiceConfig::small(2));
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Pipeline inserts and a dependent get in one burst, no intermediate
    // reply reads: the router must flush buffered inserts before the get.
    let mut ids = Vec::new();
    for k in 0..100u64 {
        ids.push(
            c.send(&Request::Insert {
                key: k,
                value: k + 1,
            })
            .unwrap(),
        );
    }
    let get_id = c.send(&Request::Get { key: 57 }).unwrap();
    c.flush().unwrap();
    let mut got = None;
    for _ in 0..ids.len() + 1 {
        let (id, reply) = c.recv().unwrap();
        if id == get_id {
            got = Some(reply.unwrap());
        }
    }
    assert_eq!(got, Some(Reply::Got(Some(58))), "read-your-writes");

    drop(c);
    server.shutdown().unwrap();
}

#[test]
fn concurrent_clients_partition_cleanly() {
    let server = start(ServiceConfig::small(4));
    let addr = server.local_addr();
    let per_client = 2000u64;
    let clients = 8u64;
    std::thread::scope(|s| {
        for t in 0..clients {
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                // Interleaved key stripes: each client's stream is sorted.
                let mut ids = Vec::new();
                for i in 0..per_client {
                    let key = (i * clients + t).wrapping_mul(u64::MAX / (per_client * clients));
                    ids.push(c.send(&Request::Insert { key, value: t }).unwrap());
                }
                c.flush().unwrap();
                for _ in ids {
                    c.recv().unwrap().1.unwrap();
                }
            });
        }
    });
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.len, per_client * clients);
    drop(c);
    server.shutdown().unwrap();
}

#[test]
fn wire_errors_carry_the_unified_taxonomy() {
    // Config errors surface before any socket is bound.
    let err = match Server::start_in_memory(ServiceConfig::small(0), "127.0.0.1:0") {
        Ok(_) => panic!("zero shards must be rejected"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), "config");

    // A malformed frame (bad opcode) earns a corruption status on the
    // wire, reported on request id 0.
    let server = start(ServiceConfig::small(1));
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&9u32.to_le_bytes());
    frame.extend_from_slice(&77u64.to_le_bytes());
    frame.push(200); // no such opcode
    raw.write_all(&frame).unwrap();
    // [len u32][req_id u64][status u8][message…]
    let mut hdr = [0u8; 4];
    raw.read_exact(&mut hdr).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(hdr) as usize];
    raw.read_exact(&mut body).unwrap();
    assert!(body.len() > 9, "error reply carries a message");
    assert_eq!(&body[0..8], &0u64.to_le_bytes(), "decode errors use id 0");
    assert_eq!(body[8], 2, "corruption status code");
    drop(raw);
    server.shutdown().unwrap();
}

#[test]
fn file_backed_shards_recover_after_restart() {
    let root = std::env::temp_dir().join(format!(
        "quit-service-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let config = ServiceConfig::small(3);

    let (server, reports) = Server::start_dir(&root, config.clone(), "127.0.0.1:0").unwrap();
    assert!(reports.iter().all(|r| r.recovered_lsn == 0), "fresh start");
    let mut c = Client::connect(server.local_addr()).unwrap();
    let entries: Vec<(u64, u64)> = (0..3000u64)
        .map(|k| (k.wrapping_mul(u64::MAX / 3000), k))
        .collect();
    c.insert_batch(&entries).unwrap();
    c.delete(entries[7].0).unwrap();
    drop(c);
    server.shutdown().unwrap();

    // Same directories, new process-lifetime: every acked write must be
    // back, each shard recovered from its own WAL directory.
    let (server, reports) = Server::start_dir(&root, config, "127.0.0.1:0").unwrap();
    assert!(reports.iter().any(|r| r.recovered_lsn > 0), "wal replayed");
    let mut c = Client::connect(server.local_addr()).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.len, 2999);
    assert_eq!(c.get(entries[7].0).unwrap(), None);
    assert_eq!(c.get(entries[8].0).unwrap(), Some(8));
    drop(c);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shard_dirs_follow_the_sharded_layout() {
    let root = std::env::temp_dir().join(format!("quit-service-layout-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let (server, _) = Server::start_dir(&root, ServiceConfig::small(2), "127.0.0.1:0").unwrap();
    drop(Client::connect(server.local_addr()).unwrap());
    server.shutdown().unwrap();
    assert!(root.join("shard-0000").is_dir());
    assert!(root.join("shard-0001").is_dir());
    let _ = std::fs::remove_dir_all(&root);
}

//! Property tests for the shard router — the three claims ISSUE 6 makes
//! about it:
//!
//! 1. every key routes to exactly one shard, and shard ranges tile the
//!    keyspace;
//! 2. splitting a batch at range boundaries preserves per-shard sorted
//!    runs (a sorted batch splits into sorted contiguous slices, and a
//!    BoDS near-sorted stream's per-shard subsequences keep its
//!    sortedness);
//! 3. a merged per-shard differential model equals a single-tree model
//!    after replaying a generated workload through the router.

use proptest::prelude::*;
use quit_concurrent::{ConcConfig, ConcurrentTree};
use quit_core::SortedIndex;
use quit_service::{shard_of, shard_range, shards_overlapping, split_batch};
use quit_testkit::{Op, OpMix, WorkloadSpec};

// ---- 1. routing is a partition ----------------------------------------

proptest! {
    #[test]
    fn every_key_routes_to_exactly_one_shard(key in any::<u64>(), shards in 1usize..64) {
        let s = shard_of(key, shards);
        prop_assert!(s < shards);
        prop_assert!(shard_range(s, shards).contains(&key));
        // No other shard's range claims the key (ranges are disjoint).
        for other in 0..shards {
            if other != s {
                prop_assert!(!shard_range(other, shards).contains(&key));
            }
        }
    }

    #[test]
    fn ranges_tile_with_no_gap_or_overlap(shards in 1usize..64) {
        prop_assert_eq!(*shard_range(0, shards).start(), 0);
        prop_assert_eq!(*shard_range(shards - 1, shards).end(), u64::MAX);
        for s in 0..shards - 1 {
            let hi = *shard_range(s, shards).end();
            prop_assert_eq!(hi.wrapping_add(1), *shard_range(s + 1, shards).start());
        }
    }

    #[test]
    fn overlap_matches_membership(start in any::<u64>(), len in 0u64..1_000_000, shards in 1usize..32) {
        let end = start.saturating_add(len);
        let span = shards_overlapping(start, end, shards);
        for s in 0..shards {
            let r = shard_range(s, shards);
            let intersects = *r.start() <= end && start <= *r.end();
            prop_assert_eq!(span.contains(&s), intersects, "shard {} of {}", s, shards);
        }
    }
}

// ---- 2. splitting preserves sorted runs --------------------------------

proptest! {
    #[test]
    fn sorted_batches_split_into_sorted_contiguous_slices(
        mut keys in proptest::collection::vec(any::<u64>(), 0..500),
        shards in 1usize..16,
    ) {
        keys.sort_unstable();
        let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k ^ 1)).collect();
        let split = split_batch(&entries, shards);
        let mut rebuilt = Vec::new();
        for (shard, run) in &split {
            // Each per-shard run is itself sorted…
            prop_assert!(run.windows(2).all(|w| w[0].0 <= w[1].0));
            // …and every key belongs to the shard that got it.
            prop_assert!(run.iter().all(|(k, _)| shard_of(*k, shards) == *shard));
            rebuilt.extend_from_slice(run);
        }
        // Runs concatenated in shard order are exactly the sorted input:
        // the split cut the batch at range boundaries, nothing more.
        prop_assert_eq!(rebuilt, entries);
    }
}

/// Fraction of adjacent non-descending pairs — 1.0 for a sorted stream.
fn sortedness(keys: &[u64]) -> f64 {
    if keys.len() < 2 {
        return 1.0;
    }
    let ascents = keys.windows(2).filter(|w| w[0] <= w[1]).count();
    ascents as f64 / (keys.len() - 1) as f64
}

/// Range partitioning keeps each shard's subsequence of a BoDS K/L
/// near-sorted stream about as sorted as the whole stream — the property
/// the service's fast-path-rate acceptance criterion rests on. Fixed
/// seeds: this is a statistical claim, not a per-sample invariant.
#[test]
fn near_sorted_streams_stay_near_sorted_per_shard() {
    for (k, l) in [(0.0, 1.0), (0.05, 1.0), (0.2, 0.25)] {
        for seed in [7u64, 99, 12345] {
            let stream = bods_stream(200_000, k, l, seed);
            let global = sortedness(&stream);
            for shards in [2usize, 4, 8] {
                let mut per: Vec<Vec<u64>> = vec![Vec::new(); shards];
                for &key in &stream {
                    per[shard_of(key, shards)].push(key);
                }
                for (shard, keys) in per.iter().enumerate() {
                    assert!(keys.len() > 1000, "stream covers shard {shard}");
                    let local = sortedness(keys);
                    assert!(
                        local >= global - 0.02,
                        "K={k} L={l} seed={seed} shards={shards}: shard {shard} \
                         sortedness {local:.4} fell below global {global:.4}"
                    );
                }
            }
        }
    }
}

/// A BoDS stream scaled up from its dense `0..n` domain to spread across
/// the whole `u64` keyspace (the service partitions `u64`, and dense
/// small keys would all land in shard 0).
fn bods_stream(n: usize, k: f64, l: f64, seed: u64) -> Vec<u64> {
    bods::BodsSpec::new(n, k, l)
        .with_seed(seed)
        .generate()
        .into_iter()
        .map(|key| key.wrapping_mul(u64::MAX / n as u64))
        .collect()
}

// ---- 3. sharded replay ≡ single-tree replay ----------------------------

struct ShardedModel {
    shards: Vec<ConcurrentTree<u64, u64>>,
}

impl ShardedModel {
    fn new(n: usize) -> Self {
        ShardedModel {
            shards: (0..n)
                .map(|_| ConcurrentTree::new(ConcConfig::small(16)))
                .collect(),
        }
    }

    fn apply(&mut self, op: &Op) {
        let n = self.shards.len();
        match op {
            Op::Insert(k, v) => {
                self.shards[shard_of(*k, n)].insert(*k, *v);
            }
            Op::InsertBatch(entries) | Op::BulkLoad(entries) => {
                for (shard, run) in split_batch(entries, n) {
                    SortedIndex::insert_batch(&mut self.shards[shard], &run);
                }
            }
            Op::Get(k) => {
                self.shards[shard_of(*k, n)].get(*k);
            }
            Op::Delete(k) => {
                self.shards[shard_of(*k, n)].delete(*k);
            }
            Op::Range(start, end) => {
                if start < end {
                    for s in shards_overlapping(*start, end - 1, n) {
                        let _ = self.shards[s].range(*start..*end).count();
                    }
                }
            }
            Op::ResetMetrics => {}
        }
    }

    /// Per-shard contents concatenated in shard order — shard ranges are
    /// disjoint and ascending, so this must be globally sorted.
    fn merged(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for t in &self.shards {
            out.extend(t.collect_all());
        }
        out
    }
}

fn replay_sharded_vs_single(spec: &WorkloadSpec, shards: usize) {
    let ops = spec.generate();
    let mut single: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(16));
    let mut sharded = ShardedModel::new(shards);
    for (i, op) in ops.iter().enumerate() {
        // Reads must agree at every step, not just at the end.
        if let Op::Get(k) = op {
            let a = single.get(*k);
            let b = sharded.shards[shard_of(*k, shards)].get(*k);
            assert_eq!(a, b, "op {i}: get({k}) diverged");
        }
        if let Op::Delete(k) = op {
            let a = single.delete(*k);
            let b = sharded.shards[shard_of(*k, shards)].delete(*k);
            assert_eq!(a, b, "op {i}: delete({k}) diverged");
            continue;
        }
        match op {
            Op::Insert(k, v) => single.insert(*k, *v),
            Op::InsertBatch(e) | Op::BulkLoad(e) => {
                SortedIndex::insert_batch(&mut single, e);
            }
            _ => {}
        }
        sharded.apply(op);
    }
    let merged = sharded.merged();
    assert!(
        merged.windows(2).all(|w| w[0].0 <= w[1].0),
        "merged per-shard contents must be globally sorted"
    );
    assert_eq!(merged, single.collect_all(), "final contents diverged");
    for t in &sharded.shards {
        t.check_consistency().unwrap();
    }
}

#[test]
fn sharded_replay_matches_single_tree_fixed_seeds() {
    for (g, (k, l)) in [(0usize, (0.0, 1.0)), (1, (0.05, 1.0)), (2, (0.5, 1.0))].into_iter() {
        for shards in [1usize, 3, 4] {
            let spec = WorkloadSpec {
                ops: 1200,
                k_fraction: k,
                l_fraction: l,
                seed: 0x5E8A_0000 ^ ((g as u64) << 8) ^ shards as u64,
                mix: OpMix::mixed(),
                dup_fraction: 0.08,
            };
            replay_sharded_vs_single(&spec, shards);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
    #[test]
    fn sharded_replay_matches_single_tree_sampled(
        seed in any::<u64>(),
        shards in 1usize..6,
        k_pct in 0u32..100,
    ) {
        let k = f64::from(k_pct) / 100.0;
        let spec = WorkloadSpec {
            ops: 400,
            k_fraction: k,
            l_fraction: 0.5,
            seed,
            mix: OpMix::ingest_heavy(),
            dup_fraction: 0.05,
        };
        replay_sharded_vs_single(&spec, shards);
    }
}

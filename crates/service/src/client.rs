//! A blocking client for the wire protocol, with explicit pipelining.
//!
//! The convenience methods ([`insert`](Client::insert),
//! [`get`](Client::get), …) are synchronous round trips. The pipelined
//! surface — [`send`](Client::send) / [`flush`](Client::flush) /
//! [`recv`](Client::recv) — lets a caller keep many requests in flight
//! and match replies by id, which is what makes a single connection's
//! sorted stream coalesce into per-shard runs server-side (and what the
//! closed-loop bench drives).

use crate::wire::{read_reply, write_request, Reply, ReplyShape, Request, ServiceStats};
use quit_core::{Error, Result};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connection to a [`crate::Server`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    inflight: HashMap<u64, ReplyShape>,
}

impl Client {
    /// Connects (with `TCP_NODELAY`; the protocol batches explicitly).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
            inflight: HashMap::new(),
        })
    }

    /// Requests in flight (sent, reply not yet received).
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// Queues `req` without flushing; returns its id. Pair with
    /// [`flush`](Self::flush) and [`recv`](Self::recv).
    pub fn send(&mut self, req: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.inflight.insert(id, req.reply_shape());
        write_request(&mut self.writer, id, req)?;
        Ok(id)
    }

    /// Pushes queued requests to the wire.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Receives the next reply (any in-flight id; replies across shards
    /// may arrive out of submission order). The outer `Result` is
    /// transport failure; the inner is the server's per-request status.
    pub fn recv(&mut self) -> Result<(u64, Result<Reply>)> {
        let inflight = &mut self.inflight;
        let (id, reply) = read_reply(&mut self.reader, |id| {
            inflight
                .remove(&id)
                .ok_or_else(|| Error::corruption(format!("reply for unknown request id {id}")))
        })?;
        Ok((id, reply))
    }

    /// One synchronous round trip. Must not be interleaved with
    /// outstanding pipelined requests (the reply stream would be
    /// ambiguous to the caller); use `send`/`recv` for that.
    fn call(&mut self, req: &Request) -> Result<Reply> {
        if !self.inflight.is_empty() {
            return Err(Error::config(
                "synchronous call with pipelined requests outstanding",
            ));
        }
        let id = self.send(req)?;
        self.flush()?;
        let (rid, reply) = self.recv()?;
        if rid != id {
            return Err(Error::corruption(format!(
                "reply id {rid} for request {id}"
            )));
        }
        reply
    }

    /// Inserts one pair (durable per the server's configured level when
    /// the reply arrives).
    pub fn insert(&mut self, key: u64, value: u64) -> Result<()> {
        match self.call(&Request::Insert { key, value })? {
            Reply::Inserted => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Inserts a batch in submission order; returns how many entries
    /// rode the sorted-run fast path across the shards it touched.
    pub fn insert_batch(&mut self, entries: &[(u64, u64)]) -> Result<u64> {
        let req = Request::InsertBatch {
            entries: entries.to_vec(),
        };
        match self.call(&req)? {
            Reply::BatchInserted { fast } => Ok(fast),
            other => Err(unexpected(&other)),
        }
    }

    /// Point lookup.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>> {
        match self.call(&Request::Get { key })? {
            Reply::Got(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Deletes `key`, returning the previous value if it existed.
    pub fn delete(&mut self, key: u64) -> Result<Option<u64>> {
        match self.call(&Request::Delete { key })? {
            Reply::Deleted(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Inclusive range scan in global key order, capped at `limit`
    /// entries (`0` = server maximum).
    pub fn range(&mut self, start: u64, end: u64, limit: u32) -> Result<Vec<(u64, u64)>> {
        match self.call(&Request::Range { start, end, limit })? {
            Reply::Entries(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// Service-wide counters, aggregated across every shard.
    pub fn stats(&mut self) -> Result<ServiceStats> {
        match self.call(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(reply: &Reply) -> Error {
    Error::corruption(format!("reply shape mismatch: {reply:?}"))
}

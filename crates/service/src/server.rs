//! The sharded TCP server: one `Durable<ConcurrentTree>` (and one WAL
//! directory) per shard, one worker thread per shard, and per-connection
//! reader/writer threads gluing the wire protocol to the shard channels.
//!
//! ## Threading model
//!
//! * **Shard worker** — owns its `Durable<ConcurrentTree<u64, u64>>`
//!   outright, so mutations go through the `&mut self` [`SortedIndex`]
//!   path and buffered single-insert runs reach `insert_batch`'s
//!   sorted-run detection exactly like an embedded caller's would. The
//!   worker drains one mpsc channel; within a shard, operations apply in
//!   channel order (which is submission order per connection), so a
//!   connection always reads its own writes.
//! * **Connection reader** — decodes frames, accumulates single inserts
//!   in a [`InsertBatcher`], and flushes a shard's run when it reaches
//!   `batch_max`, when a non-insert request arrives (read-your-writes),
//!   or when the connection's read buffer drains — the natural pipelining
//!   window: everything a client sent in one burst coalesces into one
//!   run per shard, one WAL append, one group-commit wait.
//! * **Connection writer** — drains pre-encoded reply frames from an
//!   mpsc channel into a `BufWriter`, flushing whenever the channel goes
//!   momentarily empty. Replies to different shards' requests may
//!   interleave out of submission order; the client matches them by id.
//!
//! Cross-shard requests (`InsertBatch` spanning a boundary, `Range`,
//! `Stats`) fan out to every involved worker and aggregate through a
//! small atomic countdown; the last worker to finish encodes the reply.
//!
//! A WAL failure poisons the shard's log and panics its worker (the same
//! contract as embedded `Durable` use); from then on requests touching
//! that shard answer with status `Shutdown` while healthy shards keep
//! serving.

use crate::config::ServiceConfig;
use crate::router::{is_batchable, shards_overlapping, split_batch, InsertBatcher};
use crate::wire::{encode_reply, read_request, Reply, Request, ServiceStats, MAX_RANGE_RESULTS};
use quit_concurrent::ConcurrentTree;
use quit_core::{Error, Result, SortedIndex};
use quit_durability::{
    concurrent_builder, Durable, FsStorage, MemStorage, RecoveryReport, Storage,
};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Shard = Durable<ConcurrentTree<u64, u64>>;
type Entries = Vec<(u64, u64)>;

/// A batch spanning shards: the last worker to finish replies.
struct BatchAgg {
    req_id: u64,
    remaining: AtomicUsize,
    fast: AtomicU64,
    reply: Sender<Vec<u8>>,
}

impl BatchAgg {
    fn done(&self, fast: u64) {
        self.fast.fetch_add(fast, Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let fast = self.fast.load(Ordering::Acquire);
            let _ = self.reply.send(encode_reply(
                self.req_id,
                &Ok(Reply::BatchInserted { fast }),
            ));
        }
    }
}

/// A range spanning shards: per-shard results land in slot order (shard
/// ranges are disjoint and ascending, so concatenation is globally
/// sorted), and the last worker truncates to the limit and replies.
struct RangeAgg {
    req_id: u64,
    limit: usize,
    remaining: AtomicUsize,
    slots: Mutex<Vec<Option<Entries>>>,
    reply: Sender<Vec<u8>>,
}

impl RangeAgg {
    fn done(&self, slot: usize, entries: Vec<(u64, u64)>) {
        self.slots.lock().unwrap()[slot] = Some(entries);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut out = Vec::new();
            for part in self.slots.lock().unwrap().iter_mut() {
                out.extend(part.take().unwrap_or_default());
                if out.len() >= self.limit {
                    break;
                }
            }
            out.truncate(self.limit);
            let _ = self
                .reply
                .send(encode_reply(self.req_id, &Ok(Reply::Entries(out))));
        }
    }
}

/// Stats across every shard, summed by the workers themselves.
struct StatsAgg {
    req_id: u64,
    remaining: AtomicUsize,
    acc: Mutex<ServiceStats>,
    reply: Sender<Vec<u8>>,
}

impl StatsAgg {
    fn done(&self, part: ServiceStats) {
        {
            let mut acc = self.acc.lock().unwrap();
            acc.len += part.len;
            acc.fast_inserts += part.fast_inserts;
            acc.top_inserts += part.top_inserts;
            acc.wal_appends += part.wal_appends;
            acc.wal_fsyncs += part.wal_fsyncs;
            acc.shards = part.shards;
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let stats = *self.acc.lock().unwrap();
            let _ = self
                .reply
                .send(encode_reply(self.req_id, &Ok(Reply::Stats(stats))));
        }
    }
}

enum ShardMsg {
    /// A contiguous run of buffered single inserts; each id gets its own
    /// `Inserted` reply once the whole run is applied (and durable, per
    /// the configured level).
    Run {
        entries: Vec<(u64, u64)>,
        req_ids: Vec<u64>,
        reply: Sender<Vec<u8>>,
    },
    /// One shard's slice of a client `InsertBatch`.
    Batch {
        entries: Vec<(u64, u64)>,
        agg: Arc<BatchAgg>,
    },
    Get {
        key: u64,
        req_id: u64,
        reply: Sender<Vec<u8>>,
    },
    Delete {
        key: u64,
        req_id: u64,
        reply: Sender<Vec<u8>>,
    },
    Range {
        start: u64,
        end: u64,
        fetch: usize,
        slot: usize,
        agg: Arc<RangeAgg>,
    },
    Stats {
        agg: Arc<StatsAgg>,
        shards: u32,
    },
}

fn shard_worker(mut shard: Shard, rx: Receiver<ShardMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Run {
                entries,
                req_ids,
                reply,
            } => {
                shard.insert_batch(&entries);
                for id in req_ids {
                    let _ = reply.send(encode_reply(id, &Ok(Reply::Inserted)));
                }
            }
            ShardMsg::Batch { entries, agg } => {
                let fast = shard.insert_batch(&entries);
                agg.done(fast as u64);
            }
            ShardMsg::Get { key, req_id, reply } => {
                let got = shard.tree().get(key);
                let _ = reply.send(encode_reply(req_id, &Ok(Reply::Got(got))));
            }
            ShardMsg::Delete { key, req_id, reply } => {
                let prev = shard.delete(key);
                let _ = reply.send(encode_reply(req_id, &Ok(Reply::Deleted(prev))));
            }
            ShardMsg::Range {
                start,
                end,
                fetch,
                slot,
                agg,
            } => {
                let entries: Vec<(u64, u64)> =
                    shard.tree().range(start..=end).take(fetch).collect();
                agg.done(slot, entries);
            }
            ShardMsg::Stats { agg, shards } => {
                let snap = shard.metrics();
                agg.done(ServiceStats {
                    len: shard.len() as u64,
                    fast_inserts: snap.fast_inserts,
                    top_inserts: snap.top_inserts,
                    wal_appends: snap.wal_appends,
                    wal_fsyncs: snap.wal_fsyncs,
                    shards,
                });
            }
        }
    }
    // Every connection and the acceptor dropped their senders: final
    // durability point before the thread exits (the log may hold
    // buffered bytes at the `Buffered` level).
    let _ = shard.commit_all();
}

/// The sharded TCP server. Construction recovers every shard (each from
/// its own storage directory) and starts serving; [`Server::shutdown`]
/// (Self::shutdown) stops accepting, closes live connections, and drains
/// the shard workers to a durable stop.
pub struct Server {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server on `addr` (use port 0 for an ephemeral port; read
    /// it back via [`local_addr`](Self::local_addr)) with one storage
    /// backend per shard — `storages.len()` must equal `config.shards`.
    /// Returns the per-shard recovery reports alongside the handle.
    pub fn start(
        storages: Vec<Arc<dyn Storage>>,
        config: ServiceConfig,
        addr: impl ToSocketAddrs,
    ) -> Result<(Server, Vec<RecoveryReport>)> {
        config.validate()?;
        if storages.len() != config.shards {
            return Err(Error::config(format!(
                "{} storage backends for {} shards",
                storages.len(),
                config.shards
            )));
        }
        let mut workers = Vec::with_capacity(config.shards);
        let mut txs = Vec::with_capacity(config.shards);
        let mut reports = Vec::with_capacity(config.shards);
        for storage in storages {
            let (shard, report) = Durable::open(
                storage,
                config.durability,
                concurrent_builder::<u64, u64>(config.tree.clone()),
            )?;
            reports.push(report);
            let (tx, rx) = channel();
            txs.push(tx);
            workers.push(std::thread::spawn(move || shard_worker(shard, rx)));
        }

        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stopping = stopping.clone();
            let conns = conns.clone();
            let batch_max = config.batch_max;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().unwrap().push(clone);
                    }
                    let txs = txs.clone();
                    std::thread::spawn(move || connection(stream, txs, batch_max));
                }
                // `txs` drops here; workers exit once every live
                // connection's clones drop too.
            })
        };

        Ok((
            Server {
                addr,
                stopping,
                conns,
                accept: Some(accept),
                workers,
            },
            reports,
        ))
    }

    /// [`start`](Self::start) on one in-memory backend per shard (tests
    /// and benches; nothing survives the process).
    pub fn start_in_memory(
        config: ServiceConfig,
        addr: impl ToSocketAddrs,
    ) -> Result<(Server, Vec<RecoveryReport>)> {
        let storages = (0..config.shards)
            .map(|_| Arc::new(MemStorage::new()) as Arc<dyn Storage>)
            .collect();
        Self::start(storages, config, addr)
    }

    /// [`start`](Self::start) on `root/shard-NNNN/` file-backed WAL
    /// directories (created as needed) — the durable deployment shape.
    pub fn start_dir(
        root: impl AsRef<Path>,
        config: ServiceConfig,
        addr: impl ToSocketAddrs,
    ) -> Result<(Server, Vec<RecoveryReport>)> {
        let storages = FsStorage::open_sharded(root.as_ref(), config.shards)?
            .into_iter()
            .map(|s| s as Arc<dyn Storage>)
            .collect();
        Self::start(storages, config, addr)
    }

    /// The bound address (the ephemeral port, if 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: no new connections, live connections closed,
    /// shard workers drained to a durable stop. Blocks until every
    /// worker has exited.
    pub fn shutdown(mut self) -> Result<()> {
        self.stopping.store(true, Ordering::Release);
        // Wake the acceptor so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Close live connections; their readers see EOF/reset, flush
        // nothing further, and drop their shard senders.
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let mut poisoned = 0usize;
        for h in self.workers.drain(..) {
            if h.join().is_err() {
                poisoned += 1;
            }
        }
        if poisoned > 0 {
            return Err(Error::wal(format!(
                "{poisoned} shard worker(s) died on a poisoned WAL"
            )));
        }
        Ok(())
    }
}

/// Submits one buffered run, answering `Shutdown` per request if the
/// shard's worker is gone.
fn submit_run(
    tx: &Sender<ShardMsg>,
    entries: Vec<(u64, u64)>,
    req_ids: Vec<u64>,
    reply: &Sender<Vec<u8>>,
) {
    let msg = ShardMsg::Run {
        entries,
        req_ids,
        reply: reply.clone(),
    };
    if let Err(std::sync::mpsc::SendError(ShardMsg::Run { req_ids, .. })) = tx.send(msg) {
        for id in req_ids {
            let _ = reply.send(encode_reply(id, &Err(Error::Shutdown)));
        }
    }
}

fn connection(stream: TcpStream, shard_txs: Vec<Sender<ShardMsg>>, batch_max: usize) {
    let shards = shard_txs.len();
    let (reply_tx, reply_rx) = channel::<Vec<u8>>();
    let writer = match stream.try_clone() {
        Ok(w) => std::thread::spawn(move || writer_loop(w, reply_rx)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut batcher = InsertBatcher::new(shards, batch_max);

    loop {
        let (req_id, req) = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            // Clean disconnect at a frame boundary.
            Ok(None) => break,
            Err(e) => {
                // The stream is desynchronized; report on id 0 (never
                // issued by well-formed clients) and hang up.
                let _ = reply_tx.send(encode_reply(0, &Err(e)));
                break;
            }
        };

        if !is_batchable(&req) {
            // Read-your-writes: everything this connection buffered must
            // reach the workers (in channel order) before the new
            // request does.
            for (shard, entries, req_ids) in batcher.drain() {
                submit_run(&shard_txs[shard], entries, req_ids, &reply_tx);
            }
        }

        match req {
            Request::Insert { key, value } => {
                if let Some((shard, entries, req_ids)) = batcher.push(req_id, key, value) {
                    submit_run(&shard_txs[shard], entries, req_ids, &reply_tx);
                }
            }
            Request::InsertBatch { entries } => {
                let runs = split_batch(&entries, shards);
                if runs.is_empty() {
                    let _ =
                        reply_tx.send(encode_reply(req_id, &Ok(Reply::BatchInserted { fast: 0 })));
                } else {
                    let agg = Arc::new(BatchAgg {
                        req_id,
                        remaining: AtomicUsize::new(runs.len()),
                        fast: AtomicU64::new(0),
                        reply: reply_tx.clone(),
                    });
                    for (shard, entries) in runs {
                        let msg = ShardMsg::Batch {
                            entries,
                            agg: agg.clone(),
                        };
                        if shard_txs[shard].send(msg).is_err() {
                            // Count the dead shard's slice as done with no
                            // fast-path entries; the client still gets one
                            // reply. (A dead worker means a poisoned WAL;
                            // the next non-batch request reports it.)
                            agg.done(0);
                        }
                    }
                }
            }
            Request::Get { key } => {
                let shard = crate::router::shard_of(key, shards);
                let msg = ShardMsg::Get {
                    key,
                    req_id,
                    reply: reply_tx.clone(),
                };
                if shard_txs[shard].send(msg).is_err() {
                    let _ = reply_tx.send(encode_reply(req_id, &Err(Error::Shutdown)));
                }
            }
            Request::Delete { key } => {
                let shard = crate::router::shard_of(key, shards);
                let msg = ShardMsg::Delete {
                    key,
                    req_id,
                    reply: reply_tx.clone(),
                };
                if shard_txs[shard].send(msg).is_err() {
                    let _ = reply_tx.send(encode_reply(req_id, &Err(Error::Shutdown)));
                }
            }
            Request::Range { start, end, limit } => {
                let limit = if limit == 0 || limit > MAX_RANGE_RESULTS {
                    MAX_RANGE_RESULTS as usize
                } else {
                    limit as usize
                };
                let span = shards_overlapping(start, end, shards);
                let count = span.clone().count();
                if count == 0 {
                    let _ = reply_tx.send(encode_reply(req_id, &Ok(Reply::Entries(Vec::new()))));
                } else {
                    let agg = Arc::new(RangeAgg {
                        req_id,
                        limit,
                        remaining: AtomicUsize::new(count),
                        slots: Mutex::new(vec![None; count]),
                        reply: reply_tx.clone(),
                    });
                    for (slot, shard) in span.enumerate() {
                        let msg = ShardMsg::Range {
                            start,
                            end,
                            fetch: limit,
                            slot,
                            agg: agg.clone(),
                        };
                        if shard_txs[shard].send(msg).is_err() {
                            agg.done(slot, Vec::new());
                        }
                    }
                }
            }
            Request::Stats => {
                let agg = Arc::new(StatsAgg {
                    req_id,
                    remaining: AtomicUsize::new(shards),
                    acc: Mutex::new(ServiceStats::default()),
                    reply: reply_tx.clone(),
                });
                for tx in &shard_txs {
                    let msg = ShardMsg::Stats {
                        agg: agg.clone(),
                        shards: shards as u32,
                    };
                    if tx.send(msg).is_err() {
                        agg.done(ServiceStats::default());
                    }
                }
            }
        }

        // The pipelining window closed: nothing more is already buffered,
        // so the next read may block — flush what this burst accumulated.
        if !batcher.is_empty() && reader.buffer().is_empty() {
            for (shard, entries, req_ids) in batcher.drain() {
                submit_run(&shard_txs[shard], entries, req_ids, &reply_tx);
            }
        }
    }

    for (shard, entries, req_ids) in batcher.drain() {
        submit_run(&shard_txs[shard], entries, req_ids, &reply_tx);
    }
    // Dropping reply_tx lets the writer drain outstanding worker replies
    // and exit once the last agg/worker clone drops.
    drop(reply_tx);
    let _ = writer.join();
}

fn writer_loop(stream: TcpStream, rx: Receiver<Vec<u8>>) {
    let mut w = BufWriter::new(stream);
    loop {
        match rx.try_recv() {
            Ok(frame) => {
                if w.write_all(&frame).is_err() {
                    return;
                }
            }
            Err(TryRecvError::Empty) => {
                // Momentarily idle: push replies to the wire, then block.
                if w.flush().is_err() {
                    return;
                }
                match rx.recv() {
                    Ok(frame) => {
                        if w.write_all(&frame).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
            Err(TryRecvError::Disconnected) => {
                let _ = w.flush();
                return;
            }
        }
    }
}

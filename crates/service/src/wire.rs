//! The length-prefixed binary wire protocol.
//!
//! Every frame — request or reply — is `[body_len: u32 LE][body]`, where
//! the body starts with an 8-byte request id. Requests follow the id with
//! a one-byte opcode; replies follow it with a one-byte status. Ids are
//! chosen by the client and echoed back verbatim, which is what makes the
//! protocol *pipelined*: a client may have any number of requests in
//! flight and match replies by id (per-shard replies may arrive out of
//! submission order across shards; within one shard they are ordered).
//!
//! ## Request bodies
//!
//! | opcode | name          | payload                                      |
//! |--------|---------------|----------------------------------------------|
//! | 1      | `Insert`      | `key u64, value u64`                         |
//! | 2      | `InsertBatch` | `count u32, count × (key u64, value u64)`    |
//! | 3      | `Get`         | `key u64`                                    |
//! | 4      | `Delete`      | `key u64`                                    |
//! | 5      | `Range`       | `start u64, end u64 (inclusive), limit u32`  |
//! | 6      | `Stats`       | —                                            |
//!
//! ## Reply bodies
//!
//! Status `0` is success; the payload depends on the request (empty for
//! `Insert`; `fast u64` — entries ingested through the sorted-run fast
//! path — for `InsertBatch`; `present u8 [, value u64]` for `Get`/
//! `Delete`; `count u32, pairs` for `Range`; a fixed stats block for
//! `Stats`). Non-zero statuses map **one-to-one from the
//! [`quit_core::Error`] variants** (the whole point of the 0.7.0 error
//! unification — a networked caller sees the same taxonomy an in-process
//! caller does), and the payload is a UTF-8 message:
//!
//! | status | error variant          |
//! |--------|------------------------|
//! | 1      | [`Error::Wal`]         |
//! | 2      | [`Error::Corruption`]  |
//! | 3      | [`Error::Poisoned`]    |
//! | 4      | [`Error::Io`]          |
//! | 5      | [`Error::Config`]      |
//! | 6      | [`Error::Shutdown`]    |

use quit_core::{Error, Result};
use std::io::{Read, Write};

/// Upper bound on a frame body; anything larger is rejected as
/// [`Error::Corruption`] before allocation (a garbage length prefix must
/// not OOM the peer).
pub const MAX_FRAME: usize = 64 << 20;

/// Hard cap a server applies to [`Request::Range`] results, so one request
/// cannot materialize the whole keyspace (clients requesting `limit = 0`
/// or anything larger get this many entries at most).
pub const MAX_RANGE_RESULTS: u32 = 1 << 20;

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Insert one pair.
    Insert {
        /// Key to insert.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Insert many pairs in submission order (the server splits the batch
    /// at shard boundaries, preserving each shard's subsequence order so
    /// sorted runs survive the split).
    InsertBatch {
        /// Pairs in submission order.
        entries: Vec<(u64, u64)>,
    },
    /// Point lookup.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Delete one key.
    Delete {
        /// Key to delete.
        key: u64,
    },
    /// Inclusive range scan, capped at `limit` entries
    /// (`0` means [`MAX_RANGE_RESULTS`]).
    Range {
        /// First key of the scan (inclusive).
        start: u64,
        /// Last key of the scan (inclusive).
        end: u64,
        /// Result cap (`0` = server maximum).
        limit: u32,
    },
    /// Service-wide counters, aggregated across every shard.
    Stats,
}

/// The stats block a [`Request::Stats`] reply carries: the counters the
/// sortedness argument is *about*, summed across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Entries resident across all shards.
    pub len: u64,
    /// Inserts that rode the poℓe fast path.
    pub fast_inserts: u64,
    /// Inserts that paid a full top-down descent.
    pub top_inserts: u64,
    /// WAL append calls across all shard logs.
    pub wal_appends: u64,
    /// WAL fsyncs across all shard logs (group commit batches these).
    pub wal_fsyncs: u64,
    /// Number of shards serving.
    pub shards: u32,
}

impl ServiceStats {
    /// Fraction of inserts that avoided a top-down descent.
    pub fn fastpath_rate(&self) -> f64 {
        let total = self.fast_inserts + self.top_inserts;
        if total == 0 {
            return 0.0;
        }
        self.fast_inserts as f64 / total as f64
    }
}

/// A decoded server reply (the success payloads; failures travel as
/// [`Error`] through [`read_reply`]'s `Result`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `Insert` acknowledged (durable per the server's configured level).
    Inserted,
    /// `InsertBatch` acknowledged; `fast` entries rode the sorted-run
    /// fast path across all shards the batch touched.
    BatchInserted {
        /// Fast-path entry count for the batch.
        fast: u64,
    },
    /// `Get` result.
    Got(Option<u64>),
    /// `Delete` result (previous value, if the key existed).
    Deleted(Option<u64>),
    /// `Range` result in global key order.
    Entries(Vec<(u64, u64)>),
    /// `Stats` result.
    Stats(ServiceStats),
}

/// Wire status for an [`Error`] (`0` is reserved for success).
pub fn status_code(e: &Error) -> u8 {
    match e {
        Error::Wal(_) => 1,
        Error::Corruption(_) => 2,
        Error::Poisoned => 3,
        Error::Io(_) => 4,
        Error::Config(_) => 5,
        Error::Shutdown => 6,
        Error::Conflict(_) => 7,
        Error::TxnAborted(_) => 8,
        // `Error` is #[non_exhaustive]; future variants travel as 255 and
        // decode to a Corruption-kind error naming the unknown code.
        _ => 255,
    }
}

fn status_error(code: u8, msg: String) -> Error {
    match code {
        1 => Error::Wal(msg),
        2 => Error::Corruption(msg),
        3 => Error::Poisoned,
        4 => Error::Io(std::io::Error::other(msg)),
        5 => Error::Config(msg),
        6 => Error::Shutdown,
        7 => Error::Conflict(msg),
        8 => Error::TxnAborted(msg),
        other => Error::corruption(format!("unknown wire status {other}: {msg}")),
    }
}

// ---- little-endian cursor helpers --------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| Error::corruption("truncated frame body"))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(Error::corruption("trailing bytes in frame body"))
        }
    }
}

fn pairs(c: &mut Cursor<'_>) -> Result<Vec<(u64, u64)>> {
    let count = c.u32()? as usize;
    // The count must be consistent with the frame length before we trust
    // it for an allocation.
    if count.checked_mul(16).is_none_or(|b| b > c.buf.len() - c.at) {
        return Err(Error::corruption("pair count exceeds frame body"));
    }
    (0..count).map(|_| Ok((c.u64()?, c.u64()?))).collect()
}

fn put_pairs(out: &mut Vec<u8>, entries: &[(u64, u64)]) {
    put_u32(out, entries.len() as u32);
    for &(k, v) in entries {
        put_u64(out, k);
        put_u64(out, v);
    }
}

// ---- frame I/O ---------------------------------------------------------

/// Reads one frame body; `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len) as usize;
    if !(8..=MAX_FRAME).contains(&len) {
        return Err(Error::corruption(format!(
            "frame length {len} out of range"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Encodes a request frame (length prefix included).
pub fn encode_request(req_id: u64, req: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    put_u64(&mut body, req_id);
    match req {
        Request::Insert { key, value } => {
            body.push(1);
            put_u64(&mut body, *key);
            put_u64(&mut body, *value);
        }
        Request::InsertBatch { entries } => {
            body.push(2);
            put_pairs(&mut body, entries);
        }
        Request::Get { key } => {
            body.push(3);
            put_u64(&mut body, *key);
        }
        Request::Delete { key } => {
            body.push(4);
            put_u64(&mut body, *key);
        }
        Request::Range { start, end, limit } => {
            body.push(5);
            put_u64(&mut body, *start);
            put_u64(&mut body, *end);
            put_u32(&mut body, *limit);
        }
        Request::Stats => body.push(6),
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    frame
}

/// Writes a request frame to `w` (no flush — pipelining batches flushes).
pub fn write_request(w: &mut impl Write, req_id: u64, req: &Request) -> Result<()> {
    let frame = encode_request(req_id, req);
    w.write_all(&frame)?;
    Ok(())
}

/// Reads the next request; `Ok(None)` on clean client disconnect.
pub fn read_request(r: &mut impl Read) -> Result<Option<(u64, Request)>> {
    let Some(body) = read_frame(r)? else {
        return Ok(None);
    };
    let mut c = Cursor::new(&body);
    let req_id = c.u64()?;
    let req = match c.u8()? {
        1 => Request::Insert {
            key: c.u64()?,
            value: c.u64()?,
        },
        2 => Request::InsertBatch {
            entries: pairs(&mut c)?,
        },
        3 => Request::Get { key: c.u64()? },
        4 => Request::Delete { key: c.u64()? },
        5 => Request::Range {
            start: c.u64()?,
            end: c.u64()?,
            limit: c.u32()?,
        },
        6 => Request::Stats,
        op => return Err(Error::corruption(format!("unknown opcode {op}"))),
    };
    c.done()?;
    Ok(Some((req_id, req)))
}

/// Encodes a reply frame (length prefix included).
pub fn encode_reply(req_id: u64, reply: &Result<Reply>) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    put_u64(&mut body, req_id);
    match reply {
        Ok(ok) => {
            body.push(0);
            match ok {
                Reply::Inserted => {}
                Reply::BatchInserted { fast } => put_u64(&mut body, *fast),
                Reply::Got(v) | Reply::Deleted(v) => {
                    // Got and Deleted share an encoding; the client knows
                    // which it asked for. A discriminating byte keeps the
                    // decode unambiguous anyway.
                    match v {
                        Some(v) => {
                            body.push(1);
                            put_u64(&mut body, *v);
                        }
                        None => body.push(0),
                    }
                }
                Reply::Entries(entries) => put_pairs(&mut body, entries),
                Reply::Stats(s) => {
                    put_u64(&mut body, s.len);
                    put_u64(&mut body, s.fast_inserts);
                    put_u64(&mut body, s.top_inserts);
                    put_u64(&mut body, s.wal_appends);
                    put_u64(&mut body, s.wal_fsyncs);
                    put_u32(&mut body, s.shards);
                }
            }
        }
        Err(e) => {
            body.push(status_code(e));
            body.extend_from_slice(e.to_string().as_bytes());
        }
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    frame
}

/// What the client expects a reply to decode as (replies are not
/// self-describing beyond the status byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyShape {
    /// Expect [`Reply::Inserted`].
    Inserted,
    /// Expect [`Reply::BatchInserted`].
    BatchInserted,
    /// Expect [`Reply::Got`].
    Got,
    /// Expect [`Reply::Deleted`].
    Deleted,
    /// Expect [`Reply::Entries`].
    Entries,
    /// Expect [`Reply::Stats`].
    Stats,
}

impl Request {
    /// The reply shape this request produces.
    pub fn reply_shape(&self) -> ReplyShape {
        match self {
            Request::Insert { .. } => ReplyShape::Inserted,
            Request::InsertBatch { .. } => ReplyShape::BatchInserted,
            Request::Get { .. } => ReplyShape::Got,
            Request::Delete { .. } => ReplyShape::Deleted,
            Request::Range { .. } => ReplyShape::Entries,
            Request::Stats => ReplyShape::Stats,
        }
    }
}

/// Reads the next reply. The outer `Result` is transport/decode failure;
/// the inner one is the server-reported status (an [`Error`] rebuilt from
/// the wire status code). `shape` tells the decoder what success payload
/// to expect for this `req_id`.
pub fn read_reply(
    r: &mut impl Read,
    shape: impl FnOnce(u64) -> Result<ReplyShape>,
) -> Result<(u64, Result<Reply>)> {
    let body = read_frame(r)?.ok_or(Error::Shutdown)?;
    let mut c = Cursor::new(&body);
    let req_id = c.u64()?;
    let status = c.u8()?;
    if status != 0 {
        let msg = String::from_utf8_lossy(c.take(body.len() - c.at)?).into_owned();
        return Ok((req_id, Err(status_error(status, msg))));
    }
    let reply = match shape(req_id)? {
        ReplyShape::Inserted => Reply::Inserted,
        ReplyShape::BatchInserted => Reply::BatchInserted { fast: c.u64()? },
        shape @ (ReplyShape::Got | ReplyShape::Deleted) => {
            let v = match c.u8()? {
                0 => None,
                1 => Some(c.u64()?),
                other => {
                    return Err(Error::corruption(format!("bad presence byte {other}")));
                }
            };
            if shape == ReplyShape::Got {
                Reply::Got(v)
            } else {
                Reply::Deleted(v)
            }
        }
        ReplyShape::Entries => Reply::Entries(pairs(&mut c)?),
        ReplyShape::Stats => Reply::Stats(ServiceStats {
            len: c.u64()?,
            fast_inserts: c.u64()?,
            top_inserts: c.u64()?,
            wal_appends: c.u64()?,
            wal_fsyncs: c.u64()?,
            shards: c.u32()?,
        }),
    };
    c.done()?;
    Ok((req_id, Ok(reply)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = encode_request(42, &req);
        let mut r = &frame[..];
        let (id, back) = read_request(&mut r).unwrap().unwrap();
        assert_eq!(id, 42);
        assert_eq!(back, req);
        assert!(r.is_empty());
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Insert { key: 7, value: 9 });
        roundtrip_request(Request::InsertBatch {
            entries: vec![(1, 2), (3, 4), (u64::MAX, 0)],
        });
        roundtrip_request(Request::Get { key: u64::MAX });
        roundtrip_request(Request::Delete { key: 0 });
        roundtrip_request(Request::Range {
            start: 5,
            end: 500,
            limit: 128,
        });
        roundtrip_request(Request::Stats);
    }

    fn roundtrip_reply(reply: Reply, shape: ReplyShape) -> Reply {
        let frame = encode_reply(9, &Ok(reply));
        let mut r = &frame[..];
        let (id, back) = read_reply(&mut r, |_| Ok(shape)).unwrap();
        assert_eq!(id, 9);
        back.unwrap()
    }

    #[test]
    fn replies_roundtrip() {
        assert_eq!(
            roundtrip_reply(Reply::Inserted, ReplyShape::Inserted),
            Reply::Inserted
        );
        assert_eq!(
            roundtrip_reply(Reply::BatchInserted { fast: 77 }, ReplyShape::BatchInserted),
            Reply::BatchInserted { fast: 77 }
        );
        assert_eq!(
            roundtrip_reply(Reply::Got(Some(5)), ReplyShape::Got),
            Reply::Got(Some(5))
        );
        assert_eq!(
            roundtrip_reply(Reply::Got(None), ReplyShape::Got),
            Reply::Got(None)
        );
        let entries = vec![(1, 10), (2, 20)];
        assert_eq!(
            roundtrip_reply(Reply::Entries(entries.clone()), ReplyShape::Entries),
            Reply::Entries(entries)
        );
        let s = ServiceStats {
            len: 1,
            fast_inserts: 2,
            top_inserts: 3,
            wal_appends: 4,
            wal_fsyncs: 5,
            shards: 6,
        };
        assert_eq!(
            roundtrip_reply(Reply::Stats(s), ReplyShape::Stats),
            Reply::Stats(s)
        );
    }

    #[test]
    fn every_error_variant_survives_the_wire() {
        let errs = vec![
            Error::wal("segment gone"),
            Error::corruption("bad crc"),
            Error::Poisoned,
            Error::Io(std::io::Error::other("disk on fire")),
            Error::config("zero shards"),
            Error::Shutdown,
            Error::conflict("key 7 committed past our snapshot"),
            Error::txn_aborted("explicit rollback"),
        ];
        for e in errs {
            let kind = e.kind();
            let frame = encode_reply(3, &Err(e));
            let mut r = &frame[..];
            let (id, back) = read_reply(&mut r, |_| Ok(ReplyShape::Inserted)).unwrap();
            assert_eq!(id, 3);
            assert_eq!(back.unwrap_err().kind(), kind, "status code must map 1:1");
        }
    }

    #[test]
    fn garbage_length_prefix_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(&[0u8; 16]);
        let mut r = &frame[..];
        let err = read_request(&mut r).unwrap_err();
        assert_eq!(err.kind(), "corruption");
    }

    #[test]
    fn lying_pair_count_is_rejected() {
        // An InsertBatch body claiming 1M pairs but carrying none.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(2);
        body.extend_from_slice(&1_000_000u32.to_le_bytes());
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        let mut r = &frame[..];
        assert_eq!(read_request(&mut r).unwrap_err().kind(), "corruption");
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_error() {
        let mut empty: &[u8] = &[];
        assert!(read_request(&mut empty).unwrap().is_none());
        let frame = encode_request(1, &Request::Stats);
        let mut torn = &frame[..frame.len() - 1];
        assert_eq!(read_request(&mut torn).unwrap_err().kind(), "io");
    }
}

//! # quit-service — a sharded, pipelined TCP service over the QuIT index
//!
//! The paper's regime — very high ingest rates of *near-sorted* streams —
//! is the regime of networked platforms, so this crate puts the
//! workspace's durable concurrent tree behind a socket without giving up
//! the property everything else is built on: **sortedness must survive
//! the trip**. Three decisions carry that:
//!
//! * **Range partitioning** ([`shard_of`]): the `u64` keyspace is cut
//!   into contiguous shard ranges with a monotone multiply-shift rule,
//!   so the subsequence of a globally near-sorted stream each shard
//!   receives is itself near-sorted — a hash partitioner would shred it.
//! * **Run-building router** ([`InsertBatcher`]): pipelined single
//!   inserts accumulate per shard and are submitted as contiguous runs
//!   through `insert_batch`'s sorted-run detection — one channel
//!   message, one WAL append, one group-commit wait per burst per shard.
//! * **One `Durable<ConcurrentTree>` per shard**, each with its own WAL
//!   directory ([`quit_durability::FsStorage::open_sharded`]): group
//!   commit batches fsyncs *within* a shard while shards proceed in
//!   parallel, and each shard recovers independently.
//!
//! The wire protocol ([`wire`]) is length-prefixed, binary, and
//! pipelined; its status codes map one-to-one from [`quit_core::Error`]
//! — the unified error type this workspace's 0.7.0 API redesign
//! introduced — so a networked caller sees exactly the error taxonomy an
//! embedded caller does.
//!
//! ## Quick start
//!
//! ```
//! use quit_service::{Client, Server, ServiceConfig};
//!
//! let config = ServiceConfig::small(2);
//! let (server, _reports) = Server::start_in_memory(config, "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! client.insert(1, 10).unwrap();
//! client.insert_batch(&(2..100u64).map(|k| (k, k * 10)).collect::<Vec<_>>()).unwrap();
//! assert_eq!(client.get(42).unwrap(), Some(420));
//! assert_eq!(client.range(90, 95, 0).unwrap().len(), 6);
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.len, 99);
//! // The near-sorted stream stayed near-sorted per shard:
//! assert!(stats.fastpath_rate() > 0.5);
//!
//! drop(client);
//! server.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod client;
mod config;
mod router;
mod server;
pub mod wire;

pub use client::Client;
pub use config::ServiceConfig;
pub use quit_core::{Error, Result};
pub use router::{
    is_batchable, shard_of, shard_range, shards_overlapping, split_batch, InsertBatcher,
};
pub use server::Server;
pub use wire::{Reply, ReplyShape, Request, ServiceStats};

//! Service configuration: one struct embedding the tree geometry
//! (`ConcConfig`), the durability policy (`DurabilityConfig`, which
//! carries the [`DurabilityLevel`]), and the service's own knobs.

use quit_concurrent::ConcConfig;
use quit_core::{Error, Result};
use quit_durability::{DurabilityConfig, DurabilityLevel};

/// Everything a [`crate::Server`] needs: shard count, per-shard tree
/// geometry, per-shard durability policy, and router batching.
///
/// Follows the workspace's config idiom (`TreeConfig`/`ConcConfig`):
/// constructors for the common cases, `with_*` builders for the rest —
/// but [`validate`](Self::validate) returns [`quit_core::Error`] instead
/// of panicking, because service configs arrive from CLIs and scripts,
/// not compile-time constants.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of range-partitioned shards (each owns a
    /// `Durable<ConcurrentTree>` and its own WAL directory).
    pub shards: usize,
    /// Per-shard tree geometry and fast-path policy.
    pub tree: ConcConfig,
    /// Per-shard WAL policy; `durability.level` is the
    /// [`DurabilityLevel`] every mutation buys before its reply.
    pub durability: DurabilityConfig,
    /// Router flush threshold: a connection's buffered single-insert run
    /// for one shard is submitted once it reaches this many entries (it
    /// is also flushed whenever the connection's read buffer drains).
    pub batch_max: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl ServiceConfig {
    /// Paper-default trees, group-commit durability, 4 shards.
    pub fn paper_default() -> Self {
        ServiceConfig {
            shards: 4,
            tree: ConcConfig::paper_default(),
            durability: DurabilityConfig::group_commit(),
            batch_max: 1024,
        }
    }

    /// Small trees that split often — for tests.
    pub fn small(shards: usize) -> Self {
        ServiceConfig {
            shards,
            tree: ConcConfig::small(16),
            durability: DurabilityConfig::group_commit(),
            batch_max: 64,
        }
    }

    /// Builder-style override of the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style override of the per-shard tree config.
    pub fn with_tree(mut self, tree: ConcConfig) -> Self {
        self.tree = tree;
        self
    }

    /// Builder-style override of the per-shard durability config.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    /// Builder-style override of just the durability level.
    pub fn with_level(mut self, level: DurabilityLevel) -> Self {
        self.durability = self.durability.with_level(level);
        self
    }

    /// Builder-style override of the router flush threshold.
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// Checks the configuration, returning [`Error::Config`] naming the
    /// first offending field.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(Error::config("shards must be at least 1"));
        }
        if self.shards > u32::MAX as usize {
            return Err(Error::config("shards must fit in u32"));
        }
        if self.batch_max == 0 {
            return Err(Error::config("batch_max must be at least 1"));
        }
        if self.tree.leaf_capacity < 2 {
            return Err(Error::config("tree.leaf_capacity must be at least 2"));
        }
        if self.tree.internal_capacity < 3 {
            return Err(Error::config("tree.internal_capacity must be at least 3"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServiceConfig::paper_default().validate().unwrap();
        ServiceConfig::small(1).validate().unwrap();
    }

    #[test]
    fn bad_configs_name_the_field() {
        let e = ServiceConfig::paper_default()
            .with_shards(0)
            .validate()
            .unwrap_err();
        assert_eq!(e.kind(), "config");
        assert!(e.to_string().contains("shards"));
        let e = ServiceConfig::paper_default()
            .with_batch_max(0)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("batch_max"));
    }

    #[test]
    fn level_override_reaches_durability() {
        let c = ServiceConfig::paper_default().with_level(DurabilityLevel::Buffered);
        assert_eq!(c.durability.level, DurabilityLevel::Buffered);
    }
}

//! Range partitioning of the `u64` keyspace and order-preserving batch
//! splitting — the part of the router the sortedness argument depends on.
//!
//! The keyspace is cut into `n` contiguous, near-equal ranges with the
//! multiply-shift rule `shard = (key · n) >> 64`. The rule is monotone in
//! the key, which is the property everything downstream leans on: a shard
//! owns one contiguous key range, so the *subsequence* of a globally
//! near-sorted stream that routes to it is itself near-sorted — each
//! shard's QuIT fast path sees the same sortedness the whole stream had.
//! (A hash partitioner would destroy exactly that.)

use crate::wire::Request;
use std::ops::RangeInclusive;

/// The shard owning `key` under `shards`-way range partitioning.
#[inline]
pub fn shard_of(key: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    ((key as u128 * shards as u128) >> 64) as usize
}

/// The inclusive key range shard `shard` owns (the preimage of
/// [`shard_of`]). Ranges tile the keyspace: shard 0 starts at 0, shard
/// `n-1` ends at `u64::MAX`, and consecutive shards meet with no gap.
pub fn shard_range(shard: usize, shards: usize) -> RangeInclusive<u64> {
    assert!(shard < shards, "shard {shard} out of {shards}");
    let n = shards as u128;
    let lo = ((shard as u128) << 64).div_ceil(n) as u64;
    let hi = if shard + 1 == shards {
        u64::MAX
    } else {
        ((((shard as u128) + 1) << 64).div_ceil(n) - 1) as u64
    };
    lo..=hi
}

/// The shards whose ranges intersect the inclusive query `[start, end]`.
/// Empty iff `start > end`.
pub fn shards_overlapping(start: u64, end: u64, shards: usize) -> RangeInclusive<usize> {
    if start > end {
        #[allow(clippy::reversed_empty_ranges)]
        return 1..=0;
    }
    shard_of(start, shards)..=shard_of(end, shards)
}

/// Splits `entries` into per-shard runs, preserving submission order
/// within each shard (a stable partition). Returns `(shard, run)` pairs
/// for the non-empty shards only, ordered by shard id.
pub fn split_batch(entries: &[(u64, u64)], shards: usize) -> Vec<(usize, Vec<(u64, u64)>)> {
    let mut runs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); shards];
    for &(k, v) in entries {
        runs[shard_of(k, shards)].push((k, v));
    }
    runs.into_iter()
        .enumerate()
        .filter(|(_, run)| !run.is_empty())
        .collect()
}

/// One buffered run for a shard: the `(key, value)` entries plus the
/// request id of each, in submission order.
type Run = (Vec<(u64, u64)>, Vec<u64>);

/// Per-connection insert accumulator: buffers single inserts per shard so
/// a pipelined stream of point inserts reaches each shard worker as one
/// contiguous run through `insert_batch`'s sorted-run detection, instead
/// of one channel message (and one WAL append) per key.
///
/// The server flushes a batcher when the connection's read buffer drains
/// (the natural pipelining window: everything the client sent in one
/// burst coalesces), when a run hits `batch_max`, or before any
/// non-insert request (so a `get` observes every insert the same
/// connection submitted before it).
pub struct InsertBatcher {
    runs: Vec<Run>,
    batch_max: usize,
    buffered: usize,
}

impl InsertBatcher {
    /// An empty batcher for `shards` shards flushing runs at `batch_max`
    /// entries.
    pub fn new(shards: usize, batch_max: usize) -> Self {
        assert!(batch_max > 0);
        InsertBatcher {
            runs: (0..shards).map(|_| (Vec::new(), Vec::new())).collect(),
            batch_max,
            buffered: 0,
        }
    }

    /// Buffers one insert under `req_id`; returns the shard's run if this
    /// push filled it to `batch_max` (the caller must submit it).
    #[allow(clippy::type_complexity)]
    pub fn push(
        &mut self,
        req_id: u64,
        key: u64,
        value: u64,
    ) -> Option<(usize, Vec<(u64, u64)>, Vec<u64>)> {
        let shard = shard_of(key, self.runs.len());
        let (run, ids) = &mut self.runs[shard];
        run.push((key, value));
        ids.push(req_id);
        self.buffered += 1;
        if run.len() >= self.batch_max {
            self.buffered -= run.len();
            Some((shard, std::mem::take(run), std::mem::take(ids)))
        } else {
            None
        }
    }

    /// True if any insert is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffered == 0
    }

    /// Drains every non-empty run, ordered by shard id.
    #[allow(clippy::type_complexity)]
    pub fn drain(&mut self) -> Vec<(usize, Vec<(u64, u64)>, Vec<u64>)> {
        self.buffered = 0;
        self.runs
            .iter_mut()
            .enumerate()
            .filter(|(_, (run, _))| !run.is_empty())
            .map(|(shard, (run, ids))| (shard, std::mem::take(run), std::mem::take(ids)))
            .collect()
    }
}

/// Whether a request can ride the insert batcher (everything else forces
/// a flush first).
pub fn is_batchable(req: &Request) -> bool {
    matches!(req, Request::Insert { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_keyspace() {
        for shards in [1usize, 2, 3, 4, 7, 16, 64] {
            assert_eq!(*shard_range(0, shards).start(), 0);
            assert_eq!(*shard_range(shards - 1, shards).end(), u64::MAX);
            for s in 0..shards - 1 {
                let hi = *shard_range(s, shards).end();
                let next_lo = *shard_range(s + 1, shards).start();
                assert_eq!(hi.wrapping_add(1), next_lo, "no gap, no overlap");
            }
        }
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        for shards in [1usize, 3, 4, 16] {
            for s in 0..shards {
                let r = shard_range(s, shards);
                assert_eq!(shard_of(*r.start(), shards), s);
                assert_eq!(shard_of(*r.end(), shards), s);
                let mid = r.start() + (r.end() - r.start()) / 2;
                assert_eq!(shard_of(mid, shards), s);
            }
        }
    }

    #[test]
    fn split_preserves_order_and_totals() {
        let entries: Vec<(u64, u64)> = (0..1000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i))
            .collect();
        let split = split_batch(&entries, 4);
        let total: usize = split.iter().map(|(_, run)| run.len()).sum();
        assert_eq!(total, entries.len());
        for (shard, run) in &split {
            let range = shard_range(*shard, 4);
            assert!(run.iter().all(|(k, _)| range.contains(k)));
            // Submission order within the shard is preserved: values are
            // the original indices, so they must be increasing.
            assert!(run.windows(2).all(|w| w[0].1 < w[1].1));
        }
    }

    #[test]
    fn batcher_flushes_at_batch_max_and_on_drain() {
        let mut b = InsertBatcher::new(2, 3);
        assert!(b.is_empty());
        // Keys in shard 0 (low half) fill to batch_max.
        assert!(b.push(1, 0, 10).is_none());
        assert!(b.push(2, 1, 11).is_none());
        let (shard, run, ids) = b.push(3, 2, 12).expect("third push hits batch_max");
        assert_eq!(shard, 0);
        assert_eq!(run, vec![(0, 10), (1, 11), (2, 12)]);
        assert_eq!(ids, vec![1, 2, 3]);
        // One key in the high half stays buffered until drained.
        assert!(b.push(4, u64::MAX, 13).is_none());
        assert!(!b.is_empty());
        let drained = b.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, 1);
        assert!(b.is_empty());
    }
}

//! Synthetic intraday stock price streams standing in for the paper's
//! Fig 15 datasets (NIFTY and SPXUSD one-minute closing prices), which are
//! fetched from GitHub in the original and unavailable offline.
//!
//! The generator reproduces the property the experiment depends on — "an
//! overall upward trend that intuitively implies near-sortedness" — as a
//! log-space trend from the series' start price to its end price, plus a
//! slow mean-reverting wiggle (the multi-month swings visible in Fig 15a/b)
//! and a small per-bar jitter. The jitter-to-drift ratio controls how
//! *locally* sorted the stream is; the default keeps the stream
//! trend-dominated (bar-level inversions well under 50%), matching the
//! regime in which the paper's experiment differentiates the indexes. Crank
//! [`StockSpec::jitter_ratio`] above ~3 to study the noise-dominated regime
//! instead, where price oscillation defeats any *directional* predictor.
//!
//! Prices are emitted as integer ticks (price × 100) so they can be indexed
//! as `u64` keys exactly like the paper's 4-byte integer keys.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters of a synthetic instrument.
#[derive(Debug, Clone, PartialEq)]
pub struct StockSpec {
    /// Number of one-minute bars to emit.
    pub n: usize,
    /// Price of the first bar (currency units).
    pub start_price: f64,
    /// Price the trend reaches by the last bar.
    pub end_price: f64,
    /// Amplitude of the slow wiggle as a fraction of price. The default
    /// puts the wiggle's downslope a few times above the per-bar drift, so
    /// the series has sustained drawdown phases like real index data — the
    /// stretches that strand the tail-leaf fast path in Fig 15.
    pub wiggle_amplitude: f64,
    /// Characteristic period of the slow wiggle, in bars.
    pub wiggle_period: usize,
    /// Per-bar white-noise standard deviation as a multiple of the per-bar
    /// trend drift. `< 1` ⇒ trend-dominated (near-sorted); `> 3` ⇒
    /// noise-dominated (locally scrambled).
    pub jitter_ratio: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl StockSpec {
    /// A NIFTY-like instrument: ≈1.4M minutes climbing ≈2k → ≈20k
    /// (Fig 15a's scale).
    pub fn nifty() -> Self {
        StockSpec {
            n: 1_400_000,
            start_price: 2_000.0,
            end_price: 20_000.0,
            wiggle_amplitude: 0.02,
            wiggle_period: 60_000,
            jitter_ratio: 0.8,
            seed: 0x4E49_4654,
        }
    }

    /// An SPXUSD-like instrument: ≈2.2M minutes climbing ≈700 → ≈2900
    /// (Fig 15b's scale).
    pub fn spxusd() -> Self {
        StockSpec {
            n: 2_200_000,
            start_price: 700.0,
            end_price: 2_900.0,
            wiggle_amplitude: 0.025,
            wiggle_period: 90_000,
            jitter_ratio: 0.8,
            seed: 0x5350_5855,
        }
    }

    /// Scales the series length, keeping the same start/end prices and the
    /// same number of wiggle cycles, so reduced-size runs preserve shape.
    pub fn scaled(mut self, n: usize) -> Self {
        assert!(n >= 2, "series needs at least 2 bars");
        let ratio = n as f64 / self.n as f64;
        self.wiggle_period = ((self.wiggle_period as f64 * ratio) as usize).max(2);
        self.n = n;
        self
    }

    /// Builder-style override of the jitter-to-drift ratio.
    pub fn with_jitter_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 0.0, "jitter ratio must be non-negative");
        self.jitter_ratio = ratio;
        self
    }

    /// Generates the closing-price series in ticks (price × 100).
    pub fn generate_ticks(&self) -> Vec<u64> {
        assert!(self.start_price > 0.0 && self.end_price > 0.0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.n;
        let drift = (self.end_price / self.start_price).ln() / n as f64;
        // Slow wiggle: a sum of three smooth sinusoids with random phases.
        // Smoothness matters — its per-bar slope (not white noise) is what
        // creates sustained bull/bear phases; the descending stretches are
        // the stream segments that strand the tail fast path.
        let tau = 2.0 * std::f64::consts::PI;
        let components: [(f64, f64); 3] = [(1.0, 1.0), (3.1, 0.5), (8.7, 0.25)];
        let phases: Vec<f64> = (0..components.len())
            .map(|_| rng.gen_range(0.0..tau))
            .collect();
        let period = self.wiggle_period.max(2) as f64;
        let jitter_sigma = drift.abs() * self.jitter_ratio;
        let normal = |rng: &mut StdRng| -> f64 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let log_start = self.start_price.ln();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64;
            let wiggle: f64 = components
                .iter()
                .zip(&phases)
                .map(|(&(freq, amp), &phase)| amp * (tau * freq * t / period + phase).sin())
                .sum();
            let log_price = log_start
                + drift * t
                + self.wiggle_amplitude * wiggle
                + jitter_sigma * normal(&mut rng);
            let price = log_price.exp();
            out.push((price * 100.0).round().max(1.0) as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric;

    #[test]
    fn nifty_like_series_trends_up() {
        let spec = StockSpec::nifty().scaled(50_000);
        let ticks = spec.generate_ticks();
        assert_eq!(ticks.len(), 50_000);
        let start = ticks[..100].iter().sum::<u64>() / 100;
        let end = ticks[ticks.len() - 100..].iter().sum::<u64>() / 100;
        // Roughly 10x over the series, like Fig 15a.
        assert!(end > start * 5, "start {start}, end {end}");
    }

    #[test]
    fn series_is_near_sorted_not_sorted() {
        let ticks = StockSpec::spxusd().scaled(50_000).generate_ticks();
        let inv = metric::adjacent_inversion_fraction(&ticks);
        // Wiggles and jitter produce real local inversions…
        assert!(inv > 0.02, "inversions {inv}");
        // …but the trend dominates: most bars move up.
        assert!(inv < 0.48, "inversions {inv}");
        // Global near-sortedness: bounded displacement.
        let m = metric::measure(&ticks);
        assert!(
            m.l_fraction < 0.35,
            "max displacement should be a bounded fraction, got {}",
            m.l_fraction
        );
    }

    #[test]
    fn jitter_ratio_controls_local_disorder() {
        let calm = StockSpec::nifty()
            .scaled(30_000)
            .with_jitter_ratio(0.2)
            .generate_ticks();
        let noisy = StockSpec::nifty()
            .scaled(30_000)
            .with_jitter_ratio(20.0)
            .generate_ticks();
        let inv_calm = metric::adjacent_inversion_fraction(&calm);
        let inv_noisy = metric::adjacent_inversion_fraction(&noisy);
        assert!(
            inv_noisy > inv_calm + 0.08,
            "calm {inv_calm}, noisy {inv_noisy}"
        );
        assert!(inv_noisy > 0.4, "noise-dominated regime: {inv_noisy}");
    }

    #[test]
    fn deterministic() {
        let a = StockSpec::nifty().scaled(5_000).generate_ticks();
        let b = StockSpec::nifty().scaled(5_000).generate_ticks();
        assert_eq!(a, b);
    }

    #[test]
    fn full_scale_lengths_match_paper() {
        assert_eq!(StockSpec::nifty().n, 1_400_000);
        assert_eq!(StockSpec::spxusd().n, 2_200_000);
    }

    #[test]
    fn prices_stay_positive_and_bounded() {
        let ticks = StockSpec::spxusd().scaled(20_000).generate_ticks();
        assert!(ticks.iter().all(|&t| t > 0));
        // Wiggle + jitter never dwarf the price scale.
        let max = *ticks.iter().max().expect("non-empty");
        let min = *ticks.iter().min().expect("non-empty");
        assert!(max < 2_900 * 100 * 2);
        assert!(min > 700 * 100 / 2);
    }

    #[test]
    fn scaled_preserves_wiggle_count() {
        let full = StockSpec::nifty();
        let half = StockSpec::nifty().scaled(700_000);
        let cycles_full = full.n / full.wiggle_period;
        let cycles_half = half.n / half.wiggle_period;
        assert!((cycles_full as i64 - cycles_half as i64).abs() <= 1);
    }
}

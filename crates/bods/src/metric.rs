//! Measuring the K–L sortedness of a stream (paper §2, Fig 2).
//!
//! * `K` — the number of entries that are out of place relative to the fully
//!   sorted order.
//! * `L` — the maximum displacement of an out-of-place entry from its
//!   in-order position.
//!
//! Plus the simpler streaming proxy the paper's Fig 2a illustrates: entries
//! smaller than their predecessor in a monotonically increasing stream.

/// Realized sortedness of a concrete stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sortedness {
    /// Number of out-of-place entries (`K`).
    pub k: usize,
    /// Maximum displacement of an out-of-place entry (`L`), in positions.
    pub l: usize,
    /// `K` as a fraction of the stream length.
    pub k_fraction: f64,
    /// `L` as a fraction of the stream length.
    pub l_fraction: f64,
}

/// Computes the K–L sortedness of `stream` (paper Fig 2c).
///
/// Positions are compared against a stable sort of the stream, so duplicate
/// keys do not inflate `K`.
pub fn measure<K: Ord + Copy>(stream: &[K]) -> Sortedness {
    let n = stream.len();
    if n == 0 {
        return Sortedness {
            k: 0,
            l: 0,
            k_fraction: 0.0,
            l_fraction: 0.0,
        };
    }
    // Stable argsort gives each arrival position its in-order position.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| stream[i as usize]);
    let mut k = 0usize;
    let mut l = 0usize;
    for (sorted_pos, &arrival_pos) in order.iter().enumerate() {
        let displacement = sorted_pos.abs_diff(arrival_pos as usize);
        if displacement > 0 {
            k += 1;
            l = l.max(displacement);
        }
    }
    Sortedness {
        k,
        l,
        k_fraction: k as f64 / n as f64,
        l_fraction: l as f64 / n as f64,
    }
}

/// Sortedness measured per consecutive window of `window` entries — the
/// view that makes Fig 12-style alternating workloads visible. The final
/// partial window (if any) is included.
pub fn measure_windowed<K: Ord + Copy>(stream: &[K], window: usize) -> Vec<Sortedness> {
    assert!(window > 0, "window must be non-empty");
    stream.chunks(window).map(measure).collect()
}

/// Number of entries strictly smaller than their predecessor — the
/// streaming disorder proxy of Fig 2a. Zero for a non-decreasing stream.
pub fn adjacent_inversions<K: Ord>(stream: &[K]) -> usize {
    stream.windows(2).filter(|w| w[1] < w[0]).count()
}

/// Fraction of adjacent inversions, in `[0, 1)`.
pub fn adjacent_inversion_fraction<K: Ord>(stream: &[K]) -> f64 {
    if stream.len() < 2 {
        return 0.0;
    }
    adjacent_inversions(stream) as f64 / (stream.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_stream_is_zero_zero() {
        let s = measure(&[1, 2, 3, 4, 5]);
        assert_eq!((s.k, s.l), (0, 0));
        assert_eq!(adjacent_inversions(&[1, 2, 3, 4, 5]), 0);
    }

    #[test]
    fn paper_fig_2c_example() {
        // Fig 2c: [1, 8, 3, 6, 5, 4, 7, 2, 10, 9] has K=... the paper labels
        // K=5 counting the swapped-in entries {8,6,4,2,9}; positionally the
        // displaced set is those plus their swap partners. Verify the swaps:
        // (8↔2) displacement 6, (6↔4) displacement 2, (10↔9)... check L.
        let stream = [1u64, 8, 3, 6, 5, 4, 7, 2, 10, 9];
        let s = measure(&stream);
        // 8 sits at index 1, belongs at 7 → displacement 6 = paper's L.
        assert_eq!(s.l, 6);
        // Out-of-place entries: 8,6,4,2,10,9 → positional K is 6 (the paper
        // counts K=5 by its "smaller than a preceding key" rule).
        assert_eq!(s.k, 6);
    }

    #[test]
    fn reversed_stream_all_out_of_place() {
        let stream: Vec<u64> = (0..100).rev().collect();
        let s = measure(&stream);
        assert_eq!(s.k, 100);
        assert_eq!(s.l, 99);
        assert!((s.k_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_do_not_count_as_disorder() {
        let stream = [1u64, 1, 1, 2, 2, 3];
        let s = measure(&stream);
        assert_eq!(s.k, 0);
    }

    #[test]
    fn single_swap() {
        // Swap positions 2 and 7 in 0..10.
        let stream = [0u64, 1, 7, 3, 4, 5, 6, 2, 8, 9];
        let s = measure(&stream);
        assert_eq!(s.k, 2);
        assert_eq!(s.l, 5);
        assert_eq!(adjacent_inversions(&stream), 2);
    }

    #[test]
    fn windowed_measurement_sees_alternation() {
        // sorted | reversed | sorted
        let mut s: Vec<u64> = (0..100).collect();
        s.extend((100..200u64).rev());
        s.extend(200..300u64);
        let w = measure_windowed(&s, 100);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].k, 0);
        assert_eq!(w[1].k, 100);
        assert_eq!(w[2].k, 0);
    }

    #[test]
    fn windowed_partial_tail() {
        let s: Vec<u64> = (0..250).collect();
        let w = measure_windowed(&s, 100);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|m| m.k == 0));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn windowed_rejects_zero() {
        measure_windowed(&[1u64], 0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(measure::<u64>(&[]).k, 0);
        assert_eq!(measure(&[9u64]).k, 0);
        assert_eq!(adjacent_inversion_fraction(&[9u64]), 0.0);
    }
}

//! # bods — Benchmark on Data Sortedness
//!
//! A reimplementation of the BoDS workload generator (Raman et al., TPCTC
//! 2022) that the QuIT paper uses for its entire evaluation: data streams
//! with controlled *K–L sortedness* — `K·n` entries out of place, displaced
//! by at most `L·n` positions, with Beta(α, β)-distributed disorder
//! positions — plus the measurement side of the metric, Fig 12's
//! alternating-segment stress workloads, and synthetic stand-ins for the
//! Fig 15 stock-price datasets.
//!
//! ```
//! use bods::{BodsSpec, measure};
//!
//! // 100k entries, 5% out of place, displaced up to 100% of the stream.
//! let stream = BodsSpec::new(100_000, 0.05, 1.0).generate();
//! let realized = measure(&stream);
//! assert!((realized.k_fraction - 0.05).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod distribution;
mod generator;
mod metric;
pub mod stock;

pub use generator::{segmented_workload, BodsSpec};
pub use metric::{
    adjacent_inversion_fraction, adjacent_inversions, measure, measure_windowed, Sortedness,
};
pub use stock::StockSpec;

/// Generates the query workload of §5: `count` point-lookup keys drawn
/// uniformly at random from the existing keys of a BoDS stream of length
/// `n` (i.e. the integers `0..n`).
pub fn point_lookup_keys(n: usize, count: usize, seed: u64) -> Vec<u64> {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(0..n as u64)).collect()
}

/// Generates `count` range-lookup bounds with selectivity `sel`
/// (fraction of the key domain `0..n` each range spans), uniformly placed.
pub fn range_lookup_bounds(n: usize, count: usize, sel: f64, seed: u64) -> Vec<(u64, u64)> {
    use rand::prelude::*;
    assert!(sel > 0.0 && sel <= 1.0, "selectivity must be in (0, 1]");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let span = ((n as f64 * sel).round() as u64).max(1);
    (0..count)
        .map(|_| {
            let start = rng.gen_range(0..(n as u64).saturating_sub(span).max(1));
            (start, start + span)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_keys_in_domain() {
        let keys = point_lookup_keys(1000, 500, 1);
        assert_eq!(keys.len(), 500);
        assert!(keys.iter().all(|&k| k < 1000));
    }

    #[test]
    fn range_bounds_have_requested_span() {
        let ranges = range_lookup_bounds(10_000, 100, 0.01, 2);
        assert!(ranges.iter().all(|&(s, e)| e - s == 100 && s < 10_000));
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn zero_selectivity_rejected() {
        range_lookup_bounds(1000, 1, 0.0, 3);
    }
}

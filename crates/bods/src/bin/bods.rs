//! `bods` — command-line workload tool.
//!
//! ```text
//! bods gen     --n 1000000 --k 0.05 --l 1.0 [--alpha 1 --beta 1 --seed 7] [--out keys.txt]
//! bods stock   nifty|spxusd [--n 100000] [--out ticks.txt]
//! bods measure <file>        # one integer key per line; prints K-L metrics
//! ```

use bods::{measure, BodsSpec, StockSpec};
use std::io::{BufRead, BufWriter, Write};

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn write_keys(keys: &[u64], out: Option<String>) -> std::io::Result<()> {
    match out {
        Some(path) => {
            let mut w = BufWriter::new(std::fs::File::create(path)?);
            for k in keys {
                writeln!(w, "{k}")?;
            }
            w.flush()
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = BufWriter::new(stdout.lock());
            for k in keys {
                writeln!(w, "{k}")?;
            }
            w.flush()
        }
    }
}

fn report(keys: &[u64]) {
    let m = measure(keys);
    eprintln!(
        "{} entries: K={} ({:.2}%), L={} ({:.2}%), adjacent inversions {:.2}%",
        keys.len(),
        m.k,
        m.k_fraction * 100.0,
        m.l,
        m.l_fraction * 100.0,
        bods::adjacent_inversion_fraction(keys) * 100.0,
    );
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let spec = BodsSpec::new(
                parse(&args, "--n", 1_000_000usize),
                parse(&args, "--k", 0.05f64),
                parse(&args, "--l", 1.0f64),
            )
            .with_skew(parse(&args, "--alpha", 1.0), parse(&args, "--beta", 1.0))
            .with_seed(parse(&args, "--seed", 0xB0D5u64));
            let keys = spec.generate();
            report(&keys);
            write_keys(&keys, arg_value(&args, "--out"))
        }
        Some("stock") => {
            let mut spec = match args.get(1).map(String::as_str) {
                Some("spxusd") => StockSpec::spxusd(),
                _ => StockSpec::nifty(),
            };
            if let Some(n) = arg_value(&args, "--n").and_then(|v| v.parse().ok()) {
                spec = spec.scaled(n);
            }
            let keys = spec.generate_ticks();
            report(&keys);
            write_keys(&keys, arg_value(&args, "--out"))
        }
        Some("measure") => {
            let path = args.get(1).expect("usage: bods measure <file>");
            let file = std::io::BufReader::new(std::fs::File::open(path)?);
            let keys: Vec<u64> = file
                .lines()
                .map_while(Result::ok)
                .filter_map(|l| l.trim().parse().ok())
                .collect();
            report(&keys);
            Ok(())
        }
        _ => {
            eprintln!(
                "usage:\n  bods gen --n <entries> --k <frac> --l <frac> [--alpha A --beta B --seed S] [--out FILE]\n  bods stock nifty|spxusd [--n N] [--out FILE]\n  bods measure <FILE>"
            );
            std::process::exit(2);
        }
    }
}

//! Minimal distribution samplers (Beta via Gamma), so the generator matches
//! BoDS's (α, β) skew parameter without pulling in `rand_distr`.

use rand::Rng;

/// Samples `Gamma(shape, 1)` with the Marsaglia–Tsang method, boosting
/// `shape < 1` the standard way.
pub fn gamma_sample<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * z;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * z * z + d - d * v3 + d * v3.ln() {
            return d * v3;
        }
    }
}

/// Samples `Beta(alpha, beta)` in `[0, 1)`. The uniform case (α = β = 1) is
/// special-cased because it dominates BoDS workloads.
pub fn beta_sample<R: Rng + ?Sized>(rng: &mut R, alpha: f64, beta: f64) -> f64 {
    assert!(
        alpha > 0.0 && beta > 0.0,
        "beta parameters must be positive"
    );
    if alpha == 1.0 && beta == 1.0 {
        return rng.gen_range(0.0..1.0);
    }
    let x = gamma_sample(rng, alpha);
    let y = gamma_sample(rng, beta);
    let v = x / (x + y);
    v.clamp(0.0, 1.0 - f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn uniform_case_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let s: Vec<f64> = (0..20_000)
            .map(|_| beta_sample(&mut rng, 1.0, 1.0))
            .collect();
        let m = mean_of(&s);
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
        assert!(s.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn beta_mean_matches_formula() {
        // E[Beta(a,b)] = a / (a + b)
        let mut rng = StdRng::seed_from_u64(2);
        for (a, b) in [(2.0, 5.0), (5.0, 2.0), (0.5, 0.5), (3.0, 3.0)] {
            let s: Vec<f64> = (0..30_000).map(|_| beta_sample(&mut rng, a, b)).collect();
            let expect = a / (a + b);
            let m = mean_of(&s);
            assert!(
                (m - expect).abs() < 0.02,
                "Beta({a},{b}) mean {m}, expect {expect}"
            );
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        for shape in [0.5, 1.0, 2.5, 7.0] {
            let s: Vec<f64> = (0..30_000).map(|_| gamma_sample(&mut rng, shape)).collect();
            let m = mean_of(&s);
            assert!(
                (m - shape).abs() < 0.1 * shape.max(1.0),
                "Gamma({shape}) mean {m}"
            );
        }
    }

    #[test]
    fn skewed_beta_skews_positions() {
        let mut rng = StdRng::seed_from_u64(4);
        // α=5, β=1 pushes mass to the right.
        let s: Vec<f64> = (0..10_000)
            .map(|_| beta_sample(&mut rng, 5.0, 1.0))
            .collect();
        let frac_high = s.iter().filter(|&&v| v > 0.5).count() as f64 / s.len() as f64;
        assert!(frac_high > 0.9, "frac_high {frac_high}");
    }
}

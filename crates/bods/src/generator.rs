//! The BoDS workload generator (paper §5 "Workloads"): produces a family of
//! differently sorted streams parameterized by the K–L-sortedness metric.
//!
//! A fully sorted run of `n` keys is perturbed until `K·n` entries are out
//! of place, each displaced by at most `L·n` positions. Displacements are
//! realized as pairwise swaps at distance `d ~ U(1, L·n)` whose positions
//! are drawn from `Beta(α, β)` (α = β = 1 ⇒ uniform, the paper's default);
//! each swap takes both participants out of place. `K = 100%` is a full
//! Fisher–Yates shuffle.

use crate::distribution::beta_sample;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters of a BoDS workload (paper: `N`, `K`, `L`, `(α, β)`, seed).
#[derive(Debug, Clone, PartialEq)]
pub struct BodsSpec {
    /// Number of entries to generate.
    pub n: usize,
    /// Fraction (0..=1) of entries out of place.
    pub k_fraction: f64,
    /// Maximum displacement as a fraction (0..=1) of `n`.
    pub l_fraction: f64,
    /// Beta skew of swap positions; 1.0 ⇒ uniform.
    pub alpha: f64,
    /// Beta skew of swap positions; 1.0 ⇒ uniform.
    pub beta: f64,
    /// PRNG seed (streams are fully deterministic given the spec).
    pub seed: u64,
}

impl BodsSpec {
    /// A spec with the paper's defaults (`α = β = 1`, `L = 100%`).
    pub fn new(n: usize, k_fraction: f64, l_fraction: f64) -> Self {
        BodsSpec {
            n,
            k_fraction,
            l_fraction,
            alpha: 1.0,
            beta: 1.0,
            seed: 0xB0D5,
        }
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the Beta skew.
    pub fn with_skew(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Generates the key stream `0..n` perturbed to the spec.
    pub fn generate(&self) -> Vec<u64> {
        self.generate_from_base(&mut (0..self.n as u64))
    }

    /// Generates a stream whose sorted content is `base` (consumed in
    /// order). Useful for keys with custom spacing or domains.
    pub fn generate_from_base(&self, base: &mut dyn Iterator<Item = u64>) -> Vec<u64> {
        assert!(
            (0.0..=1.0).contains(&self.k_fraction),
            "K must be a fraction in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.l_fraction),
            "L must be a fraction in [0, 1]"
        );
        let mut keys: Vec<u64> = base.take(self.n).collect();
        let n = keys.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        if n < 2 || self.k_fraction == 0.0 {
            return keys;
        }
        if self.k_fraction >= 1.0 {
            keys.shuffle(&mut rng);
            return keys;
        }
        let k_count = ((self.k_fraction * n as f64).round() as usize).min(n);
        let max_disp = ((self.l_fraction * n as f64).round() as usize).max(1);
        let swaps = k_count / 2;
        let mut used = vec![false; n];
        let mut done = 0usize;
        let mut attempts = 0usize;
        let attempt_budget = swaps.saturating_mul(64) + 1024;
        while done < swaps && attempts < attempt_budget {
            attempts += 1;
            let d = rng.gen_range(1..=max_disp);
            if d >= n {
                continue;
            }
            let span = n - d;
            let i = (beta_sample(&mut rng, self.alpha, self.beta) * span as f64) as usize;
            let j = i + d;
            if used[i] || used[j] {
                continue;
            }
            keys.swap(i, j);
            used[i] = true;
            used[j] = true;
            done += 1;
        }
        // Dense fallback for pathological parameter corners (e.g. very high
        // K with tiny L): sweep deterministically for free pairs.
        if done < swaps {
            'outer: for d in (1..=max_disp.min(n - 1)).rev() {
                for i in 0..n - d {
                    if done >= swaps {
                        break 'outer;
                    }
                    if !used[i] && !used[i + d] {
                        keys.swap(i, i + d);
                        used[i] = true;
                        used[i + d] = true;
                        done += 1;
                    }
                }
            }
        }
        keys
    }

    /// Generates `(key, value)` pairs; values are the arrival positions,
    /// matching the paper's 8-byte integer K-V entries.
    pub fn generate_entries(&self) -> Vec<(u64, u64)> {
        self.generate()
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i as u64))
            .collect()
    }
}

/// A Fig 12 stress workload: consecutive segments that alternate between
/// sortedness levels, over disjoint increasing key ranges.
///
/// `segments` lists `(entries, k_fraction)` per segment; segment `s` draws
/// its keys from `[s·entries, (s+1)·entries)` so the overall stream trends
/// upward like Fig 12a.
pub fn segmented_workload(segments: &[(usize, f64)], seed: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(segments.iter().map(|s| s.0).sum());
    let mut offset = 0u64;
    for (idx, &(n, k)) in segments.iter().enumerate() {
        let spec =
            BodsSpec::new(n, k, 1.0).with_seed(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
        let mut base = offset..offset + n as u64;
        out.extend(spec.generate_from_base(&mut base));
        offset += n as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::measure;

    #[test]
    fn fully_sorted() {
        let keys = BodsSpec::new(1000, 0.0, 1.0).generate();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn realized_k_matches_spec() {
        for k in [0.01, 0.05, 0.10, 0.25, 0.50] {
            let keys = BodsSpec::new(50_000, k, 1.0).generate();
            let m = measure(&keys);
            let err = (m.k_fraction - k).abs();
            assert!(err < 0.02, "requested K={k}, realized {}", m.k_fraction);
        }
    }

    #[test]
    fn realized_l_respects_bound() {
        for l in [0.01, 0.05, 0.25] {
            let keys = BodsSpec::new(20_000, 0.10, l).generate();
            let m = measure(&keys);
            assert!(
                m.l_fraction <= l + 1e-9,
                "requested L={l}, realized {}",
                m.l_fraction
            );
            // And the bound is actually approached.
            assert!(m.l_fraction > l * 0.5, "L too small: {}", m.l_fraction);
        }
    }

    #[test]
    fn full_scramble() {
        let keys = BodsSpec::new(10_000, 1.0, 1.0).generate();
        let m = measure(&keys);
        assert!(m.k_fraction > 0.99, "K={}", m.k_fraction);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = BodsSpec::new(5000, 0.1, 1.0).with_seed(7).generate();
        let b = BodsSpec::new(5000, 0.1, 1.0).with_seed(7).generate();
        let c = BodsSpec::new(5000, 0.1, 1.0).with_seed(8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_a_permutation() {
        for k in [0.05, 0.5, 1.0] {
            let keys = BodsSpec::new(8192, k, 0.3).generate();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8192u64).collect::<Vec<_>>(), "K={k}");
        }
    }

    #[test]
    fn skewed_positions_cluster() {
        // α=8, β=1 concentrates disorder near the end of the stream.
        let keys = BodsSpec::new(40_000, 0.2, 0.02)
            .with_skew(8.0, 1.0)
            .generate();
        let mid = keys.len() / 2;
        let front = crate::metric::adjacent_inversions(&keys[..mid]);
        let back = crate::metric::adjacent_inversions(&keys[mid..]);
        assert!(back > front * 3, "front {front}, back {back}");
    }

    #[test]
    fn entries_carry_arrival_positions() {
        let entries = BodsSpec::new(100, 0.0, 1.0).generate_entries();
        assert_eq!(entries[5], (5, 5));
        assert_eq!(entries.len(), 100);
    }

    #[test]
    fn segmented_alternation() {
        let w = segmented_workload(&[(1000, 0.1), (1000, 1.0), (1000, 0.1)], 42);
        assert_eq!(w.len(), 3000);
        // Each segment occupies its own key range.
        assert!(w[..1000].iter().all(|&k| k < 1000));
        assert!(w[1000..2000].iter().all(|&k| (1000..2000).contains(&k)));
        // Middle segment is scrambled, outer ones nearly sorted.
        let inv_a = crate::metric::adjacent_inversion_fraction(&w[..1000]);
        let inv_b = crate::metric::adjacent_inversion_fraction(&w[1000..2000]);
        assert!(inv_b > inv_a * 3.0, "a={inv_a} b={inv_b}");
    }

    #[test]
    fn tiny_streams_do_not_panic() {
        for n in 0..5 {
            let keys = BodsSpec::new(n, 0.5, 0.5).generate();
            assert_eq!(keys.len(), n);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// For any parameters the stream is a permutation of 0..n, realized
        /// K approximates the request, and L never exceeds the bound.
        #[test]
        fn generator_contract(
            n in 64usize..4096,
            k_milli in 0usize..=1000,
            l_milli in 1usize..=1000,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let k = k_milli as f64 / 1000.0;
            let l = l_milli as f64 / 1000.0;
            let keys = BodsSpec::new(n, k, l).with_seed(seed).generate();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            proptest::prop_assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>());
            let m = measure(&keys);
            if k < 1.0 {
                proptest::prop_assert!(m.l_fraction <= l + 1.0 / n as f64 + 1e-9,
                    "L bound: asked {}, got {}", l, m.l_fraction);
                proptest::prop_assert!((m.k_fraction - k).abs() < 0.05 + 4.0 / n as f64,
                    "K: asked {}, got {}", k, m.k_fraction);
            }
        }
    }
}

//! # sware — the SWARE sortedness-aware indexing baseline
//!
//! A from-scratch implementation of the SWARE paradigm (Raman et al., ICDE
//! 2023) that the QuIT paper compares against in Figs 1a, 14, and 15: an
//! in-memory insert buffer (sized to ~1% of the data) absorbs near-sorted
//! arrivals and *opportunistically bulk loads* them into an underlying
//! B+-tree, at the price of probing the buffer on every query. The buffer
//! carries the auxiliary structures the paper describes — per-page
//! **Zonemaps**, a **global Bloom filter** plus per-page Bloom filters
//! (re-calibrated at every flush), and **query-driven partial sorting**
//! (cracking-inspired).
//!
//! The original SWARE codebase is deployed from GitHub in the paper's
//! evaluation; offline, this crate re-implements the design from its
//! published description on top of the same `quit-core` B+-tree platform
//! used by every other index variant, exactly as §5.4 prescribes.
//!
//! ```
//! use sware::{SaBpTree, SwareConfig};
//!
//! let mut index: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::small(64, 8));
//! for key in 0..1000u64 {
//!     index.insert(key, key);
//! }
//! index.flush_all();
//! assert_eq!(index.get(500), Some(500));
//! assert!(index.stats().bulk_loaded > 900); // sorted data bulk-loads
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod bloom;
mod buffer;
mod sa_tree;

pub use bloom::BloomFilter;
pub use buffer::{BufferPage, BufferStats, SwareBuffer, Zone};
pub use sa_tree::{SaBpTree, SwareConfig, SwareStats};

//! The SA-B+-tree: SWARE's buffered sortedness-aware index (paper §2 and
//! §5.4). Inserts land in the [`SwareBuffer`]; when it fills, the smallest
//! portion is drained in sorted order and *opportunistically bulk loaded* —
//! the run that extends past the tree's maximum is appended leaf-by-leaf,
//! anything overlapping existing data is top-inserted. Queries probe the
//! buffer first (the read penalty §2 quantifies), then the tree.

use crate::buffer::{BufferStats, SwareBuffer};
use quit_core::{BpTree, FastPathMode, Key, MetricsRegistry, StatsSnapshot, TreeConfig};
use std::hash::Hash;

/// Configuration of the SA-B+-tree.
#[derive(Debug, Clone)]
pub struct SwareConfig {
    /// Buffer capacity in entries (paper default: 1% of total data size).
    pub buffer_capacity: usize,
    /// Entries per buffer page (matches the tree's 4 KB leaves by default).
    pub page_capacity: usize,
    /// Fraction of the buffer drained per flush, from the smallest keys.
    /// High values amortize the flush sort best; the retained tail keeps
    /// absorbing late arrivals.
    pub flush_fraction: f64,
    /// Bloom filter budget.
    pub bloom_bits_per_key: usize,
    /// Geometry of the underlying B+-tree.
    pub tree_config: TreeConfig,
}

impl SwareConfig {
    /// Paper-style defaults for a dataset of `n` entries: a buffer of
    /// `n/100` entries (min one page), 510-entry pages, half-buffer flushes.
    pub fn for_data_size(n: usize) -> Self {
        let tree_config = TreeConfig::paper_default();
        let page = tree_config.leaf_capacity;
        SwareConfig {
            buffer_capacity: (n / 100).max(page),
            page_capacity: page,
            flush_fraction: 0.9,
            bloom_bits_per_key: 10,
            tree_config,
        }
    }

    /// Small geometry for tests.
    pub fn small(buffer_capacity: usize, leaf_capacity: usize) -> Self {
        SwareConfig {
            buffer_capacity,
            page_capacity: leaf_capacity,
            flush_fraction: 0.5,
            bloom_bits_per_key: 10,
            tree_config: TreeConfig::small(leaf_capacity),
        }
    }
}

/// Flush/ingest counters for the harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwareStats {
    /// Buffer flushes performed.
    pub flushes: u64,
    /// Entries bulk-appended past the tree's maximum.
    pub bulk_loaded: u64,
    /// Entries that overlapped the tree and were top-inserted on flush.
    pub flush_top_inserts: u64,
    /// Point lookups answered from the buffer.
    pub buffer_hits: u64,
    /// Point lookups that fell through to the tree.
    pub tree_lookups: u64,
}

/// A sortedness-aware B+-tree following the SWARE paradigm.
#[derive(Debug)]
pub struct SaBpTree<K, V> {
    tree: BpTree<K, V>,
    buffer: SwareBuffer<K, V>,
    config: SwareConfig,
    stats: SwareStats,
    /// SA-level registry: end-to-end insert/get/range latency (buffer
    /// included) and the bulk-load-vs-top-insert window. Tree-structure
    /// counters live in the inner tree's registry; [`SaBpTree::metrics`]
    /// overlays the two.
    metrics: MetricsRegistry,
}

impl<K: Key + Hash, V: Clone + 'static> SaBpTree<K, V> {
    /// An empty SA-B+-tree. The underlying index is the same classical
    /// B+-tree platform used by every other variant (§5.4 note).
    pub fn new(config: SwareConfig) -> Self {
        assert!(
            config.flush_fraction > 0.0 && config.flush_fraction <= 1.0,
            "flush fraction must be in (0, 1]"
        );
        let metrics = MetricsRegistry::new(config.tree_config.metrics_level);
        SaBpTree {
            tree: BpTree::with_config(FastPathMode::None, config.tree_config.clone()),
            buffer: SwareBuffer::new(
                config.buffer_capacity,
                config.page_capacity,
                config.bloom_bits_per_key,
            ),
            config,
            stats: SwareStats::default(),
            metrics,
        }
    }

    /// Total entries (buffered + indexed).
    pub fn len(&self) -> usize {
        self.tree.len() + self.buffer.len()
    }

    /// True when the index holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry, flushing the buffer first if it is full.
    /// Recorded latency is end-to-end: a flush triggered here is part of
    /// this insert's cost (the amortization spike SWARE trades for).
    pub fn insert(&mut self, key: K, value: V) {
        let t0 = self.metrics.op_timer();
        if self.buffer.is_full() {
            self.flush();
        }
        self.buffer.insert(key, value);
        self.metrics.record_insert_latency(t0);
    }

    /// Drains the smallest `flush_fraction` of the buffer and
    /// opportunistically bulk loads it: the sorted run streams into the tree
    /// with one traversal per target leaf instead of one per entry.
    pub fn flush(&mut self) {
        let count =
            ((self.buffer.len() as f64 * self.config.flush_fraction).ceil() as usize).max(1);
        let run = self.buffer.drain_smallest(count);
        if run.is_empty() {
            return;
        }
        self.stats.flushes += 1;
        let descents = self.tree.bulk_insert_run(&run);
        // Entries that shared a traversal are the bulk-loaded ones; each
        // extra descent is equivalent to one top-insert.
        let tops = descents.min(run.len()) as u64;
        self.stats.flush_top_inserts += descents as u64;
        self.stats.bulk_loaded += run.len() as u64 - tops;
        // The window tracks the SWARE analogue of the fast path: entries
        // that bulk-loaded vs. entries that needed their own descent.
        self.metrics.record_insert_run(false, tops);
        self.metrics
            .record_insert_run(true, run.len() as u64 - tops);
    }

    /// Flushes everything (e.g. at the end of an ingest phase).
    pub fn flush_all(&mut self) {
        while !self.buffer.is_empty() {
            self.flush();
        }
    }

    /// Point lookup: buffer first (Blooms + Zonemaps + cracked pages), then
    /// the underlying tree.
    pub fn get(&mut self, key: K) -> Option<V> {
        let t0 = self.metrics.op_timer();
        let found = if let Some(v) = self.buffer.get(key) {
            self.stats.buffer_hits += 1;
            Some(v)
        } else {
            self.stats.tree_lookups += 1;
            self.tree.get(key).cloned()
        };
        self.metrics.record_get_latency(t0);
        found
    }

    /// True when at least one entry with `key` exists.
    pub fn contains_key(&mut self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Range lookup over any bound shape (`a..b`, `a..=b`, `..`, ...):
    /// merges tree and buffer results in key order.
    pub fn range<R: std::ops::RangeBounds<K>>(&mut self, bounds: R) -> Vec<(K, V)> {
        use std::ops::Bound;
        fn own<K: Copy>(b: Bound<&K>) -> Bound<K> {
            match b {
                Bound::Included(&k) => Bound::Included(k),
                Bound::Excluded(&k) => Bound::Excluded(k),
                Bound::Unbounded => Bound::Unbounded,
            }
        }
        // Materialize the bounds so both the tree and the buffer see them.
        let t0 = self.metrics.op_timer();
        let b = (own(bounds.start_bound()), own(bounds.end_bound()));
        let mut out: Vec<(K, V)> = self.tree.range(b).map(|(k, v)| (k, v.clone())).collect();
        let buffered = self.buffer.range(b);
        if !buffered.is_empty() {
            out.extend(buffered);
            out.sort_by_key(|a| a.0);
        }
        self.metrics.record_range_latency(t0);
        out
    }

    /// Deletes one entry with `key` (buffer first, then tree).
    pub fn delete(&mut self, key: K) -> Option<V> {
        if let Some(v) = self.buffer.remove(key) {
            return Some(v);
        }
        self.tree.delete(key)
    }

    /// SWARE-level counters.
    pub fn stats(&self) -> SwareStats {
        self.stats
    }

    /// The SA-level metrics registry (end-to-end latency + flush window).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Unified snapshot: the inner B+-tree's structural counters (splits,
    /// descents, lookups) overlaid with the SA-level latency histograms and
    /// the bulk-load window — end-to-end observability in the shared
    /// [`StatsSnapshot`] vocabulary.
    pub fn metrics(&self) -> StatsSnapshot {
        let mut snap = self.tree.metrics_registry().snapshot();
        let sa = self.metrics.snapshot();
        // SWARE's analogue of the fast/top split: entries that rode a shared
        // flush descent (bulk-loaded) vs. entries that needed their own.
        // `bulk_insert_run` does not tick the inner tree's insert counters,
        // so the flush-level tallies are the authoritative ones.
        snap.fast_inserts = self.stats.bulk_loaded;
        snap.top_inserts = self.stats.flush_top_inserts;
        snap.insert_latency = sa.insert_latency;
        snap.get_latency = sa.get_latency;
        snap.range_latency = sa.range_latency;
        snap.window_fast = sa.window_fast;
        snap.window_len = sa.window_len;
        snap
    }

    /// Buffer-level counters.
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// The underlying B+-tree (e.g. for invariant checks in tests).
    pub fn tree(&self) -> &BpTree<K, V> {
        &self.tree
    }

    /// Total memory footprint: paged tree bytes plus buffer, filters, and
    /// Zonemaps (the paper's "more than 10 GB per TB" point).
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_report().paged_bytes + self.buffer.size_bytes()
    }

    /// Entries currently waiting in the buffer.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }

    /// Structural self-check for tests and the differential testkit: the
    /// inner B+-tree's full invariant suite plus buffer accounting (the
    /// buffer never exceeds its capacity, and tree + buffer entries add up
    /// to [`SaBpTree::len`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tree.check_invariants().map_err(|e| e.to_string())?;
        if self.buffer.len() > self.config.buffer_capacity {
            return Err(format!(
                "buffer holds {} entries, over its capacity {}",
                self.buffer.len(),
                self.config.buffer_capacity
            ));
        }
        if self.tree.len() + self.buffer.len() != self.len() {
            return Err(format!(
                "tree ({}) + buffer ({}) != len ({})",
                self.tree.len(),
                self.buffer.len(),
                self.len()
            ));
        }
        Ok(())
    }
}

impl<K: Key + Hash, V: Clone + 'static> quit_core::SortedIndex<K, V> for SaBpTree<K, V> {
    fn insert(&mut self, key: K, value: V) {
        SaBpTree::insert(self, key, value);
    }

    fn get(&mut self, key: K) -> Option<V> {
        SaBpTree::get(self, key)
    }

    fn delete(&mut self, key: K) -> Option<V> {
        SaBpTree::delete(self, key)
    }

    fn range<R: std::ops::RangeBounds<K>>(
        &mut self,
        bounds: R,
    ) -> impl Iterator<Item = (K, V)> + '_ {
        SaBpTree::range(self, bounds).into_iter()
    }

    fn len(&self) -> usize {
        SaBpTree::len(self)
    }

    fn metrics(&self) -> StatsSnapshot {
        SaBpTree::metrics(self)
    }

    fn reset_metrics(&self) {
        // Clears both registries (latency, window, inner-tree structural
        // counters). The plain-field `SwareStats` flush tallies that back
        // `fast_inserts`/`top_inserts` in the snapshot are not resettable
        // through `&self` and keep accumulating.
        self.metrics.reset();
        self.tree.metrics_registry().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(buffer: usize, leaf: usize) -> SaBpTree<u64, u64> {
        SaBpTree::new(SwareConfig::small(buffer, leaf))
    }

    #[test]
    fn sorted_ingest_bulk_loads() {
        let mut t = sa(64, 8);
        for k in 0..1000u64 {
            t.insert(k, k);
        }
        t.flush_all();
        assert_eq!(t.len(), 1000);
        let s = t.stats();
        assert!(s.flushes > 0);
        assert!(
            s.bulk_loaded > s.flush_top_inserts * 10,
            "sorted data should almost entirely bulk-load: {s:?}"
        );
        t.tree().check_invariants().unwrap();
        for k in (0..1000).step_by(83) {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn near_sorted_ingest_mostly_bulk_loads() {
        let keys = bods::BodsSpec::new(5000, 0.05, 1.0).generate();
        let mut t = sa(64, 8);
        for &k in &keys {
            t.insert(k, k);
        }
        t.flush_all();
        let s = t.stats();
        assert!(
            s.bulk_loaded as f64 / (s.bulk_loaded + s.flush_top_inserts) as f64 > 0.7,
            "{s:?}"
        );
        t.tree().check_invariants().unwrap();
        for k in 0..5000 {
            assert!(t.contains_key(k), "key {k}");
        }
    }

    #[test]
    fn scrambled_ingest_still_correct() {
        let keys = bods::BodsSpec::new(3000, 1.0, 1.0).generate();
        let mut t = sa(128, 8);
        for &k in &keys {
            t.insert(k, k * 2);
        }
        t.flush_all();
        t.tree().check_invariants().unwrap();
        for k in 0..3000 {
            assert_eq!(t.get(k), Some(k * 2), "key {k}");
        }
    }

    #[test]
    fn queries_hit_buffer_before_flush() {
        let mut t = sa(64, 8);
        for k in 0..32u64 {
            t.insert(k, k + 100);
        }
        assert_eq!(t.buffered_len(), 32);
        assert_eq!(t.get(10), Some(110));
        assert_eq!(t.stats().buffer_hits, 1);
        assert_eq!(t.stats().tree_lookups, 0);
    }

    #[test]
    fn range_merges_buffer_and_tree() {
        let mut t = sa(64, 8);
        for k in 0..200u64 {
            t.insert(k, k);
        }
        // Some data flushed, some still buffered.
        assert!(t.buffered_len() > 0);
        assert!(!t.tree().is_empty());
        let r = t.range(50..150);
        assert_eq!(r.len(), 100);
        assert!(r.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn delete_from_buffer_and_tree() {
        let mut t = sa(64, 8);
        for k in 0..200u64 {
            t.insert(k, k);
        }
        // Key 0 was flushed to the tree; key 199 is still buffered.
        assert_eq!(t.delete(199), Some(199));
        assert_eq!(t.delete(0), Some(0));
        assert_eq!(t.get(199), None);
        assert_eq!(t.get(0), None);
        assert_eq!(t.len(), 198);
    }

    #[test]
    fn memory_accounting_includes_buffer() {
        let mut t = sa(512, 8);
        for k in 0..400u64 {
            t.insert(k, k);
        }
        let with_buffer = t.memory_bytes();
        assert!(with_buffer > t.tree().memory_report().paged_bytes);
    }

    #[test]
    #[should_panic(expected = "flush fraction")]
    fn rejects_zero_flush_fraction() {
        let mut c = SwareConfig::small(64, 8);
        c.flush_fraction = 0.0;
        let _: SaBpTree<u64, u64> = SaBpTree::new(c);
    }

    #[test]
    fn buffer_capacity_scales_with_data_size() {
        let c = SwareConfig::for_data_size(500_000_000);
        assert_eq!(c.buffer_capacity, 5_000_000); // 1% of 500M
        let tiny = SwareConfig::for_data_size(100);
        assert_eq!(tiny.buffer_capacity, 510); // at least one page
    }
}

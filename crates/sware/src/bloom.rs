//! Blocked Bloom filter used by the SWARE buffer (paper §2: a global filter
//! plus one per buffer page, rebuilt — "re-calibrated" — on every flush).

use std::hash::{Hash, Hasher};

/// FxHash-style multiplicative hasher: Bloom probes run on every single
/// insert and lookup, so hashing must cost nanoseconds, not a SipHash
/// round. Not HashDoS-resistant — irrelevant for a filter that only trades
/// false-positive rate.
#[derive(Default)]
struct FxHasher {
    state: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits are usable as probe indices.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// A plain Bloom filter with double hashing (Kirsch–Mitzenmacher).
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
    items: usize,
}

impl BloomFilter {
    /// A filter sized for `expected_items` at roughly `bits_per_key` bits
    /// each (rounded up to a power-of-two bit count).
    pub fn new(expected_items: usize, bits_per_key: usize) -> Self {
        let want_bits = (expected_items.max(1) * bits_per_key.max(1)).max(64);
        let bits = want_bits.next_power_of_two();
        // k ≈ ln2 · bits/n, clamped to a sane range.
        let hashes = ((bits_per_key as f64) * std::f64::consts::LN_2)
            .round()
            .clamp(1.0, 16.0) as u32;
        BloomFilter {
            bits: vec![0; bits / 64],
            mask: (bits - 1) as u64,
            hashes,
            items: 0,
        }
    }

    fn base_hashes<T: Hash>(&self, item: &T) -> (u64, u64) {
        let mut h1 = FxHasher::default();
        item.hash(&mut h1);
        let a = h1.finish();
        // Derive a second independent hash by mixing.
        let b = a
            .rotate_left(31)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            | 1; // odd so probes cycle the whole table
        (a, b)
    }

    /// Records an item.
    pub fn insert<T: Hash>(&mut self, item: &T) {
        let (a, b) = self.base_hashes(item);
        for i in 0..self.hashes as u64 {
            let bit = a.wrapping_add(i.wrapping_mul(b)) & self.mask;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.items += 1;
    }

    /// True when the item *might* have been inserted (false positives
    /// possible, false negatives not).
    pub fn may_contain<T: Hash>(&self, item: &T) -> bool {
        let (a, b) = self.base_hashes(item);
        for i in 0..self.hashes as u64 {
            let bit = a.wrapping_add(i.wrapping_mul(b)) & self.mask;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Forgets everything (used at flush re-calibration).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.items = 0;
    }

    /// Number of inserts since the last clear.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True when nothing has been inserted since the last clear.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Bytes of filter storage (for memory accounting).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 10);
        for k in 0..1000u64 {
            f.insert(&k);
        }
        for k in 0..1000u64 {
            assert!(f.may_contain(&k), "false negative for {k}");
        }
        assert_eq!(f.len(), 1000);
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(10_000, 10);
        for k in 0..10_000u64 {
            f.insert(&k);
        }
        let fp = (10_000..110_000u64).filter(|k| f.may_contain(k)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(100, 10);
        f.insert(&42u64);
        assert!(f.may_contain(&42u64));
        f.clear();
        assert!(!f.may_contain(&42u64));
        assert!(f.is_empty());
    }

    #[test]
    fn sizing_is_sane() {
        let f = BloomFilter::new(1000, 10);
        assert!(f.size_bytes() >= 1000 * 10 / 8);
        assert!(f.size_bytes() <= 4 * 1000 * 10 / 8);
        let tiny = BloomFilter::new(0, 10);
        assert!(tiny.size_bytes() >= 8);
    }
}

//! The SWARE insert buffer: fixed-capacity pages with Zonemaps, per-page
//! Bloom filters, and query-driven partial sorting (cracking-inspired).
//!
//! In-order arrivals append to the tail page; out-of-order arrivals scan the
//! Zonemaps for an overlapping page (this is the extra insert-time work the
//! paper charges SWARE for). Pages are sorted lazily, the first time a query
//! probes them.

use crate::bloom::BloomFilter;
use quit_core::Key;
use std::hash::Hash;

/// Per-page Zonemap: the min/max key range the page covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone<K> {
    /// Smallest key in the page.
    pub min: K,
    /// Largest key in the page.
    pub max: K,
}

impl<K: Key> Zone<K> {
    /// True when `key` falls inside the zone.
    #[inline]
    pub fn covers(&self, key: K) -> bool {
        self.min <= key && key <= self.max
    }

    /// True when the zone intersects `[start, end)`.
    #[inline]
    pub fn overlaps(&self, start: K, end: K) -> bool {
        self.min < end && self.max >= start
    }
}

/// One buffer page: unsorted on arrival, sorted on first probe.
#[derive(Debug)]
pub struct BufferPage<K, V> {
    pub(crate) entries: Vec<(K, V)>,
    pub(crate) zone: Option<Zone<K>>,
    pub(crate) bloom: BloomFilter,
    pub(crate) sorted: bool,
}

impl<K: Key + Hash, V> BufferPage<K, V> {
    fn new(capacity: usize, bits_per_key: usize) -> Self {
        BufferPage {
            entries: Vec::with_capacity(capacity),
            zone: None,
            bloom: BloomFilter::new(capacity, bits_per_key),
            sorted: true,
        }
    }

    fn push(&mut self, key: K, value: V) {
        if let Some(&(last, _)) = self.entries.last() {
            if key < last {
                self.sorted = false;
            }
        }
        self.zone = Some(match self.zone {
            None => Zone { min: key, max: key },
            Some(z) => Zone {
                min: z.min.min(key),
                max: z.max.max(key),
            },
        });
        self.bloom.insert(&key);
        self.entries.push((key, value));
    }

    /// Query-driven partial sort: sorts the page in place once.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.entries.sort_by_key(|a| a.0);
            self.sorted = true;
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Counters describing buffer behaviour (used by the harness to explain the
/// SWARE read penalty).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Appends that went straight to the tail page (in-order arrivals).
    pub tail_appends: u64,
    /// Inserts that had to scan Zonemaps for an overlapping page.
    pub zonemap_scans: u64,
    /// Pages lazily sorted by queries.
    pub pages_cracked: u64,
    /// Point probes answered (positively or negatively) by the buffer.
    pub probes: u64,
    /// Probes rejected cheaply by the global Bloom filter.
    pub global_bloom_rejects: u64,
}

/// The SWARE in-memory buffer.
#[derive(Debug)]
pub struct SwareBuffer<K, V> {
    pages: Vec<BufferPage<K, V>>,
    page_capacity: usize,
    capacity: usize,
    len: usize,
    bits_per_key: usize,
    global_bloom: BloomFilter,
    last_key: Option<K>,
    pub(crate) stats: BufferStats,
}

impl<K: Key + Hash, V: Clone> SwareBuffer<K, V> {
    /// A buffer holding up to `capacity` entries in pages of
    /// `page_capacity`.
    pub fn new(capacity: usize, page_capacity: usize, bits_per_key: usize) -> Self {
        assert!(capacity >= page_capacity, "buffer must fit at least a page");
        SwareBuffer {
            pages: Vec::new(),
            page_capacity,
            capacity,
            len: 0,
            bits_per_key,
            global_bloom: BloomFilter::new(capacity, bits_per_key),
            last_key: None,
            stats: BufferStats::default(),
        }
    }

    /// Entries currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the buffer reached capacity and must flush.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Buffers an entry. In-order keys append to the tail page; out-of-order
    /// keys pay a Zonemap scan for an overlapping page with room.
    pub fn insert(&mut self, key: K, value: V) {
        debug_assert!(!self.is_full(), "flush before inserting into a full buffer");
        let in_order = self.last_key.is_none_or(|l| key >= l);
        self.last_key = Some(self.last_key.map_or(key, |l| l.max(key)));
        self.global_bloom.insert(&key);
        self.len += 1;
        if in_order {
            self.stats.tail_appends += 1;
            self.push_tail(key, value);
            return;
        }
        // Out-of-order: linear Zonemap scan (the cost §2 describes).
        self.stats.zonemap_scans += 1;
        let slot = self
            .pages
            .iter()
            .position(|p| p.len() < self.page_capacity && p.zone.is_some_and(|z| z.covers(key)));
        match slot {
            Some(i) => self.pages[i].push(key, value),
            None => self.push_tail(key, value),
        }
    }

    fn push_tail(&mut self, key: K, value: V) {
        let need_new = self
            .pages
            .last()
            .is_none_or(|p| p.len() >= self.page_capacity);
        if need_new {
            self.pages
                .push(BufferPage::new(self.page_capacity, self.bits_per_key));
        }
        self.pages
            .last_mut()
            .expect("just ensured")
            .push(key, value);
    }

    /// Point probe. Returns a clone of the most recently buffered value for
    /// `key`, if any. Costs: global Bloom, then per-page Bloom + Zonemap,
    /// then a binary search per candidate page (cracking it first if needed).
    pub fn get(&mut self, key: K) -> Option<V> {
        self.stats.probes += 1;
        if !self.global_bloom.may_contain(&key) {
            self.stats.global_bloom_rejects += 1;
            return None;
        }
        let mut hit: Option<V> = None;
        for page in self.pages.iter_mut().rev() {
            let candidate =
                page.zone.is_some_and(|z| z.covers(key)) && page.bloom.may_contain(&key);
            if !candidate {
                continue;
            }
            if !page.sorted {
                self.stats.pages_cracked += 1;
                page.ensure_sorted();
            }
            let idx = page.entries.partition_point(|e| e.0 < key);
            if idx < page.entries.len() && page.entries[idx].0 == key {
                hit = Some(page.entries[idx].1.clone());
                break;
            }
        }
        hit
    }

    /// All buffered entries in `[start, end)` (cracks overlapping pages).
    pub fn range<R: std::ops::RangeBounds<K>>(&mut self, bounds: R) -> Vec<(K, V)> {
        use std::ops::Bound;
        let start = bounds.start_bound().cloned();
        let end = bounds.end_bound().cloned();
        let mut out = Vec::new();
        for page in &mut self.pages {
            // Zonemap prefilter: skip pages whose key span misses the bounds.
            let overlaps = page.zone.is_some_and(|z| {
                let above_start = match start {
                    Bound::Unbounded => true,
                    Bound::Included(s) => z.max >= s,
                    Bound::Excluded(s) => z.max > s,
                };
                let below_end = match end {
                    Bound::Unbounded => true,
                    Bound::Included(e) => z.min <= e,
                    Bound::Excluded(e) => z.min < e,
                };
                above_start && below_end
            });
            if !overlaps {
                continue;
            }
            if !page.sorted {
                self.stats.pages_cracked += 1;
                page.ensure_sorted();
            }
            let lo = match start {
                Bound::Unbounded => 0,
                Bound::Included(s) => page.entries.partition_point(|e| e.0 < s),
                Bound::Excluded(s) => page.entries.partition_point(|e| e.0 <= s),
            };
            let hi = match end {
                Bound::Unbounded => page.entries.len(),
                Bound::Included(e) => page.entries.partition_point(|e2| e2.0 <= e),
                Bound::Excluded(e) => page.entries.partition_point(|e2| e2.0 < e),
            };
            out.extend(page.entries[lo..hi].iter().cloned());
        }
        out.sort_by_key(|a| a.0);
        out
    }

    /// Removes one buffered entry with `key`, if present.
    pub fn remove(&mut self, key: K) -> Option<V> {
        for page in self.pages.iter_mut().rev() {
            if !page.zone.is_some_and(|z| z.covers(key)) {
                continue;
            }
            if let Some(i) = page.entries.iter().position(|e| e.0 == key) {
                let (_, v) = page.entries.remove(i);
                self.len -= 1;
                // Zonemap stays a (now possibly loose) over-approximation;
                // Blooms are rebuilt wholesale at the next flush.
                return Some(v);
            }
        }
        None
    }

    /// Drains the smallest `count` entries in sorted order, leaving the rest
    /// buffered, and re-calibrates every Bloom filter (the per-flush cost §2
    /// describes). Returns the drained run.
    pub fn drain_smallest(&mut self, count: usize) -> Vec<(K, V)> {
        let mut all: Vec<(K, V)> = self
            .pages
            .drain(..)
            .flat_map(|p| p.entries.into_iter())
            .collect();
        all.sort_by_key(|a| a.0);
        let count = count.min(all.len());
        let keep = all.split_off(count);
        // Rebuild pages and filters from the retained suffix.
        self.len = 0;
        self.global_bloom.clear();
        self.last_key = None;
        for (k, v) in keep {
            self.global_bloom.insert(&k);
            self.last_key = Some(self.last_key.map_or(k, |l: K| l.max(k)));
            self.len += 1;
            self.push_tail(k, v);
        }
        all
    }

    /// Bytes of buffer storage including filters and Zonemaps.
    pub fn size_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(K, V)>();
        let per_page: usize = self
            .pages
            .iter()
            .map(|p| {
                p.entries.capacity() * entry + p.bloom.size_bytes() + std::mem::size_of::<Zone<K>>()
            })
            .sum();
        per_page + self.global_bloom.size_bytes()
    }

    /// Buffer behaviour counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> SwareBuffer<u64, u64> {
        SwareBuffer::new(64, 8, 10)
    }

    #[test]
    fn in_order_appends_fill_tail_pages() {
        let mut b = buf();
        for k in 0..20u64 {
            b.insert(k, k);
        }
        assert_eq!(b.len(), 20);
        assert_eq!(b.stats().tail_appends, 20);
        assert_eq!(b.stats().zonemap_scans, 0);
        for k in 0..20u64 {
            assert_eq!(b.get(k), Some(k));
        }
        assert_eq!(b.get(99), None);
    }

    #[test]
    fn out_of_order_pays_zonemap_scan() {
        let mut b = buf();
        for k in [10u64, 20, 30, 5, 25] {
            b.insert(k, k);
        }
        assert!(b.stats().zonemap_scans >= 2);
        assert_eq!(b.get(5), Some(5));
        assert_eq!(b.get(25), Some(25));
    }

    #[test]
    fn queries_crack_pages_once() {
        let mut b = buf();
        for k in [10u64, 5, 30, 2, 25, 1, 7, 8] {
            b.insert(k, k);
        }
        let _ = b.get(5);
        let cracked = b.stats().pages_cracked;
        assert!(cracked >= 1);
        let _ = b.get(7);
        assert_eq!(b.stats().pages_cracked, cracked, "page must stay sorted");
    }

    #[test]
    fn drain_smallest_returns_sorted_prefix() {
        let mut b = buf();
        for k in [5u64, 3, 9, 1, 7, 2, 8, 4] {
            b.insert(k, k * 10);
        }
        let drained = b.drain_smallest(5);
        assert_eq!(
            drained.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        assert_eq!(b.len(), 3);
        // Retained entries still findable; drained ones not.
        assert_eq!(b.get(7), Some(70));
        assert_eq!(b.get(1), None);
    }

    #[test]
    fn range_crosses_pages() {
        let mut b = buf();
        for k in 0..32u64 {
            b.insert(k, k);
        }
        let r = b.range(10..20);
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, 10);
        assert_eq!(r[9].0, 19);
    }

    #[test]
    fn remove_buffered_entry() {
        let mut b = buf();
        b.insert(5, 50);
        b.insert(6, 60);
        assert_eq!(b.remove(5), Some(50));
        assert_eq!(b.remove(5), None);
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(6), Some(60));
    }

    #[test]
    fn global_bloom_rejects_absent_keys_cheaply() {
        let mut b = buf();
        for k in 0..32u64 {
            b.insert(k * 2, k);
        }
        for k in 1000..1100u64 {
            let _ = b.get(k);
        }
        assert!(b.stats().global_bloom_rejects > 90);
    }

    #[test]
    fn zone_predicates() {
        let z = Zone {
            min: 10u64,
            max: 20,
        };
        assert!(z.covers(10) && z.covers(20) && !z.covers(21));
        assert!(z.overlaps(0, 11) && z.overlaps(20, 30) && !z.overlaps(21, 30));
        assert!(!z.overlaps(0, 10));
    }
}

//! Edge coverage for delete-rebalancing (§4.4) and the fast-path reset
//! threshold (§4.3): borrow-vs-merge at minimum occupancy, root collapse
//! back to a single leaf, and `T_R = ⌊√leaf_capacity⌋` firing on exactly
//! the `T_R`-th consecutive failed top-insert.

use quit_core::{BpTree, TreeConfig, Variant};

/// Classic tree, leaf capacity 4 (min occupancy 2), keys 0..=7 inserted in
/// order. The 50/50 split rule leaves the layout `[0,1] [2,3] [4,5,6,7]`,
/// which the tests below rely on to steer a deletion into a borrow or a
/// merge deterministically.
fn classic_three_leaves() -> BpTree<u64, u64> {
    let mut t: BpTree<u64, u64> = Variant::Classic.build(TreeConfig::small(4));
    for k in 0..=7u64 {
        t.insert(k, k * 10);
    }
    assert_eq!(t.height(), 2, "three leaves under one internal root");
    t
}

#[test]
fn underflow_borrows_from_a_rich_sibling() {
    let mut t = classic_three_leaves();
    // Deleting 2 under-fills the middle leaf [2,3]; its left sibling [0,1]
    // sits at minimum occupancy, but the right sibling [4,5,6,7] is rich,
    // so rebalancing must borrow — not merge.
    assert_eq!(t.delete(2), Some(20));
    assert_eq!(t.stats().leaf_borrows.get(), 1, "borrow taken");
    assert_eq!(t.stats().leaf_merges.get(), 0, "no merge needed");
    t.check_invariants().unwrap();
    let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
    assert_eq!(keys, [0, 1, 3, 4, 5, 6, 7]);
}

#[test]
fn underflow_merges_when_no_sibling_can_donate() {
    let mut t = classic_three_leaves();
    // Deleting 0 under-fills the leftmost leaf [0,1]; its only sibling
    // [2,3] is itself at minimum occupancy, so the two must merge.
    assert_eq!(t.delete(0), Some(0));
    assert_eq!(t.stats().leaf_merges.get(), 1, "merge taken");
    assert_eq!(t.stats().leaf_borrows.get(), 0, "no donor existed");
    t.check_invariants().unwrap();
    let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
    assert_eq!(keys, [1, 2, 3, 4, 5, 6, 7]);
}

#[test]
fn draining_the_tree_collapses_the_root_to_a_leaf() {
    let mut t: BpTree<u64, u64> = Variant::Classic.build(TreeConfig::small(4));
    for k in 0..64u64 {
        t.insert(k, k);
    }
    assert!(t.height() >= 3, "start from a tree with internal levels");
    // Cascading merges must shed every internal level on the way down.
    for k in 0..62u64 {
        assert_eq!(t.delete(k), Some(k));
        t.check_invariants().unwrap();
    }
    assert_eq!(t.height(), 1, "root collapsed back to a single leaf");
    assert_eq!(t.len(), 2);
    let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
    assert_eq!(keys, [62, 63]);
    // And all the way to empty: the root leaf simply stays.
    assert_eq!(t.delete(62), Some(62));
    assert_eq!(t.delete(63), Some(63));
    assert_eq!(t.height(), 1);
    assert!(t.is_empty());
    t.check_invariants().unwrap();
}

/// Builds a QuIT tree whose poℓe is the tail leaf (ascending ingest), so a
/// low-key insert is a guaranteed failed top-insert: it is not covered, and
/// the poℓe's chain successor is `None`, so catch-up can never promote.
fn quit_with_tail_pole() -> BpTree<u64, u64> {
    // Capacity 16 → T_R = ⌊√16⌋ = 4 (set automatically by `small`).
    let mut t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(16));
    assert_eq!(TreeConfig::default_reset_threshold(16), 4);
    for k in 100..200u64 {
        t.insert(k, k);
    }
    assert_eq!(t.stats().fp_resets.get(), 0, "in-order ingest never resets");
    t
}

#[test]
fn reset_fires_exactly_on_the_fourth_consecutive_top_insert() {
    let mut t = quit_with_tail_pole();
    // T_R − 1 = 3 failed top-inserts: no reset yet.
    for k in [1u64, 2, 3] {
        t.insert(k, k);
        assert_eq!(t.stats().fp_resets.get(), 0, "below threshold after {k}");
    }
    // The 4th consecutive failure crosses T_R and must fire the reset.
    t.insert(4, 4);
    assert_eq!(t.stats().fp_resets.get(), 1, "reset on the T_R-th failure");
    t.check_invariants().unwrap();
}

#[test]
fn fast_insert_clears_the_consecutive_failure_count() {
    let mut t = quit_with_tail_pole();
    for k in [1u64, 2, 3] {
        t.insert(k, k);
    }
    // A covered (fast-path) insert lands in the tail poℓe and zeroes the
    // failure streak...
    t.insert(1_000, 1);
    assert_eq!(t.stats().fp_resets.get(), 0);
    // ...so the next three failures still sit below T_R; only a fourth
    // fires.
    for k in [10u64, 11, 12] {
        t.insert(k, k);
        assert_eq!(t.stats().fp_resets.get(), 0, "streak restarted, at {k}");
    }
    t.insert(13, 13);
    assert_eq!(t.stats().fp_resets.get(), 1);
    t.check_invariants().unwrap();
}

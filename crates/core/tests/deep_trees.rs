//! Structural stress at extreme geometries: minimum capacities (tall,
//! narrow trees where every path cascades), repeated root growth/collapse,
//! and bulk operations interleaved with incremental ones.

use quit_core::{BpTree, FastPathMode, TreeConfig, Variant};

fn narrow(mode: FastPathMode) -> BpTree<u64, u64> {
    let mut config = TreeConfig::small(2);
    config.internal_capacity = 3;
    BpTree::with_config(mode, config)
}

#[test]
fn minimum_geometry_sorted_fill() {
    let mut t = narrow(FastPathMode::Pole);
    for k in 0..2_000u64 {
        t.insert(k, k);
    }
    assert!(t.height() >= 6, "height {}", t.height());
    t.check_invariants().unwrap();
    for k in (0..2_000).step_by(101) {
        assert_eq!(t.get(k), Some(&k));
    }
}

#[test]
fn minimum_geometry_random_churn() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(99);
    let mut t = narrow(FastPathMode::Pole);
    let mut live = std::collections::BTreeSet::new();
    for op in 0..20_000 {
        let k = rng.gen_range(0..500u64);
        if rng.gen_bool(0.55) {
            if live.insert(k) {
                t.insert(k, k);
            }
        } else if live.remove(&k) {
            assert!(t.delete(k).is_some(), "op {op} delete {k}");
        }
        if op % 500 == 0 {
            t.check_invariants()
                .unwrap_or_else(|e| panic!("op {op}: {e}"));
        }
    }
    assert_eq!(t.len(), live.len());
    let keys: Vec<u64> = t.keys();
    let expect: Vec<u64> = live.into_iter().collect();
    assert_eq!(keys, expect);
}

#[test]
fn root_grows_and_collapses_repeatedly() {
    let mut t = narrow(FastPathMode::None);
    for round in 0..5 {
        for k in 0..500u64 {
            t.insert(k, k);
        }
        assert!(t.height() > 3, "round {round}");
        for k in 0..500u64 {
            assert_eq!(t.delete(k), Some(k), "round {round} key {k}");
        }
        assert!(t.is_empty(), "round {round}");
        assert_eq!(t.height(), 1, "round {round}: root must collapse");
        t.check_invariants().unwrap();
    }
}

#[test]
fn bulk_then_incremental_then_bulk() {
    let mut t: BpTree<u64, u64> = BpTree::bulk_load(
        FastPathMode::Pole,
        TreeConfig::small(8),
        (0..1_000u64).map(|k| (k * 2, k)),
        0.8,
    );
    // Incremental inserts fill the gaps the bulk load left.
    for k in 0..1_000u64 {
        t.insert(k * 2 + 1, k);
    }
    t.check_invariants().unwrap();
    assert_eq!(t.len(), 2_000);
    // Append another run past the max.
    t.append_sorted((2_000..2_500u64).map(|k| (k, k)));
    t.check_invariants().unwrap();
    assert_eq!(t.len(), 2_500);
    assert_eq!(t.range_count(0..3_000), 2_500);
}

#[test]
fn bulk_insert_run_into_populated_interior() {
    let mut t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(8));
    for k in (0..10_000u64).step_by(10) {
        t.insert(k, k);
    }
    // A sorted run landing mid-tree (the SWARE flush path).
    let run: Vec<(u64, u64)> = (5_000..5_500).map(|k| (k, k)).collect();
    let descents = t.bulk_insert_run(&run);
    assert!(
        descents < run.len() / 3,
        "bulk run should amortize descents, used {descents}"
    );
    t.check_invariants().unwrap();
    for k in 5_000..5_500 {
        assert!(t.contains_key(k), "key {k}");
    }
    // And the fast path still works for the tail afterwards.
    t.stats().reset();
    for k in 10_000..10_500u64 {
        t.insert(k, k);
    }
    assert!(t.stats().fast_insert_fraction() > 0.9);
}

#[test]
fn interleaved_ascending_streams() {
    // Two interleaved sorted streams (e.g. two partitions merged round
    // robin): locally alternating, globally two dense runs.
    let mut t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(16));
    for i in 0..5_000u64 {
        t.insert(i, i); // low stream
        t.insert(1_000_000 + i, i); // high stream
    }
    t.check_invariants().unwrap();
    assert_eq!(t.len(), 10_000);
    // The fast path cannot serve both alternating frontiers at once, but
    // correctness and a sane structure must hold.
    let m = t.memory_report();
    assert!(
        m.avg_leaf_occupancy >= 0.5,
        "occupancy {}",
        m.avg_leaf_occupancy
    );
}

#[test]
fn duplicate_storms_at_minimum_capacity() {
    let mut t = narrow(FastPathMode::Pole);
    for i in 0..300u64 {
        t.insert(42, i);
    }
    for i in 0..300u64 {
        t.insert(41, i);
        t.insert(43, i);
    }
    t.check_invariants().unwrap();
    assert_eq!(t.get_all(42).len(), 300);
    assert_eq!(t.range_count(41..44), 900);
    for _ in 0..300 {
        assert!(t.delete(42).is_some());
    }
    assert_eq!(t.get(42), None);
    assert_eq!(t.len(), 600);
    t.check_invariants().unwrap();
}

//! End-to-end coverage for non-u64 key types: signed integers (negative
//! domains) and ordered floats (the stock-price attribute of Fig 15 in its
//! natural type), exercising IKR arithmetic through each.

use quit_core::{BpTree, FastPathMode, OrderedF64, TreeConfig, Variant};

#[test]
fn signed_keys_with_negative_domain() {
    let mut t: BpTree<i64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(8));
    // Near-sorted climb from a negative start: IKR density must stay sane
    // across zero.
    let mut i = 0u64;
    for k in -5000..5000i64 {
        t.insert(k, i);
        i += 1;
        if k % 500 == 250 {
            t.insert(k - 3000, 0); // out-of-order entry
            i += 1;
        }
    }
    assert!(t.stats().fast_insert_fraction() > 0.9);
    t.check_invariants().unwrap();
    assert!(t.contains_key(-5000));
    assert!(t.contains_key(4999));
    assert_eq!(t.range(-10..10).count(), 20);
    // Deletes across the sign boundary.
    for k in -100..100i64 {
        assert!(t.delete(k).is_some(), "key {k}");
    }
    t.check_invariants().unwrap();
}

#[test]
fn float_keys_end_to_end() {
    let mut t: BpTree<OrderedF64, u32> =
        BpTree::with_config(FastPathMode::Pole, TreeConfig::small(8));
    // A drifting price-like series.
    let mut price = 100.0f64;
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..20_000u32 {
        price += 0.05 + (next() - 0.5) * 0.4;
        t.insert(OrderedF64::new(price), i);
    }
    assert_eq!(t.len(), 20_000);
    t.check_invariants().unwrap();
    // The upward drift means substantial fast-path usage despite jitter.
    assert!(
        t.stats().fast_insert_fraction() > 0.3,
        "fast fraction {:.3}",
        t.stats().fast_insert_fraction()
    );
    // Range over a price band.
    let band: Vec<_> = t
        .range(OrderedF64::new(200.0)..OrderedF64::new(300.0))
        .collect();
    assert!(band.windows(2).all(|w| w[0].0 <= w[1].0));
    // Floor/ceiling on floats.
    if let Some((k, _)) = t.floor(OrderedF64::new(500.0)) {
        assert!(k <= OrderedF64::new(500.0));
    }
}

#[test]
fn u32_keys_paper_entry_size() {
    // The paper's default entries are 8 B with 4 B keys.
    let mut t: BpTree<u32, u32> = Variant::Quit.build(TreeConfig::small(16));
    for k in 0..50_000u32 {
        t.insert(k, k);
    }
    assert_eq!(t.stats().top_inserts.get(), 0);
    assert!(t.memory_report().avg_leaf_occupancy > 0.9);
    t.check_invariants().unwrap();
}

#[test]
fn extreme_u64_values_do_not_break_ikr() {
    let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(4));
    // Giant keys stress the f64 projection (precision loss is fine; order
    // decisions must remain consistent).
    let base = u64::MAX - 100_000;
    for k in 0..50_000u64 {
        t.insert(base.wrapping_add(k), k);
    }
    assert_eq!(t.len(), 50_000);
    t.check_invariants().unwrap();
    assert!(t.contains_key(base));
    assert!(t.contains_key(base + 49_999));
}

#[test]
fn descending_float_stream_is_worst_case_but_correct() {
    let mut t: BpTree<OrderedF64, u32> =
        BpTree::with_config(FastPathMode::Pole, TreeConfig::small(8));
    for i in 0..5_000u32 {
        t.insert(OrderedF64::new(10_000.0 - i as f64), i);
    }
    // Monotonically decreasing data defeats the (increasing-order) fast
    // path, as the paper expects — but the index stays correct.
    t.check_invariants().unwrap();
    assert_eq!(t.len(), 5_000);
    assert_eq!(
        t.first().map(|e| e.0),
        Some(OrderedF64::new(10_000.0 - 4_999.0))
    );
}

//! Differential coverage for the node-layout/search redesign: the gapped
//! layout and every `SearchKind` must be observationally identical to the
//! dense + binary paper path on the full `BpTree` API surface.

use quit_core::{BpTree, FastPathMode, NodeLayoutKind, SearchKind, TreeConfig};
use rand::prelude::*;

const MODES: [FastPathMode; 4] = [
    FastPathMode::None,
    FastPathMode::Tail,
    FastPathMode::Lil,
    FastPathMode::Pole,
];

fn pair(mode: FastPathMode, cap: usize, kind: SearchKind) -> (BpTree<u64, u64>, BpTree<u64, u64>) {
    let dense = BpTree::with_config(mode, TreeConfig::small(cap));
    let gapped = BpTree::with_config(
        mode,
        TreeConfig::small(cap)
            .with_node_layout(NodeLayoutKind::Gapped)
            .with_search_kind(kind),
    );
    (dense, gapped)
}

/// Asserts the two trees agree on every read surface.
fn assert_equivalent(dense: &BpTree<u64, u64>, gapped: &BpTree<u64, u64>, probe_keys: &[u64]) {
    dense.check_invariants().unwrap();
    gapped.check_invariants().unwrap();
    assert_eq!(dense.len(), gapped.len());
    assert_eq!(dense.min_key(), gapped.min_key());
    assert_eq!(dense.max_key(), gapped.max_key());
    let di: Vec<(u64, u64)> = dense.iter().map(|(k, v)| (k, *v)).collect();
    let gi: Vec<(u64, u64)> = gapped.iter().map(|(k, v)| (k, *v)).collect();
    assert_eq!(di, gi, "full iteration diverged");
    for &k in probe_keys {
        assert_eq!(dense.get(k), gapped.get(k), "get({k})");
        assert_eq!(dense.get_all(k), gapped.get_all(k), "get_all({k})");
        assert_eq!(
            dense.floor(k).map(|(k, v)| (k, *v)),
            gapped.floor(k).map(|(k, v)| (k, *v)),
            "floor({k})"
        );
        assert_eq!(
            dense.ceiling(k).map(|(k, v)| (k, *v)),
            gapped.ceiling(k).map(|(k, v)| (k, *v)),
            "ceiling({k})"
        );
        let dr: Vec<(u64, u64)> = dense.range(k..k + 64).map(|(k, v)| (k, *v)).collect();
        let gr: Vec<(u64, u64)> = gapped.range(k..k + 64).map(|(k, v)| (k, *v)).collect();
        assert_eq!(dr, gr, "range({k}..{})", k + 64);
        let mut dc = dense.cursor_at(k);
        let mut gc = gapped.cursor_at(k);
        for _ in 0..8 {
            assert_eq!(
                dc.next().map(|(k, v)| (k, *v)),
                gc.next().map(|(k, v)| (k, *v)),
                "cursor walk from {k}"
            );
        }
    }
    // Backward cursor over the whole tree.
    let mut dc = dense.cursor_last();
    let mut gc = gapped.cursor_last();
    loop {
        let d = dc.prev().map(|(k, v)| (k, *v));
        let g = gc.prev().map(|(k, v)| (k, *v));
        assert_eq!(d, g, "backward cursor diverged");
        if d.is_none() {
            break;
        }
    }
}

#[test]
fn near_sorted_ingest_matches_dense_in_every_mode() {
    let mut rng = StdRng::seed_from_u64(0x1a_0001);
    for mode in MODES {
        let (mut dense, mut gapped) = pair(mode, 16, SearchKind::Branchless);
        // Near-sorted stream with stragglers — the workload gapped leaves
        // exist for: most keys ascend, a few arrive late.
        let mut keys: Vec<u64> = Vec::new();
        for i in 0..6000u64 {
            if rng.gen_bool(0.1) && i > 50 {
                keys.push(i * 10 - rng.gen_range(1..400u64));
            } else {
                keys.push(i * 10);
            }
        }
        for &k in &keys {
            dense.insert(k, k ^ 1);
            gapped.insert(k, k ^ 1);
        }
        let probes: Vec<u64> = keys.iter().step_by(97).copied().collect();
        assert_equivalent(&dense, &gapped, &probes);
    }
}

#[test]
fn random_churn_with_deletes_matches_dense() {
    let mut rng = StdRng::seed_from_u64(0x1a_0002);
    for mode in [FastPathMode::None, FastPathMode::Pole] {
        let (mut dense, mut gapped) = pair(mode, 8, SearchKind::Simd);
        let mut live: Vec<u64> = Vec::new();
        for step in 0..12_000u32 {
            if !live.is_empty() && rng.gen_bool(0.35) {
                let k = live.swap_remove(rng.gen_range(0..live.len()));
                assert_eq!(dense.delete(k), gapped.delete(k), "delete({k}) step {step}");
            } else {
                let k = rng.gen_range(0..4000u64);
                dense.insert(k, u64::from(step));
                gapped.insert(k, u64::from(step));
                live.push(k);
            }
        }
        let probes: Vec<u64> = (0..4000u64).step_by(53).collect();
        assert_equivalent(&dense, &gapped, &probes);
    }
}

#[test]
fn duplicate_runs_match_across_layouts() {
    for kind in [SearchKind::Binary, SearchKind::Branchless, SearchKind::Simd] {
        let (mut dense, mut gapped) = pair(FastPathMode::Pole, 8, kind);
        // Heavy duplicate runs straddling many leaves, interleaved with
        // deletes that punch gaps into the runs.
        for i in 0..40u64 {
            for _ in 0..30 {
                dense.insert(i * 5, i);
                gapped.insert(i * 5, i);
            }
        }
        for i in (0..40u64).step_by(3) {
            for _ in 0..7 {
                assert_eq!(dense.delete(i * 5), gapped.delete(i * 5));
            }
        }
        let probes: Vec<u64> = (0..210u64).collect();
        assert_equivalent(&dense, &gapped, &probes);
    }
}

#[test]
fn range_delete_and_pops_match() {
    let (mut dense, mut gapped) = pair(FastPathMode::Pole, 12, SearchKind::Branchless);
    for k in 0..3000u64 {
        dense.insert(k * 3 % 2048, k);
        gapped.insert(k * 3 % 2048, k);
    }
    assert_eq!(dense.delete_range(100, 900), gapped.delete_range(100, 900));
    for _ in 0..50 {
        assert_eq!(dense.pop_first(), gapped.pop_first());
        assert_eq!(dense.pop_last(), gapped.pop_last());
    }
    let probes: Vec<u64> = (0..2048u64).step_by(31).collect();
    assert_equivalent(&dense, &gapped, &probes);
}

#[test]
fn bulk_paths_match_across_layouts() {
    let entries: Vec<(u64, u64)> = (0..5000u64).map(|k| (k * 2, k)).collect();
    let dense_cfg = TreeConfig::small(16);
    let gapped_cfg = TreeConfig::small(16)
        .with_node_layout(NodeLayoutKind::Gapped)
        .with_search_kind(SearchKind::Simd);
    let mut dense: BpTree<u64, u64> =
        BpTree::bulk_load(FastPathMode::Pole, dense_cfg, entries.clone(), 0.9);
    let mut gapped: BpTree<u64, u64> =
        BpTree::bulk_load(FastPathMode::Pole, gapped_cfg, entries, 0.9);
    // Continue with batch inserts whose runs hit the fast-append path on
    // dense tails and the per-entry merge path on gapped ones.
    let batch: Vec<(u64, u64)> = (4000..7000u64).map(|k| (k * 2 + 1, k)).collect();
    assert_eq!(dense.insert_batch(&batch), gapped.insert_batch(&batch));
    let probes: Vec<u64> = (0..14_000u64).step_by(101).collect();
    assert_equivalent(&dense, &gapped, &probes);
}

#[test]
fn snapshot_roundtrip_under_gapped_layout() {
    let (_, mut gapped) = pair(FastPathMode::Pole, 8, SearchKind::Branchless);
    let mut rng = StdRng::seed_from_u64(0x1a_0003);
    for _ in 0..4000 {
        gapped.insert(rng.gen_range(0..1500u64), 7);
    }
    for _ in 0..800 {
        gapped.delete(rng.gen_range(0..1500u64));
    }
    let snap = gapped.to_snapshot();
    assert_eq!(snap.config.node_layout, NodeLayoutKind::Gapped);
    let restored = BpTree::from_snapshot(snap);
    restored.check_invariants().unwrap();
    assert_eq!(restored.len(), gapped.len());
    let a: Vec<(u64, u64)> = gapped.iter().map(|(k, v)| (k, *v)).collect();
    let b: Vec<(u64, u64)> = restored.iter().map(|(k, v)| (k, *v)).collect();
    assert_eq!(a, b);
}

#[test]
fn search_kinds_agree_on_every_boundary_shape() {
    // Direct slice-level equivalence: all kinds must implement the same
    // upper/lower bound contract on runs, empties, and singletons.
    let mut rng = StdRng::seed_from_u64(0x1a_0004);
    let mut cases: Vec<Vec<u64>> = vec![
        vec![],
        vec![5],
        vec![5, 5, 5, 5],
        (0..510).map(|i| i / 3).collect(),
    ];
    for _ in 0..50 {
        let n = rng.gen_range(0..600);
        let mut v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..200)).collect();
        v.sort_unstable();
        cases.push(v);
    }
    for keys in &cases {
        for probe in 0..205u64 {
            let ub = quit_core::upper_bound(SearchKind::Binary, keys, probe);
            let lb = quit_core::lower_bound(SearchKind::Binary, keys, probe);
            for kind in [SearchKind::Branchless, SearchKind::Simd] {
                assert_eq!(
                    quit_core::upper_bound(kind, keys, probe),
                    ub,
                    "{kind:?} upper_bound len={} probe={probe}",
                    keys.len()
                );
                assert_eq!(
                    quit_core::lower_bound(kind, keys, probe),
                    lb,
                    "{kind:?} lower_bound len={} probe={probe}",
                    keys.len()
                );
            }
        }
    }
}

#[test]
fn gapped_layout_preserves_paper_fast_path_accounting() {
    // The fast-path state machine is layout-independent: a sorted stream
    // must produce identical fast/top-insert counts under both layouts.
    let counts: Vec<(u64, u64)> = [NodeLayoutKind::Dense, NodeLayoutKind::Gapped]
        .into_iter()
        .map(|layout| {
            let cfg = TreeConfig::small(16).with_node_layout(layout);
            let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, cfg);
            for k in 0..5000u64 {
                t.insert(k, k);
            }
            t.check_invariants().unwrap();
            (t.stats().fast_inserts.get(), t.stats().top_inserts.get())
        })
        .collect();
    assert_eq!(counts[0], counts[1], "fast-path accounting diverged");
    assert!(
        counts[0].0 > 4900,
        "sorted stream should nearly always fast-insert, got {counts:?}"
    );
}

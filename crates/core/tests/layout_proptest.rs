//! Property tests for the gapped slot primitives: random op sequences
//! through `insert_at`/`remove_at`, with `compact` + `regap` driven at
//! every simulated split, must preserve the layout contract exactly —
//! sorted physical keys, the strict filler rule, no trailing gaps, a
//! bitmap that matches reality, and live contents identical to a plain
//! sorted-vector model.

use proptest::prelude::*;
use quit_core::{GapMap, SearchKind, SlotInsert};

const CAPACITY: usize = 8;

/// One generated step against the leaf under test.
#[derive(Clone, Debug)]
enum Step {
    /// Insert key `k` (value = op ordinal, assigned at replay).
    Insert(u64),
    /// Remove the `sel % live`-th live entry (ignored while empty).
    Remove(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..60u64).prop_map(Step::Insert),
        1 => (0..usize::MAX).prop_map(Step::Remove),
    ]
}

/// Everything the layout module promises about one gapped leaf.
fn assert_layout_contract(keys: &[u64], vals: &[u64], gaps: &GapMap, model: &[(u64, u64)]) {
    assert_eq!(keys.len(), vals.len());
    assert!(
        keys.len() <= CAPACITY,
        "physical length stays within capacity"
    );
    assert!(
        keys.windows(2).all(|w| w[0] <= w[1]),
        "physical keys sorted"
    );
    if !keys.is_empty() {
        assert!(!gaps.is_gap(keys.len() - 1), "no trailing gap");
    }
    let mut gap_count = 0usize;
    for i in 0..keys.len() {
        if gaps.is_gap(i) {
            gap_count += 1;
            // Strict filler rule: a gap copies its right neighbour's pair.
            assert_eq!(keys[i], keys[i + 1], "filler key at {i}");
            assert_eq!(vals[i], vals[i + 1], "filler value at {i}");
        }
    }
    assert_eq!(gap_count, gaps.count(), "bitmap count matches reality");
    let live: Vec<(u64, u64)> = (0..keys.len())
        .filter(|&i| !gaps.is_gap(i))
        .map(|i| (keys[i], vals[i]))
        .collect();
    assert_eq!(live, model, "live contents match the model");
    // Every search kind agrees with std's partition_point on the physical
    // array (the fillers keep it sorted, so the contract is well-defined).
    for probe in [0, 1, 29, 30, 31, 59, 60] {
        let ub = keys.partition_point(|k| *k <= probe);
        let lb = keys.partition_point(|k| *k < probe);
        for kind in [SearchKind::Binary, SearchKind::Branchless, SearchKind::Simd] {
            assert_eq!(
                quit_core::upper_bound(kind, keys, probe),
                ub,
                "{kind:?} ub({probe})"
            );
            assert_eq!(
                quit_core::lower_bound(kind, keys, probe),
                lb,
                "{kind:?} lb({probe})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random insert/remove churn with a simulated split on every `Full`:
    /// compact, drain the upper half (the would-be right node), then
    /// `regap` the survivor exactly as the split paths do.
    #[test]
    fn gapped_leaf_round_trips(steps in prop::collection::vec(step_strategy(), 1..250)) {
        let mut keys: Vec<u64> = Vec::new();
        let mut vals: Vec<u64> = Vec::new();
        let mut gaps = GapMap::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut splits = 0usize;

        for (ordinal, step) in steps.into_iter().enumerate() {
            let v = ordinal as u64;
            match step {
                Step::Insert(k) => {
                    match quit_core::insert_at(
                        SearchKind::Branchless,
                        &mut keys,
                        &mut vals,
                        &mut gaps,
                        k,
                        v,
                        CAPACITY,
                    ) {
                        SlotInsert::Done(pos) => {
                            assert!(!gaps.is_gap(pos), "inserted slot is live");
                            assert_eq!((keys[pos], vals[pos]), (k, v));
                            let at = model.partition_point(|&(mk, _)| mk <= k);
                            model.insert(at, (k, v));
                        }
                        SlotInsert::Full => {
                            // The caller's split protocol: compact to dense,
                            // give the upper half away, regap the survivor.
                            assert_eq!(
                                keys.len() - gaps.count(),
                                CAPACITY,
                                "Full only at live == capacity"
                            );
                            quit_core::compact(&mut keys, &mut vals, &mut gaps);
                            assert!(gaps.is_dense());
                            assert_eq!(keys.len(), CAPACITY, "compact keeps every live pair");
                            let mid = keys.len() / 2;
                            let right_keys = keys.split_off(mid);
                            let right_vals = vals.split_off(mid);
                            let right_model = model.split_off(mid);
                            let moved: Vec<(u64, u64)> = right_keys
                                .into_iter()
                                .zip(right_vals)
                                .collect();
                            assert_eq!(moved, right_model, "split moves exact pairs");
                            let want = (CAPACITY as f64).sqrt().floor() as usize;
                            let region_start = keys.len() / 2;
                            quit_core::regap(
                                &mut keys,
                                &mut vals,
                                &mut gaps,
                                region_start,
                                want,
                                CAPACITY,
                            );
                            splits += 1;
                            // Retry must now succeed: gaps were opened.
                            match quit_core::insert_at(
                                SearchKind::Branchless,
                                &mut keys,
                                &mut vals,
                                &mut gaps,
                                k,
                                v,
                                CAPACITY,
                            ) {
                                SlotInsert::Done(_) => {
                                    let at = model.partition_point(|&(mk, _)| mk <= k);
                                    model.insert(at, (k, v));
                                }
                                SlotInsert::Full => {
                                    panic!("insert after split must succeed")
                                }
                            }
                        }
                    }
                }
                Step::Remove(sel) => {
                    if model.is_empty() {
                        continue;
                    }
                    let j = sel % model.len();
                    // Map the j-th live entry to its physical slot.
                    let pos = (0..keys.len())
                        .filter(|&i| !gaps.is_gap(i))
                        .nth(j)
                        .expect("live slot exists");
                    let got = quit_core::remove_at(
                        quit_core::NodeLayoutKind::Gapped,
                        &mut keys,
                        &mut vals,
                        &mut gaps,
                        pos,
                        usize::MAX,
                    );
                    let (_, want) = model.remove(j);
                    assert_eq!(got, want, "remove_at returns the removed value");
                }
            }
            assert_layout_contract(&keys, &vals, &gaps, &model);
        }

        // Final compaction round-trip: contents unchanged, layout dense.
        quit_core::compact(&mut keys, &mut vals, &mut gaps);
        assert!(gaps.is_dense());
        let dense: Vec<(u64, u64)> = keys.iter().copied().zip(vals.iter().copied()).collect();
        assert_eq!(dense, model, "compact preserves live contents");
        // Workloads long enough to overflow must actually have split.
        if model.len() > CAPACITY {
            assert!(splits > 0, "overflowing workloads exercise the split path");
        }
    }
}

//! Tree node representations.
//!
//! A leaf stores entries (sorted keys plus parallel values) and is doubly
//! linked with its chain neighbours for range scans (§4.4). An internal node
//! stores `keys.len() + 1` children; child `i` covers keys `< keys[i]`, child
//! `i+1` covers keys `>= keys[i]`. All nodes carry a parent link so splits,
//! merges, redistribution, and separator updates walk up without a re-descent.

use crate::arena::NodeId;
use crate::layout::GapMap;

/// A node slot in the arena.
#[derive(Debug)]
pub enum Node<K, V> {
    /// Routing node.
    Internal(InternalNode<K>),
    /// Data node.
    Leaf(LeafNode<K, V>),
    /// Recycled slot (only ever observed by the arena itself).
    Free,
}

/// Routing node: `children.len() == keys.len() + 1`.
#[derive(Debug)]
pub struct InternalNode<K> {
    /// Separator keys, sorted ascending.
    pub keys: Vec<K>,
    /// Child node ids; child `i` holds keys in `[keys[i-1], keys[i])`.
    pub children: Vec<NodeId>,
    /// Parent internal node, `None` at the root.
    pub parent: Option<NodeId>,
}

/// Data node: `keys` sorted ascending, `vals[i]` belongs to `keys[i]`.
///
/// Under [`crate::NodeLayoutKind::Gapped`] some physical slots are *gaps*
/// tracked by `gaps`: each gap slot holds a copy of its nearest live right
/// neighbour's entry (the strict filler rule), so `keys` stays fully sorted
/// and key-level reads (`first`/`last`, separators, boundary checks) need no
/// bitmap. Only value access, entry counting, and slot iteration are
/// gap-aware. Dense leaves keep `gaps` empty and behave exactly as before.
#[derive(Debug)]
pub struct LeafNode<K, V> {
    /// Entry keys, sorted ascending (duplicates allowed).
    pub keys: Vec<K>,
    /// Entry values, parallel to `keys`.
    pub vals: Vec<V>,
    /// Gap bitmap over the physical slots (empty for dense leaves).
    pub gaps: GapMap,
    /// Next leaf in key order (interlinked pointers, §4.4).
    pub next: Option<NodeId>,
    /// Previous leaf in key order.
    pub prev: Option<NodeId>,
    /// Parent internal node, `None` when the leaf is the root.
    pub parent: Option<NodeId>,
}

impl<K> InternalNode<K> {
    /// An empty internal node (caller fills keys/children).
    pub fn new() -> Self {
        InternalNode {
            keys: Vec::new(),
            children: Vec::new(),
            parent: None,
        }
    }

    /// Number of separator keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the node routes nothing (transient state only).
    #[inline]
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Index of `child` in `children`. Panics if absent.
    pub fn child_index(&self, child: NodeId) -> usize {
        self.children
            .iter()
            .position(|&c| c == child)
            .expect("child not found in parent")
    }
}

impl<K> Default for InternalNode<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> LeafNode<K, V> {
    /// An empty, unlinked leaf.
    pub fn new() -> Self {
        LeafNode {
            keys: Vec::new(),
            vals: Vec::new(),
            gaps: GapMap::new(),
            next: None,
            prev: None,
            parent: None,
        }
    }

    /// An empty leaf with entry storage preallocated for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        LeafNode {
            keys: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
            gaps: GapMap::new(),
            next: None,
            prev: None,
            parent: None,
        }
    }

    /// Number of *live* entries (physical slots minus gaps).
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len() - self.gaps.count()
    }

    /// Number of physical slots, counting gaps.
    #[inline]
    pub fn physical_len(&self) -> usize {
        self.keys.len()
    }

    /// True when the leaf holds no entries. (Trailing gaps are always
    /// trimmed, so zero live entries implies zero physical slots.)
    #[inline]
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl<K, V> Default for LeafNode<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Node<K, V> {
    /// True for leaf slots.
    #[inline]
    #[allow(dead_code)]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Leaf view; panics on internal/free slots.
    #[inline]
    pub fn as_leaf(&self) -> &LeafNode<K, V> {
        match self {
            Node::Leaf(l) => l,
            _ => panic!("expected leaf node"),
        }
    }

    /// Mutable leaf view; panics on internal/free slots.
    #[inline]
    pub fn as_leaf_mut(&mut self) -> &mut LeafNode<K, V> {
        match self {
            Node::Leaf(l) => l,
            _ => panic!("expected leaf node"),
        }
    }

    /// Internal view; panics on leaf/free slots.
    #[inline]
    pub fn as_internal(&self) -> &InternalNode<K> {
        match self {
            Node::Internal(n) => n,
            _ => panic!("expected internal node"),
        }
    }

    /// Mutable internal view; panics on leaf/free slots.
    #[inline]
    pub fn as_internal_mut(&mut self) -> &mut InternalNode<K> {
        match self {
            Node::Internal(n) => n,
            _ => panic!("expected internal node"),
        }
    }

    /// Parent link regardless of node kind.
    #[inline]
    pub fn parent(&self) -> Option<NodeId> {
        match self {
            Node::Internal(n) => n.parent,
            Node::Leaf(l) => l.parent,
            Node::Free => None,
        }
    }

    /// Sets the parent link regardless of node kind.
    #[inline]
    pub fn set_parent(&mut self, p: Option<NodeId>) {
        match self {
            Node::Internal(n) => n.parent = p,
            Node::Leaf(l) => l.parent = p,
            Node::Free => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_basics() {
        let mut l: LeafNode<u64, u64> = LeafNode::with_capacity(8);
        assert!(l.is_empty());
        l.keys.push(1);
        l.vals.push(10);
        assert_eq!(l.len(), 1);
        assert!(l.keys.capacity() >= 8);
    }

    #[test]
    fn internal_child_index() {
        let mut n: InternalNode<u64> = InternalNode::new();
        n.keys = vec![10, 20];
        n.children = vec![NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(n.child_index(NodeId(1)), 1);
        assert_eq!(n.len(), 2);
        assert!(!n.is_empty());
    }

    #[test]
    #[should_panic(expected = "child not found")]
    fn missing_child_panics() {
        let n: InternalNode<u64> = InternalNode::new();
        n.child_index(NodeId(9));
    }

    #[test]
    fn node_views_and_parent() {
        let mut n: Node<u64, u64> = Node::Leaf(LeafNode::new());
        assert!(n.is_leaf());
        assert!(n.parent().is_none());
        n.set_parent(Some(NodeId(3)));
        assert_eq!(n.parent(), Some(NodeId(3)));
        let _ = n.as_leaf();
        let _ = n.as_leaf_mut();
    }

    #[test]
    #[should_panic(expected = "expected internal")]
    fn wrong_view_panics() {
        let n: Node<u64, u64> = Node::Leaf(LeafNode::new());
        let _ = n.as_internal();
    }
}

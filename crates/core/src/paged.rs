//! Node-granular paged storage: decoded tree nodes cached in a bounded
//! frame table over a [`PageStore`], with CLOCK eviction at operation
//! boundaries.
//!
//! This is the `StorageKind::Paged` backend behind [`crate::Arena`]. It
//! keeps the arena's reference-returning API (`get(&self) -> &Node`)
//! intact across ~135 call sites by adapting the buffer-pool pin
//! discipline to Rust's borrow checker:
//!
//! * **Reads fault, but never evict.** `get`/`get_mut` fault missing
//!   nodes in from the store. Faulting only *inserts* frames (each node
//!   is boxed, so its address never moves when the frame table grows),
//!   which keeps previously returned `&Node` references valid.
//! * **Eviction happens only at operation boundaries.** The tree calls
//!   [`PagedNodes::begin_op`] (via `Arena::begin_op`) at the top of each
//!   `&mut self` operation — insert, delete, batch, and the trait-level
//!   get/range. `&mut self` is the proof that no node reference is
//!   outstanding, so dropping frames is sound. Every frame touched since
//!   the previous boundary carries an implicit *operation pin*; CLOCK
//!   (second-chance over reference bits) then evicts down to
//!   `pool_pages`, writing dirty victims through the store.
//!
//! The pool can therefore overshoot `pool_pages` *within* one operation
//! by the number of distinct nodes that operation touches (≈ tree height
//! for point ops, plus scanned leaves for ranges, plus everything for a
//! full validation walk) — bounded, and trimmed at the next boundary.
//!
//! A one-entry *hot-node memo* keeps the most recently touched node's
//! frame index under a standing pin, short-circuiting the page-table
//! lookup on the tail-leaf-heavy sorted fast path. The memo must (a)
//! hold its standing pin across the operation boundary and (b) validate
//! that its frame still holds its node. The `inject-pin-bug` feature
//! releases the pin one boundary early with broken accounting: the hot
//! frame becomes an eviction victim whose dirty write-back is skipped
//! (eviction believes the phantom pin holder will flush it), so the next
//! fault resurrects the node's previous on-store version — updates lost
//! to an unpinned eviction, which `quit-testkit`'s pool mutation smoke
//! must catch under pressure.
//!
//! # Values must be plain-old-data
//!
//! Pages are byte images, so evicting a node serializes its keys and
//! values. Keys already promise this ([`Key`] requires the crate's
//! `AnyBitPattern`). Values are checked at construction:
//! [`value_is_pod`] accepts exactly the fixed-width types the crate
//! implements `Key`'s byte-view contract for, and paged construction
//! panics for anything else (`String` values etc. need the in-memory
//! arena). The encode/decode functions below compile for every `V` but
//! are only ever *called* once that gate has passed, which is what makes
//! their unsafe byte copies sound.

use crate::arena::NodeId;
use crate::error::Error;
use crate::layout::GapMap;
use crate::node::{InternalNode, LeafNode, Node};
use crate::pool::{crc32, MemPageStore, PageId, PageStore, PoolCounters};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// The sentinel encoding of `Option<NodeId>::None` in page images.
const NIL: u32 = u32::MAX;

// ---------------------------------------------------------------------
// Pod gate for values
// ---------------------------------------------------------------------

/// Whether `V` is one of the fixed-width plain-old-data types paged
/// storage can serialize: the exact set this crate implements [`crate::Key`]'s
/// byte-pattern contract for. `TypeId` equality of `'static` types is
/// type equality, so a `true` here licenses the byte-copy codec below.
pub fn value_is_pod<V: 'static>() -> bool {
    use std::any::TypeId;
    let t = TypeId::of::<V>();
    t == TypeId::of::<u8>()
        || t == TypeId::of::<u16>()
        || t == TypeId::of::<u32>()
        || t == TypeId::of::<u64>()
        || t == TypeId::of::<usize>()
        || t == TypeId::of::<i8>()
        || t == TypeId::of::<i16>()
        || t == TypeId::of::<i32>()
        || t == TypeId::of::<i64>()
        || t == TypeId::of::<isize>()
        || t == TypeId::of::<crate::key::OrderedF64>()
}

/// Appends the raw bytes of `t`. Sound only for types with no padding and
/// no invalid bit patterns — the caller gates on [`value_is_pod`] /
/// `K: Key` before ever reaching this.
fn push_pod<T>(out: &mut Vec<u8>, t: &T) {
    let bytes = unsafe {
        std::slice::from_raw_parts((t as *const T).cast::<u8>(), std::mem::size_of::<T>())
    };
    out.extend_from_slice(bytes);
}

/// Reads one `T` back out of `bytes` at `off`, advancing it. Same gating
/// contract as [`push_pod`]; the length check makes the unaligned read
/// in-bounds.
fn read_pod<T>(bytes: &[u8], off: &mut usize) -> T {
    let n = std::mem::size_of::<T>();
    assert!(*off + n <= bytes.len(), "page underflow decoding node");
    let t = unsafe { std::ptr::read_unaligned(bytes.as_ptr().add(*off).cast::<T>()) };
    *off += n;
    t
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], off: &mut usize) -> u32 {
    let v = u32::from_le_bytes(bytes[*off..*off + 4].try_into().expect("page underflow"));
    *off += 4;
    v
}

fn opt_id(v: u32) -> Option<NodeId> {
    (v != NIL).then_some(NodeId(v))
}

fn id_or_nil(v: Option<NodeId>) -> u32 {
    v.map_or(NIL, |id| id.0)
}

// ---------------------------------------------------------------------
// Node codec
// ---------------------------------------------------------------------

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// Serializes a node into a fresh page payload (not padded; the page
/// image layer pads and checksums). Compiles for every `K`/`V`; only
/// ever called once construction has pod-gated both.
fn encode_node<K, V>(node: &Node<K, V>) -> Vec<u8> {
    let mut out = Vec::new();
    match node {
        Node::Leaf(l) => {
            out.push(TAG_LEAF);
            push_u32(&mut out, l.keys.len() as u32);
            push_u32(&mut out, id_or_nil(l.parent));
            push_u32(&mut out, id_or_nil(l.next));
            push_u32(&mut out, id_or_nil(l.prev));
            let words = l.gaps.raw_words();
            push_u32(&mut out, words.len() as u32);
            for w in words {
                out.extend_from_slice(&w.to_le_bytes());
            }
            for k in &l.keys {
                push_pod(&mut out, k);
            }
            for v in &l.vals {
                push_pod(&mut out, v);
            }
        }
        Node::Internal(n) => {
            out.push(TAG_INTERNAL);
            push_u32(&mut out, n.keys.len() as u32);
            push_u32(&mut out, n.children.len() as u32);
            push_u32(&mut out, id_or_nil(n.parent));
            for k in &n.keys {
                push_pod(&mut out, k);
            }
            for c in &n.children {
                push_u32(&mut out, c.0);
            }
        }
        Node::Free => unreachable!("free slots are never paged out"),
    }
    out
}

/// Decodes a page payload back into a node. Trailing padding is ignored
/// (the layout is self-describing). Same gating contract as
/// [`encode_node`].
fn decode_node<K, V>(bytes: &[u8]) -> Node<K, V> {
    let mut off = 0usize;
    let tag = bytes[off];
    off += 1;
    match tag {
        TAG_LEAF => {
            let n_phys = read_u32(bytes, &mut off) as usize;
            let parent = opt_id(read_u32(bytes, &mut off));
            let next = opt_id(read_u32(bytes, &mut off));
            let prev = opt_id(read_u32(bytes, &mut off));
            let n_words = read_u32(bytes, &mut off) as usize;
            let mut gaps = GapMap::new();
            for w in 0..n_words {
                let word =
                    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("page underflow"));
                off += 8;
                for bit in 0..64 {
                    if (word >> bit) & 1 == 1 {
                        gaps.set(w * 64 + bit);
                    }
                }
            }
            let mut leaf = LeafNode::with_capacity(n_phys);
            for _ in 0..n_phys {
                leaf.keys.push(read_pod::<K>(bytes, &mut off));
            }
            for _ in 0..n_phys {
                leaf.vals.push(read_pod::<V>(bytes, &mut off));
            }
            leaf.gaps = gaps;
            leaf.parent = parent;
            leaf.next = next;
            leaf.prev = prev;
            Node::Leaf(leaf)
        }
        TAG_INTERNAL => {
            let n_keys = read_u32(bytes, &mut off) as usize;
            let n_children = read_u32(bytes, &mut off) as usize;
            let parent = opt_id(read_u32(bytes, &mut off));
            let mut node = InternalNode::new();
            for _ in 0..n_keys {
                node.keys.push(read_pod::<K>(bytes, &mut off));
            }
            for _ in 0..n_children {
                node.children.push(NodeId(read_u32(bytes, &mut off)));
            }
            node.parent = parent;
            Node::Internal(node)
        }
        t => panic!("corrupt page: unknown node tag {t}"),
    }
}

/// Worst-case encoded node size for the given geometry — what paged
/// construction validates against the page size. The `+1` margins cover
/// the transient over-full states a node passes through on its way into
/// a split (splits finish within the operation, but a conservative bound
/// is free).
pub fn max_encoded_node_size<K, V>(leaf_capacity: usize, internal_capacity: usize) -> usize {
    let (sk, sv) = (std::mem::size_of::<K>(), std::mem::size_of::<V>());
    let lc = leaf_capacity + 1;
    let ic = internal_capacity + 1;
    let leaf = 1 + 4 * 5 + lc.div_ceil(64) * 8 + lc * (sk + sv);
    let internal = 1 + 4 * 3 + ic * sk + (ic + 1) * 4;
    leaf.max(internal)
}

// ---------------------------------------------------------------------
// The paged arena backend
// ---------------------------------------------------------------------

/// One resident (decoded) node. Boxing gives the node a stable heap
/// address: growing or shuffling the frame vector never moves it, which
/// is load-bearing for the `&self` fault path.
struct FrameEntry<K, V> {
    id: u32,
    node: Box<Node<K, V>>,
    ref_bit: Cell<bool>,
    dirty: Cell<bool>,
}

/// The parts `get(&self)` must mutate to fault nodes in.
struct Resident<K, V> {
    frames: Vec<Option<FrameEntry<K, V>>>,
    table: HashMap<u32, usize>,
    hand: usize,
}

/// Paged node storage: a bounded cache of decoded nodes over a byte
/// [`PageStore`], one node per page, addressed by `PageId(node id)`.
/// See the module docs for the pin/eviction discipline.
pub struct PagedNodes<K, V> {
    resident: RefCell<Resident<K, V>>,
    store: RefCell<Box<dyn PageStore>>,
    /// Hot-node memo: `(node id, frame index)` of the most recently
    /// touched node, held under a standing pin across operation
    /// boundaries. The `inject-pin-bug` feature drops that pin one
    /// boundary early and loses the victim's dirty write-back — see
    /// module docs.
    memo: Cell<Option<(u32, usize)>>,
    free: Vec<u32>,
    next_id: u32,
    live: usize,
    pool_pages: usize,
    page_size: usize,
    counters: PoolCounters,
}

impl<K, V> std::fmt::Debug for PagedNodes<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedNodes")
            .field("live", &self.live)
            .field("pool_pages", &self.pool_pages)
            .field("resident", &self.resident.borrow().table.len())
            .finish()
    }
}

impl<K: 'static, V: 'static> PagedNodes<K, V> {
    /// A paged arena over `store` holding at most `pool_pages` decoded
    /// nodes between operations. Panics if `K` or `V` is not
    /// plain-old-data or the geometry's worst-case node cannot fit one
    /// `page_size` page.
    pub fn new(
        store: Box<dyn PageStore>,
        pool_pages: usize,
        page_size: usize,
        leaf_capacity: usize,
        internal_capacity: usize,
    ) -> Self {
        assert!(
            value_is_pod::<K>(),
            "StorageKind::Paged requires plain-old-data keys; got {}",
            std::any::type_name::<K>()
        );
        assert!(
            value_is_pod::<V>(),
            "StorageKind::Paged requires plain-old-data values \
             (u8..u64, i8..i64, usize/isize, OrderedF64); got {} — \
             use the in-memory arena for heap-owning value types",
            std::any::type_name::<V>()
        );
        let need = max_encoded_node_size::<K, V>(leaf_capacity, internal_capacity);
        assert!(
            need <= page_size,
            "StorageKind::Paged: a {leaf_capacity}-entry leaf / \
             {internal_capacity}-key internal node needs up to {need} bytes \
             but pages are {page_size}; lower the capacities or raise page_size"
        );
        assert!(pool_pages >= 2, "paged storage needs pool_pages >= 2");
        PagedNodes {
            resident: RefCell::new(Resident {
                frames: Vec::new(),
                table: HashMap::new(),
                hand: 0,
            }),
            store: RefCell::new(store),
            memo: Cell::new(None),
            free: Vec::new(),
            next_id: 0,
            live: 0,
            pool_pages,
            page_size,
            counters: PoolCounters::default(),
        }
    }
}

impl<K, V> PagedNodes<K, V> {
    /// Hit/fault/eviction counters.
    pub fn counters(&self) -> &PoolCounters {
        &self.counters
    }

    /// Decoded nodes currently resident.
    pub fn resident(&self) -> usize {
        self.resident.borrow().table.len()
    }

    /// The pool's between-operations frame budget.
    pub fn pool_pages(&self) -> usize {
        self.pool_pages
    }

    // -- arena API ----------------------------------------------------

    /// Stores `node` in a fresh frame and returns its id. Ids are
    /// assigned exactly like the slab backend (free-list pop, else
    /// next sequential), so tree structure is backend-independent.
    pub fn alloc(&mut self, node: Node<K, V>) -> NodeId {
        self.live += 1;
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                let id = self.next_id;
                self.next_id = self
                    .next_id
                    .checked_add(1)
                    .expect("arena overflow: > 2^32 nodes");
                id
            }
        };
        let r = self.resident.get_mut();
        let idx = free_frame(&mut r.frames);
        r.frames[idx] = Some(FrameEntry {
            id,
            node: Box::new(node),
            ref_bit: Cell::new(true),
            dirty: Cell::new(true),
        });
        r.table.insert(id, idx);
        NodeId(id)
    }

    /// Releases `id` for reuse, dropping its resident frame if any.
    pub fn free(&mut self, id: NodeId) {
        let r = self.resident.get_mut();
        if let Some(idx) = r.table.remove(&id.0) {
            r.frames[idx] = None;
        }
        // The store may keep stale bytes for this id; they are
        // unreachable (the id is on the free list) and get overwritten
        // when the id is recycled and its new node is first evicted.
        if let Some((mid, _)) = self.memo.get() {
            if mid == id.0 {
                self.memo.set(None);
            }
        }
        self.free.push(id.0);
        self.live -= 1;
    }

    /// Shared access to a node, faulting it in from the store if not
    /// resident. Never evicts (see the module docs for why).
    pub fn get(&self, id: NodeId) -> &Node<K, V> {
        let ptr = self.frame_ptr(id);
        // SAFETY: the pointee is heap-boxed, so it never moves while the
        // frame table changes under later `&self` faults (which only
        // insert frames). Frames are only *dropped* by eviction in
        // `begin_op`/`to_image`/`free` — all `&mut self` — at which point
        // the borrow checker guarantees this `&'self`-tied reference is
        // gone. Aliasing: `&self` methods only hand out shared refs;
        // `&mut` refs come from `&mut self` methods.
        unsafe { &*ptr }
    }

    /// Exclusive access to a node, faulting it in and marking it dirty.
    pub fn get_mut(&mut self, id: NodeId) -> &mut Node<K, V> {
        let ptr = self.frame_ptr(id).cast_mut();
        self.mark_dirty(id);
        // SAFETY: stability as in `get`; exclusivity holds because this
        // borrows `self` mutably for the reference's whole lifetime.
        unsafe { &mut *ptr }
    }

    /// Exclusive access to two distinct nodes at once (split/merge paths).
    pub fn get2_mut(&mut self, a: NodeId, b: NodeId) -> (&mut Node<K, V>, &mut Node<K, V>) {
        assert_ne!(a, b, "get2_mut requires distinct ids");
        let pa = self.frame_ptr(a).cast_mut();
        // Faulting `b` may grow the frame table but cannot move or drop
        // `a`'s boxed node.
        let pb = self.frame_ptr(b).cast_mut();
        self.mark_dirty(a);
        self.mark_dirty(b);
        // SAFETY: distinct ids map to distinct boxes; stability and
        // exclusivity as in `get_mut`.
        unsafe { (&mut *pa, &mut *pb) }
    }

    /// Number of live nodes (resident or evicted).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no node is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total id slots ever allocated (live + free-listed).
    pub fn slot_count(&self) -> usize {
        self.next_id as usize
    }

    /// Iterates `(id, node)` over live nodes, faulting each in. This is
    /// the debug/validation path: residency can overshoot the budget by
    /// the whole tree until the next operation boundary trims it.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node<K, V>)> {
        let freed: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        (0..self.next_id)
            .filter(move |i| !freed.contains(i))
            .map(move |i| (NodeId(i), self.get(NodeId(i))))
    }

    // -- pin discipline ----------------------------------------------

    /// Operation boundary: every implicit operation pin from the
    /// previous operation is released, and CLOCK evicts unpinned frames
    /// (dirty ones written through the store) until at most `pool_pages`
    /// remain. The hot-node memo keeps its standing pin — unless the
    /// `inject-pin-bug` mutation releases it here, one boundary early.
    pub fn begin_op(&mut self) {
        #[cfg(not(feature = "inject-pin-bug"))]
        let standing_pin: Option<u32> = self.memo.get().map(|(id, _)| id);
        // Planted bug: the memo's standing pin is dropped one boundary
        // early, so the hot frame becomes an eviction victim — and the
        // broken pin accounting also makes eviction believe someone else
        // still pins the frame and will flush it, so its dirty write-back
        // is skipped. The store keeps the node's *previous* page (or none
        // at all), and the next fault resurrects that stale version:
        // updates lost to an unpinned eviction, which the pool mutation
        // smoke must catch under pressure.
        #[cfg(feature = "inject-pin-bug")]
        let standing_pin: Option<u32> = None;
        #[cfg(feature = "inject-pin-bug")]
        let unflushed_hot: Option<u32> = self.memo.get().map(|(id, _)| id);

        let r = self.resident.get_mut();
        let over = r.table.len().saturating_sub(self.pool_pages);
        if over == 0 {
            return;
        }
        let n = r.frames.len();
        let mut evicted = 0usize;
        let mut sweeps = 0usize;
        while evicted < over && sweeps < 2 * n + 2 {
            let here = r.hand;
            r.hand = (r.hand + 1) % n;
            sweeps += 1;
            let Some(entry) = r.frames[here].as_ref() else {
                continue;
            };
            if standing_pin == Some(entry.id) {
                continue;
            }
            if entry.ref_bit.get() {
                entry.ref_bit.set(false); // second chance
                continue;
            }
            let victim = r.frames[here].take().expect("checked above");
            r.table.remove(&victim.id);
            #[cfg(feature = "inject-pin-bug")]
            let skip_writeback = unflushed_hot == Some(victim.id);
            #[cfg(not(feature = "inject-pin-bug"))]
            let skip_writeback = false;
            if victim.dirty.get() && !skip_writeback {
                let bytes = encode_node(&victim.node);
                debug_assert!(bytes.len() <= self.page_size);
                self.store
                    .borrow_mut()
                    .write(PageId(victim.id as u64), &bytes)
                    .expect("page store write failed during eviction");
            }
            self.counters
                .evictions
                .set(self.counters.evictions.get() + 1);
            evicted += 1;
        }
    }

    /// Resolves `id` to a stable node pointer, faulting from the store on
    /// a miss. Shared by `get`/`get_mut` (`&self` is enough: faulting
    /// only inserts frames).
    fn frame_ptr(&self, id: NodeId) -> *const Node<K, V> {
        let mut r = self.resident.borrow_mut();
        if let Some(idx) = self.memo_hit(&r, id.0) {
            let entry = r.frames[idx].as_ref().expect("memo frame resident");
            entry.ref_bit.set(true);
            self.counters.hits.set(self.counters.hits.get() + 1);
            return &*entry.node as *const Node<K, V>;
        }
        if let Some(&idx) = r.table.get(&id.0) {
            let entry = r.frames[idx].as_ref().expect("mapped frame resident");
            entry.ref_bit.set(true);
            self.counters.hits.set(self.counters.hits.get() + 1);
            self.memo.set(Some((id.0, idx)));
            return &*entry.node as *const Node<K, V>;
        }
        // Fault: decode from the store into a fresh frame. Never evicts.
        let bytes = self
            .store
            .borrow()
            .read(PageId(id.0 as u64))
            .expect("page store read failed")
            .unwrap_or_else(|| panic!("access to freed or never-written node n{}", id.0));
        let node = decode_node::<K, V>(&bytes);
        self.counters.faults.set(self.counters.faults.get() + 1);
        let idx = free_frame(&mut r.frames);
        r.frames[idx] = Some(FrameEntry {
            id: id.0,
            node: Box::new(node),
            ref_bit: Cell::new(true),
            dirty: Cell::new(false),
        });
        r.table.insert(id.0, idx);
        self.memo.set(Some((id.0, idx)));
        let entry = r.frames[idx].as_ref().expect("just inserted");
        &*entry.node as *const Node<K, V>
    }

    /// Memo lookup, revalidating that the memoized frame still holds the
    /// memoized node (its standing pin normally makes this a formality —
    /// but see [`PagedNodes::begin_op`] for the planted pin bug, which
    /// lets the memoized frame be evicted out from under the memo).
    fn memo_hit(&self, r: &Resident<K, V>, id: u32) -> Option<usize> {
        let (mid, idx) = self.memo.get()?;
        if mid != id {
            return None;
        }
        match r.frames.get(idx) {
            Some(Some(e)) if e.id == id => Some(idx),
            _ => None,
        }
    }

    fn mark_dirty(&mut self, id: NodeId) {
        let r = self.resident.get_mut();
        if let Some(&idx) = r.table.get(&id.0) {
            if let Some(e) = r.frames[idx].as_ref() {
                e.dirty.set(true);
            }
        }
    }

    // -- page-file image ----------------------------------------------

    /// Serializes the whole arena (metadata, free list, and every live
    /// node's page) into a page-file image: the snapshot format. Dirty
    /// frames are flushed through the store first; resident frames stay
    /// resident.
    #[allow(clippy::wrong_self_convention)]
    pub fn to_image(&mut self) -> Vec<u8> {
        // Flush dirty frames so the store holds every live page.
        {
            let r = self.resident.get_mut();
            let mut store = self.store.borrow_mut();
            for entry in r.frames.iter().flatten() {
                if entry.dirty.get() {
                    store
                        .write(PageId(entry.id as u64), &encode_node(&entry.node))
                        .expect("page store write failed during snapshot");
                    entry.dirty.set(false);
                }
            }
        }
        let freed: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        let live_ids: Vec<u32> = (0..self.next_id).filter(|i| !freed.contains(i)).collect();

        let mut out = Vec::new();
        out.extend_from_slice(IMAGE_MAGIC);
        push_u32(&mut out, self.page_size as u32);
        push_u32(&mut out, self.next_id);
        push_u32(&mut out, self.free.len() as u32);
        for f in &self.free {
            push_u32(&mut out, *f);
        }
        push_u32(&mut out, live_ids.len() as u32);
        let hdr_crc = crc32(&out);
        push_u32(&mut out, hdr_crc);
        let store = self.store.borrow();
        for id in live_ids {
            let bytes = store
                .read(PageId(id as u64))
                .expect("page store read failed during snapshot")
                .unwrap_or_else(|| panic!("live node n{id} missing from store"));
            push_u32(&mut out, id);
            push_u32(&mut out, bytes.len() as u32);
            push_u32(&mut out, record_crc(id, &bytes));
            out.extend_from_slice(&bytes);
        }
        out
    }
}

impl<K: 'static, V: 'static> PagedNodes<K, V> {
    /// Opens a page-file image written by [`Self::to_image`]. Validation is
    /// eager — header CRC, record framing, and every page's CRC are
    /// checked in one cheap byte sweep, so a torn or truncated image is
    /// rejected as a whole — but *decoding* is lazy: nodes fault in on
    /// demand, so recovery touches only the root and spine until reads
    /// spread out. New writes land in an in-memory overlay on top of the
    /// read-only image.
    pub fn from_image(
        image: &[u8],
        pool_pages: usize,
        leaf_capacity: usize,
        internal_capacity: usize,
    ) -> Result<Self, Error> {
        let corrupt = |msg: &str| Error::corruption(format!("page image: {msg}"));
        if image.len() < IMAGE_MAGIC.len() || &image[..IMAGE_MAGIC.len()] != IMAGE_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let mut off = IMAGE_MAGIC.len();
        let need = |off: usize, n: usize| -> Result<(), Error> {
            if off + n > image.len() {
                Err(corrupt("truncated"))
            } else {
                Ok(())
            }
        };
        need(off, 12)?;
        let page_size = read_u32(image, &mut off) as usize;
        let next_id = read_u32(image, &mut off);
        let n_free = read_u32(image, &mut off) as usize;
        need(off, n_free * 4 + 8)?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free.push(read_u32(image, &mut off));
        }
        let n_pages = read_u32(image, &mut off) as usize;
        let hdr_crc = crc32(&image[..off]);
        if read_u32(image, &mut off) != hdr_crc {
            return Err(corrupt("header checksum mismatch"));
        }
        if free.len() + n_pages != next_id as usize {
            return Err(corrupt("inconsistent id accounting"));
        }
        // Eager integrity sweep over every record; decode stays lazy.
        let freed: std::collections::HashSet<u32> = free.iter().copied().collect();
        let mut base = HashMap::with_capacity(n_pages);
        for _ in 0..n_pages {
            need(off, 12)?;
            let id = read_u32(image, &mut off);
            let len = read_u32(image, &mut off) as usize;
            let crc = read_u32(image, &mut off);
            need(off, len)?;
            let payload = &image[off..off + len];
            // The record CRC covers id and length too, so a flipped id
            // byte cannot silently remap a page to another node.
            if record_crc(id, payload) != crc {
                return Err(corrupt(&format!(
                    "page n{id} checksum mismatch (torn page)"
                )));
            }
            if id >= next_id || freed.contains(&id) {
                return Err(corrupt(&format!("page n{id} is not a live node id")));
            }
            if base.insert(id, payload.to_vec()).is_some() {
                return Err(corrupt(&format!("duplicate page n{id}")));
            }
            off += len;
        }
        if off != image.len() {
            return Err(corrupt("trailing bytes after last page"));
        }
        let store = OverlayPageStore {
            base,
            delta: MemPageStore::new(),
        };
        let mut arena = PagedNodes::new(
            Box::new(store),
            pool_pages,
            page_size,
            leaf_capacity,
            internal_capacity,
        );
        arena.free = free;
        arena.next_id = next_id;
        arena.live = n_pages;
        Ok(arena)
    }
}

/// Magic line opening an arena page image (the paged snapshot payload).
pub const IMAGE_MAGIC: &[u8; 6] = b"QPGA1\n";

/// Per-record image CRC: covers the record's `id` and `len` prefix as
/// well as the page payload, so no byte of a record can flip undetected.
fn record_crc(id: u32, payload: &[u8]) -> u32 {
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&id.to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(payload);
    crc32(&rec)
}

/// First free slot in the frame table, growing it if none.
fn free_frame<K, V>(frames: &mut Vec<Option<FrameEntry<K, V>>>) -> usize {
    match frames.iter().position(Option::is_none) {
        Some(idx) => idx,
        None => {
            frames.push(None);
            frames.len() - 1
        }
    }
}

/// A read-only page image with an in-memory write overlay: what a
/// lazily-recovered arena runs on. Reads prefer the overlay (newest
/// version wins); the base image is never modified.
#[derive(Debug)]
struct OverlayPageStore {
    base: HashMap<u32, Vec<u8>>,
    delta: MemPageStore,
}

impl PageStore for OverlayPageStore {
    fn read(&self, id: PageId) -> std::io::Result<Option<Vec<u8>>> {
        if let Some(bytes) = self.delta.read(id)? {
            return Ok(Some(bytes));
        }
        Ok(self.base.get(&(id.0 as u32)).cloned())
    }

    fn write(&mut self, id: PageId, bytes: &[u8]) -> std::io::Result<()> {
        self.delta.write(id, bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.delta.sync()
    }

    fn page_count(&self) -> usize {
        // Upper bound (overlayed pages counted once is not worth a scan).
        self.base.len() + self.delta.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(k: u64, v: u64) -> Node<u64, u64> {
        let mut l = LeafNode::new();
        l.keys.push(k);
        l.vals.push(v);
        Node::Leaf(l)
    }

    fn paged(pool_pages: usize) -> PagedNodes<u64, u64> {
        PagedNodes::new(Box::new(MemPageStore::new()), pool_pages, 4096, 64, 64)
    }

    #[test]
    fn codec_roundtrips_leaf_with_gaps_and_links() {
        let mut l: LeafNode<u64, u64> = LeafNode::new();
        for i in 0..70u64 {
            l.keys.push(i);
            l.vals.push(i * 10);
        }
        l.gaps.set(3);
        l.gaps.set(65);
        l.parent = Some(NodeId(5));
        l.next = Some(NodeId(9));
        let node = Node::Leaf(l);
        let bytes = encode_node(&node);
        let back: Node<u64, u64> = decode_node(&bytes);
        let b = back.as_leaf();
        assert_eq!(b.keys.len(), 70);
        assert_eq!(b.vals[69], 690);
        assert!(b.gaps.is_gap(3) && b.gaps.is_gap(65) && !b.gaps.is_gap(4));
        assert_eq!(b.gaps.count(), 2);
        assert_eq!(b.parent, Some(NodeId(5)));
        assert_eq!(b.next, Some(NodeId(9)));
        assert_eq!(b.prev, None);
    }

    #[test]
    fn codec_roundtrips_internal() {
        let mut n: InternalNode<u64> = InternalNode::new();
        n.keys = vec![10, 20];
        n.children = vec![NodeId(1), NodeId(2), NodeId(3)];
        let node: Node<u64, u64> = Node::Internal(n);
        let back: Node<u64, u64> = decode_node(&encode_node(&node));
        let b = back.as_internal();
        assert_eq!(b.keys, vec![10, 20]);
        assert_eq!(b.children, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(b.parent, None);
    }

    #[test]
    fn pod_gate() {
        assert!(value_is_pod::<u64>());
        assert!(value_is_pod::<i32>());
        assert!(value_is_pod::<crate::key::OrderedF64>());
        assert!(!value_is_pod::<String>());
        assert!(!value_is_pod::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "plain-old-data")]
    fn non_pod_values_rejected_at_construction() {
        let _: PagedNodes<u64, String> =
            PagedNodes::new(Box::new(MemPageStore::new()), 8, 4096, 8, 8);
    }

    #[test]
    #[should_panic(expected = "lower the capacities")]
    fn oversized_geometry_rejected() {
        // 510 × 16 B far exceeds one 4 KiB page.
        let _: PagedNodes<u64, u64> =
            PagedNodes::new(Box::new(MemPageStore::new()), 8, 4096, 510, 510);
    }

    #[test]
    fn alloc_ids_match_direct_arena_semantics() {
        let mut a = paged(4);
        let id0 = a.alloc(leaf(1, 1));
        let _id1 = a.alloc(leaf(2, 2));
        a.free(id0);
        assert_eq!(a.len(), 1);
        let id2 = a.alloc(leaf(3, 3));
        assert_eq!(id2, id0, "freed slot must be reused, like the slab arena");
        assert_eq!(a.len(), 2);
        assert_eq!(a.slot_count(), 2);
    }

    #[test]
    fn eviction_at_op_boundary_and_fault_back() {
        let mut a = paged(2);
        let ids: Vec<NodeId> = (0..6u64).map(|i| a.alloc(leaf(i, i * 7))).collect();
        assert_eq!(a.resident(), 6, "no eviction mid-operation");
        a.begin_op();
        assert!(a.resident() <= 2, "boundary trims to the pool budget");
        assert!(a.counters().evictions.get() >= 4);
        // Every node still reads back correctly (faulting as needed).
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(a.get(*id).as_leaf().vals[0], i as u64 * 7);
        }
        assert!(a.counters().faults.get() >= 4);
        // Mutate one, force it out, fault it back: the write survived.
        a.get_mut(ids[0]).as_leaf_mut().vals[0] = 999;
        a.begin_op();
        a.begin_op();
        assert_eq!(a.get(ids[0]).as_leaf().vals[0], 999);
    }

    #[test]
    fn get2_mut_and_iter() {
        let mut a = paged(2);
        let x = a.alloc(leaf(1, 1));
        let y = a.alloc(leaf(2, 2));
        let z = a.alloc(leaf(3, 3));
        a.begin_op();
        let (nx, ny) = a.get2_mut(x, y);
        nx.as_leaf_mut().vals[0] = 11;
        ny.as_leaf_mut().vals[0] = 22;
        a.free(z);
        let got: Vec<(NodeId, u64)> = a.iter().map(|(id, n)| (id, n.as_leaf().vals[0])).collect();
        assert_eq!(got, vec![(x, 11), (y, 22)]);
    }

    #[test]
    fn image_roundtrip_is_lazy_and_validated() {
        let mut a = paged(3);
        let ids: Vec<NodeId> = (0..10u64).map(|i| a.alloc(leaf(i, i + 100))).collect();
        a.free(ids[4]);
        a.begin_op();
        let image = a.to_image();
        let b: PagedNodes<u64, u64> = PagedNodes::from_image(&image, 3, 64, 64).unwrap();
        assert_eq!(b.len(), 9);
        assert_eq!(b.slot_count(), 10);
        assert_eq!(b.resident(), 0, "recovery decodes nothing up front");
        assert_eq!(b.get(ids[7]).as_leaf().vals[0], 107);
        assert_eq!(b.resident(), 1, "only the faulted node decoded");
        // Freed id is re-allocatable in the recovered arena.
        let mut b = b;
        let re = b.alloc(leaf(50, 50));
        assert_eq!(re, ids[4]);

        // Any single flipped byte in a page payload must reject the image.
        let mut torn = image.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0xFF;
        let err = PagedNodes::<u64, u64>::from_image(&torn, 3, 64, 64).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
        // Truncation at any point must reject, not partially apply.
        for cut in [3usize, 20, image.len() / 2, image.len() - 2] {
            assert!(
                PagedNodes::<u64, u64>::from_image(&image[..cut], 3, 64, 64).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn memo_revalidates_after_eviction() {
        // The healthy path: hammer one node (arming the memo), evict it,
        // refill its frame with another node, then access the first node
        // again — the memo must miss and the fault must return the right
        // node. Under `inject-pin-bug` this exact shape goes wrong, which
        // the testkit mutation smoke asserts from the outside.
        let mut a = paged(2);
        let ids: Vec<NodeId> = (0..8u64).map(|i| a.alloc(leaf(i, i))).collect();
        for round in 0..8 {
            a.begin_op();
            let hot = ids[round % ids.len()];
            for _ in 0..3 {
                assert_eq!(a.get(hot).as_leaf().keys[0], (round % ids.len()) as u64);
            }
        }
    }
}

//! The shared B+-tree platform.
//!
//! One tree implementation backs every index variant of the paper's
//! evaluation (§5: "all experiments use the same underlying B+-tree
//! implementation"); variants differ only in [`FastPathMode`] and the QuIT
//! feature toggles in [`TreeConfig`]. This module holds the tree struct,
//! descent routines, and read operations; ingestion lives in
//! [`crate::insert`], structure modification in [`crate::split`] and
//! [`crate::delete`], scans in [`crate::iter`].

use crate::arena::{Arena, NodeId};
use crate::config::{StorageKind, TreeConfig};
use crate::fastpath::{FastPathMode, FastPathState};
use crate::key::Key;
use crate::metrics::MetricsRegistry;
use crate::node::{LeafNode, Node};
use crate::stats::{MemoryReport, Stats};

/// Read-only view of the fast-path metadata (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastPathInfo<K> {
    /// Fast-path leaf id (`fp_id`).
    pub leaf: Option<NodeId>,
    /// Smallest acceptable key (`fp_min`), `None` = unbounded.
    pub min: Option<K>,
    /// Exclusive upper bound (`fp_max`), `None` = tail.
    pub max: Option<K>,
    /// Cached occupancy of the fast-path leaf (`fp_size`).
    pub size: usize,
    /// `poℓe_prev_min` (Eq. 2's `p`).
    pub prev_min: Option<K>,
    /// `poℓe_prev_size`.
    pub prev_size: usize,
    /// Consecutive top-inserts (`poℓe_fails`).
    pub fails: usize,
}

/// A sortedness-aware B+-tree. See the crate docs for the variant map
/// (classical / tail / ℓiℓ / poℓe / QuIT).
#[derive(Debug)]
pub struct BpTree<K, V> {
    pub(crate) arena: Arena<K, V>,
    pub(crate) root: NodeId,
    /// Left-most leaf (`head_id`).
    pub(crate) head: NodeId,
    /// Right-most leaf (`tail_id`).
    pub(crate) tail: NodeId,
    pub(crate) height: usize,
    pub(crate) len: usize,
    pub(crate) config: TreeConfig,
    pub(crate) mode: FastPathMode,
    pub(crate) fp: FastPathState<K>,
    pub(crate) metrics: MetricsRegistry,
    /// `top_inserts` snapshot taken at the previous leaf split — the
    /// disorder signal for split-time gap seeding: any top-insert between
    /// two splits means the stream is taking out-of-order traffic, so
    /// freshly frozen nodes should be seeded with gaps (see
    /// `split_leaf_at`). Purely sorted ingest never advances it, and
    /// never pays for a single gap.
    pub(crate) tops_at_last_split: u64,
}

impl<K: Key, V> BpTree<K, V> {
    /// Creates an empty tree with the given fast-path mode and configuration.
    ///
    /// With `TreeConfig::storage` set to [`crate::StorageKind::Paged`],
    /// nodes live in fixed-size pages behind the buffer pool: at most
    /// `pool_pages` decoded nodes stay resident between operations. That
    /// backend requires plain-old-data keys *and* values and a geometry
    /// whose largest node fits one page — both are checked here with an
    /// explicit panic message. The default [`crate::StorageKind::Arena`]
    /// accepts any `V` and is bit-for-bit the paper path.
    pub fn with_config(mode: FastPathMode, config: TreeConfig) -> Self
    where
        V: 'static,
    {
        config.assert_valid();
        let mut arena = match config.storage {
            StorageKind::Arena => Arena::new(),
            StorageKind::Paged {
                pool_pages,
                page_size,
            } => Arena::paged(
                Box::new(crate::pool::MemPageStore::new()),
                pool_pages,
                page_size,
                config.leaf_capacity,
                config.internal_capacity,
            ),
        };
        let root = arena.alloc(Node::Leaf(LeafNode::with_capacity(config.leaf_capacity)));
        let mut fp = FastPathState::initial(root);
        if !mode.has_fast_path() {
            fp.leaf = None;
            fp.path.clear();
        }
        let metrics = MetricsRegistry::new(config.metrics_level);
        BpTree {
            arena,
            root,
            head: root,
            tail: root,
            height: 1,
            len: 0,
            config,
            mode,
            fp,
            metrics,
            tops_at_last_split: 0,
        }
    }

    /// Creates an empty tree with paper-default geometry.
    pub fn new(mode: FastPathMode) -> Self
    where
        V: 'static,
    {
        Self::with_config(mode, TreeConfig::paper_default())
    }

    /// Number of entries in the index.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the index holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 for a single root leaf).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The active fast-path mode.
    #[inline]
    pub fn mode(&self) -> FastPathMode {
        self.mode
    }

    /// The tree configuration.
    #[inline]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Operation counters (the registry's counter block).
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.metrics.counters
    }

    /// The full metrics registry: counters, latency histograms, and the
    /// fast-path window.
    #[inline]
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Point-in-time snapshot of everything the registry records. On the
    /// paged backend the pool's hit/fault/eviction counters are folded in
    /// first, so `page_faults`/`page_evictions`/`pool_hits` are current.
    #[inline]
    pub fn metrics(&self) -> crate::stats::StatsSnapshot {
        self.sync_pool_counters();
        self.metrics.snapshot()
    }

    /// True when nodes live in fixed-size pages behind the buffer pool
    /// ([`crate::StorageKind::Paged`]).
    #[inline]
    pub fn is_paged(&self) -> bool {
        self.arena.is_paged()
    }

    /// Decoded nodes currently resident in memory. Equals the live node
    /// count on the in-memory arena; on the paged backend it is bounded
    /// by the pool budget at operation boundaries (mid-operation it can
    /// overshoot by the nodes the operation touched).
    #[inline]
    pub fn resident_nodes(&self) -> usize {
        self.arena.resident()
    }

    /// Releases read-overshoot back to the pool budget. On the paged
    /// backend, `&self` reads fault pages in but never evict (eviction
    /// needs `&mut`); mutations trim at their own operation boundaries.
    /// After a long read burst, call this to drop residency back to the
    /// configured pool size. No-op on the in-memory arena.
    pub fn trim_residency(&mut self) {
        self.arena.begin_op();
    }

    /// Copies the arena's pool counters (if paged) into the registry's
    /// counter block, where snapshots and JSON export read them.
    pub(crate) fn sync_pool_counters(&self) {
        if let Some(pc) = self.arena.pool_counters() {
            self.metrics.counters.pool_hits.set(pc.hits.get());
            self.metrics.counters.page_faults.set(pc.faults.get());
            self.metrics.counters.page_evictions.set(pc.evictions.get());
        }
    }

    /// The current root-to-leaf path of the fast-path node (`fp_path`,
    /// Table 1), recomputed from parent links. Empty when the mode keeps no
    /// fast path.
    pub fn fp_path(&self) -> Vec<NodeId> {
        let Some(mut id) = self.fp.leaf else {
            return Vec::new();
        };
        let mut path = vec![id];
        while let Some(p) = self.arena.get(id).parent() {
            path.push(p);
            id = p;
        }
        path.reverse();
        path
    }

    /// Read-only snapshot of the fast-path metadata (observability for
    /// operators and the bench harness; Table 1 fields).
    pub fn fast_path_info(&self) -> FastPathInfo<K> {
        FastPathInfo {
            leaf: self.fp.leaf,
            min: self.fp.min,
            max: self.fp.max,
            size: self.fp.size,
            prev_min: self.fp.prev_min,
            prev_size: self.fp.prev_size,
            fails: self.fp.fails,
        }
    }

    /// Smallest key in the index.
    pub fn min_key(&self) -> Option<K> {
        let leaf = self.arena.get(self.head).as_leaf();
        leaf.keys.first().copied()
    }

    /// Largest key in the index.
    pub fn max_key(&self) -> Option<K> {
        let leaf = self.arena.get(self.tail).as_leaf();
        leaf.keys.last().copied()
    }

    // ------------------------------------------------------------------
    // Descent
    // ------------------------------------------------------------------

    /// Right-biased descent: finds the leaf where `key` would be inserted
    /// (duplicates go right). Returns the leaf and the separator bounds
    /// `[low, high)` that the tree guarantees for it; `None` bounds are
    /// unbounded. Increments `accesses` by the number of nodes touched.
    pub(crate) fn descend(&self, key: K) -> (NodeId, Option<K>, Option<K>, u64) {
        let mut id = self.root;
        let mut low: Option<K> = None;
        let mut high: Option<K> = None;
        let mut accesses = 1u64;
        loop {
            match self.arena.get(id) {
                Node::Leaf(_) => return (id, low, high, accesses),
                Node::Free => unreachable!("descent reached a freed node"),
                Node::Internal(n) => {
                    // child i covers [keys[i-1], keys[i])
                    let i = crate::layout::search_internal(self.config.search_kind, &n.keys, key);
                    if i > 0 {
                        low = Some(n.keys[i - 1]);
                    }
                    if i < n.keys.len() {
                        high = Some(n.keys[i]);
                    }
                    id = n.children[i];
                    accesses += 1;
                }
            }
        }
    }

    /// Locates an entry with key exactly `key`, walking back through the
    /// leaf chain when a duplicate run spans leaves. Returns `(leaf, slot)`.
    pub(crate) fn locate(&self, key: K) -> Option<(NodeId, usize)> {
        let (mut leaf_id, _, _, accesses) = self.descend(key);
        self.metrics
            .counters
            .lookup_node_accesses
            .add_shared(accesses);
        loop {
            let leaf = self.arena.get(leaf_id).as_leaf();
            let pos = crate::layout::search_leaf(self.config.search_kind, &leaf.keys, key);
            if pos < leaf.keys.len() && leaf.keys[pos] == key {
                // `pos` may be a gap slot whose filler copies a live `key`
                // instance to its right; step to the live slot (the filler
                // rule guarantees it carries the same key).
                let live = leaf
                    .gaps
                    .next_live(pos, leaf.keys.len())
                    .expect("last physical slot is always live");
                debug_assert_eq!(leaf.keys[live], key);
                return Some((leaf_id, live));
            }
            // The first entry >= key may live in an earlier leaf when a
            // duplicate run was split across nodes.
            if pos == 0 {
                if let Some(prev) = leaf.prev {
                    let pl = self.arena.get(prev).as_leaf();
                    if pl.keys.last().is_some_and(|&k| k >= key) {
                        self.metrics.counters.lookup_node_accesses.bump_shared();
                        leaf_id = prev;
                        continue;
                    }
                }
            }
            return None;
        }
    }

    // ------------------------------------------------------------------
    // Point reads
    // ------------------------------------------------------------------

    /// Point lookup: a reference to *a* value stored under `key`
    /// (the left-most match when duplicates exist).
    pub fn get(&self, key: K) -> Option<&V> {
        let t0 = self.metrics.op_timer();
        self.metrics.counters.lookups.bump_shared();
        let found = self.locate(key).map(|(leaf_id, pos)| {
            // locate returns the right-most reachable match leaf; step left
            // to the run head so `get` is deterministic under duplicates.
            let (leaf_id, pos) = self.run_head(leaf_id, pos, key);
            &self.arena.get(leaf_id).as_leaf().vals[pos]
        });
        self.metrics.record_get_latency(t0);
        found
    }

    /// True when at least one entry with `key` exists.
    pub fn contains_key(&self, key: K) -> bool {
        self.metrics.counters.lookups.bump_shared();
        self.locate(key).is_some()
    }

    /// All values stored under `key`, in insertion-order position.
    pub fn get_all(&self, key: K) -> Vec<&V> {
        self.metrics.counters.lookups.bump_shared();
        let mut out = Vec::new();
        let Some((leaf_id, pos)) = self.locate(key) else {
            return out;
        };
        let (mut leaf_id, mut pos) = self.run_head(leaf_id, pos, key);
        loop {
            let leaf = self.arena.get(leaf_id).as_leaf();
            while pos < leaf.keys.len() && leaf.keys[pos] == key {
                if !leaf.gaps.is_gap(pos) {
                    out.push(&leaf.vals[pos]);
                }
                pos += 1;
            }
            if pos < leaf.keys.len() {
                break;
            }
            match leaf.next {
                Some(next) if self.arena.get(next).as_leaf().keys.first() == Some(&key) => {
                    leaf_id = next;
                    pos = 0;
                }
                _ => break,
            }
        }
        out
    }

    /// Walks to the first *live* slot of the duplicate run containing
    /// `(leaf, pos)` for `key`.
    pub(crate) fn run_head(&self, mut leaf_id: NodeId, mut pos: usize, key: K) -> (NodeId, usize) {
        loop {
            let leaf = self.arena.get(leaf_id).as_leaf();
            while pos > 0 && leaf.keys[pos - 1] == key {
                pos -= 1;
            }
            if pos == 0 {
                if let Some(prev) = leaf.prev {
                    let pl = self.arena.get(prev).as_leaf();
                    // The last physical slot is always live, so equality here
                    // means a genuine entry of the run.
                    if pl.keys.last() == Some(&key) {
                        pos = pl.keys.len() - 1;
                        leaf_id = prev;
                        continue;
                    }
                }
            }
            // The back-walk may land on a gap filler copying `key`; the
            // first live slot at or after it is the true run head.
            let live = leaf
                .gaps
                .next_live(pos, leaf.keys.len())
                .expect("last physical slot is always live");
            debug_assert_eq!(leaf.keys[live], key);
            return (leaf_id, live);
        }
    }

    // ------------------------------------------------------------------
    // Memory accounting
    // ------------------------------------------------------------------

    /// Memory footprint the paged equivalent of this tree would use
    /// (Table 2 / Fig 10a).
    pub fn memory_report(&self) -> MemoryReport {
        let mut leaf_nodes = 0usize;
        let mut internal_nodes = 0usize;
        let mut occupied = 0usize;
        for (_, node) in self.arena.iter() {
            match node {
                Node::Leaf(l) => {
                    leaf_nodes += 1;
                    occupied += l.len();
                }
                Node::Internal(_) => internal_nodes += 1,
                Node::Free => {}
            }
        }
        let metadata_bytes = FastPathState::<K>::metadata_bytes(self.mode);
        let paged_bytes =
            (leaf_nodes + internal_nodes) * self.config.page_size_bytes + metadata_bytes;
        let avg_leaf_occupancy = if leaf_nodes == 0 {
            0.0
        } else {
            occupied as f64 / (leaf_nodes * self.config.leaf_capacity) as f64
        };
        MemoryReport {
            leaf_nodes,
            internal_nodes,
            paged_bytes,
            metadata_bytes,
            avg_leaf_occupancy,
        }
    }

    /// Number of live nodes (leaves + internals).
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Drops every entry, resetting the tree to a single empty root leaf.
    /// Metrics (counters, histograms, window) are preserved; the fast path
    /// re-arms on the fresh root.
    pub fn clear(&mut self)
    where
        V: 'static,
    {
        let config = self.config.clone();
        let mode = self.mode;
        let metrics = std::mem::replace(
            &mut self.metrics,
            MetricsRegistry::new(config.metrics_level),
        );
        *self = Self::with_config(mode, config);
        self.metrics = metrics;
    }

    /// Renders the tree structure as an indented outline (diagnostics; not
    /// for large trees). Keys are elided to first/last per node.
    pub fn dump_structure(&self) -> String {
        let mut out = String::new();
        self.dump_node(self.root, 0, &mut out);
        out
    }

    fn dump_node(&self, id: NodeId, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self.arena.get(id) {
            Node::Internal(n) => {
                let _ = writeln!(
                    out,
                    "{pad}internal {id:?}: {} keys [{:?} .. {:?}]",
                    n.keys.len(),
                    n.keys.first(),
                    n.keys.last()
                );
                for &c in &n.children {
                    self.dump_node(c, depth + 1, out);
                }
            }
            Node::Leaf(l) => {
                let marker = if self.fp.leaf == Some(id) {
                    " <- fast path"
                } else if self.fp.prev_id == Some(id) {
                    " <- pole_prev"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "{pad}leaf {id:?}: {}/{} entries [{:?} .. {:?}]{marker}",
                    l.len(),
                    self.config.leaf_capacity,
                    l.keys.first(),
                    l.keys.last()
                );
            }
            Node::Free => {
                let _ = writeln!(out, "{pad}FREED {id:?} (corruption)");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: FastPathMode) -> BpTree<u64, u64> {
        BpTree::with_config(mode, TreeConfig::small(4))
    }

    #[test]
    fn empty_tree_reads() {
        let t = tiny(FastPathMode::None);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert_eq!(t.get(42), None);
        assert!(!t.contains_key(42));
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);
        assert!(t.get_all(1).is_empty());
    }

    #[test]
    fn single_leaf_roundtrip() {
        let mut t = tiny(FastPathMode::None);
        t.insert(2, 20);
        t.insert(1, 10);
        t.insert(3, 30);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1), Some(&10));
        assert_eq!(t.get(2), Some(&20));
        assert_eq!(t.get(3), Some(&30));
        assert_eq!(t.get(4), None);
        assert_eq!(t.min_key(), Some(1));
        assert_eq!(t.max_key(), Some(3));
    }

    #[test]
    fn duplicates_collect_all() {
        let mut t = tiny(FastPathMode::None);
        for (i, k) in [5u64, 5, 5, 5, 5, 5, 5, 5, 5].iter().enumerate() {
            t.insert(*k, i as u64);
        }
        t.insert(1, 100);
        t.insert(9, 900);
        let vals = t.get_all(5);
        assert_eq!(vals.len(), 9);
        assert!(t.contains_key(5));
        assert_eq!(t.get_all(2).len(), 0);
    }

    #[test]
    fn fp_path_reaches_root() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(4));
        for k in 0..100 {
            t.insert(k, k);
        }
        let path = t.fp_path();
        assert_eq!(path.first().copied(), Some(t.root));
        assert_eq!(path.last().copied(), t.fp.leaf);
        assert_eq!(path.len(), t.height());
    }

    #[test]
    fn clear_resets_but_keeps_stats() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(4));
        for k in 0..100 {
            t.insert(k, k);
        }
        let fast = t.stats().fast_inserts.get();
        assert!(fast > 0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.stats().fast_inserts.get(), fast);
        t.check_invariants().unwrap();
        // Reusable after clear.
        t.insert(5, 50);
        assert_eq!(t.get(5), Some(&50));
    }

    #[test]
    fn dump_structure_mentions_fast_path() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(4));
        for k in 0..64 {
            t.insert(k, k);
        }
        let dump = t.dump_structure();
        assert!(dump.contains("internal"));
        assert!(dump.contains("leaf"));
        assert!(dump.contains("fast path"));
        assert!(!dump.contains("FREED"));
    }

    #[test]
    fn memory_report_counts_nodes() {
        let mut t = tiny(FastPathMode::None);
        for k in 0..64 {
            t.insert(k, k);
        }
        let m = t.memory_report();
        assert!(m.leaf_nodes >= 16, "leaves: {}", m.leaf_nodes);
        assert!(m.internal_nodes >= 1);
        assert!(m.avg_leaf_occupancy > 0.0 && m.avg_leaf_occupancy <= 1.0);
        assert_eq!(
            m.paged_bytes,
            (m.leaf_nodes + m.internal_nodes) * 4096 + m.metadata_bytes
        );
        assert_eq!(t.node_count(), m.leaf_nodes + m.internal_nodes);
    }
}

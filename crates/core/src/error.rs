//! The workspace-wide error type.
//!
//! Before 0.7.0 every crate surfaced failures its own way — `io::Result`
//! in `quit-durability`, `Result<(), String>` consistency checks,
//! panicking validators — which made a coherent public API (and a network
//! service's wire status codes) impossible. [`Error`] is the one error
//! type the facade exports; every fallible public API in the workspace
//! returns [`Result`], and `quit-service` maps wire status codes from
//! these variants one-to-one.
//!
//! The enum is `#[non_exhaustive]`: downstream `match`es need a wildcard
//! arm, which is what lets future subsystems add variants without a
//! breaking release.

use std::fmt;
use std::io;

/// Workspace-wide result alias: `quit_core::Result<T>`.
///
/// The facade re-exports this as `quick_insertion_tree::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified error type for every fallible public API in the QuIT
/// workspace.
///
/// Each variant corresponds to one wire status code in `quit-service`'s
/// binary protocol, so a networked caller sees exactly the taxonomy an
/// in-process caller does.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The write-ahead log rejected an operation (framing, rotation, or
    /// recovery-scan failures that are not plain I/O).
    Wal(String),
    /// Stored or received bytes failed validation: CRC mismatches, torn
    /// frames where none are legal, malformed wire messages, or a failed
    /// structural consistency check.
    Corruption(String),
    /// The WAL poisoned itself after an earlier append/fsync failure; no
    /// further mutations are accepted because durability can no longer be
    /// promised (see `quit-durability`'s failure-poisoning docs).
    Poisoned,
    /// An operating-system I/O error.
    Io(io::Error),
    /// An invalid configuration value or combination.
    Config(String),
    /// The target (service, shard worker, or connection) is shutting down
    /// and no longer accepts work.
    Shutdown,
    /// A transaction lost a first-committer-wins write-write conflict:
    /// another transaction committed to one of its write keys after this
    /// transaction's snapshot was taken. The losing transaction is rolled
    /// back; retry it on a fresh snapshot.
    Conflict(String),
    /// An operation was attempted on a transaction that already aborted
    /// (explicitly, by conflict, or by a commit-path failure).
    TxnAborted(String),
}

impl Error {
    /// Convenience constructor for [`Error::Wal`].
    pub fn wal(msg: impl Into<String>) -> Self {
        Error::Wal(msg.into())
    }

    /// Convenience constructor for [`Error::Corruption`].
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Convenience constructor for [`Error::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }

    /// Convenience constructor for [`Error::Conflict`].
    pub fn conflict(msg: impl Into<String>) -> Self {
        Error::Conflict(msg.into())
    }

    /// Convenience constructor for [`Error::TxnAborted`].
    pub fn txn_aborted(msg: impl Into<String>) -> Self {
        Error::TxnAborted(msg.into())
    }

    /// A stable, dependency-free discriminant name (`"wal"`, `"io"`, …) —
    /// what `quit-service` derives its wire status codes from and what
    /// log lines should print.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Wal(_) => "wal",
            Error::Corruption(_) => "corruption",
            Error::Poisoned => "poisoned",
            Error::Io(_) => "io",
            Error::Config(_) => "config",
            Error::Shutdown => "shutdown",
            Error::Conflict(_) => "conflict",
            Error::TxnAborted(_) => "txn-aborted",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Wal(msg) => write!(f, "WAL error: {msg}"),
            Error::Corruption(msg) => write!(f, "corruption detected: {msg}"),
            Error::Poisoned => write!(
                f,
                "WAL poisoned by an earlier I/O error; no further mutations are accepted"
            ),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Shutdown => write!(f, "shutting down"),
            Error::Conflict(msg) => write!(f, "write-write conflict: {msg}"),
            Error::TxnAborted(msg) => write!(f, "transaction aborted: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind_cover_every_variant() {
        let cases: Vec<(Error, &str, &str)> = vec![
            (Error::wal("segment gone"), "wal", "WAL error: segment gone"),
            (
                Error::corruption("bad crc"),
                "corruption",
                "corruption detected: bad crc",
            ),
            (
                Error::Poisoned,
                "poisoned",
                "WAL poisoned by an earlier I/O error; no further mutations are accepted",
            ),
            (
                Error::config("0 shards"),
                "config",
                "invalid configuration: 0 shards",
            ),
            (Error::Shutdown, "shutdown", "shutting down"),
            (
                Error::conflict("key 7"),
                "conflict",
                "write-write conflict: key 7",
            ),
            (
                Error::txn_aborted("user abort"),
                "txn-aborted",
                "transaction aborted: user abort",
            ),
        ];
        for (e, kind, display) in cases {
            assert_eq!(e.kind(), kind);
            assert_eq!(e.to_string(), display);
        }
    }

    #[test]
    fn io_errors_convert_and_chain() {
        fn fails() -> Result<()> {
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))?;
            Ok(())
        }
        let e = fails().unwrap_err();
        assert_eq!(e.kind(), "io");
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }
}

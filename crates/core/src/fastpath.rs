//! Fast-path modes and their metadata (paper Table 1).
//!
//! All four index variants of the evaluation share one tree; they differ only
//! in this module's [`FastPathMode`] and in which [`FastPathState`] fields
//! they maintain:
//!
//! | field             | tail | ℓiℓ | poℓe/QuIT |
//! |-------------------|------|-----|-----------|
//! | `leaf` (fp_id)    |  ✓¹  |  ✓  |  ✓        |
//! | `min`  (fp_min)   |  ✓   |  ✓  |  ✓        |
//! | `max`  (fp_max)   |      |  ✓  |  ✓        |
//! | `size` (fp_size)  |  ✓   |  ✓  |  ✓        |
//! | `prev_id/min/size`|      |     |  ✓        |
//! | `fails`           |      |     |  ✓        |
//!
//! ¹ tail mode reuses the tree's `tail_id`.

use crate::arena::NodeId;
use crate::key::Key;

/// Which fast-path optimization the tree runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FastPathMode {
    /// Classical B+-tree: every insert is a top-insert.
    None,
    /// Tail-leaf fast path (PostgreSQL-style): fast-insert keys that fall
    /// into the right-most leaf.
    Tail,
    /// Last-insertion-leaf (§3): the fast-path pointer follows the most
    /// recent insert, sorted or not.
    Lil,
    /// Predicted-ordered-leaf (§4): the pointer moves only on splits, under
    /// IKR guidance. With `TreeConfig::{variable_split, redistribute,
    /// reset_threshold}` enabled this is the full QuIT design; with them
    /// disabled it is the paper's "poℓe-B+-tree" ablation.
    Pole,
}

impl FastPathMode {
    /// True when the mode maintains any fast-path state at all.
    #[inline]
    pub fn has_fast_path(self) -> bool {
        !matches!(self, FastPathMode::None)
    }

    /// True for the poℓe-based modes (poℓe-B+-tree and QuIT).
    #[inline]
    pub fn is_pole(self) -> bool {
        matches!(self, FastPathMode::Pole)
    }
}

/// Fast-path metadata (Table 1). Less than 20 bytes beyond ℓiℓ's needs for
/// the poℓe fields, plus the cached root-to-leaf path.
#[derive(Clone, Debug)]
pub struct FastPathState<K> {
    /// The fast-path leaf (`fp_id`): tail leaf, ℓiℓ, or poℓe by mode.
    pub leaf: Option<NodeId>,
    /// Smallest key the fast-path leaf accepts (`fp_min`); `None` means
    /// unbounded below (left-most leaf).
    pub min: Option<K>,
    /// Exclusive upper bound (`fp_max`); `None` means unbounded above
    /// (the fast-path leaf is the tail, §4.2 omits the check).
    pub max: Option<K>,
    /// Cached occupancy of the fast-path leaf (`fp_size`).
    pub size: usize,
    /// Cached root-to-leaf path (`fp_path`), refreshed on splits; gives
    /// split propagation its ancestors without a re-descent. Kept for
    /// metadata parity with Table 1 — parent pointers are the operative
    /// mechanism in this implementation.
    pub path: Vec<NodeId>,
    /// `poℓe_prev` node id (poℓe modes only).
    pub prev_id: Option<NodeId>,
    /// Smallest key of `poℓe_prev` (`p` in Eq. 2).
    pub prev_min: Option<K>,
    /// Occupancy of `poℓe_prev` (`poℓe_prev_size` in Eq. 2).
    pub prev_size: usize,
    /// The node split off poℓe whose smallest key IKR judged an outlier;
    /// a later top-insert landing here can "catch up" (§4.2).
    pub pole_next: Option<NodeId>,
    /// Consecutive top-inserts since the last fast-insert (`poℓe_fails`);
    /// reaching `T_R` triggers the reset strategy (§4.3).
    pub fails: usize,
}

impl<K: Key> FastPathState<K> {
    /// State for a brand-new single-leaf tree: the root leaf is the fast
    /// path and accepts everything.
    pub fn initial(root_leaf: NodeId) -> Self {
        FastPathState {
            leaf: Some(root_leaf),
            min: None,
            max: None,
            size: 0,
            path: vec![root_leaf],
            prev_id: None,
            prev_min: None,
            prev_size: 0,
            pole_next: None,
            fails: 0,
        }
    }

    /// True when `key` falls inside the fast-path acceptance range
    /// `[fp_min, fp_max)`; missing bounds are unbounded.
    #[inline]
    pub fn covers(&self, key: K) -> bool {
        if self.leaf.is_none() {
            return false;
        }
        if let Some(min) = self.min {
            if key < min {
                return false;
            }
        }
        if let Some(max) = self.max {
            if key >= max {
                return false;
            }
        }
        true
    }

    /// Byte size of the metadata this variant keeps *beyond* a classical
    /// B+-tree's `root/head/tail` ids (Table 1 accounting; excludes the
    /// shared `fp_path` cache whose length is the tree height).
    pub fn metadata_bytes(mode: FastPathMode) -> usize {
        use std::mem::size_of;
        let id = size_of::<NodeId>();
        let key = size_of::<K>();
        let sz = size_of::<u32>(); // sizes fit u32 for any realistic fanout
        match mode {
            FastPathMode::None => 0,
            // fp_size + fp_min (tail reuses tail_id)
            FastPathMode::Tail => sz + key,
            // + fp_max + fp_id
            FastPathMode::Lil => sz + key + key + id,
            // + poℓe_prev_{size,min,id} + poℓe_fails
            FastPathMode::Pole => sz + key + key + id + sz + key + id + sz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_unbounded() {
        let fp: FastPathState<u64> = FastPathState::initial(NodeId(0));
        assert!(fp.covers(0));
        assert!(fp.covers(u64::MAX));
    }

    #[test]
    fn covers_half_open_range() {
        let mut fp: FastPathState<u64> = FastPathState::initial(NodeId(0));
        fp.min = Some(10);
        fp.max = Some(20);
        assert!(!fp.covers(9));
        assert!(fp.covers(10));
        assert!(fp.covers(19));
        assert!(!fp.covers(20));
    }

    #[test]
    fn covers_tail_has_no_upper_bound() {
        let mut fp: FastPathState<u64> = FastPathState::initial(NodeId(0));
        fp.min = Some(10);
        fp.max = None;
        assert!(fp.covers(u64::MAX));
        assert!(!fp.covers(9));
    }

    #[test]
    fn no_leaf_covers_nothing() {
        let mut fp: FastPathState<u64> = FastPathState::initial(NodeId(0));
        fp.leaf = None;
        assert!(!fp.covers(5));
    }

    #[test]
    fn metadata_fits_table_1_budget() {
        // Paper §4.3: "QuIT needs less than 20 bytes of additional metadata"
        // relative to the ℓiℓ variant, for 4-byte keys.
        let lil = FastPathState::<u32>::metadata_bytes(FastPathMode::Lil);
        let pole = FastPathState::<u32>::metadata_bytes(FastPathMode::Pole);
        assert!(pole - lil < 20, "poℓe adds {} bytes", pole - lil);
        assert_eq!(FastPathState::<u32>::metadata_bytes(FastPathMode::None), 0);
        let tail = FastPathState::<u32>::metadata_bytes(FastPathMode::Tail);
        assert!(tail < lil);
    }

    #[test]
    fn mode_predicates() {
        assert!(!FastPathMode::None.has_fast_path());
        assert!(FastPathMode::Tail.has_fast_path());
        assert!(FastPathMode::Pole.is_pole());
        assert!(!FastPathMode::Lil.is_pole());
    }
}

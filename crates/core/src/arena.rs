//! Slab arena for tree nodes.
//!
//! Nodes are addressed by [`NodeId`] indices into a `Vec` instead of by
//! references or `Rc<RefCell<…>>`. This sidesteps the borrow-checker
//! friction of linked tree structures entirely: parent/child/sibling links
//! are plain integers, mutation never aliases, and a node id stays valid for
//! the node's whole lifetime (splits create *new* nodes; they never move
//! existing ones).

use crate::node::Node;

/// Identifier of a node inside the tree's node arena. 4 bytes, `Copy`,
/// never invalidated while the node is live.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index into the arena's backing vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Slab of nodes with a free list. Freed slots are recycled so long delete
/// workloads do not grow the arena unboundedly.
#[derive(Debug)]
pub struct Arena<K, V> {
    slots: Vec<Node<K, V>>,
    free: Vec<u32>,
    live: usize,
}

impl<K, V> Arena<K, V> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty arena with room for `cap` nodes before reallocating.
    #[allow(dead_code)]
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Stores `node` and returns its id.
    pub fn alloc(&mut self, node: Node<K, V>) -> NodeId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = node;
            NodeId(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena overflow: > 2^32 nodes");
            self.slots.push(node);
            NodeId(idx)
        }
    }

    /// Releases `id`'s slot for reuse. The node's storage is dropped.
    pub fn free(&mut self, id: NodeId) {
        debug_assert!(!matches!(self.slots[id.index()], Node::Free));
        self.slots[id.index()] = Node::Free;
        self.free.push(id.0);
        self.live -= 1;
    }

    /// Immutable access. Panics on a freed or out-of-range id.
    #[inline]
    pub fn get(&self, id: NodeId) -> &Node<K, V> {
        let n = &self.slots[id.index()];
        debug_assert!(!matches!(n, Node::Free), "access to freed node {id:?}");
        n
    }

    /// Mutable access. Panics on a freed or out-of-range id.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> &mut Node<K, V> {
        let n = &mut self.slots[id.index()];
        debug_assert!(!matches!(n, Node::Free), "access to freed node {id:?}");
        n
    }

    /// Simultaneous mutable access to two distinct nodes (used by
    /// redistribution and merge, which move entries between siblings).
    pub fn get2_mut(&mut self, a: NodeId, b: NodeId) -> (&mut Node<K, V>, &mut Node<K, V>) {
        assert_ne!(a, b, "get2_mut requires distinct ids");
        let (lo, hi, swap) = if a.0 < b.0 {
            (a, b, false)
        } else {
            (b, a, true)
        };
        let (left, right) = self.slots.split_at_mut(hi.index());
        let lo_ref = &mut left[lo.index()];
        let hi_ref = &mut right[0];
        if swap {
            (hi_ref, lo_ref)
        } else {
            (lo_ref, hi_ref)
        }
    }

    /// Number of live (non-freed) nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no nodes are live.
    #[inline]
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + freed), i.e. high-water mark.
    #[inline]
    #[allow(dead_code)]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Iterates `(id, node)` over live nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node<K, V>)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, n)| !matches!(n, Node::Free))
            .map(|(i, n)| (NodeId(i as u32), n))
    }
}

impl<K, V> Default for Arena<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafNode;

    fn leaf(k: u64) -> Node<u64, u64> {
        let mut l = LeafNode::new();
        l.keys.push(k);
        l.vals.push(k);
        Node::Leaf(l)
    }

    #[test]
    fn alloc_get_roundtrip() {
        let mut a: Arena<u64, u64> = Arena::new();
        let id = a.alloc(leaf(7));
        match a.get(id) {
            Node::Leaf(l) => assert_eq!(l.keys, vec![7]),
            _ => panic!("expected leaf"),
        }
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn free_slots_are_recycled() {
        let mut a: Arena<u64, u64> = Arena::new();
        let id0 = a.alloc(leaf(1));
        let _id1 = a.alloc(leaf(2));
        a.free(id0);
        assert_eq!(a.len(), 1);
        let id2 = a.alloc(leaf(3));
        assert_eq!(id2, id0, "freed slot must be reused");
        assert_eq!(a.len(), 2);
        assert_eq!(a.slot_count(), 2);
    }

    #[test]
    fn get2_mut_both_orders() {
        let mut a: Arena<u64, u64> = Arena::new();
        let x = a.alloc(leaf(1));
        let y = a.alloc(leaf(2));
        {
            let (nx, ny) = a.get2_mut(x, y);
            nx.as_leaf_mut().keys[0] = 10;
            ny.as_leaf_mut().keys[0] = 20;
        }
        {
            let (ny, nx) = a.get2_mut(y, x);
            assert_eq!(ny.as_leaf().keys[0], 20);
            assert_eq!(nx.as_leaf().keys[0], 10);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn get2_mut_same_id_panics() {
        let mut a: Arena<u64, u64> = Arena::new();
        let x = a.alloc(leaf(1));
        let _ = a.get2_mut(x, x);
    }

    #[test]
    fn iter_skips_freed() {
        let mut a: Arena<u64, u64> = Arena::new();
        let x = a.alloc(leaf(1));
        let y = a.alloc(leaf(2));
        let z = a.alloc(leaf(3));
        a.free(y);
        let ids: Vec<NodeId> = a.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![x, z]);
    }
}

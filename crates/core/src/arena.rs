//! Node storage for trees: a slab arena, or paged frames behind a pool.
//!
//! Nodes are addressed by [`NodeId`] indices instead of by references or
//! `Rc<RefCell<…>>`. This sidesteps the borrow-checker friction of linked
//! tree structures entirely: parent/child/sibling links are plain
//! integers, mutation never aliases, and a node id stays valid for the
//! node's whole lifetime (splits create *new* nodes; they never move
//! existing ones).
//!
//! Since 0.10 the arena has two backends behind one API:
//!
//! * **Direct** (default, [`Arena::new`]) — the original slab: every
//!   node lives in a `Vec`, freed slots are recycled through a free
//!   list. This is the bit-for-bit paper-reproduction path.
//! * **Paged** ([`Arena::paged`], selected by
//!   `TreeConfig::with_storage`) — nodes live in fixed-size pages
//!   behind the buffer pool machinery of [`crate::paged`]: a bounded
//!   frame table of decoded nodes over a [`PageStore`], CLOCK eviction
//!   at operation boundaries ([`Arena::begin_op`]), and a page-file
//!   snapshot image for partly-lazy recovery. Id assignment (free-list
//!   reuse included) matches the slab exactly, so tree structure is
//!   identical across backends.

use crate::error::Error;
use crate::node::Node;
use crate::paged::PagedNodes;
use crate::pool::{PageStore, PoolCounters};

/// Identifier of a node inside the tree's node arena. 4 bytes, `Copy`,
/// never invalidated while the node is live.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index into the arena's backing vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The original slab: a `Vec` of nodes with a free list. Freed slots are
/// recycled so long delete workloads do not grow the arena unboundedly.
#[derive(Debug)]
struct Slab<K, V> {
    slots: Vec<Node<K, V>>,
    free: Vec<u32>,
    live: usize,
}

/// Which storage backs this arena.
#[derive(Debug)]
enum Backend<K, V> {
    Direct(Slab<K, V>),
    Paged(PagedNodes<K, V>),
}

/// Node storage with a slab (default) or paged backend; see the module
/// docs. The API is identical across backends — paged adds only
/// [`begin_op`](Self::begin_op) (a no-op for the slab) and the
/// image/counters accessors.
#[derive(Debug)]
pub struct Arena<K, V> {
    backend: Backend<K, V>,
}

impl<K, V> Arena<K, V> {
    /// An empty slab-backed arena.
    pub fn new() -> Self {
        Arena {
            backend: Backend::Direct(Slab {
                slots: Vec::new(),
                free: Vec::new(),
                live: 0,
            }),
        }
    }

    /// An empty slab-backed arena with room for `cap` nodes before
    /// reallocating.
    #[allow(dead_code)]
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            backend: Backend::Direct(Slab {
                slots: Vec::with_capacity(cap),
                free: Vec::new(),
                live: 0,
            }),
        }
    }

    /// Stores `node` and returns its id.
    pub fn alloc(&mut self, node: Node<K, V>) -> NodeId {
        match &mut self.backend {
            Backend::Direct(s) => {
                s.live += 1;
                if let Some(idx) = s.free.pop() {
                    s.slots[idx as usize] = node;
                    NodeId(idx)
                } else {
                    let idx = u32::try_from(s.slots.len()).expect("arena overflow: > 2^32 nodes");
                    s.slots.push(node);
                    NodeId(idx)
                }
            }
            Backend::Paged(p) => p.alloc(node),
        }
    }

    /// Releases `id`'s slot for reuse. The node's storage is dropped.
    pub fn free(&mut self, id: NodeId) {
        match &mut self.backend {
            Backend::Direct(s) => {
                debug_assert!(!matches!(s.slots[id.index()], Node::Free));
                s.slots[id.index()] = Node::Free;
                s.free.push(id.0);
                s.live -= 1;
            }
            Backend::Paged(p) => p.free(id),
        }
    }

    /// Immutable access. Panics on a freed or out-of-range id. On the
    /// paged backend this may fault the node in (never evicting — see
    /// [`begin_op`](Self::begin_op)).
    #[inline]
    pub fn get(&self, id: NodeId) -> &Node<K, V> {
        match &self.backend {
            Backend::Direct(s) => {
                let n = &s.slots[id.index()];
                debug_assert!(!matches!(n, Node::Free), "access to freed node {id:?}");
                n
            }
            Backend::Paged(p) => p.get(id),
        }
    }

    /// Mutable access. Panics on a freed or out-of-range id.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> &mut Node<K, V> {
        match &mut self.backend {
            Backend::Direct(s) => {
                let n = &mut s.slots[id.index()];
                debug_assert!(!matches!(n, Node::Free), "access to freed node {id:?}");
                n
            }
            Backend::Paged(p) => p.get_mut(id),
        }
    }

    /// Simultaneous mutable access to two distinct nodes (used by
    /// redistribution and merge, which move entries between siblings).
    pub fn get2_mut(&mut self, a: NodeId, b: NodeId) -> (&mut Node<K, V>, &mut Node<K, V>) {
        match &mut self.backend {
            Backend::Direct(s) => {
                assert_ne!(a, b, "get2_mut requires distinct ids");
                let (lo, hi, swap) = if a.0 < b.0 {
                    (a, b, false)
                } else {
                    (b, a, true)
                };
                let (left, right) = s.slots.split_at_mut(hi.index());
                let lo_ref = &mut left[lo.index()];
                let hi_ref = &mut right[0];
                if swap {
                    (hi_ref, lo_ref)
                } else {
                    (lo_ref, hi_ref)
                }
            }
            Backend::Paged(p) => p.get2_mut(a, b),
        }
    }

    /// Number of live (non-freed) nodes.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Direct(s) => s.live,
            Backend::Paged(p) => p.len(),
        }
    }

    /// True when no nodes are live.
    #[inline]
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (live + freed), i.e. high-water mark.
    #[inline]
    #[allow(dead_code)]
    pub fn slot_count(&self) -> usize {
        match &self.backend {
            Backend::Direct(s) => s.slots.len(),
            Backend::Paged(p) => p.slot_count(),
        }
    }

    /// Iterates `(id, node)` over live nodes. On the paged backend this
    /// faults every live node in (debug/validation path; residency is
    /// trimmed back at the next operation boundary).
    pub fn iter(&self) -> Box<dyn Iterator<Item = (NodeId, &Node<K, V>)> + '_> {
        match &self.backend {
            Backend::Direct(s) => Box::new(
                s.slots
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| !matches!(n, Node::Free))
                    .map(|(i, n)| (NodeId(i as u32), n)),
            ),
            Backend::Paged(p) => Box::new(p.iter()),
        }
    }

    /// Operation boundary hook: the tree calls this at the top of every
    /// `&mut self` operation. The slab ignores it; the paged backend
    /// releases the previous operation's implicit pins and runs CLOCK
    /// eviction down to its pool budget.
    #[inline]
    pub fn begin_op(&mut self) {
        if let Backend::Paged(p) = &mut self.backend {
            p.begin_op();
        }
    }

    /// Pool hit/fault/eviction counters — `None` on the slab backend.
    pub fn pool_counters(&self) -> Option<&PoolCounters> {
        match &self.backend {
            Backend::Direct(_) => None,
            Backend::Paged(p) => Some(p.counters()),
        }
    }

    /// True when nodes live in pages behind the buffer pool.
    pub fn is_paged(&self) -> bool {
        matches!(self.backend, Backend::Paged(_))
    }

    /// Decoded nodes currently resident (equals [`len`](Self::len) on the
    /// slab backend, where everything is always resident).
    pub fn resident(&self) -> usize {
        match &self.backend {
            Backend::Direct(s) => s.live,
            Backend::Paged(p) => p.resident(),
        }
    }

    /// Serializes a paged arena into its page-file snapshot image
    /// (`None` on the slab backend — use entry snapshots there).
    /// `&mut` because dirty frames flush to the store first.
    #[allow(clippy::wrong_self_convention)]
    pub fn to_image(&mut self) -> Option<Vec<u8>> {
        match &mut self.backend {
            Backend::Direct(_) => None,
            Backend::Paged(p) => Some(p.to_image()),
        }
    }
}

impl<K: 'static, V: 'static> Arena<K, V> {
    /// An empty paged arena over `store`: at most `pool_pages` decoded
    /// nodes stay resident between operations, one node per
    /// `page_size`-byte page. Panics if `K`/`V` are not plain-old-data
    /// or the geometry cannot fit a page (see [`crate::paged`]).
    pub fn paged(
        store: Box<dyn PageStore>,
        pool_pages: usize,
        page_size: usize,
        leaf_capacity: usize,
        internal_capacity: usize,
    ) -> Self {
        Arena {
            backend: Backend::Paged(PagedNodes::new(
                store,
                pool_pages,
                page_size,
                leaf_capacity,
                internal_capacity,
            )),
        }
    }

    /// Opens a paged arena from a page-file image written by
    /// [`to_image`](Self::to_image): integrity is validated eagerly
    /// (every page CRC), node decoding is lazy (pages fault on demand).
    pub fn from_image(
        image: &[u8],
        pool_pages: usize,
        leaf_capacity: usize,
        internal_capacity: usize,
    ) -> Result<Self, Error> {
        Ok(Arena {
            backend: Backend::Paged(PagedNodes::from_image(
                image,
                pool_pages,
                leaf_capacity,
                internal_capacity,
            )?),
        })
    }
}

impl<K, V> Default for Arena<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafNode;
    use crate::pool::MemPageStore;

    fn leaf(k: u64) -> Node<u64, u64> {
        let mut l = LeafNode::new();
        l.keys.push(k);
        l.vals.push(k);
        Node::Leaf(l)
    }

    fn both_backends() -> Vec<Arena<u64, u64>> {
        vec![
            Arena::new(),
            Arena::paged(Box::new(MemPageStore::new()), 4, 4096, 16, 16),
        ]
    }

    #[test]
    fn alloc_get_roundtrip() {
        for mut a in both_backends() {
            let id = a.alloc(leaf(7));
            match a.get(id) {
                Node::Leaf(l) => assert_eq!(l.keys, vec![7]),
                _ => panic!("expected leaf"),
            }
            assert_eq!(a.len(), 1);
        }
    }

    #[test]
    fn free_slots_are_recycled() {
        for mut a in both_backends() {
            let id0 = a.alloc(leaf(1));
            let _id1 = a.alloc(leaf(2));
            a.free(id0);
            assert_eq!(a.len(), 1);
            let id2 = a.alloc(leaf(3));
            assert_eq!(id2, id0, "freed slot must be reused");
            assert_eq!(a.len(), 2);
            assert_eq!(a.slot_count(), 2);
        }
    }

    #[test]
    fn get2_mut_both_orders() {
        for mut a in both_backends() {
            let x = a.alloc(leaf(1));
            let y = a.alloc(leaf(2));
            {
                let (nx, ny) = a.get2_mut(x, y);
                nx.as_leaf_mut().keys[0] = 10;
                ny.as_leaf_mut().keys[0] = 20;
            }
            {
                let (ny, nx) = a.get2_mut(y, x);
                assert_eq!(ny.as_leaf().keys[0], 20);
                assert_eq!(nx.as_leaf().keys[0], 10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn get2_mut_same_id_panics() {
        let mut a: Arena<u64, u64> = Arena::new();
        let x = a.alloc(leaf(1));
        let _ = a.get2_mut(x, x);
    }

    #[test]
    fn iter_skips_freed() {
        for mut a in both_backends() {
            let x = a.alloc(leaf(1));
            let y = a.alloc(leaf(2));
            let z = a.alloc(leaf(3));
            a.free(y);
            let ids: Vec<NodeId> = a.iter().map(|(id, _)| id).collect();
            assert_eq!(ids, vec![x, z]);
        }
    }

    #[test]
    fn begin_op_is_noop_on_slab_and_trims_paged() {
        let mut a: Arena<u64, u64> = Arena::new();
        a.alloc(leaf(1));
        a.begin_op();
        assert_eq!(a.len(), 1);
        assert!(a.pool_counters().is_none());
        assert!(!a.is_paged());
        assert!(a.to_image().is_none());

        let mut p: Arena<u64, u64> = Arena::paged(Box::new(MemPageStore::new()), 2, 4096, 16, 16);
        let ids: Vec<NodeId> = (0..5).map(|i| p.alloc(leaf(i))).collect();
        assert!(p.is_paged());
        p.begin_op();
        assert!(p.resident() <= 2);
        assert!(p.pool_counters().unwrap().evictions.get() >= 3);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.get(*id).as_leaf().keys[0], i as u64);
        }
        let image = p.to_image().unwrap();
        let q: Arena<u64, u64> = Arena::from_image(&image, 2, 16, 16).unwrap();
        assert_eq!(q.len(), 5);
        assert_eq!(q.get(ids[3]).as_leaf().keys[0], 3);
    }
}

//! Ordered-map conveniences on top of the tree: min/max access, floor and
//! ceiling lookups, pops, and collection-trait impls. These are plain
//! B+-tree reads — none of them interact with the fast path.

use crate::key::Key;

use crate::tree::BpTree;

impl<K: Key, V> BpTree<K, V> {
    /// The entry with the smallest key.
    pub fn first(&self) -> Option<(K, &V)> {
        let leaf = self.arena.get(self.head).as_leaf();
        leaf.keys.first().map(|&k| (k, &leaf.vals[0]))
    }

    /// The entry with the largest key.
    pub fn last(&self) -> Option<(K, &V)> {
        let leaf = self.arena.get(self.tail).as_leaf();
        let i = leaf.keys.len().checked_sub(1)?;
        Some((leaf.keys[i], &leaf.vals[i]))
    }

    /// The largest entry with key `<= key` (floor).
    pub fn floor(&self, key: K) -> Option<(K, &V)> {
        self.metrics.counters.lookups.bump_shared();
        let (leaf_id, _, _, accesses) = self.descend(key);
        self.metrics
            .counters
            .lookup_node_accesses
            .add_shared(accesses);
        let mut leaf_id = leaf_id;
        loop {
            let leaf = self.arena.get(leaf_id).as_leaf();
            let pos = leaf.keys.partition_point(|k| *k <= key);
            if pos > 0 {
                return Some((leaf.keys[pos - 1], &leaf.vals[pos - 1]));
            }
            // Everything in this leaf is > key: the floor (if any) is the
            // last entry of an earlier leaf.
            match leaf.prev {
                Some(prev) => {
                    self.metrics.counters.lookup_node_accesses.bump_shared();
                    leaf_id = prev;
                }
                None => return None,
            }
        }
    }

    /// The smallest entry with key `>= key` (ceiling).
    pub fn ceiling(&self, key: K) -> Option<(K, &V)> {
        self.metrics.counters.lookups.bump_shared();
        let (leaf_id, _, _, accesses) = self.descend(key);
        self.metrics
            .counters
            .lookup_node_accesses
            .add_shared(accesses);
        // Duplicate runs equal to `key` may begin in earlier leaves; walk
        // back like `locate` does so the returned entry is the run head.
        let mut leaf_id = leaf_id;
        loop {
            let leaf = self.arena.get(leaf_id).as_leaf();
            let pos = leaf.keys.partition_point(|k| *k < key);
            if pos < leaf.keys.len() {
                if pos == 0 {
                    if let Some(prev) = leaf.prev {
                        let pl = self.arena.get(prev).as_leaf();
                        if pl.keys.last().is_some_and(|&k| k >= key) {
                            self.metrics.counters.lookup_node_accesses.bump_shared();
                            leaf_id = prev;
                            continue;
                        }
                    }
                }
                return Some((leaf.keys[pos], &leaf.vals[pos]));
            }
            // Leaf entirely below `key`: ceiling lives in the next leaf.
            match leaf.next {
                Some(next) => {
                    self.metrics.counters.lookup_node_accesses.bump_shared();
                    leaf_id = next;
                }
                None => return None,
            }
        }
    }
}

// Pops delete and extension inserts; both ingestion and removal carry the
// `V: Clone` bound of the gapped layout (see `crate::layout`).
impl<K: Key, V: Clone> BpTree<K, V> {
    /// Removes and returns the smallest entry.
    pub fn pop_first(&mut self) -> Option<(K, V)> {
        let k = self.min_key()?;
        let v = self.delete(k)?;
        Some((k, v))
    }

    /// Removes and returns the largest entry.
    pub fn pop_last(&mut self) -> Option<(K, V)> {
        let k = self.max_key()?;
        let v = self.delete(k)?;
        Some((k, v))
    }
}

impl<K: Key, V: Clone> Extend<(K, V)> for BpTree<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TreeConfig;
    use crate::fastpath::FastPathMode;
    use crate::tree::BpTree;

    fn filled() -> BpTree<u64, u64> {
        let mut t = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(4));
        t.extend((0..100u64).map(|k| (k * 10, k)));
        t
    }

    #[test]
    fn first_and_last() {
        let t = filled();
        assert_eq!(t.first(), Some((0, &0)));
        assert_eq!(t.last(), Some((990, &99)));
        let empty: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        assert_eq!(empty.first(), None);
        assert_eq!(empty.last(), None);
    }

    #[test]
    fn floor_semantics() {
        let t = filled();
        assert_eq!(t.floor(250).map(|e| e.0), Some(250)); // exact hit
        assert_eq!(t.floor(255).map(|e| e.0), Some(250)); // between keys
        assert_eq!(t.floor(99_999).map(|e| e.0), Some(990)); // above max
        assert_eq!(t.floor(0).map(|e| e.0), Some(0));
        // floor below the minimum is absent — 0 is the min key, so probe
        // with a tree shifted up.
        let mut t2: BpTree<u64, u64> =
            BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        t2.extend((10..20u64).map(|k| (k, k)));
        assert_eq!(t2.floor(9), None);
    }

    #[test]
    fn ceiling_semantics() {
        let t = filled();
        assert_eq!(t.ceiling(250).map(|e| e.0), Some(250));
        assert_eq!(t.ceiling(255).map(|e| e.0), Some(260));
        assert_eq!(t.ceiling(0).map(|e| e.0), Some(0));
        assert_eq!(t.ceiling(991), None);
    }

    #[test]
    fn floor_ceiling_with_duplicates() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        for i in 0..20u64 {
            t.insert(50, i);
        }
        t.insert(10, 0);
        t.insert(90, 0);
        // Ceiling of 50 must return the *first* duplicate (value 0 slot is
        // position-dependent; assert on the key and run head stability).
        assert_eq!(t.ceiling(11).map(|e| e.0), Some(50));
        assert_eq!(t.floor(89).map(|e| e.0), Some(50));
        assert_eq!(t.ceiling(50).map(|e| e.0), Some(50));
    }

    #[test]
    fn pops_drain_in_order() {
        let mut t = filled();
        assert_eq!(t.pop_first(), Some((0, 0)));
        assert_eq!(t.pop_first(), Some((10, 1)));
        assert_eq!(t.pop_last(), Some((990, 99)));
        assert_eq!(t.len(), 97);
        let mut last = 0;
        while let Some((k, _)) = t.pop_first() {
            assert!(k >= last);
            last = k;
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn extend_matches_inserts() {
        let mut a: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(8));
        a.extend([(3u64, 30u64), (1, 10), (2, 20)]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(2), Some(&20));
    }
}

//! Ingestion: top-inserts and the three fast paths.
//!
//! * `insert_tail` — PostgreSQL-style tail-leaf fast path (§2).
//! * `insert_lil` — last-insertion-leaf (§3, Fig 4).
//! * `insert_pole` — predicted-ordered-leaf, Algorithm 1, with the QuIT
//!   extensions of Algorithm 2 (variable split / redistribute) and the §4.3
//!   reset strategy dispatched from [`BpTree::handle_full_pole`].

use crate::arena::NodeId;
use crate::fastpath::FastPathMode;
use crate::ikr::{ikr_bound, split_bound};
use crate::key::Key;
use crate::stats::Stats;
use crate::tree::BpTree;

impl<K: Key, V> BpTree<K, V> {
    #[inline]
    pub(crate) fn leaf_len(&self, id: NodeId) -> usize {
        self.arena.get(id).as_leaf().len()
    }

    /// §4.3 reset strategy (and delete-path repair): re-point poℓe at
    /// `leaf` with separator bounds `[low, high)`, adopting its chain
    /// predecessor as `poℓe_prev`.
    pub(crate) fn repoint_pole(&mut self, leaf: NodeId, low: Option<K>, high: Option<K>) {
        self.fp.leaf = Some(leaf);
        self.fp.min = low;
        self.fp.max = high;
        self.fp.size = self.leaf_len(leaf);
        let prev = self.arena.get(leaf).as_leaf().prev;
        self.fp.prev_id = prev;
        match prev {
            Some(p) => {
                let pl = self.arena.get(p).as_leaf();
                self.fp.prev_min = pl.keys.first().copied();
                self.fp.prev_size = pl.len();
            }
            None => {
                self.fp.prev_min = None;
                self.fp.prev_size = 0;
            }
        }
        self.fp.pole_next = None;
        self.fp.fails = 0;
    }
}

// Ingestion requires `V: Clone` because gapped leaves materialize filler
// copies (split-time regap, gap-ifying removals); the dense paper path
// never clones, but the bound is uniform so layouts stay swappable.
impl<K: Key, V: Clone> BpTree<K, V> {
    /// Inserts an entry. Duplicate keys are allowed (this is an index, not a
    /// map); the new entry lands after existing equal keys.
    pub fn insert(&mut self, key: K, value: V) {
        // Operation boundary: under paged storage, release the previous
        // operation's implicit pins and trim residency to the pool budget.
        self.arena.begin_op();
        let t0 = self.metrics.op_timer();
        match self.mode {
            FastPathMode::None => {
                self.top_insert(key, value);
            }
            FastPathMode::Tail => self.insert_tail(key, value),
            FastPathMode::Lil => self.insert_lil(key, value),
            FastPathMode::Pole => self.insert_pole(key, value),
        }
        self.len += 1;
        self.metrics.record_insert_latency(t0);
    }

    /// Places the entry in `leaf_id` at its sorted slot (after duplicates).
    /// The leaf must have room.
    pub(crate) fn insert_entry(&mut self, leaf_id: NodeId, key: K, value: V) {
        let kind = self.config.search_kind;
        let cap = self.config.leaf_capacity;
        let leaf = self.arena.get_mut(leaf_id).as_leaf_mut();
        debug_assert!(leaf.len() < cap);
        match crate::layout::insert_at(
            kind,
            &mut leaf.keys,
            &mut leaf.vals,
            &mut leaf.gaps,
            key,
            value,
            cap,
        ) {
            crate::layout::SlotInsert::Done(_) => {}
            crate::layout::SlotInsert::Full => unreachable!("caller ensures room"),
        }
    }

    /// Classical root-to-leaf insert. Returns the accepting leaf and its
    /// separator bounds after any split, so fast-path callers can adopt it.
    pub(crate) fn top_insert(&mut self, key: K, value: V) -> (NodeId, Option<K>, Option<K>) {
        let (mut leaf_id, mut low, mut high, _) = self.descend(key);
        if self.leaf_len(leaf_id) >= self.config.leaf_capacity {
            let (right, sep) = self.split_leaf_default(leaf_id);
            if key >= sep {
                leaf_id = right;
                low = Some(sep);
            } else {
                high = Some(sep);
            }
        }
        self.insert_entry(leaf_id, key, value);
        Stats::bump(&self.metrics.counters.top_inserts);
        self.metrics.record_insert_outcome(false);
        (leaf_id, low, high)
    }

    // ------------------------------------------------------------------
    // tail
    // ------------------------------------------------------------------

    fn insert_tail(&mut self, key: K, value: V) {
        let accepted = self.fp.min.is_none_or(|m| key >= m);
        if !accepted {
            self.top_insert(key, value);
            return;
        }
        let mut target = self.tail;
        if self.leaf_len(target) >= self.config.leaf_capacity {
            let (right, sep) = self.split_leaf_default(target);
            // split_leaf_at advanced self.tail to the new right node.
            self.fp.leaf = Some(self.tail);
            self.fp.min = Some(sep);
            if key >= sep {
                target = right;
            }
        }
        self.insert_entry(target, key, value);
        self.fp.size = self.leaf_len(self.tail);
        Stats::bump(&self.metrics.counters.fast_inserts);
        self.metrics.record_insert_outcome(true);
    }

    // ------------------------------------------------------------------
    // ℓiℓ
    // ------------------------------------------------------------------

    fn insert_lil(&mut self, key: K, value: V) {
        if self.fp.covers(key) {
            let mut target = self.fp.leaf.expect("covers implies a leaf");
            if self.leaf_len(target) >= self.config.leaf_capacity {
                let (right, sep) = self.split_leaf_default(target);
                if key >= sep {
                    // Fig 4d: the key lands in the new node — ℓiℓ follows it.
                    target = right;
                    self.fp.leaf = Some(right);
                    self.fp.min = Some(sep);
                } else {
                    // Fig 4e: ℓiℓ stays; only its upper bound tightens.
                    self.fp.max = Some(sep);
                }
            }
            self.insert_entry(target, key, value);
            self.fp.size = self.leaf_len(target);
            Stats::bump(&self.metrics.counters.fast_inserts);
            self.metrics.record_insert_outcome(true);
        } else {
            // Fig 4b: top-insert, then re-point ℓiℓ at the accepting leaf.
            let (leaf, low, high) = self.top_insert(key, value);
            self.fp.leaf = Some(leaf);
            self.fp.min = low;
            self.fp.max = high;
            self.fp.size = self.leaf_len(leaf);
        }
    }

    // ------------------------------------------------------------------
    // poℓe / QuIT (Algorithm 1)
    // ------------------------------------------------------------------

    fn insert_pole(&mut self, key: K, value: V) {
        if self.fp.covers(key) {
            // Algorithm 1 lines 1–9: fast-insert, splitting first if full.
            let pole = self.fp.leaf.expect("covers implies a leaf");
            let target = if self.leaf_len(pole) >= self.config.leaf_capacity {
                self.handle_full_pole(key)
            } else {
                pole
            };
            self.insert_entry(target, key, value);
            if Some(target) == self.fp.leaf {
                self.fp.size = self.leaf_len(target);
            }
            // Note: `poℓe_prev_{min,size}` are *memoized* at poℓe-split
            // time (Table 1 metadata), not live-synced — the density basis
            // Eq. 2 extrapolates from must stay the one observed between
            // two known non-outliers, or oscillating workloads collapse it.
            self.fp.fails = 0;
            Stats::bump(&self.metrics.counters.fast_inserts);
            self.metrics.record_insert_outcome(true);
        } else {
            // Algorithm 1 lines 10–14: top-insert, then try to catch up.
            let (lt, low, high) = self.top_insert(key, value);
            // The catch-up target is the poℓe's chain successor: when a
            // split predicted outliers, `poℓe_next` IS that successor, and
            // after a reset onto an interior leaf the successor is where the
            // in-order stream lands when it crosses the poℓe's upper bound.
            let chain_next = self.fp.leaf.and_then(|p| self.arena.get(p).as_leaf().next);
            if chain_next == Some(lt) && self.try_catch_up(key, lt, low, high) {
                return;
            }
            self.fp.fails += 1;
            if let Some(tr) = self.config.reset_threshold {
                if self.fp.fails >= tr {
                    Stats::bump(&self.metrics.counters.fp_resets);
                    self.repoint_pole(lt, low, high);
                }
            }
        }
    }

    /// §4.2 "Catching Up to Predicted Outliers": a top-insert landed in the
    /// node right after poℓe; if its key is no longer an IKR outlier,
    /// promote that node to poℓe. Returns true when promoted.
    ///
    /// The density basis here is the poℓe node's *own* span: its smallest
    /// and largest keys are both known non-outliers (every entry was
    /// accepted in order), so `x = q + (max − q) · scale` is Eq. 2
    /// instantiated over the poℓe itself. Unlike the split-time estimate it
    /// tracks density regime changes — crucial for real-world keys whose
    /// density varies by orders of magnitude (e.g. volume-at-price in stock
    /// streams).
    fn try_catch_up(&mut self, key: K, lt: NodeId, low: Option<K>, high: Option<K>) -> bool {
        let Some(pole) = self.fp.leaf else {
            return false;
        };
        let pl = self.arena.get(pole).as_leaf();
        let (Some(&q), Some(&m)) = (pl.keys.first(), pl.keys.last()) else {
            return false;
        };
        let span = (m.to_ikr() - q.to_ikr()).max(0.0);
        let x = q.to_ikr() + span * self.config.ikr_scale;
        if key.to_ikr() > x {
            return false;
        }
        let pole_len = pl.len();
        self.fp.prev_id = Some(pole);
        self.fp.prev_min = Some(q);
        self.fp.prev_size = pole_len;
        self.fp.leaf = Some(lt);
        self.fp.min = low;
        self.fp.max = high;
        self.fp.size = self.leaf_len(lt);
        self.fp.pole_next = None;
        self.fp.fails = 0;
        Stats::bump(&self.metrics.counters.pole_catch_ups);
        true
    }

    // ------------------------------------------------------------------
    // Full poℓe: Algorithm 2 (QuIT) or the default split of Algorithm 1
    // ------------------------------------------------------------------

    /// Handles a fast-insert arriving at a full poℓe node. Splits (variable
    /// or 50/50) or redistributes, updates every fast-path metadata field,
    /// and returns the leaf that must receive `key` (guaranteed non-full).
    fn handle_full_pole(&mut self, key: K) -> NodeId {
        let pole = self.fp.leaf.expect("handle_full_pole requires a poℓe");
        let plen = self.leaf_len(pole);
        let q = self.arena.get(pole).as_leaf().keys[0];
        let def = self.config.def_split_pos();

        if self.config.variable_split {
            if let (Some(prev_id), Some(p)) = (self.fp.prev_id, self.fp.prev_min) {
                if self.fp.prev_size >= def && self.fp.prev_size > 0 {
                    return self.variable_split_pole(key, pole, plen, p, q, def);
                }
                if self.config.redistribute && self.fp.prev_size < def {
                    // Fig 7c: refill poℓe_prev to exactly half before using
                    // IKR again. The physical move is sized from the node's
                    // *actual* occupancy (the metadata is a memo and may
                    // lag); chain adjacency is required so order holds.
                    let adjacent = self.arena.get(prev_id).as_leaf().next == Some(pole);
                    if adjacent {
                        let actual_prev = self.leaf_len(prev_id);
                        let move_count = def.saturating_sub(actual_prev);
                        if move_count >= 1 && move_count < plen {
                            self.redistribute_to_prev(pole, prev_id, move_count);
                            self.fp.prev_size = def;
                            let new_min = self.arena.get(pole).as_leaf().keys[0];
                            self.fp.min = Some(new_min);
                            self.fp.size = self.leaf_len(pole);
                            return if key >= new_min { pole } else { prev_id };
                        }
                        if move_count == 0 {
                            // The predecessor is already at least half full
                            // (the memo lagged): refresh it and use IKR.
                            self.fp.prev_size = actual_prev;
                            return self.variable_split_pole(key, pole, plen, p, q, def);
                        }
                    }
                }
            }
        }

        // Default 50/50 split with the Algorithm 1 poℓe-update rule.
        let (right, sep) = self.split_leaf_at(pole, plen / 2);
        let promote = match self.fp.prev_min {
            // Fig 6: move poℓe iff the split key r is not an IKR outlier.
            Some(p) if self.fp.prev_size > 0 => {
                sep.to_ikr() <= ikr_bound(p, q, self.fp.prev_size, plen, self.config.ikr_scale)
            }
            // Initialization (§4.2): no poℓe_prev yet — mark the leaf that
            // receives the latest insert.
            _ => key >= sep,
        };
        if promote {
            self.fp.prev_id = Some(pole);
            self.fp.prev_min = Some(q);
            self.fp.prev_size = plen / 2;
            self.fp.leaf = Some(right);
            self.fp.min = Some(sep);
            // A previously predicted outlier node stays the poℓe's right
            // neighbour after this split, so keep it as the catch-up target.
        } else {
            self.fp.max = Some(sep);
            self.fp.pole_next = Some(right);
        }
        self.fp.size = self.leaf_len(self.fp.leaf.expect("poℓe survives split"));
        if key >= sep {
            right
        } else {
            pole
        }
    }

    /// Algorithm 2 lines 3–8: IKR-guided variable split of the poℓe node.
    fn variable_split_pole(
        &mut self,
        key: K,
        pole: NodeId,
        plen: usize,
        p: K,
        q: K,
        def: usize,
    ) -> NodeId {
        // Position of the first predicted outlier (`l`). l >= 1 since the
        // envelope always admits q itself.
        let l = {
            let keys = &self.arena.get(pole).as_leaf().keys;
            match self.config.split_bound_rule {
                // Eq. 2 applied per position: the key in slot i must lie
                // within the density envelope extrapolated i+1 entries past
                // q (`poℓe_size` = the prefix length it closes). This reads
                // "the first key greater than the estimated acceptable
                // value lower bound" cumulatively, so an out-of-order entry
                // that merely *rides* close ahead of the in-order frontier
                // is cut off exactly at the frontier.
                crate::config::SplitBoundRule::Eq2 => {
                    let density = (q.to_ikr() - p.to_ikr()) / self.fp.prev_size as f64;
                    let step = density * self.config.ikr_scale;
                    let base = q.to_ikr();
                    let mut l = 1usize;
                    while l < keys.len() && keys[l].to_ikr() <= base + step * (l + 1) as f64 {
                        l += 1;
                    }
                    l
                }
                // The expression literally printed in Algorithm 2 line 4: a
                // flat bound without the poℓe_size factor.
                crate::config::SplitBoundRule::Literal => {
                    let x = split_bound(
                        p,
                        q,
                        self.fp.prev_size,
                        plen,
                        self.config.ikr_scale,
                        self.config.split_bound_rule,
                    );
                    keys.partition_point(|k| k.to_ikr() <= x).max(1)
                }
            }
        };
        Stats::bump(&self.metrics.counters.variable_splits);
        if l > def {
            // Few outliers (Fig 7a): split at l−1, carrying one in-order
            // entry into the new node, which becomes poℓe. The fill cap
            // (§5.2.1 tuning note) bounds how packed the left node is left,
            // trading space for fewer future split propagations.
            let fill_cap = ((plen as f64) * self.config.max_variable_fill).floor() as usize;
            let mut pos = (l - 1).min(plen - 1).min(fill_cap.max(def));
            if self.config.node_layout == crate::layout::NodeLayoutKind::Gapped {
                // Leave ⌊√cap⌋ slots of physical headroom in the left
                // node: the tight variable fill would hand split-time
                // regap `cap - pos <= 1` free slots, so the leaves a
                // near-sorted stream leaves behind — exactly where IKR
                // predicts stragglers to land — would have no absorption
                // capacity at all.
                let want = (self.config.leaf_capacity as f64).sqrt().floor() as usize;
                pos = pos.min(plen.saturating_sub(want).max(def));
            }
            let (right, sep) = self.split_leaf_at(pole, pos);
            self.fp.prev_id = Some(pole);
            self.fp.prev_min = Some(q);
            self.fp.prev_size = pos;
            self.fp.leaf = Some(right);
            // `inject-split-bug` (testkit mutation smoke check only) leaves
            // the stale pre-split lower bound in place, so a later key in
            // `[old_min, sep)` fast-inserts into the right node below its
            // separator — exactly the class of bound bug the differential
            // oracle must catch and shrink.
            #[cfg(not(feature = "inject-split-bug"))]
            {
                self.fp.min = Some(sep);
            }
            // Keep any outstanding poℓe_next: it is still the right
            // neighbour of the advanced poℓe.
            self.fp.size = self.leaf_len(right);
            if key >= sep {
                right
            } else {
                pole
            }
        } else {
            // Mostly outliers (Fig 7b): split at l, moving every outlier to
            // the new node; poℓe keeps its in-order prefix and its pointer.
            let (right, sep) = self.split_leaf_at(pole, l);
            self.fp.max = Some(sep);
            self.fp.pole_next = Some(right);
            self.fp.size = self.leaf_len(pole);
            if key >= sep {
                right
            } else {
                pole
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TreeConfig;
    use crate::fastpath::FastPathMode;
    use crate::tree::BpTree;

    fn tree(mode: FastPathMode, cap: usize) -> BpTree<u64, u64> {
        BpTree::with_config(mode, TreeConfig::small(cap))
    }

    #[test]
    fn sorted_ingest_is_all_fast_for_every_fast_mode() {
        for mode in [FastPathMode::Tail, FastPathMode::Lil, FastPathMode::Pole] {
            let mut t = tree(mode, 8);
            for k in 0..1000u64 {
                t.insert(k, k);
            }
            assert_eq!(t.stats().top_inserts.get(), 0, "{mode:?}");
            assert_eq!(t.stats().fast_inserts.get(), 1000, "{mode:?}");
            for k in (0..1000).step_by(97) {
                assert_eq!(t.get(k), Some(&k));
            }
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn classic_mode_never_fast_inserts() {
        let mut t = tree(FastPathMode::None, 8);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        assert_eq!(t.stats().fast_inserts.get(), 0);
        assert_eq!(t.stats().top_inserts.get(), 100);
    }

    #[test]
    fn tail_goes_stale_after_outliers() {
        // Fig 3's phenomenon: once outliers fill the tail leaf, near-sorted
        // keys can no longer use the tail fast path.
        let cap = 8;
        let mut t = tree(FastPathMode::Tail, cap);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        // One leaf's worth of far-future outliers strands the tail.
        for k in 0..cap as u64 {
            t.insert(1_000_000 + k, 0);
        }
        let top_before = t.stats().top_inserts.get();
        for k in 100..200u64 {
            t.insert(k, k);
        }
        let top_after = t.stats().top_inserts.get();
        assert_eq!(top_after - top_before, 100, "tail must be stale");
        t.check_invariants().unwrap();
    }

    #[test]
    fn lil_recovers_after_an_outlier() {
        let mut t = tree(FastPathMode::Lil, 8);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        t.insert(5, 5); // outlier: top-insert, ℓiℓ moves to the wrong leaf
        let top1 = t.stats().top_inserts.get();
        t.insert(100, 100); // next in-order entry: one more top-insert…
        let top2 = t.stats().top_inserts.get();
        assert_eq!(top2 - top1, 1, "ℓiℓ pays one extra top-insert");
        t.insert(101, 101); // …after which the fast path works again
        assert_eq!(t.stats().top_inserts.get(), top2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn pole_absorbs_outliers_with_one_top_insert_each() {
        // The §3 headroom argument: poℓe should pay exactly one top-insert
        // per out-of-order entry, where ℓiℓ pays two.
        let mut t = tree(FastPathMode::Pole, 8);
        for k in 0..1000u64 {
            t.insert(k, k);
            if k % 100 == 50 {
                t.insert(k / 2, 0); // out-of-order entry
            }
        }
        let tops = t.stats().top_inserts.get();
        assert_eq!(tops, 10, "one top-insert per outlier, got {tops}");
        t.check_invariants().unwrap();
    }

    #[test]
    fn pole_catch_up_promotes_pole_next() {
        // §4.2's catch-up scenario: outliers split off into poℓe_next, the
        // in-order stream keeps filling poℓe, and when it finally reaches
        // the outlier range a top-insert lands in poℓe_next and promotes it.
        let mut t: BpTree<u64, u64> = BpTree::with_config(
            FastPathMode::Pole,
            TreeConfig::small(8)
                .with_variable_split(false)
                .with_reset_threshold(None),
        );
        // Dense run establishes density 1 and a tail poℓe.
        for k in 0..12u64 {
            t.insert(k, k);
        }
        // Outliers land in the tail poℓe (no upper bound), force a split,
        // and IKR marks the new node an outlier node: poℓe stays put.
        for k in [300u64, 301, 302, 303] {
            t.insert(k, k);
        }
        // The in-order stream continues and eventually reaches 300: that
        // insert is beyond fp_max, top-inserts into poℓe_next, passes IKR,
        // and poℓe catches up.
        for k in 12..320u64 {
            t.insert(k, k);
        }
        assert!(
            t.stats().pole_catch_ups.get() >= 1,
            "expected a catch-up promotion"
        );
        // After catching up the fast path serves the stream again.
        t.stats().reset();
        for k in 320..360u64 {
            t.insert(k, k);
        }
        assert!(t.stats().fast_inserts.get() >= 30);
        t.check_invariants().unwrap();
    }

    #[test]
    fn quit_reset_recovers_from_scrambled_segment() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = tree(FastPathMode::Pole, 8); // full QuIT config
                                                 // Sorted segment.
        for k in 0..500u64 {
            t.insert(k, k);
        }
        // Scrambled segment in a disjoint key range.
        let mut scram: Vec<u64> = (10_000..10_500).collect();
        scram.shuffle(&mut rng);
        for k in scram {
            t.insert(k, k);
        }
        // New sorted segment beyond everything: reset must re-arm the pole.
        let fast_before = t.stats().fast_inserts.get();
        for k in 20_000..20_500u64 {
            t.insert(k, k);
        }
        let gained = t.stats().fast_inserts.get() - fast_before;
        assert!(
            gained > 400,
            "reset should restore fast path; only {gained} fast inserts"
        );
        assert!(t.stats().fp_resets.get() >= 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn pole_without_reset_stays_stale() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let mut t: BpTree<u64, u64> = BpTree::with_config(
            FastPathMode::Pole,
            TreeConfig::small(8).with_reset_threshold(None),
        );
        for k in 0..500u64 {
            t.insert(k, k);
        }
        let mut scram: Vec<u64> = (10_000..10_500).collect();
        scram.shuffle(&mut rng);
        for k in scram {
            t.insert(k, k);
        }
        let fast_before = t.stats().fast_inserts.get();
        for k in 20_000..20_500u64 {
            t.insert(k, k);
        }
        let gained = t.stats().fast_inserts.get() - fast_before;
        // Fig 12: the poℓe-B+-tree (no reset) gets trapped in a stale state.
        assert!(
            gained < 50,
            "expected stale poℓe, got {gained} fast inserts"
        );
        assert_eq!(t.stats().fp_resets.get(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn variable_split_packs_sorted_leaves_tight() {
        let mut quit = tree(FastPathMode::Pole, 8);
        let mut classic = tree(FastPathMode::None, 8);
        for k in 0..4096u64 {
            quit.insert(k, k);
            classic.insert(k, k);
        }
        let mq = quit.memory_report();
        let mc = classic.memory_report();
        // Steady-state occupancy under the variable split is (cap−1)/cap:
        // 7/8 here, 509/510 ≈ 100% at paper geometry.
        assert!(
            mq.avg_leaf_occupancy > 0.85,
            "QuIT sorted occupancy {}",
            mq.avg_leaf_occupancy
        );
        assert!(
            mc.avg_leaf_occupancy < 0.6,
            "classic sorted occupancy {}",
            mc.avg_leaf_occupancy
        );
        assert!(mq.paged_bytes < mc.paged_bytes);
        quit.check_invariants().unwrap();
    }

    #[test]
    fn redistribute_fires_after_reset_onto_underfull_prev() {
        // Build a tree where a reset adopts an under-half-full predecessor,
        // then fill the pole until it must redistribute.
        let mut t = tree(FastPathMode::Pole, 8);
        for k in (0..800u64).step_by(2) {
            t.insert(k, k);
        }
        // Scramble far away to trigger resets onto arbitrary leaves.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        let mut keys: Vec<u64> = (100_000..100_400).collect();
        keys.shuffle(&mut rng);
        for k in keys {
            t.insert(k, k);
        }
        // Sorted tail drives pole splits; some poles will sit right of
        // underfull leaves.
        for k in 200_000..201_000u64 {
            t.insert(k, k);
        }
        t.check_invariants().unwrap();
        for k in (0..800).step_by(2) {
            assert!(t.contains_key(k));
        }
        for k in 200_000..201_000u64 {
            assert!(t.contains_key(k));
        }
    }

    #[test]
    fn fill_cap_leaves_headroom_on_sorted_data() {
        let full: BpTree<u64, u64> = {
            let mut t = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(16));
            for k in 0..4096u64 {
                t.insert(k, k);
            }
            t
        };
        let capped: BpTree<u64, u64> = {
            let mut t = BpTree::with_config(
                FastPathMode::Pole,
                TreeConfig::small(16).with_max_variable_fill(0.75),
            );
            for k in 0..4096u64 {
                t.insert(k, k);
            }
            t
        };
        let occ_full = full.memory_report().avg_leaf_occupancy;
        let occ_capped = capped.memory_report().avg_leaf_occupancy;
        assert!(occ_full > 0.9, "uncapped occupancy {occ_full}");
        assert!(
            (0.65..0.85).contains(&occ_capped),
            "capped occupancy {occ_capped}"
        );
        capped.check_invariants().unwrap();
        // Both stay fully fast-path on sorted data.
        assert_eq!(capped.stats().top_inserts.get(), 0);
    }

    #[test]
    fn duplicates_flow_through_every_mode() {
        for mode in [
            FastPathMode::None,
            FastPathMode::Tail,
            FastPathMode::Lil,
            FastPathMode::Pole,
        ] {
            let mut t = tree(mode, 4);
            for rep in 0..10u64 {
                for k in 0..20u64 {
                    t.insert(k, rep);
                }
            }
            for k in 0..20u64 {
                assert_eq!(t.get_all(k).len(), 10, "{mode:?} key {k}");
            }
            assert_eq!(t.len(), 200);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn literal_split_bound_rule_stays_correct() {
        use crate::config::SplitBoundRule;
        let mut t: BpTree<u64, u64> = BpTree::with_config(
            FastPathMode::Pole,
            TreeConfig::small(8).with_split_bound_rule(SplitBoundRule::Literal),
        );
        let mut inserted = Vec::new();
        for k in 0..2000u64 {
            t.insert(k, k);
            inserted.push(k);
            if k % 97 == 0 {
                t.insert(k / 3, k);
                inserted.push(k / 3);
            }
        }
        t.check_invariants().unwrap();
        inserted.sort_unstable();
        assert_eq!(t.keys(), inserted);
        // The literal rule is tighter but must never lose fast-path service
        // entirely on near-sorted data.
        assert!(t.stats().fast_insert_fraction() > 0.5);
    }
}

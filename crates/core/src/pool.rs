//! Buffer pool manager: fixed-size pages behind a frame table.
//!
//! Three layers live here, bottom-up:
//!
//! 1. **[`PageStore`]** — the backend a pool spills to and faults from.
//!    [`MemPageStore`] keeps pages in a map (tests, and the byte-granular
//!    crash model in `quit-durability` / `quit-testkit`);
//!    [`FilePageStore`] is a real page file with a checksummed header,
//!    a per-page CRC on every record, and a small FIFO write-back
//!    scheduler that defers page writes until pressure or [`sync`].
//! 2. **[`BufferPool`]** — a frame table over byte pages: pin counts,
//!    reference bits, and CLOCK (second-chance) eviction of unpinned
//!    frames. Dirty victims are written back through the store before
//!    their frame is reused.
//! 3. **[`ReadGuard`] / [`WriteGuard`]** — RAII pins. A guard holds its
//!    frame pinned (unevictable) for its whole lifetime, so latch
//!    crabbing — acquire the child's guard *before* releasing the
//!    parent's — keeps every page on the path resident. Dropping the
//!    guard unpins; a dropped `WriteGuard` also marks the frame dirty.
//!
//! The node-granular paged arena (`crate::paged`) reuses the same store
//! backends and eviction policy but caches *decoded* nodes rather than
//! byte pages; see that module for how its pin discipline maps onto
//! this one.
//!
//! [`sync`]: PageStore::sync

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::io;

// ---------------------------------------------------------------------
// CRC-32 (shared with the page-file snapshot format)
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum used by the
/// page-file header and every page record. Duplicated from the WAL's
/// framing CRC because `quit-durability` depends on this crate, not the
/// other way around; both implementations are pinned by tests to the
/// same reference vector.
pub fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Page identity
// ---------------------------------------------------------------------

/// Identifier of a fixed-size page inside a [`PageStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl std::fmt::Debug for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The default page size: 4 KiB, matching the paper's node-size accounting
/// (`TreeConfig::page_size_bytes`).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

// ---------------------------------------------------------------------
// PageStore backends
// ---------------------------------------------------------------------

/// Backend a buffer pool evicts to and faults from.
///
/// Implementations must make a completed [`write`](Self::write) visible to
/// every later [`read`](Self::read) of the same id (read-your-writes);
/// durability is only required after [`sync`](Self::sync) returns.
pub trait PageStore {
    /// Reads page `id`, or `None` if it was never written.
    fn read(&self, id: PageId) -> io::Result<Option<Vec<u8>>>;
    /// Writes (or overwrites) page `id`.
    fn write(&mut self, id: PageId, bytes: &[u8]) -> io::Result<()>;
    /// Flushes any deferred writes and makes everything durable.
    fn sync(&mut self) -> io::Result<()>;
    /// Number of distinct pages ever written.
    fn page_count(&self) -> usize;
}

/// Heap-backed page store: the test backend, and the one the crash model
/// wraps (its byte image is just the map contents).
#[derive(Debug, Default)]
pub struct MemPageStore {
    pages: HashMap<u64, Vec<u8>>,
}

impl MemPageStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemPageStore {
    fn read(&self, id: PageId) -> io::Result<Option<Vec<u8>>> {
        Ok(self.pages.get(&id.0).cloned())
    }

    fn write(&mut self, id: PageId, bytes: &[u8]) -> io::Result<()> {
        self.pages.insert(id.0, bytes.to_vec());
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Magic line opening every page file written by [`FilePageStore`].
pub const PAGE_FILE_MAGIC: &[u8; 6] = b"QPSF1\n";

/// Byte length of the page-file header: magic, page size, page-count
/// slot, and a CRC over the three.
const FILE_HEADER_LEN: usize = PAGE_FILE_MAGIC.len() + 8 + 8 + 4;

/// Byte length of a page record's prefix: page id + CRC of the payload.
const RECORD_PREFIX_LEN: usize = 8 + 4;

/// A real page file: checksummed header, fixed-stride records of
/// `[page id | payload CRC | payload]`, and a FIFO write-back scheduler.
///
/// Writes enqueue; the queue drains oldest-first once it exceeds
/// `writeback_cap` (so a hot page rewritten before its turn costs one
/// disk write, not many), and fully on [`sync`](PageStore::sync), which
/// also fsyncs. Reads check the queue first (read-your-writes), then the
/// file, verifying the record's CRC and id — a torn or misdirected page
/// read fails loudly instead of returning garbage.
#[derive(Debug)]
pub struct FilePageStore {
    file: std::fs::File,
    page_size: usize,
    /// Page id → record index in the file (slot order is allocation order).
    index: HashMap<u64, u64>,
    /// FIFO write-back queue: ids in first-write order; payloads live in
    /// `queued` so a re-write before drain replaces bytes without
    /// re-queueing.
    queue: VecDeque<u64>,
    queued: HashMap<u64, Vec<u8>>,
    writeback_cap: usize,
    header_dirty: bool,
}

impl FilePageStore {
    /// Default number of pages the FIFO write-back queue holds before it
    /// starts draining oldest-first.
    pub const DEFAULT_WRITEBACK_CAP: usize = 64;

    /// Creates (truncating) a page file at `path` for `page_size`-byte pages.
    pub fn create(path: &std::path::Path, page_size: usize) -> io::Result<Self> {
        assert!(page_size >= 64, "page size must be at least 64 bytes");
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut s = FilePageStore {
            file,
            page_size,
            index: HashMap::new(),
            queue: VecDeque::new(),
            queued: HashMap::new(),
            writeback_cap: Self::DEFAULT_WRITEBACK_CAP,
            header_dirty: true,
        };
        s.write_header()?;
        Ok(s)
    }

    /// Opens an existing page file, validating the header checksum and
    /// magic and rebuilding the id → offset index from the record stride.
    /// Per-page CRCs are checked lazily, on each read.
    pub fn open(path: &std::path::Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        let mut header = [0u8; FILE_HEADER_LEN];
        read_exact_at(&file, &mut header, 0)?;
        if &header[..6] != PAGE_FILE_MAGIC {
            return Err(corrupt("page file: bad magic"));
        }
        let stored_crc = u32::from_le_bytes(header[FILE_HEADER_LEN - 4..].try_into().unwrap());
        if crc32(&header[..FILE_HEADER_LEN - 4]) != stored_crc {
            return Err(corrupt("page file: header checksum mismatch"));
        }
        let page_size = u64::from_le_bytes(header[6..14].try_into().unwrap()) as usize;
        let n_pages = u64::from_le_bytes(header[14..22].try_into().unwrap());
        if page_size < 64 {
            return Err(corrupt("page file: implausible page size"));
        }
        let stride = (RECORD_PREFIX_LEN + page_size) as u64;
        let len = file.metadata()?.len();
        if len < FILE_HEADER_LEN as u64 + n_pages * stride {
            return Err(corrupt("page file: truncated record area"));
        }
        // One O(n_pages) sweep over record prefixes rebuilds the index.
        let mut index = HashMap::with_capacity(n_pages as usize);
        let mut prefix = [0u8; RECORD_PREFIX_LEN];
        for rec in 0..n_pages {
            read_exact_at(&file, &mut prefix, FILE_HEADER_LEN as u64 + rec * stride)?;
            let id = u64::from_le_bytes(prefix[..8].try_into().unwrap());
            index.insert(id, rec);
        }
        Ok(FilePageStore {
            file,
            page_size,
            index,
            queue: VecDeque::new(),
            queued: HashMap::new(),
            writeback_cap: Self::DEFAULT_WRITEBACK_CAP,
            header_dirty: false,
        })
    }

    /// Caps the FIFO write-back queue at `cap` pages (0 = write through).
    pub fn with_writeback_cap(mut self, cap: usize) -> Self {
        self.writeback_cap = cap;
        self
    }

    /// The page size this file was created with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages currently sitting in the write-back queue.
    pub fn queued_writes(&self) -> usize {
        self.queue.len()
    }

    fn write_header(&mut self) -> io::Result<()> {
        let mut header = [0u8; FILE_HEADER_LEN];
        header[..6].copy_from_slice(PAGE_FILE_MAGIC);
        header[6..14].copy_from_slice(&(self.page_size as u64).to_le_bytes());
        header[14..22].copy_from_slice(&(self.index.len() as u64).to_le_bytes());
        let crc = crc32(&header[..FILE_HEADER_LEN - 4]);
        header[FILE_HEADER_LEN - 4..].copy_from_slice(&crc.to_le_bytes());
        write_all_at(&self.file, &header, 0)?;
        self.header_dirty = false;
        Ok(())
    }

    /// Writes one page record at its indexed slot (allocating a new slot
    /// for first-time ids).
    fn write_record(&mut self, id: u64, bytes: &[u8]) -> io::Result<()> {
        let rec = match self.index.get(&id) {
            Some(&rec) => rec,
            None => {
                let rec = self.index.len() as u64;
                self.index.insert(id, rec);
                self.header_dirty = true;
                rec
            }
        };
        let stride = (RECORD_PREFIX_LEN + self.page_size) as u64;
        let off = FILE_HEADER_LEN as u64 + rec * stride;
        let mut buf = vec![0u8; RECORD_PREFIX_LEN + self.page_size];
        buf[..8].copy_from_slice(&id.to_le_bytes());
        buf[RECORD_PREFIX_LEN..RECORD_PREFIX_LEN + bytes.len()].copy_from_slice(bytes);
        // CRC covers the whole zero-padded page, matching what `read`
        // verifies (it cannot know the unpadded length).
        let crc = crc32(&buf[RECORD_PREFIX_LEN..]);
        buf[8..12].copy_from_slice(&crc.to_le_bytes());
        write_all_at(&self.file, &buf, off)
    }

    /// Drains the oldest queued page to disk.
    fn drain_one(&mut self) -> io::Result<()> {
        if let Some(id) = self.queue.pop_front() {
            if let Some(bytes) = self.queued.remove(&id) {
                self.write_record(id, &bytes)?;
            }
        }
        Ok(())
    }
}

impl PageStore for FilePageStore {
    fn read(&self, id: PageId) -> io::Result<Option<Vec<u8>>> {
        if let Some(bytes) = self.queued.get(&id.0) {
            return Ok(Some(bytes.clone()));
        }
        let Some(&rec) = self.index.get(&id.0) else {
            return Ok(None);
        };
        let stride = (RECORD_PREFIX_LEN + self.page_size) as u64;
        let off = FILE_HEADER_LEN as u64 + rec * stride;
        let mut buf = vec![0u8; RECORD_PREFIX_LEN + self.page_size];
        read_exact_at(&self.file, &mut buf, off)?;
        let stored_id = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let payload = &buf[RECORD_PREFIX_LEN..];
        if stored_id != id.0 {
            return Err(corrupt("page file: record id mismatch (misdirected read)"));
        }
        if crc32(payload) != stored_crc {
            return Err(corrupt("page file: page checksum mismatch (torn page)"));
        }
        Ok(Some(payload.to_vec()))
    }

    fn write(&mut self, id: PageId, bytes: &[u8]) -> io::Result<()> {
        assert!(
            bytes.len() <= self.page_size,
            "page payload {} exceeds page size {}",
            bytes.len(),
            self.page_size
        );
        if self.queued.insert(id.0, bytes.to_vec()).is_none() {
            self.queue.push_back(id.0);
        }
        while self.queue.len() > self.writeback_cap {
            self.drain_one()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        while !self.queue.is_empty() {
            self.drain_one()?;
        }
        if self.header_dirty {
            self.write_header()?;
        }
        self.file.sync_data()
    }

    fn page_count(&self) -> usize {
        let mut n = self.index.len();
        for id in self.queued.keys() {
            if !self.index.contains_key(id) {
                n += 1;
            }
        }
        n
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(unix)]
fn read_exact_at(file: &std::fs::File, buf: &mut [u8], off: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, off)
}

#[cfg(unix)]
fn write_all_at(file: &std::fs::File, buf: &[u8], off: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, off)
}

// ---------------------------------------------------------------------
// Pool statistics
// ---------------------------------------------------------------------

/// Hit/fault/eviction counters shared by the byte pool and the paged
/// arena; snapshot-read into `StatsSnapshot` by the metrics layer.
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Lookups satisfied by a resident frame.
    pub hits: Cell<u64>,
    /// Lookups that had to fault the page in from the store.
    pub faults: Cell<u64>,
    /// Frames evicted (dirty or clean) to make room.
    pub evictions: Cell<u64>,
}

impl PoolCounters {
    /// Fraction of lookups served without faulting, in `[0, 1]`
    /// (1.0 when nothing was looked up yet).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits.get();
        let total = h + self.faults.get();
        if total == 0 {
            1.0
        } else {
            h as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------
// BufferPool: frame table + CLOCK over byte pages
// ---------------------------------------------------------------------

/// One frame: a resident page with its bookkeeping. Pin count and flag
/// cells use interior mutability so guards (which only hold `&BufferPool`)
/// can unpin on drop.
#[derive(Debug)]
struct Frame {
    id: u64,
    payload: RefCell<Vec<u8>>,
    pin: Cell<u32>,
    ref_bit: Cell<bool>,
    dirty: Cell<bool>,
}

/// A buffer pool over byte pages: at most `capacity` frames are resident;
/// lookups pin their frame and return an RAII guard; CLOCK (second-chance)
/// evicts an unpinned frame — writing it back first if dirty — when the
/// pool is full and a fault needs a frame.
///
/// Pin ordering rule (latch crabbing): to move from page *P* to page *C*,
/// acquire *C*'s guard **before** dropping *P*'s. Both frames are pinned
/// during the overlap, so neither can be evicted mid-step; per-frame
/// `RefCell`s (not one pool-wide borrow) are what make two simultaneous
/// write guards on different frames legal.
pub struct BufferPool {
    frames: RefCell<Vec<Option<Frame>>>,
    table: RefCell<HashMap<u64, usize>>,
    store: RefCell<Box<dyn PageStore>>,
    hand: Cell<usize>,
    capacity: usize,
    page_size: usize,
    counters: PoolCounters,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("page_size", &self.page_size)
            .field("resident", &self.table.borrow().len())
            .finish()
    }
}

impl BufferPool {
    /// A pool holding at most `capacity` pages of `page_size` bytes over
    /// `store`.
    pub fn new(store: Box<dyn PageStore>, capacity: usize, page_size: usize) -> Self {
        assert!(capacity >= 2, "buffer pool needs at least 2 frames");
        BufferPool {
            frames: RefCell::new((0..capacity).map(|_| None).collect()),
            table: RefCell::new(HashMap::new()),
            store: RefCell::new(store),
            hand: Cell::new(0),
            capacity,
            page_size,
            counters: PoolCounters::default(),
        }
    }

    /// The pool's frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.table.borrow().len()
    }

    /// Hit/fault/eviction counters.
    pub fn counters(&self) -> &PoolCounters {
        &self.counters
    }

    /// Pins page `id` for reading, faulting it in (and evicting a victim
    /// if the pool is full) as needed. Fails if the page does not exist
    /// in the store, if its checksum is bad, or if every frame is pinned.
    pub fn read(&self, id: PageId) -> io::Result<ReadGuard<'_>> {
        let idx = self.pin(id, false)?;
        Ok(ReadGuard { pool: self, idx })
    }

    /// Pins page `id` for writing. A page that does not exist yet is
    /// created zero-filled (`new_page` semantics). The frame is marked
    /// dirty when the guard drops.
    pub fn write(&self, id: PageId) -> io::Result<WriteGuard<'_>> {
        let idx = self.pin(id, true)?;
        Ok(WriteGuard { pool: self, idx })
    }

    /// Writes every dirty frame back and syncs the store.
    pub fn flush(&self) -> io::Result<()> {
        let frames = self.frames.borrow();
        let mut store = self.store.borrow_mut();
        for frame in frames.iter().flatten() {
            if frame.dirty.get() {
                store.write(PageId(frame.id), &frame.payload.borrow())?;
                frame.dirty.set(false);
            }
        }
        store.sync()
    }

    /// Finds (or faults in) `id`, pins its frame, and returns the frame
    /// index.
    fn pin(&self, id: PageId, create: bool) -> io::Result<usize> {
        if let Some(&idx) = self.table.borrow().get(&id.0) {
            let frames = self.frames.borrow();
            let frame = frames[idx].as_ref().expect("mapped frame is resident");
            frame.pin.set(frame.pin.get() + 1);
            frame.ref_bit.set(true);
            self.counters.hits.set(self.counters.hits.get() + 1);
            return Ok(idx);
        }
        // Fault path: find a frame, then load. A page born here (never
        // in the store) starts dirty so eviction writes it out.
        let (payload, fresh) = match self.store.borrow().read(id)? {
            Some(bytes) => (bytes, false),
            None if create => (vec![0u8; self.page_size], true),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("page {id:?} not in store"),
                ))
            }
        };
        self.counters.faults.set(self.counters.faults.get() + 1);
        let idx = self.victim_frame()?;
        let mut frames = self.frames.borrow_mut();
        frames[idx] = Some(Frame {
            id: id.0,
            payload: RefCell::new(payload),
            pin: Cell::new(1),
            ref_bit: Cell::new(true),
            dirty: Cell::new(fresh),
        });
        self.table.borrow_mut().insert(id.0, idx);
        Ok(idx)
    }

    /// CLOCK: sweep for a free frame or an unpinned victim, clearing one
    /// reference bit per pass (second chance). Dirty victims are written
    /// back before the frame is reused. Fails only if every frame stays
    /// pinned for two full sweeps.
    fn victim_frame(&self) -> io::Result<usize> {
        let mut frames = self.frames.borrow_mut();
        // Free frame first.
        if let Some(idx) = frames.iter().position(Option::is_none) {
            return Ok(idx);
        }
        let n = frames.len();
        let mut hand = self.hand.get();
        for _ in 0..2 * n {
            let frame = frames[hand].as_ref().expect("full pool has no holes");
            let here = hand;
            hand = (hand + 1) % n;
            if frame.pin.get() > 0 {
                continue;
            }
            if frame.ref_bit.get() {
                frame.ref_bit.set(false); // second chance
                continue;
            }
            // Victim found: write back if dirty, unmap, free the frame.
            let victim = frames[here].take().expect("victim frame is resident");
            if victim.dirty.get() {
                self.store
                    .borrow_mut()
                    .write(PageId(victim.id), &victim.payload.borrow())?;
            }
            self.table.borrow_mut().remove(&victim.id);
            self.counters
                .evictions
                .set(self.counters.evictions.get() + 1);
            self.hand.set(hand);
            return Ok(here);
        }
        self.hand.set(hand);
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "buffer pool exhausted: every frame is pinned",
        ))
    }

    fn unpin(&self, idx: usize, mark_dirty: bool) {
        let frames = self.frames.borrow();
        let frame = frames[idx].as_ref().expect("guarded frame is resident");
        debug_assert!(frame.pin.get() > 0, "unpin of unpinned frame");
        frame.pin.set(frame.pin.get() - 1);
        if mark_dirty {
            frame.dirty.set(true);
        }
    }
}

/// Shared (read) pin on one page. The frame cannot be evicted while this
/// guard lives; drop order against other guards encodes the crabbing
/// protocol.
pub struct ReadGuard<'p> {
    pool: &'p BufferPool,
    idx: usize,
}

impl ReadGuard<'_> {
    /// Runs `f` over the page bytes.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let frames = self.pool.frames.borrow();
        let frame = frames[self.idx]
            .as_ref()
            .expect("guarded frame is resident");
        let payload = frame.payload.borrow();
        f(&payload)
    }

    /// The page this guard pins.
    pub fn page_id(&self) -> PageId {
        let frames = self.pool.frames.borrow();
        PageId(frames[self.idx].as_ref().expect("resident").id)
    }
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx, false);
    }
}

/// Exclusive (write) pin on one page; marks the frame dirty on drop.
pub struct WriteGuard<'p> {
    pool: &'p BufferPool,
    idx: usize,
}

impl WriteGuard<'_> {
    /// Runs `f` over the mutable page bytes.
    pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let frames = self.pool.frames.borrow();
        let frame = frames[self.idx]
            .as_ref()
            .expect("guarded frame is resident");
        let mut payload = frame.payload.borrow_mut();
        f(&mut payload)
    }

    /// The page this guard pins.
    pub fn page_id(&self) -> PageId {
        let frames = self.pool.frames.borrow();
        PageId(frames[self.idx].as_ref().expect("resident").id)
    }
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_reference_vector() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn mem_store_roundtrip() {
        let mut s = MemPageStore::new();
        assert!(s.read(PageId(1)).unwrap().is_none());
        s.write(PageId(1), &[1, 2, 3]).unwrap();
        s.write(PageId(9), &[9]).unwrap();
        assert_eq!(s.read(PageId(1)).unwrap().unwrap(), vec![1, 2, 3]);
        assert_eq!(s.page_count(), 2);
        s.sync().unwrap();
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "quit-pool-{tag}-{}-{:?}.qpf",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn file_store_roundtrip_and_reopen() {
        let path = tmp_path("roundtrip");
        {
            let mut s = FilePageStore::create(&path, 128).unwrap();
            for i in 0..10u64 {
                s.write(PageId(i), &[i as u8; 64]).unwrap();
            }
            // Overwrite one page before drain: still a single record.
            s.write(PageId(3), &[0xAB; 128]).unwrap();
            s.sync().unwrap();
            assert_eq!(s.page_count(), 10);
        }
        let s = FilePageStore::open(&path).unwrap();
        assert_eq!(s.page_size(), 128);
        assert_eq!(s.page_count(), 10);
        assert_eq!(s.read(PageId(3)).unwrap().unwrap()[..5], [0xAB; 5]);
        assert_eq!(s.read(PageId(7)).unwrap().unwrap()[..5], [7; 5]);
        assert!(s.read(PageId(99)).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_fifo_writeback_defers_until_pressure() {
        let path = tmp_path("fifo");
        let mut s = FilePageStore::create(&path, 64)
            .unwrap()
            .with_writeback_cap(4);
        for i in 0..4u64 {
            s.write(PageId(i), &[i as u8; 8]).unwrap();
        }
        assert_eq!(s.queued_writes(), 4, "under cap: nothing drained");
        s.write(PageId(4), &[4; 8]).unwrap();
        assert_eq!(s.queued_writes(), 4, "oldest drained FIFO");
        // Queued pages are still readable (read-your-writes).
        assert_eq!(s.read(PageId(4)).unwrap().unwrap()[0], 4);
        assert_eq!(s.read(PageId(0)).unwrap().unwrap()[0], 0);
        s.sync().unwrap();
        assert_eq!(s.queued_writes(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_detects_torn_page_and_bad_header() {
        let path = tmp_path("torn");
        {
            let mut s = FilePageStore::create(&path, 64).unwrap();
            s.write(PageId(0), &[7; 64]).unwrap();
            s.write(PageId(1), &[8; 64]).unwrap();
            s.sync().unwrap();
        }
        // Flip one payload byte of page 1's record.
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let stride = (RECORD_PREFIX_LEN + 64) as u64;
            let off = FILE_HEADER_LEN as u64 + stride + RECORD_PREFIX_LEN as u64 + 10;
            f.write_all_at(&[0xFF], off).unwrap();
        }
        let s = FilePageStore::open(&path).unwrap();
        assert_eq!(
            s.read(PageId(0)).unwrap().unwrap()[0],
            7,
            "intact page reads"
        );
        let err = s.read(PageId(1)).unwrap_err();
        assert!(err.to_string().contains("torn page"), "got: {err}");
        // Now corrupt the header checksum: open must refuse outright.
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.write_all_at(&[0xFF, 0xFF], 7).unwrap();
        }
        assert!(FilePageStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pool_pins_fault_and_evict_with_clock() {
        let pool = BufferPool::new(Box::new(MemPageStore::new()), 3, 32);
        // Create four pages through write guards: forces one eviction.
        for i in 0..4u64 {
            let mut g = pool.write(PageId(i)).unwrap();
            g.with_mut(|p| p[0] = i as u8 + 1);
        }
        assert_eq!(pool.resident(), 3);
        assert_eq!(pool.counters().evictions.get(), 1);
        // The evicted page (dirty) must have been written back: fault it.
        for i in 0..4u64 {
            let g = pool.read(PageId(i)).unwrap();
            assert_eq!(g.with(|p| p[0]), i as u8 + 1, "page {i} content survives");
        }
        assert!(pool.counters().faults.get() >= 5);
        assert!(pool.counters().hit_rate() < 1.0);
    }

    #[test]
    fn pinned_frames_are_never_victims() {
        let pool = BufferPool::new(Box::new(MemPageStore::new()), 2, 16);
        let g0 = pool.write(PageId(0)).unwrap();
        let g1 = pool.write(PageId(1)).unwrap();
        // Both frames pinned: a third page cannot get a frame.
        let err = match pool.write(PageId(2)) {
            Err(e) => e,
            Ok(_) => panic!("fully pinned pool must refuse a new page"),
        };
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(g0);
        // Crabbing shape: grab the child before releasing the parent.
        let g2 = pool.write(PageId(2)).unwrap();
        drop(g1);
        drop(g2);
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn read_after_flush_via_fresh_pool() {
        let mut store = MemPageStore::new();
        store.write(PageId(5), &[0u8; 16]).unwrap();
        let pool = BufferPool::new(Box::new(store), 2, 16);
        {
            let mut g = pool.write(PageId(5)).unwrap();
            g.with_mut(|p| p[3] = 42);
        }
        pool.flush().unwrap();
        let g = pool.read(PageId(5)).unwrap();
        assert_eq!(g.with(|p| p[3]), 42);
        // Reading a page that exists nowhere is an error, not a zero page.
        assert!(pool.read(PageId(77)).is_err());
    }
}

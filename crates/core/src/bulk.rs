//! Bulk loading (§5 extends the tree API "to support bulk loading" for the
//! SWARE comparison): build a tree from sorted data, and append a sorted run
//! past the current maximum without per-entry traversals.

use crate::arena::NodeId;
use crate::fastpath::FastPathMode;
use crate::key::Key;
use crate::node::{LeafNode, Node};
use crate::tree::BpTree;

impl<K: Key, V> BpTree<K, V> {
    /// Builds a tree from entries already sorted by key, packing leaves to
    /// `fill` of capacity (`0 < fill <= 1`; classical bulk loads use 1.0,
    /// leave headroom with e.g. 0.9 when trickle inserts will follow).
    pub fn bulk_load(
        mode: FastPathMode,
        config: crate::config::TreeConfig,
        entries: impl IntoIterator<Item = (K, V)>,
        fill: f64,
    ) -> Self
    where
        V: 'static,
    {
        assert!(fill > 0.0 && fill <= 1.0, "fill factor must be in (0, 1]");
        let mut tree = Self::with_config(mode, config);
        let per_leaf = ((tree.config.leaf_capacity as f64 * fill).floor() as usize).max(1);
        let mut prev_key: Option<K> = None;
        for (k, v) in entries {
            assert!(
                prev_key.is_none_or(|p| p <= k),
                "bulk_load requires sorted input"
            );
            prev_key = Some(k);
            tree.append_one(k, v, per_leaf);
        }
        if tree.mode.has_fast_path() {
            tree.arm_fast_path_at_tail();
        }
        tree
    }

    /// Appends a sorted run whose smallest key is `>=` the tree's current
    /// maximum, filling the tail leaf and creating packed leaves after it.
    /// This is the "opportunistic bulk load" primitive SWARE flushes into.
    ///
    /// Returns the number of entries appended. Panics if the run is not
    /// sorted or underruns the current maximum.
    pub fn append_sorted(&mut self, entries: impl IntoIterator<Item = (K, V)>) -> usize {
        let mut appended = 0usize;
        let mut prev = self.max_key();
        let per_leaf = self.config.leaf_capacity;
        for (k, v) in entries {
            assert!(
                prev.is_none_or(|p| p <= k),
                "append_sorted requires keys >= current max, in order"
            );
            prev = Some(k);
            self.append_one(k, v, per_leaf);
            appended += 1;
        }
        if self.mode.has_fast_path() {
            self.arm_fast_path_at_tail();
        }
        appended
    }

    /// Appends one entry at the very end of the index, splitting the tail
    /// "all-left" (the old tail keeps everything; the new tail starts with
    /// this entry) once it reaches `per_leaf` entries.
    fn append_one(&mut self, k: K, v: V, per_leaf: usize) {
        let tail = self.tail;
        // Physical occupancy, not live: appending past trailing slots must
        // never push a gapped leaf beyond its physical capacity.
        let tail_len = self.arena.get(tail).as_leaf().physical_len();
        let target = if tail_len >= per_leaf.min(self.config.leaf_capacity) {
            self.push_new_tail_leaf(k)
        } else {
            tail
        };
        let leaf = self.arena.get_mut(target).as_leaf_mut();
        leaf.keys.push(k);
        leaf.vals.push(v);
        self.len += 1;
    }

    /// Creates an empty leaf after the current tail, registered in the
    /// parent with separator `sep` (the first key it will hold).
    fn push_new_tail_leaf(&mut self, sep: K) -> NodeId {
        let old_tail = self.tail;
        let leaf = LeafNode {
            keys: Vec::with_capacity(self.config.leaf_capacity.min(1024)),
            vals: Vec::with_capacity(self.config.leaf_capacity.min(1024)),
            gaps: crate::layout::GapMap::new(),
            next: None,
            prev: Some(old_tail),
            parent: self.arena.get(old_tail).parent(),
        };
        let new_id = self.arena.alloc(Node::Leaf(leaf));
        self.arena.get_mut(old_tail).as_leaf_mut().next = Some(new_id);
        self.tail = new_id;
        self.insert_into_parent(old_tail, sep, new_id);
        new_id
    }

    /// Inserts a sorted run of entries anywhere in the key space with
    /// amortized traversals: one descent locates the leaf for the run head,
    /// then consecutive entries stream into that leaf (splitting as needed)
    /// until the run crosses the leaf's separator bound, where a new descent
    /// starts. This is the "opportunistic bulk load" SWARE flushes with —
    /// for a near-sorted stream almost every entry lands without its own
    /// root-to-leaf traversal.
    ///
    /// Returns the number of descents performed (the amortized traversal
    /// count). Panics if `run` is not sorted by key.
    pub fn bulk_insert_run(&mut self, run: &[(K, V)]) -> usize
    where
        V: Clone,
    {
        debug_assert!(
            run.windows(2).all(|w| w[0].0 <= w[1].0),
            "run must be sorted"
        );
        let mut descents = 0usize;
        let mut i = 0usize;
        while i < run.len() {
            let (mut leaf_id, _, mut high, _) = self.descend(run[i].0);
            descents += 1;
            // Stream entries into this leaf while they stay under its bound.
            while i < run.len() && high.is_none_or(|h| run[i].0 < h) {
                if self.leaf_len(leaf_id) >= self.config.leaf_capacity {
                    let (right, sep) = self.split_leaf_default(leaf_id);
                    if run[i].0 >= sep {
                        leaf_id = right;
                    } else {
                        high = Some(sep);
                    }
                }
                let (k, v) = &run[i];
                self.insert_entry(leaf_id, *k, v.clone());
                self.len += 1;
                i += 1;
            }
        }
        if self.mode.has_fast_path() {
            self.repair_fast_path_after_bulk();
        }
        descents
    }

    /// Inserts a batch of entries, amortizing the fast path (§4.2) over
    /// whole sorted runs instead of key-by-key.
    ///
    /// The batch is scanned for maximal non-decreasing runs. For each run,
    /// the prefix admitted by the fast-path window `[min, max)` is validated
    /// against the window **once** and appended to the poℓe/tail leaf in a
    /// single `extend`, with one stats update for the whole chunk. When the
    /// leaf overflows, exactly one entry is delegated to the mode's own
    /// [`BpTree::insert`], so its split choreography — IKR-guided variable
    /// split for poℓe, tail advance, etc. — runs at most once per overflow.
    /// Out-of-order residue and entries outside the window fall back to the
    /// ordinary per-key insert.
    ///
    /// Equivalent to a per-key insert loop: identical final contents and
    /// splits, and the same `fast_inserts` count. Returns `entries.len()`.
    pub fn insert_batch(&mut self, entries: &[(K, V)]) -> usize
    where
        V: Clone,
    {
        // Operation boundary (see `insert`): trim paged residency once per
        // batch; per-entry inserts below re-trim as they go.
        self.arena.begin_op();
        let mut i = 0usize;
        while i < entries.len() {
            let mut j = i + 1;
            while j < entries.len() && entries[j].0 >= entries[j - 1].0 {
                j += 1;
            }
            self.insert_sorted_run(&entries[i..j]);
            i = j;
        }
        entries.len()
    }

    /// Inserts one sorted run: covered prefixes go through
    /// [`BpTree::fast_append_run`], everything else per key.
    fn insert_sorted_run(&mut self, run: &[(K, V)])
    where
        V: Clone,
    {
        debug_assert!(run.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut i = 0usize;
        while i < run.len() {
            if self.mode.has_fast_path() && self.fp.covers(run[i].0) {
                i += self.fast_append_run(&run[i..]);
            } else {
                let (k, v) = &run[i];
                self.insert(*k, v.clone());
                i += 1;
            }
        }
    }

    /// Appends as much of `run` as fits the fast-path leaf in one shot.
    /// Caller guarantees `run` is sorted and `fp.covers(run[0].0)`.
    /// Returns how many entries were consumed (always `>= 1`).
    fn fast_append_run(&mut self, run: &[(K, V)]) -> usize
    where
        V: Clone,
    {
        let leaf_id = self.fp.leaf.expect("covers() implies an armed fast path");
        // Validate the run against the window once: everything before the
        // first key `>= max` is admissible.
        let chunk = match self.fp.max {
            Some(max) => run.partition_point(|e| e.0 < max),
            None => run.len(),
        };
        debug_assert!(chunk >= 1, "covers(run[0]) implies a non-empty chunk");
        let space = self
            .config
            .leaf_capacity
            .saturating_sub(self.leaf_len(leaf_id));
        if space == 0 {
            // Full leaf: route one entry through the mode's own insert so
            // its split logic runs exactly once for this overflow.
            let (k, v) = &run[0];
            self.insert(*k, v.clone());
            return 1;
        }
        let take = space.min(chunk);
        let in_order = {
            let leaf = self.arena.get(leaf_id).as_leaf();
            // The one-shot `extend` below grows the physical array by `take`;
            // a gapped leaf may lack that physical headroom (its live space
            // partly sits in interior gaps), so it uses the per-entry merge.
            leaf.gaps.is_dense() && leaf.keys.last().is_none_or(|&last| last <= run[0].0)
        };
        if in_order {
            // The whole chunk lands past the leaf's current maximum: one
            // bulk append, no per-entry search.
            let leaf = self.arena.get_mut(leaf_id).as_leaf_mut();
            leaf.keys.extend(run[..take].iter().map(|e| e.0));
            leaf.vals.extend(run[..take].iter().map(|e| e.1.clone()));
        } else {
            // The run interleaves with resident keys: in-leaf merge,
            // still without a root-to-leaf descent.
            for (k, v) in &run[..take] {
                self.insert_entry(leaf_id, *k, v.clone());
            }
        }
        self.len += take;
        self.fp.size = self.leaf_len(leaf_id);
        self.fp.fails = 0;
        crate::stats::Stats::add(&self.metrics.counters.fast_inserts, take as u64);
        // One word-granular window update per leaf chunk keeps the batch
        // path's per-entry cost amortized.
        self.metrics.record_insert_run(true, take as u64);
        take
    }

    /// Recomputes fast-path metadata after a bulk operation may have split
    /// or shifted the nodes it referenced.
    fn repair_fast_path_after_bulk(&mut self) {
        match self.mode {
            FastPathMode::None => {}
            FastPathMode::Tail | FastPathMode::Lil => {
                // Conservatively re-arm at the leaf the pointer referenced if
                // it is still a leaf; otherwise at the tail.
                let target = self
                    .fp
                    .leaf
                    .filter(|&l| matches!(self.arena.get(l), crate::node::Node::Leaf(_)))
                    .unwrap_or(self.tail);
                let (low, high) = self.leaf_bounds(target);
                self.fp.leaf = Some(target);
                self.fp.min = low;
                self.fp.max = high;
                self.fp.size = self.leaf_len(target);
            }
            FastPathMode::Pole => {
                let target = self
                    .fp
                    .leaf
                    .filter(|&l| matches!(self.arena.get(l), crate::node::Node::Leaf(_)))
                    .unwrap_or(self.tail);
                self.repoint_pole_auto(target);
            }
        }
    }

    /// Points the fast path at the tail leaf (used after bulk operations so
    /// subsequent incremental inserts resume fast-path behaviour).
    pub(crate) fn arm_fast_path_at_tail(&mut self) {
        let tail = self.tail;
        match self.mode {
            FastPathMode::None => {}
            FastPathMode::Tail | FastPathMode::Lil => {
                let (low, high) = self.leaf_bounds(tail);
                self.fp.leaf = Some(tail);
                self.fp.min = low;
                self.fp.max = high;
                self.fp.size = self.leaf_len(tail);
            }
            FastPathMode::Pole => {
                self.repoint_pole_auto(tail);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TreeConfig;
    use crate::fastpath::FastPathMode;
    use crate::tree::BpTree;

    #[test]
    fn bulk_load_roundtrip() {
        let entries = (0..1000u64).map(|k| (k, k * 3));
        let t = BpTree::bulk_load(FastPathMode::None, TreeConfig::small(8), entries, 1.0);
        assert_eq!(t.len(), 1000);
        for k in (0..1000).step_by(31) {
            assert_eq!(t.get(k), Some(&(k * 3)));
        }
        t.check_invariants().unwrap();
        // Fully packed leaves.
        let m = t.memory_report();
        assert!(m.avg_leaf_occupancy > 0.95, "occ {}", m.avg_leaf_occupancy);
    }

    #[test]
    fn bulk_load_partial_fill() {
        let entries = (0..1000u64).map(|k| (k, k));
        let t = BpTree::bulk_load(FastPathMode::None, TreeConfig::small(8), entries, 0.5);
        let m = t.memory_report();
        assert!(m.avg_leaf_occupancy < 0.6);
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn bulk_load_rejects_unsorted() {
        let _ = BpTree::bulk_load(
            FastPathMode::None,
            TreeConfig::small(8),
            vec![(3u64, 0u64), (1, 0)],
            1.0,
        );
    }

    #[test]
    fn append_sorted_extends_tree() {
        let mut t = BpTree::bulk_load(
            FastPathMode::Pole,
            TreeConfig::small(8),
            (0..100u64).map(|k| (k, k)),
            1.0,
        );
        let n = t.append_sorted((100..300u64).map(|k| (k, k)));
        assert_eq!(n, 200);
        assert_eq!(t.len(), 300);
        for k in 0..300 {
            assert!(t.contains_key(k), "key {k}");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn append_sorted_allows_duplicate_of_max() {
        let mut t = BpTree::bulk_load(
            FastPathMode::None,
            TreeConfig::small(4),
            vec![(5u64, 1u64)],
            1.0,
        );
        t.append_sorted(vec![(5u64, 2u64), (6, 3)]);
        assert_eq!(t.get_all(5).len(), 2);
    }

    #[test]
    #[should_panic(expected = "current max")]
    fn append_sorted_rejects_underrun() {
        let mut t = BpTree::bulk_load(
            FastPathMode::None,
            TreeConfig::small(4),
            vec![(10u64, 0u64)],
            1.0,
        );
        t.append_sorted(vec![(5u64, 0u64)]);
    }

    #[test]
    fn incremental_inserts_after_bulk_load_use_fast_path() {
        let mut t = BpTree::bulk_load(
            FastPathMode::Pole,
            TreeConfig::small(8),
            (0..200u64).map(|k| (k, k)),
            1.0,
        );
        t.stats().reset();
        for k in 200..400u64 {
            t.insert(k, k);
        }
        assert_eq!(t.stats().top_inserts.get(), 0);
        assert_eq!(t.stats().fast_inserts.get(), 200);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_batch_unsorted() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let mut t: BpTree<u64, u64> =
            BpTree::with_config(crate::fastpath::FastPathMode::Pole, TreeConfig::small(8));
        for k in 0..500u64 {
            t.insert(k * 4, k);
        }
        let mut batch: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 4 + 1, k)).collect();
        batch.shuffle(&mut rng);
        assert_eq!(t.insert_batch(&batch), 500);
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap();
        for k in 0..500u64 {
            assert!(t.contains_key(k * 4 + 1));
        }
    }

    #[test]
    fn insert_batch_sorted_is_all_fast() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(8));
        t.insert(0, 0);
        t.stats().reset();
        let batch: Vec<(u64, u64)> = (1..=4000u64).map(|k| (k, k * 2)).collect();
        assert_eq!(t.insert_batch(&batch), 4000);
        assert_eq!(t.len(), 4001);
        assert_eq!(
            t.stats().top_inserts.get(),
            0,
            "sorted batch never descends"
        );
        assert_eq!(t.stats().fast_inserts.get(), 4000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_batch_matches_per_key_loop() {
        // Same final contents AND same fast-insert count as the per-key
        // baseline, on a stream with out-of-order residue.
        let entries: Vec<(u64, u64)> = (0..2000u64)
            .map(|i| if i % 50 == 17 { (i / 2, i) } else { (i * 3, i) })
            .collect();
        let mut batched: BpTree<u64, u64> =
            BpTree::with_config(FastPathMode::Pole, TreeConfig::small(16));
        batched.insert_batch(&entries);
        let mut per_key: BpTree<u64, u64> =
            BpTree::with_config(FastPathMode::Pole, TreeConfig::small(16));
        for &(k, v) in &entries {
            per_key.insert(k, v);
        }
        assert_eq!(batched.len(), per_key.len());
        let a: Vec<(u64, u64)> = batched.iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(u64, u64)> = per_key.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(a, b);
        assert!(
            batched.stats().fast_inserts.get() >= per_key.stats().fast_inserts.get(),
            "batched {} < per-key {}",
            batched.stats().fast_inserts.get(),
            per_key.stats().fast_inserts.get()
        );
        batched.check_invariants().unwrap();
    }

    #[test]
    fn insert_batch_empty_and_single() {
        let mut t: BpTree<u64, u64> = BpTree::quit();
        assert_eq!(t.insert_batch(&[]), 0);
        assert_eq!(t.insert_batch(&[(7, 70)]), 1);
        assert_eq!(t.get(7), Some(&70));
    }

    #[test]
    fn bulk_load_empty_input() {
        let t: BpTree<u64, u64> = BpTree::bulk_load(
            FastPathMode::Pole,
            TreeConfig::small(8),
            std::iter::empty(),
            1.0,
        );
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }
}

//! Key trait for QuIT indexes.
//!
//! The In-order Key estimatoR (IKR, paper Eq. 2) needs light arithmetic on
//! keys: a density `(q − p) / poℓe_prev_size` and a scaled extrapolation.
//! Rather than demanding numeric traits, keys project into `f64`; every
//! provided key type round-trips the magnitudes the estimator cares about.

use std::fmt::Debug;

/// Marker asserting that **every** bit pattern is a valid value of `Self`.
///
/// The concurrent tree's optimistic readers (`quit-concurrent`'s OLC
/// paths) copy key bytes while a writer may be mid-update. Each word of
/// such a copy is some value that was actually stored, but the
/// *combination* of words can be torn, and even a single word may mix
/// old/new state from an in-progress `memmove`. Materializing that
/// patchwork as a `Self` is only sound when the type has no invalid bit
/// patterns — no niches, so no `bool`/`char`/enum/`NonZero`/reference
/// fields and no padding.
///
/// A torn value may still violate *library* invariants (e.g. a NaN inside
/// [`OrderedF64`]). Comparing it must be memory-safe — wrong orderings or
/// a panic are acceptable, because the optimistic bracket discards the
/// result (or unwinds with no locks held) — and every safe `Ord` impl on
/// valid values satisfies that automatically.
///
/// # Safety
///
/// Implementors guarantee that any `size_of::<Self>()` bytes, however
/// produced, form a valid, fully initialized `Self`.
pub unsafe trait AnyBitPattern: Copy {}

/// A key type usable by [`crate::BpTree`].
///
/// Keys must be totally ordered, cheap to copy, and projectable to `f64`
/// so that the IKR outlier bound (paper Eq. 2) can be evaluated. The
/// projection only needs to be monotonic: `a < b ⇒ a.to_ikr() <= b.to_ikr()`.
///
/// The [`AnyBitPattern`] supertrait is what lets the concurrent tree read
/// keys without a latch: implementing `Key` for a type with invalid bit
/// patterns requires (unsoundly) writing the `unsafe impl`, rather than
/// being an accident a safe `impl Key` could commit.
pub trait Key: Copy + Ord + Debug + AnyBitPattern + 'static {
    /// Monotonic projection into `f64` used by the IKR estimator.
    fn to_ikr(self) -> f64;

    /// Vectorized upper bound (`partition_point(|k| *k <= key)`) over a
    /// sorted slice, or `None` when no vector kernel applies (non-x86_64,
    /// SIMD force-disabled, or a key width without a kernel). Callers in
    /// [`crate::layout`] fall back to the portable branchless search.
    ///
    /// Not part of the public contract — an internal dispatch point so
    /// [`crate::layout::SearchKind::Simd`] needs no extra trait bounds.
    #[doc(hidden)]
    #[inline]
    fn simd_upper_bound(_keys: &[Self], _key: Self) -> Option<usize> {
        None
    }

    /// Vectorized lower bound (`partition_point(|k| *k < key)`); see
    /// [`Key::simd_upper_bound`].
    #[doc(hidden)]
    #[inline]
    fn simd_lower_bound(_keys: &[Self], _key: Self) -> Option<usize> {
        None
    }
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {
        $(
            // SAFETY: primitive integers have no padding and no invalid
            // bit patterns.
            unsafe impl AnyBitPattern for $t {}
            impl Key for $t {
                #[inline]
                fn to_ikr(self) -> f64 {
                    self as f64
                }
            }
        )*
    };
}

// Key widths with vector kernels get their own expansion wiring the
// dispatch hooks to `layout::simd`; `strict = true` is the lower bound.
macro_rules! impl_key_int_simd {
    ($($t:ty => $kernel:ident),*) => {
        $(
            // SAFETY: primitive integers have no padding and no invalid
            // bit patterns.
            unsafe impl AnyBitPattern for $t {}
            impl Key for $t {
                #[inline]
                fn to_ikr(self) -> f64 {
                    self as f64
                }

                #[inline]
                fn simd_upper_bound(keys: &[Self], key: Self) -> Option<usize> {
                    crate::layout::simd::$kernel(keys, key, false)
                }

                #[inline]
                fn simd_lower_bound(keys: &[Self], key: Self) -> Option<usize> {
                    crate::layout::simd::$kernel(keys, key, true)
                }
            }
        )*
    };
}

impl_key_int!(u8, u16, usize, i8, i16, isize);
impl_key_int_simd!(u32 => partition_u32, i32 => partition_i32, u64 => partition_u64, i64 => partition_i64);

/// A totally ordered `f64` wrapper (NaN is not permitted) so floating-point
/// attributes — e.g. the stock closing prices of the paper's Fig. 15 — can be
/// indexed directly.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct OrderedF64(pub f64);

impl OrderedF64 {
    /// Wraps a float, panicking on NaN (NaN has no place in an ordered index).
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "OrderedF64 cannot hold NaN");
        OrderedF64(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: NaN is rejected at construction.
        self.0.partial_cmp(&other.0).expect("NaN in OrderedF64")
    }
}

// SAFETY: `OrderedF64` is a transparent `f64`; all 2^64 bit patterns are
// valid `f64` values. A torn read can surface a NaN, which violates only
// the no-NaN *library* invariant: `cmp` then panics (memory-safely) instead
// of exhibiting UB, which the `AnyBitPattern` contract permits.
unsafe impl AnyBitPattern for OrderedF64 {}

impl Key for OrderedF64 {
    #[inline]
    fn to_ikr(self) -> f64 {
        self.0
    }
}

impl From<f64> for OrderedF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrderedF64::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_projection_is_monotonic() {
        let samples: [u64; 5] = [0, 1, 42, 1 << 32, u64::MAX >> 12];
        for w in samples.windows(2) {
            assert!(w[0].to_ikr() <= w[1].to_ikr());
        }
    }

    #[test]
    fn signed_projection_handles_negatives() {
        assert!((-5i64).to_ikr() < 0.0);
        assert!((-5i64).to_ikr() < (-4i64).to_ikr());
    }

    #[test]
    fn ordered_f64_total_order() {
        let mut v = [
            OrderedF64::new(3.5),
            OrderedF64::new(-1.0),
            OrderedF64::new(0.0),
        ];
        v.sort();
        assert_eq!(v[0].get(), -1.0);
        assert_eq!(v[2].get(), 3.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ordered_f64_rejects_nan() {
        OrderedF64::new(f64::NAN);
    }

    #[test]
    fn ordered_f64_from_f64() {
        let x: OrderedF64 = 2.25.into();
        assert_eq!(x.get(), 2.25);
        assert_eq!(x.to_ikr(), 2.25);
    }
}

//! # quit-core — the Quick Insertion Tree
//!
//! A from-scratch reproduction of *"QuIT your B+-tree for the Quick
//! Insertion Tree"* (EDBT 2025): an in-memory B+-tree whose ingestion cost
//! shrinks in proportion to the *sortedness* of the incoming data, with no
//! read penalty and only a handful of bytes of extra metadata.
//!
//! ## The idea
//!
//! Indexing adds structure to data; when data already arrives (nearly)
//! sorted, most of the indexing effort is wasted tree traversal. Production
//! systems exploit the fully sorted case with a *tail-leaf* fast path, but
//! that goes stale after one leaf's worth of outliers. This crate implements
//! the paper's two generalizations and the full QuIT design on one shared
//! B+-tree platform:
//!
//! * **ℓiℓ** (last-insertion-leaf): follow the most recent insert.
//! * **poℓe** (predicted-ordered-leaf): follow the leaf *predicted* to
//!   receive future in-order inserts, moving the pointer only on node splits
//!   under guidance of the IKR outlier estimator (Eq. 2).
//! * **QuIT**: poℓe plus IKR-guided variable splits, redistribution into an
//!   under-full predecessor, and a stale-path reset — which also raise leaf
//!   occupancy (up to 100% for sorted streams) and therefore speed up range
//!   scans.
//!
//! ## Quick start
//!
//! ```
//! use quit_core::BpTree;
//!
//! let mut index: BpTree<u64, &str> = BpTree::quit();
//! // A nearly sorted stream: QuIT ingests this almost entirely through
//! // its fast path.
//! for key in [1u64, 2, 3, 5, 4, 6, 7, 8, 10, 9] {
//!     index.insert(key, "payload");
//! }
//! assert!(index.contains_key(4));
//! assert_eq!(index.range(3..7).count(), 4);
//! let m = index.metrics(); // unified snapshot: counters + window (+ latency)
//! assert!(m.fast_inserts > m.top_inserts);
//! assert!(m.recent_fastpath_rate() > 0.5);
//! println!("{}", m.to_json()); // dependency-free JSON export
//! ```
//!
//! Batches with sorted runs ingest even faster through
//! [`BpTree::insert_batch`], which validates each run against the fast-path
//! window once and appends it wholesale. Every index family in the workspace
//! — this crate's [`BpTree`], `quit-concurrent`'s tree, and `sware`'s
//! buffered tree — implements the [`SortedIndex`] trait, so harnesses and
//! applications can be written once:
//!
//! ```
//! use quit_core::{BpTree, SortedIndex};
//!
//! let mut index: BpTree<u64, u64> = BpTree::quit();
//! index.insert_batch(&(0..1000u64).map(|k| (k, k)).collect::<Vec<_>>());
//! assert_eq!(SortedIndex::len(&index), 1000);
//! assert_eq!(index.range(10..=12).count(), 3);
//! ```
//!
//! ## Choosing a variant
//!
//! [`Variant`] builds any of the paper's five designs on identical
//! geometry, which is exactly how the evaluation compares them:
//!
//! ```
//! use quit_core::{Variant, TreeConfig};
//!
//! let config = TreeConfig::paper_default(); // 4 KB pages, 510-entry leaves
//! let mut quit = Variant::Quit.build::<u64, u64>(config.clone());
//! let mut classic = Variant::Classic.build::<u64, u64>(config);
//! for k in 0..10_000u64 {
//!     quit.insert(k, k);
//!     classic.insert(k, k);
//! }
//! // Sorted ingest: QuIT's variable split packs leaves ~2× tighter.
//! assert!(quit.memory_report().leaf_nodes < classic.memory_report().leaf_nodes);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod arena;
mod bulk;
mod config;
mod cursor;
mod delete;
mod error;
mod fastpath;
mod ikr;
mod insert;
mod iter;
// `key` declares the `unsafe` `AnyBitPattern` marker trait (a contract on
// implementors, not unsafe operations — the crate still contains none).
#[allow(unsafe_code)]
mod key;
// `layout` holds the explicitly vectorized (`core::arch`) intra-node
// search kernels behind runtime feature detection.
#[allow(unsafe_code)]
mod layout;
mod metrics;
mod node;
mod ordered;
// `paged` extends `&self` node borrows past its internal `RefCell` via
// raw pointers; soundness rests on boxed (address-stable) frames and
// eviction being confined to `&mut self` operation boundaries — see the
// module docs.
#[allow(unsafe_code)]
mod paged;
mod pool;
mod snapshot;
mod sorted_index;
mod split;
mod stats;
mod tree;
mod validate;
mod variants;

pub use arena::NodeId;
pub use config::{SplitBoundRule, StorageKind, TreeConfig};
pub use cursor::Cursor;
pub use error::{Error, Result};
pub use fastpath::{FastPathMode, FastPathState};
pub use ikr::{ikr_bound, is_outlier, split_bound};
pub use iter::{RangeIter, RangeScan, TreeIter};
pub use key::{AnyBitPattern, Key, OrderedF64};
pub use layout::{
    branchless_partition_point, branchless_partition_point_by, compact, insert_at, lower_bound,
    regap, remove_at, search_internal, search_leaf, simd_force_disabled, upper_bound, GapMap,
    NodeLayoutKind, SearchKind, SlotInsert,
};
pub use metrics::{
    Counter, FastPathWindow, HistogramSnapshot, LatencyHistogram, MetricsLevel, MetricsRegistry,
    FASTPATH_WINDOW, HISTOGRAM_BUCKETS,
};
pub use paged::{max_encoded_node_size, value_is_pod, PagedNodes, IMAGE_MAGIC};
pub use pool::{
    crc32, BufferPool, FilePageStore, MemPageStore, PageId, PageStore, PoolCounters, ReadGuard,
    WriteGuard, DEFAULT_PAGE_SIZE, PAGE_FILE_MAGIC,
};
pub use snapshot::{TreeSnapshot, TREE_IMAGE_MAGIC};
pub use sorted_index::SortedIndex;
pub use stats::{MemoryReport, Stats, StatsSnapshot};
pub use tree::{BpTree, FastPathInfo};
pub use validate::InvariantViolation;
pub use variants::{ClassicBPlusTree, Variant};

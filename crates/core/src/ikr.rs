//! In-order Key estimatoR (IKR) — the paper's lightweight outlier predictor
//! (§4.1, Eq. 2), inspired by inter-quartile-range outlier detection.
//!
//! Given `p` (smallest key of `poℓe_prev`), `q` (smallest key of `poℓe`),
//! the two node sizes, and a scale, the estimator extrapolates the key
//! density observed between two known non-outliers across the poℓe node:
//!
//! ```text
//! x = q + ((q − p) / poℓe_prev_size) · poℓe_size · scale
//! ```
//!
//! Any key greater than `x` is predicted to be an outlier.

use crate::config::SplitBoundRule;
use crate::key::Key;

/// Computes the IKR acceptance bound `x` of Eq. (2).
///
/// `prev_size` must be at least 1; the paper guarantees
/// `poℓe_prev_size ≥ 50%` at use sites, "which is always true in
/// traditional B+-tree-node-splitting".
#[inline]
pub fn ikr_bound<K: Key>(p: K, q: K, prev_size: usize, pole_size: usize, scale: f64) -> f64 {
    debug_assert!(prev_size >= 1, "IKR needs a non-empty poℓe_prev");
    let pf = p.to_ikr();
    let qf = q.to_ikr();
    let density = (qf - pf) / prev_size as f64;
    qf + density * pole_size as f64 * scale
}

/// The bound used to locate the variable-split position `l`
/// (Algorithm 2 line 4). See [`SplitBoundRule`] for the two readings of the
/// printed algorithm.
#[inline]
pub fn split_bound<K: Key>(
    p: K,
    q: K,
    prev_size: usize,
    pole_size: usize,
    scale: f64,
    rule: SplitBoundRule,
) -> f64 {
    match rule {
        SplitBoundRule::Eq2 => ikr_bound(p, q, prev_size, pole_size, scale),
        SplitBoundRule::Literal => {
            let pf = p.to_ikr();
            let qf = q.to_ikr();
            qf + ((qf - pf) / prev_size as f64) * scale
        }
    }
}

/// True when `key` lies beyond the IKR bound, i.e. is predicted to be an
/// outlier with respect to the observed in-order density.
#[inline]
pub fn is_outlier<K: Key>(
    key: K,
    p: K,
    q: K,
    prev_size: usize,
    pole_size: usize,
    scale: f64,
) -> bool {
    key.to_ikr() > ikr_bound(p, q, prev_size, pole_size, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_sequential_keys() {
        // poℓe_prev holds keys 0..100 (p = 0), poℓe holds 100..200 (q = 100).
        // Density is 1 key per unit; with poℓe full at 100 entries and
        // scale 1.5 the acceptance bound is 100 + 1·100·1.5 = 250.
        let x = ikr_bound(0u64, 100u64, 100, 100, 1.5);
        assert_eq!(x, 250.0);
        assert!(!is_outlier(250u64, 0, 100, 100, 100, 1.5));
        assert!(is_outlier(251u64, 0, 100, 100, 100, 1.5));
    }

    #[test]
    fn sparse_keys_widen_the_bound() {
        // Keys spaced 1000 apart widen the acceptable domain accordingly.
        let x = ikr_bound(0u64, 100_000u64, 100, 100, 1.5);
        assert_eq!(x, 100_000.0 + 1000.0 * 100.0 * 1.5);
    }

    #[test]
    fn q_is_never_an_outlier() {
        // x >= q always (density >= 0 for monotone p <= q), so the smallest
        // key of poℓe itself always passes the test.
        for (p, q) in [(0u64, 0u64), (5, 9), (100, 100)] {
            assert!(!is_outlier(q, p, q, 10, 20, 1.5));
        }
    }

    #[test]
    fn scale_expands_acceptance() {
        let tight = ikr_bound(0u64, 100u64, 100, 100, 1.0);
        let loose = ikr_bound(0u64, 100u64, 100, 100, 2.0);
        assert!(loose > tight);
    }

    #[test]
    fn literal_rule_is_tighter_than_eq2() {
        // The literal Algorithm-2 bound omits the poℓe_size factor, so for
        // pole_size > 1 it accepts strictly less than Eq. 2.
        let eq2 = split_bound(0u64, 100u64, 100, 100, 1.5, SplitBoundRule::Eq2);
        let lit = split_bound(0u64, 100u64, 100, 100, 1.5, SplitBoundRule::Literal);
        assert!(lit < eq2);
        assert_eq!(lit, 100.0 + 1.0 * 1.5);
    }

    #[test]
    fn works_for_float_keys() {
        use crate::key::OrderedF64;
        let p = OrderedF64::new(1.0);
        let q = OrderedF64::new(2.0);
        let x = ikr_bound(p, q, 4, 8, 1.5);
        // density = 0.25; x = 2 + 0.25 * 8 * 1.5 = 5.0
        assert!((x - 5.0).abs() < 1e-12);
    }

    proptest::proptest! {
        /// The acceptance bound never rejects q itself and grows
        /// monotonically with the scale.
        #[test]
        fn bound_admits_q_and_grows_with_scale(
            p in 0..1_000_000u64,
            gap in 0..1_000_000u64,
            prev_size in 1..1024usize,
            pole_size in 0..1024usize,
        ) {
            let q = p + gap;
            let tight = ikr_bound(p, q, prev_size, pole_size, 1.0);
            let loose = ikr_bound(p, q, prev_size, pole_size, 2.0);
            proptest::prop_assert!(tight >= q as f64);
            proptest::prop_assert!(loose >= tight);
        }

        /// A denser poℓe_prev (more entries over the same span) narrows
        /// the acceptable domain.
        #[test]
        fn denser_prev_narrows_bound(
            p in 0..1_000_000u64,
            gap in 1..1_000_000u64,
            prev_size in 1..512usize,
            pole_size in 1..512usize,
        ) {
            let q = p + gap;
            let sparse = ikr_bound(p, q, prev_size, pole_size, 1.5);
            let dense = ikr_bound(p, q, prev_size * 2, pole_size, 1.5);
            proptest::prop_assert!(dense <= sparse);
        }
    }
}

//! The shared [`SortedIndex`] abstraction every index family in this
//! workspace implements: the single-writer [`BpTree`] here in `quit-core`,
//! `quit-concurrent::ConcurrentTree`, and `sware::SaBpTree`.
//!
//! The trait exists so benchmark harnesses, experiments, and applications
//! can be written once against point/batch inserts, lookups, deletes, and
//! lazy range scans, then instantiated per family — no per-family
//! special-casing.
//!
//! Receivers are `&mut self` across the board: the buffered `SaBpTree`
//! flushes on reads, so even `get` needs exclusive access there; the other
//! families simply don't mind. (`ConcurrentTree` additionally offers its
//! inherent `&self` API for genuinely concurrent use.)
//!
//! ```
//! use quit_core::{BpTree, SortedIndex};
//!
//! fn load_and_sum<T: SortedIndex<u64, u64>>(index: &mut T) -> u64 {
//!     index.insert_batch(&[(1, 10), (2, 20), (3, 30)]);
//!     index.range(1..=2).map(|(_, v)| v).sum()
//! }
//!
//! let mut quit = BpTree::quit();
//! assert_eq!(load_and_sum(&mut quit), 30);
//! ```

use crate::iter::RangeScan;
use crate::key::Key;
use crate::stats::StatsSnapshot;
use crate::tree::BpTree;
use std::ops::RangeBounds;

/// A sorted key–value index: point/batch inserts, lookups, deletes, and
/// ordered range scans.
///
/// Keys follow `quit-core`'s [`Key`] contract (`Copy + Ord`); values are
/// `Clone` because implementations differ in whether a scan can borrow
/// (arena trees) or must copy out from under a lock (concurrent trees) —
/// the trait yields owned `(K, V)` pairs so both fit.
pub trait SortedIndex<K: Key, V: Clone> {
    /// Inserts one entry. Duplicate keys are allowed and retained.
    fn insert(&mut self, key: K, value: V);

    /// Inserts a batch of entries, exploiting sorted runs where the
    /// implementation can (§4.2's fast path amortized over whole runs).
    ///
    /// Equivalent to a per-key [`insert`](Self::insert) loop: same final
    /// contents, and at least as many fast-path inserts. Returns the number
    /// of entries inserted (always `entries.len()`).
    fn insert_batch(&mut self, entries: &[(K, V)]) -> usize {
        for &(k, ref v) in entries {
            self.insert(k, v.clone());
        }
        entries.len()
    }

    /// Looks up `key`, returning one matching value if present.
    fn get(&mut self, key: K) -> Option<V>;

    /// Removes one entry matching `key`, returning its value.
    fn delete(&mut self, key: K) -> Option<V>;

    /// Lazy ordered scan over every entry whose key lies within `bounds`
    /// (`a..b`, `a..=b`, `..b`, `a..`, `..`, or explicit `Bound` pairs).
    fn range<R: RangeBounds<K>>(&mut self, bounds: R) -> impl Iterator<Item = (K, V)> + '_;

    /// Materialized range scan that also reports how many leaf nodes the
    /// scan touched — the metric behind the paper's Fig 10c. Families that
    /// don't track leaf accesses report 0.
    fn range_with_stats<R: RangeBounds<K>>(&mut self, bounds: R) -> RangeScan<K, V> {
        RangeScan {
            entries: self.range(bounds).collect(),
            leaf_accesses: 0,
        }
    }

    /// Number of entries currently stored (buffered entries included).
    fn len(&self) -> usize;

    /// True when the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time snapshot of everything the family's metrics registry
    /// records — operation counters, latency histograms (when the family
    /// runs at [`crate::MetricsLevel::Histograms`]), and the fast-path
    /// window — in `quit-core`'s [`StatsSnapshot`] vocabulary. Families
    /// track the subset that applies to them and leave the rest 0.
    ///
    /// This is the one observability surface of the trait; export with
    /// [`StatsSnapshot::to_json`].
    fn metrics(&self) -> StatsSnapshot;

    /// Zeroes every counter, histogram, and the fast-path window (e.g.
    /// between the ingest and query phases of an experiment). Contents are
    /// untouched.
    fn reset_metrics(&self);
}

impl<K: Key, V: Clone> SortedIndex<K, V> for BpTree<K, V> {
    fn insert(&mut self, key: K, value: V) {
        BpTree::insert(self, key, value);
    }

    fn insert_batch(&mut self, entries: &[(K, V)]) -> usize {
        BpTree::insert_batch(self, entries)
    }

    fn get(&mut self, key: K) -> Option<V> {
        // Operation boundary: trim paged residency before the read (the
        // `&self` read path itself faults but never evicts).
        self.arena.begin_op();
        BpTree::get(self, key).cloned()
    }

    fn delete(&mut self, key: K) -> Option<V> {
        BpTree::delete(self, key)
    }

    fn range<R: RangeBounds<K>>(&mut self, bounds: R) -> impl Iterator<Item = (K, V)> + '_ {
        self.arena.begin_op();
        BpTree::range(self, bounds).map(|(k, v)| (k, v.clone()))
    }

    fn range_with_stats<R: RangeBounds<K>>(&mut self, bounds: R) -> RangeScan<K, V> {
        self.arena.begin_op();
        BpTree::range_with_stats(self, bounds)
    }

    fn len(&self) -> usize {
        BpTree::len(self)
    }

    fn metrics(&self) -> StatsSnapshot {
        self.sync_pool_counters();
        self.metrics_registry().snapshot()
    }

    fn reset_metrics(&self) {
        self.metrics_registry().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::SortedIndex;
    use crate::tree::BpTree;

    fn drive<T: SortedIndex<u64, u64>>(index: &mut T) {
        assert!(index.is_empty());
        index.insert(5, 50);
        assert_eq!(index.insert_batch(&[(1, 10), (2, 20), (3, 30)]), 3);
        assert_eq!(index.len(), 4);
        assert_eq!(index.get(2), Some(20));
        assert_eq!(index.delete(2), Some(20));
        assert_eq!(index.get(2), None);
        let got: Vec<(u64, u64)> = index.range(1..=5).collect();
        assert_eq!(got, vec![(1, 10), (3, 30), (5, 50)]);
        let scan = index.range_with_stats(..);
        assert_eq!(scan.entries.len(), 3);
    }

    #[test]
    fn bptree_satisfies_the_contract() {
        drive(&mut BpTree::<u64, u64>::quit());
        drive(&mut BpTree::<u64, u64>::classic());
    }

    #[test]
    fn trait_metrics_matches_inherent() {
        let mut t = BpTree::<u64, u64>::quit();
        for k in 0..100u64 {
            SortedIndex::insert(&mut t, k, k);
        }
        let snap = SortedIndex::<u64, u64>::metrics(&t);
        assert_eq!(snap.fast_inserts + snap.top_inserts, 100);
        assert_eq!(snap.window_len, 100, "window sees every insert");
        SortedIndex::<u64, u64>::reset_metrics(&t);
        assert_eq!(
            SortedIndex::<u64, u64>::metrics(&t),
            crate::stats::StatsSnapshot::default()
        );
        assert_eq!(t.len(), 100, "reset_metrics leaves contents alone");
    }
}

//! Operation counters, snapshots, JSON export, and memory accounting.
//!
//! Every figure in the paper's evaluation reads one of these counters:
//! fast-insert vs top-insert fractions (Figs 3, 5a, 9, 11, 12), node
//! accesses per lookup (Fig 10b/c), and paged memory footprint (Table 2,
//! Fig 10a). Counters are relaxed atomics ([`crate::metrics::Counter`]) so
//! read paths (`get`, range scans) can count through `&self` and the same
//! `Stats` type serves the concurrent tree, where they stay exact under
//! parallel writers.
//!
//! [`StatsSnapshot`] is the read-side view: plain integers plus latency
//! histograms and the fast-path window, exported to JSON by
//! [`StatsSnapshot::to_json`] (hand-rolled — this workspace takes no
//! serialization dependency).

use crate::metrics::{Counter, HistogramSnapshot};

/// Mutable-through-`&self` counters attached to a tree.
///
/// Single-writer paths (`&mut self` inserts/deletes) use the cheap
/// [`Counter::bump`]/[`Counter::add`] load-store flavour; paths that can
/// race (`&self` lookups and scans, the concurrent tree) use
/// [`Counter::bump_shared`]/[`Counter::add_shared`] so totals stay exact.
#[derive(Debug, Default)]
pub struct Stats {
    /// Inserts that used the fast path (no root-to-leaf traversal).
    pub fast_inserts: Counter,
    /// Inserts that performed a full top-to-bottom traversal.
    pub top_inserts: Counter,
    /// Leaf splits performed (any cause).
    pub leaf_splits: Counter,
    /// Internal-node splits performed.
    pub internal_splits: Counter,
    /// Variable (non-50/50) leaf splits taken by QuIT's Algorithm 2.
    pub variable_splits: Counter,
    /// Redistributions into `poℓe_prev` (Algorithm 2 line 10).
    pub redistributions: Counter,
    /// Fast-path resets after `T_R` consecutive top-inserts.
    pub fp_resets: Counter,
    /// poℓe catch-up promotions (§4.2 "Catching Up to Predicted Outliers").
    pub pole_catch_ups: Counter,
    /// Nodes touched by point lookups (internal + leaf).
    pub lookup_node_accesses: Counter,
    /// Leaf nodes touched by range scans.
    pub range_leaf_accesses: Counter,
    /// Point lookups issued.
    pub lookups: Counter,
    /// Range scans issued.
    pub range_scans: Counter,
    /// Entries removed by `delete`.
    pub deletes: Counter,
    /// Leaf merges triggered by delete rebalancing.
    pub leaf_merges: Counter,
    /// Sibling borrows triggered by delete rebalancing.
    pub leaf_borrows: Counter,
    /// Optimistic-descent restarts after a version validation failed
    /// (concurrent tree with OLC enabled; zero elsewhere).
    pub olc_restarts: Counter,
    /// Optimistic descents that exhausted their restart budget and fell
    /// back to the pessimistic crabbing path.
    pub olc_fallbacks: Counter,
    /// Records appended to a write-ahead log (`quit-durability`; zero for
    /// purely in-memory indexes).
    pub wal_appends: Counter,
    /// WAL fsyncs issued (one per commit group under group commit).
    pub wal_fsyncs: Counter,
    /// Page faults: node accesses that missed the buffer pool and loaded
    /// the page from the backing [`crate::PageStore`] (paged storage only;
    /// zero for the in-memory arena).
    pub page_faults: Counter,
    /// Pages evicted from the buffer pool to make room (paged storage only).
    pub page_evictions: Counter,
    /// Node accesses served from a resident buffer-pool frame (paged
    /// storage only).
    pub pool_hits: Counter,
}

impl Stats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Stats::default()
    }

    fn for_each(&self, mut f: impl FnMut(&Counter)) {
        f(&self.fast_inserts);
        f(&self.top_inserts);
        f(&self.leaf_splits);
        f(&self.internal_splits);
        f(&self.variable_splits);
        f(&self.redistributions);
        f(&self.fp_resets);
        f(&self.pole_catch_ups);
        f(&self.lookup_node_accesses);
        f(&self.range_leaf_accesses);
        f(&self.lookups);
        f(&self.range_scans);
        f(&self.deletes);
        f(&self.leaf_merges);
        f(&self.leaf_borrows);
        f(&self.olc_restarts);
        f(&self.olc_fallbacks);
        f(&self.wal_appends);
        f(&self.wal_fsyncs);
        f(&self.page_faults);
        f(&self.page_evictions);
        f(&self.pool_hits);
    }

    /// Zeroes every counter (e.g. between ingest and query phases).
    pub fn reset(&self) {
        self.for_each(|c| c.set(0));
    }

    /// Total inserts observed (fast + top).
    pub fn total_inserts(&self) -> u64 {
        self.fast_inserts.get() + self.top_inserts.get()
    }

    /// Fraction of inserts that took the fast path, in `[0, 1]`.
    /// Returns 0 when no insert has happened.
    pub fn fast_insert_fraction(&self) -> f64 {
        let total = self.total_inserts();
        if total == 0 {
            0.0
        } else {
            self.fast_inserts.get() as f64 / total as f64
        }
    }

    /// Snapshot of the counters as plain integers (handy for diffing).
    /// Histogram and window fields are zero here; use
    /// [`crate::MetricsRegistry::snapshot`] for the full picture.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            fast_inserts: self.fast_inserts.get(),
            top_inserts: self.top_inserts.get(),
            leaf_splits: self.leaf_splits.get(),
            internal_splits: self.internal_splits.get(),
            variable_splits: self.variable_splits.get(),
            redistributions: self.redistributions.get(),
            fp_resets: self.fp_resets.get(),
            pole_catch_ups: self.pole_catch_ups.get(),
            lookup_node_accesses: self.lookup_node_accesses.get(),
            range_leaf_accesses: self.range_leaf_accesses.get(),
            lookups: self.lookups.get(),
            range_scans: self.range_scans.get(),
            deletes: self.deletes.get(),
            leaf_merges: self.leaf_merges.get(),
            leaf_borrows: self.leaf_borrows.get(),
            olc_restarts: self.olc_restarts.get(),
            olc_fallbacks: self.olc_fallbacks.get(),
            wal_appends: self.wal_appends.get(),
            wal_fsyncs: self.wal_fsyncs.get(),
            page_faults: self.page_faults.get(),
            page_evictions: self.page_evictions.get(),
            pool_hits: self.pool_hits.get(),
            ..Default::default()
        }
    }

    /// `counter += 1` on an externally-synchronized write path.
    #[inline]
    pub(crate) fn bump(counter: &Counter) {
        counter.bump();
    }

    /// `counter += n` on an externally-synchronized write path.
    #[inline]
    pub(crate) fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }
}

/// Plain-integer copy of a tree's metrics at a point in time: the
/// [`Stats`] counters one-to-one, plus per-operation latency histograms
/// and the fast-path window (both populated by
/// [`crate::MetricsRegistry::snapshot`]; zero when only counters are
/// recorded).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub fast_inserts: u64,
    pub top_inserts: u64,
    pub leaf_splits: u64,
    pub internal_splits: u64,
    pub variable_splits: u64,
    pub redistributions: u64,
    pub fp_resets: u64,
    pub pole_catch_ups: u64,
    pub lookup_node_accesses: u64,
    pub range_leaf_accesses: u64,
    pub lookups: u64,
    pub range_scans: u64,
    pub deletes: u64,
    pub leaf_merges: u64,
    pub leaf_borrows: u64,
    pub olc_restarts: u64,
    pub olc_fallbacks: u64,
    pub wal_appends: u64,
    pub wal_fsyncs: u64,
    pub page_faults: u64,
    pub page_evictions: u64,
    pub pool_hits: u64,
    /// Insert latency histogram ([`crate::MetricsLevel::Histograms`] only).
    pub insert_latency: HistogramSnapshot,
    /// Point-lookup latency histogram.
    pub get_latency: HistogramSnapshot,
    /// Range-scan latency histogram.
    pub range_latency: HistogramSnapshot,
    /// Commit-group sizes under group commit: log2 buckets of *records per
    /// fsync*, not nanoseconds (`quit-durability`; empty elsewhere).
    pub group_commit_size: HistogramSnapshot,
    /// Crash-recovery latency (snapshot bulk load + WAL tail replay).
    pub recovery_latency: HistogramSnapshot,
    /// Fast-path hits among the window's inserts.
    pub window_fast: u64,
    /// Inserts represented in the window (≤ [`crate::FASTPATH_WINDOW`]).
    pub window_len: u64,
}

impl StatsSnapshot {
    /// Total inserts observed (fast + top).
    pub fn total_inserts(&self) -> u64 {
        self.fast_inserts + self.top_inserts
    }

    /// Fraction of all inserts that took the fast path, in `[0, 1]`.
    pub fn fast_insert_fraction(&self) -> f64 {
        let total = self.total_inserts();
        if total == 0 {
            0.0
        } else {
            self.fast_inserts as f64 / total as f64
        }
    }

    /// Fraction of paged node accesses served from a resident frame,
    /// `hits / (hits + faults)` in `[0, 1]`. Returns 1 when no paged
    /// access has happened (an empty pool misses nothing) — matching
    /// [`crate::PoolCounters::hit_rate`]. Always 1 for the in-memory arena.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.page_faults;
        if total == 0 {
            1.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Fraction of the *windowed* (most recent) inserts that took the fast
    /// path, in `[0, 1]` — the sortedness-over-time signal.
    pub fn recent_fastpath_rate(&self) -> f64 {
        if self.window_len == 0 {
            0.0
        } else {
            self.window_fast as f64 / self.window_len as f64
        }
    }

    /// Serializes the snapshot as a self-contained JSON object.
    ///
    /// Hand-rolled (no serialization dependency): counters become integer
    /// fields, each non-empty histogram becomes an object with `count`,
    /// `sum_ns`, mean, p50/p99/p999, and the sparse `buckets` array, and
    /// the window becomes `{"fast": .., "len": .., "rate": ..}`. Keys are
    /// emitted in declaration order, so output is deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        let counters: [(&str, u64); 22] = [
            ("fast_inserts", self.fast_inserts),
            ("top_inserts", self.top_inserts),
            ("leaf_splits", self.leaf_splits),
            ("internal_splits", self.internal_splits),
            ("variable_splits", self.variable_splits),
            ("redistributions", self.redistributions),
            ("fp_resets", self.fp_resets),
            ("pole_catch_ups", self.pole_catch_ups),
            ("lookup_node_accesses", self.lookup_node_accesses),
            ("range_leaf_accesses", self.range_leaf_accesses),
            ("lookups", self.lookups),
            ("range_scans", self.range_scans),
            ("deletes", self.deletes),
            ("leaf_merges", self.leaf_merges),
            ("leaf_borrows", self.leaf_borrows),
            ("olc_restarts", self.olc_restarts),
            ("olc_fallbacks", self.olc_fallbacks),
            ("wal_appends", self.wal_appends),
            ("wal_fsyncs", self.wal_fsyncs),
            ("page_faults", self.page_faults),
            ("page_evictions", self.page_evictions),
            ("pool_hits", self.pool_hits),
        ];
        for (name, v) in counters {
            push_key(&mut out, name);
            out.push_str(&v.to_string());
            out.push(',');
        }
        push_key(&mut out, "fast_insert_fraction");
        push_f64(&mut out, self.fast_insert_fraction());
        out.push(',');
        push_key(&mut out, "pool_hit_rate");
        push_f64(&mut out, self.pool_hit_rate());
        out.push(',');

        for (name, h) in [
            ("insert_latency", &self.insert_latency),
            ("get_latency", &self.get_latency),
            ("range_latency", &self.range_latency),
            ("group_commit_size", &self.group_commit_size),
            ("recovery_latency", &self.recovery_latency),
        ] {
            push_key(&mut out, name);
            push_histogram(&mut out, h);
            out.push(',');
        }

        push_key(&mut out, "fastpath_window");
        out.push('{');
        push_key(&mut out, "fast");
        out.push_str(&self.window_fast.to_string());
        out.push(',');
        push_key(&mut out, "len");
        out.push_str(&self.window_len.to_string());
        out.push(',');
        push_key(&mut out, "rate");
        push_f64(&mut out, self.recent_fastpath_rate());
        out.push('}');

        out.push('}');
        out
    }
}

fn push_key(out: &mut String, key: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
}

/// Emits a finite float compactly; JSON has no NaN/Inf, so those become 0.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v:.6}");
        out.push_str(s.trim_end_matches('0').trim_end_matches('.'));
        if out.ends_with(':') || out.ends_with('-') {
            out.push('0');
        }
    } else {
        out.push('0');
    }
}

fn push_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push('{');
    push_key(out, "count");
    out.push_str(&h.count().to_string());
    out.push(',');
    push_key(out, "sum_ns");
    out.push_str(&h.sum_ns.to_string());
    out.push(',');
    push_key(out, "mean_ns");
    out.push_str(&h.mean_ns().to_string());
    out.push(',');
    push_key(out, "p50_ns");
    out.push_str(&h.p50_ns().to_string());
    out.push(',');
    push_key(out, "p99_ns");
    out.push_str(&h.p99_ns().to_string());
    out.push(',');
    push_key(out, "p999_ns");
    out.push_str(&h.p999_ns().to_string());
    out.push(',');
    // Sparse bucket encoding: [[bucket_index, count], ...] keeps empty
    // histograms at a handful of bytes instead of 32 zeros.
    push_key(out, "buckets");
    out.push('[');
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('[');
            out.push_str(&i.to_string());
            out.push(',');
            out.push_str(&c.to_string());
            out.push(']');
        }
    }
    out.push(']');
    out.push('}');
}

/// Memory-footprint report for Table 2 / Fig 10a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryReport {
    /// Live leaf nodes.
    pub leaf_nodes: usize,
    /// Live internal nodes.
    pub internal_nodes: usize,
    /// Paged footprint: every live node charged one full page, plus
    /// fast-path metadata.
    pub paged_bytes: usize,
    /// Fast-path metadata bytes (Table 1 fields for the active variant).
    pub metadata_bytes: usize,
    /// Mean leaf occupancy as a fraction of leaf capacity, in `[0, 1]`.
    pub avg_leaf_occupancy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_handles_zero() {
        let s = Stats::new();
        assert_eq!(s.fast_insert_fraction(), 0.0);
    }

    #[test]
    fn fraction_counts() {
        let s = Stats::new();
        Stats::add(&s.fast_inserts, 3);
        Stats::bump(&s.top_inserts);
        assert_eq!(s.total_inserts(), 4);
        assert!((s.fast_insert_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::new();
        Stats::add(&s.fast_inserts, 5);
        Stats::add(&s.range_leaf_accesses, 7);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_roundtrip() {
        let s = Stats::new();
        Stats::bump(&s.leaf_splits);
        Stats::bump(&s.deletes);
        let snap = s.snapshot();
        assert_eq!(snap.leaf_splits, 1);
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.fast_inserts, 0);
        assert_eq!(snap.total_inserts(), 0);
    }

    #[test]
    fn snapshot_fraction_helpers() {
        let snap = StatsSnapshot {
            fast_inserts: 3,
            top_inserts: 1,
            window_fast: 10,
            window_len: 40,
            ..Default::default()
        };
        assert!((snap.fast_insert_fraction() - 0.75).abs() < 1e-12);
        assert!((snap.recent_fastpath_rate() - 0.25).abs() < 1e-12);
        assert_eq!(StatsSnapshot::default().recent_fastpath_rate(), 0.0);
    }

    #[test]
    fn json_has_counters_and_window() {
        let snap = StatsSnapshot {
            fast_inserts: 42,
            top_inserts: 8,
            window_fast: 7,
            window_len: 8,
            ..Default::default()
        };
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"fast_inserts\":42"));
        assert!(json.contains("\"top_inserts\":8"));
        assert!(json.contains("\"fast_insert_fraction\":0.84"));
        assert!(json.contains("\"fastpath_window\":{\"fast\":7,\"len\":8,\"rate\":0.875}"));
        assert!(json.contains("\"insert_latency\":{\"count\":0,"));
        assert!(json.contains("\"buckets\":[]"));
    }

    #[test]
    fn json_histogram_buckets_sparse() {
        let mut snap = StatsSnapshot::default();
        snap.insert_latency.buckets[4] = 9;
        snap.insert_latency.sum_ns = 9 * 20;
        let json = snap.to_json();
        assert!(json.contains("\"buckets\":[[4,9]]"));
        assert!(json.contains("\"p50_ns\":16"));
        assert!(json.contains("\"mean_ns\":20"));
    }

    #[test]
    fn f64_formatting_is_json_safe() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        push_f64(&mut out, 0.5);
        push_f64(&mut out, 1.0);
        assert_eq!(out, "00.51");
    }
}

//! Operation counters and memory accounting.
//!
//! Every figure in the paper's evaluation reads one of these counters:
//! fast-insert vs top-insert fractions (Figs 3, 5a, 9, 11, 12), node
//! accesses per lookup (Fig 10b/c), and paged memory footprint (Table 2,
//! Fig 10a). Counters use `Cell` so read paths (`get`, range scans) can
//! count through `&self`.

use std::cell::Cell;

/// Mutable-through-`&self` counters attached to a tree.
#[derive(Debug, Default)]
pub struct Stats {
    /// Inserts that used the fast path (no root-to-leaf traversal).
    pub fast_inserts: Cell<u64>,
    /// Inserts that performed a full top-to-bottom traversal.
    pub top_inserts: Cell<u64>,
    /// Leaf splits performed (any cause).
    pub leaf_splits: Cell<u64>,
    /// Internal-node splits performed.
    pub internal_splits: Cell<u64>,
    /// Variable (non-50/50) leaf splits taken by QuIT's Algorithm 2.
    pub variable_splits: Cell<u64>,
    /// Redistributions into `poℓe_prev` (Algorithm 2 line 10).
    pub redistributions: Cell<u64>,
    /// Fast-path resets after `T_R` consecutive top-inserts.
    pub fp_resets: Cell<u64>,
    /// poℓe catch-up promotions (§4.2 "Catching Up to Predicted Outliers").
    pub pole_catch_ups: Cell<u64>,
    /// Nodes touched by point lookups (internal + leaf).
    pub lookup_node_accesses: Cell<u64>,
    /// Leaf nodes touched by range scans.
    pub range_leaf_accesses: Cell<u64>,
    /// Point lookups issued.
    pub lookups: Cell<u64>,
    /// Range scans issued.
    pub range_scans: Cell<u64>,
    /// Entries removed by `delete`.
    pub deletes: Cell<u64>,
    /// Leaf merges triggered by delete rebalancing.
    pub leaf_merges: Cell<u64>,
    /// Sibling borrows triggered by delete rebalancing.
    pub leaf_borrows: Cell<u64>,
}

impl Stats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Zeroes every counter (e.g. between ingest and query phases).
    pub fn reset(&self) {
        self.fast_inserts.set(0);
        self.top_inserts.set(0);
        self.leaf_splits.set(0);
        self.internal_splits.set(0);
        self.variable_splits.set(0);
        self.redistributions.set(0);
        self.fp_resets.set(0);
        self.pole_catch_ups.set(0);
        self.lookup_node_accesses.set(0);
        self.range_leaf_accesses.set(0);
        self.lookups.set(0);
        self.range_scans.set(0);
        self.deletes.set(0);
        self.leaf_merges.set(0);
        self.leaf_borrows.set(0);
    }

    /// Total inserts observed (fast + top).
    pub fn total_inserts(&self) -> u64 {
        self.fast_inserts.get() + self.top_inserts.get()
    }

    /// Fraction of inserts that took the fast path, in `[0, 1]`.
    /// Returns 0 when no insert has happened.
    pub fn fast_insert_fraction(&self) -> f64 {
        let total = self.total_inserts();
        if total == 0 {
            0.0
        } else {
            self.fast_inserts.get() as f64 / total as f64
        }
    }

    /// Snapshot of the counters as plain integers (handy for diffing).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            fast_inserts: self.fast_inserts.get(),
            top_inserts: self.top_inserts.get(),
            leaf_splits: self.leaf_splits.get(),
            internal_splits: self.internal_splits.get(),
            variable_splits: self.variable_splits.get(),
            redistributions: self.redistributions.get(),
            fp_resets: self.fp_resets.get(),
            pole_catch_ups: self.pole_catch_ups.get(),
            lookup_node_accesses: self.lookup_node_accesses.get(),
            range_leaf_accesses: self.range_leaf_accesses.get(),
            lookups: self.lookups.get(),
            range_scans: self.range_scans.get(),
            deletes: self.deletes.get(),
            leaf_merges: self.leaf_merges.get(),
            leaf_borrows: self.leaf_borrows.get(),
        }
    }

    #[inline]
    pub(crate) fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    #[inline]
    pub(crate) fn add(cell: &Cell<u64>, n: u64) {
        cell.set(cell.get() + n);
    }
}

/// Plain-integer copy of [`Stats`] at a point in time. Fields mirror
/// [`Stats`] one-to-one.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub fast_inserts: u64,
    pub top_inserts: u64,
    pub leaf_splits: u64,
    pub internal_splits: u64,
    pub variable_splits: u64,
    pub redistributions: u64,
    pub fp_resets: u64,
    pub pole_catch_ups: u64,
    pub lookup_node_accesses: u64,
    pub range_leaf_accesses: u64,
    pub lookups: u64,
    pub range_scans: u64,
    pub deletes: u64,
    pub leaf_merges: u64,
    pub leaf_borrows: u64,
}

/// Memory-footprint report for Table 2 / Fig 10a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryReport {
    /// Live leaf nodes.
    pub leaf_nodes: usize,
    /// Live internal nodes.
    pub internal_nodes: usize,
    /// Paged footprint: every live node charged one full page, plus
    /// fast-path metadata.
    pub paged_bytes: usize,
    /// Fast-path metadata bytes (Table 1 fields for the active variant).
    pub metadata_bytes: usize,
    /// Mean leaf occupancy as a fraction of leaf capacity, in `[0, 1]`.
    pub avg_leaf_occupancy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_handles_zero() {
        let s = Stats::new();
        assert_eq!(s.fast_insert_fraction(), 0.0);
    }

    #[test]
    fn fraction_counts() {
        let s = Stats::new();
        Stats::add(&s.fast_inserts, 3);
        Stats::bump(&s.top_inserts);
        assert_eq!(s.total_inserts(), 4);
        assert!((s.fast_insert_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::new();
        Stats::add(&s.fast_inserts, 5);
        Stats::add(&s.range_leaf_accesses, 7);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_roundtrip() {
        let s = Stats::new();
        Stats::bump(&s.leaf_splits);
        Stats::bump(&s.deletes);
        let snap = s.snapshot();
        assert_eq!(snap.leaf_splits, 1);
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.fast_inserts, 0);
    }
}

//! Range lookups and full scans (§4.4): a point lookup locates the first
//! entry admitted by the start bound, then the interlinked leaf pointers
//! drive the scan until the end bound rejects an entry.
//!
//! The primary API is the lazy [`BpTree::range`], which accepts any
//! `impl RangeBounds<K>` (`a..b`, `a..=b`, `..b`, `a..`, `..`) and borrows
//! values instead of cloning them. [`BpTree::range_with_stats`] materializes
//! the same scan and reports the leaf-access count the paper's Fig 10c
//! measures.

use crate::arena::NodeId;
use crate::key::Key;

use crate::tree::BpTree;
use std::ops::{Bound, RangeBounds};

/// Eagerly materialized range scan, including the leaf-access count the
/// paper's Fig 10c reports. Produced by [`BpTree::range_with_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeScan<K, V> {
    /// Matching `(key, value)` pairs in key order.
    pub entries: Vec<(K, V)>,
    /// Leaf nodes touched by the scan.
    pub leaf_accesses: u64,
}

fn copy_bound<K: Copy>(b: Bound<&K>) -> Bound<K> {
    match b {
        Bound::Included(&k) => Bound::Included(k),
        Bound::Excluded(&k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// True when no key can satisfy both bounds.
fn bounds_empty<K: Ord>(start: Bound<&K>, end: Bound<&K>) -> bool {
    match (start, end) {
        (Bound::Included(s), Bound::Included(e)) => s > e,
        (Bound::Included(s), Bound::Excluded(e))
        | (Bound::Excluded(s), Bound::Included(e))
        | (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
        _ => false,
    }
}

fn end_admits<K: Ord>(key: &K, end: &Bound<K>) -> bool {
    match end {
        Bound::Included(e) => key <= e,
        Bound::Excluded(e) => key < e,
        Bound::Unbounded => true,
    }
}

impl<K: Key, V> BpTree<K, V> {
    /// Lazy iterator over the entries within `bounds`, in key order,
    /// yielding `(key, &value)`.
    ///
    /// Accepts every range shape: `index.range(3..7)`, `range(3..=7)`,
    /// `range(..7)`, `range(3..)`, `range(..)`. The scan descends once,
    /// walks the leaf chain, and stops at the first key past the end bound;
    /// nothing is allocated and values are borrowed.
    ///
    /// Leaf accesses are tracked on the iterator ([`RangeIter::leaf_accesses`])
    /// but only [`BpTree::range_with_stats`] folds them into [`crate::Stats`],
    /// since a partially consumed lazy scan would under-report.
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> RangeIter<'_, K, V> {
        self.metrics.counters.range_scans.bump_shared();
        let end = copy_bound(bounds.end_bound());
        if self.is_empty() || bounds_empty(bounds.start_bound(), bounds.end_bound()) {
            return RangeIter {
                tree: self,
                leaf: None,
                pos: 0,
                end,
                leaf_accesses: 0,
            };
        }
        let (leaf, pos, leaf_accesses) = self.seek_start(bounds.start_bound());
        RangeIter {
            tree: self,
            leaf: Some(leaf),
            pos,
            end,
            leaf_accesses,
        }
    }

    /// Locates the first leaf/slot admitted by `start`; returns the leaf,
    /// the slot, and the number of leaves touched getting there.
    fn seek_start(&self, start: Bound<&K>) -> (NodeId, usize, u64) {
        match start {
            Bound::Unbounded => (self.head, 0, 1),
            Bound::Included(&s) => {
                let (mut leaf_id, _, _, node_accesses) = self.descend(s);
                self.metrics
                    .counters
                    .lookup_node_accesses
                    .add_shared(node_accesses);
                let mut leaf_accesses = 1u64;
                // A duplicate run equal to `s` may extend into earlier leaves.
                loop {
                    let leaf = self.arena.get(leaf_id).as_leaf();
                    let back = leaf.keys.first().is_some_and(|&k| k >= s)
                        && leaf.prev.is_some_and(|p| {
                            self.arena
                                .get(p)
                                .as_leaf()
                                .keys
                                .last()
                                .is_some_and(|&k| k >= s)
                        });
                    if !back {
                        break;
                    }
                    leaf_id = leaf.prev.expect("checked above");
                    leaf_accesses += 1;
                }
                let leaf = self.arena.get(leaf_id).as_leaf();
                let pos = crate::layout::search_leaf(self.config.search_kind, &leaf.keys, s);
                (leaf_id, pos, leaf_accesses)
            }
            Bound::Excluded(&s) => {
                // First entry strictly greater than `s`: right-biased descent
                // lands on the last leaf that can hold `s`, so no duplicate
                // back-walk is needed; if the whole leaf is `<= s` the scan
                // naturally rolls into the next leaf.
                let (leaf_id, _, _, node_accesses) = self.descend(s);
                self.metrics
                    .counters
                    .lookup_node_accesses
                    .add_shared(node_accesses);
                let leaf = self.arena.get(leaf_id).as_leaf();
                let pos = crate::layout::upper_bound(self.config.search_kind, &leaf.keys, s);
                (leaf_id, pos, 1)
            }
        }
    }

    /// Number of entries within `bounds` without materializing values.
    pub fn range_count<R: RangeBounds<K>>(&self, bounds: R) -> usize {
        self.range(bounds).count()
    }

    /// Iterates every `(key, &value)` entry in key order via the leaf chain.
    pub fn iter(&self) -> TreeIter<'_, K, V> {
        TreeIter {
            tree: self,
            leaf: Some(self.head),
            pos: 0,
        }
    }

    /// All keys in order (mainly for tests and examples).
    pub fn keys(&self) -> Vec<K> {
        self.iter().map(|(k, _)| k).collect()
    }
}

impl<K: Key, V: Clone> BpTree<K, V> {
    /// Materialized range scan with the leaf-access count the paper's
    /// Fig 10c reports. Also accumulates `range_leaf_accesses` in [`crate::Stats`].
    pub fn range_with_stats<R: RangeBounds<K>>(&self, bounds: R) -> RangeScan<K, V> {
        let t0 = self.metrics.op_timer();
        let mut iter = self.range(bounds);
        let mut entries = Vec::new();
        for (k, v) in iter.by_ref() {
            entries.push((k, v.clone()));
        }
        let leaf_accesses = iter.leaf_accesses();
        self.metrics
            .counters
            .range_leaf_accesses
            .add_shared(leaf_accesses);
        self.metrics.record_range_latency(t0);
        RangeScan {
            entries,
            leaf_accesses,
        }
    }
}

/// Lazy iterator over a key range. See [`BpTree::range`].
pub struct RangeIter<'a, K, V> {
    tree: &'a BpTree<K, V>,
    leaf: Option<NodeId>,
    pos: usize,
    end: Bound<K>,
    leaf_accesses: u64,
}

impl<K: Key, V> RangeIter<'_, K, V> {
    /// Leaf nodes touched so far (including the seek to the start bound).
    pub fn leaf_accesses(&self) -> u64 {
        self.leaf_accesses
    }
}

impl<'a, K: Key, V> Iterator for RangeIter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let id = self.leaf?;
            let leaf = self.tree.arena.get(id).as_leaf();
            // Gap slots hold filler copies, not entries; yield live slots only.
            if let Some(live) = leaf.gaps.next_live(self.pos, leaf.keys.len()) {
                let k = leaf.keys[live];
                if !end_admits(&k, &self.end) {
                    self.leaf = None;
                    return None;
                }
                let item = (k, &leaf.vals[live]);
                self.pos = live + 1;
                return Some(item);
            }
            self.leaf = leaf.next;
            if self.leaf.is_some() {
                self.leaf_accesses += 1;
            }
            self.pos = 0;
        }
    }
}

/// Ordered iterator over the whole index. See [`BpTree::iter`].
pub struct TreeIter<'a, K, V> {
    tree: &'a BpTree<K, V>,
    leaf: Option<NodeId>,
    pos: usize,
}

impl<'a, K: Key, V> Iterator for TreeIter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let id = self.leaf?;
            let leaf = self.tree.arena.get(id).as_leaf();
            // Gap slots hold filler copies, not entries; yield live slots only.
            if let Some(live) = leaf.gaps.next_live(self.pos, leaf.keys.len()) {
                let item = (leaf.keys[live], &leaf.vals[live]);
                self.pos = live + 1;
                return Some(item);
            }
            self.leaf = leaf.next;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TreeConfig;
    use crate::fastpath::FastPathMode;
    use crate::tree::BpTree;

    fn filled(mode: FastPathMode, n: u64) -> BpTree<u64, u64> {
        let mut t = BpTree::with_config(mode, TreeConfig::small(8));
        for k in 0..n {
            t.insert(k, k * 10);
        }
        t
    }

    #[test]
    fn range_middle() {
        let t = filled(FastPathMode::None, 100);
        let r = t.range_with_stats(10..20);
        assert_eq!(r.entries.len(), 10);
        assert_eq!(r.entries[0], (10, 100));
        assert_eq!(r.entries[9], (19, 190));
        assert!(r.leaf_accesses >= 2);
    }

    #[test]
    fn range_empty_and_degenerate() {
        let t = filled(FastPathMode::None, 100);
        use std::ops::Bound;
        let reversed = (Bound::Included(20u64), Bound::Excluded(10u64));
        assert_eq!(t.range(reversed).count(), 0);
        assert_eq!(t.range(15..15).count(), 0);
        assert_eq!(t.range(1000..2000).count(), 0);
        let empty: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(8));
        assert_eq!(empty.range(0..10).count(), 0);
        assert_eq!(empty.range(..).count(), 0);
    }

    #[test]
    fn range_full_span() {
        let t = filled(FastPathMode::Pole, 500);
        let r = t.range_with_stats(0..500);
        assert_eq!(r.entries.len(), 500);
        for (i, (k, v)) in r.entries.iter().enumerate() {
            assert_eq!(*k, i as u64);
            assert_eq!(*v, i as u64 * 10);
        }
        assert_eq!(t.range(..).count(), 500);
    }

    #[test]
    fn all_six_bound_shapes() {
        let t = filled(FastPathMode::Pole, 100);
        let keys =
            |it: crate::iter::RangeIter<'_, u64, u64>| -> Vec<u64> { it.map(|(k, _)| k).collect() };
        assert_eq!(keys(t.range(10..13)), vec![10, 11, 12]);
        assert_eq!(keys(t.range(10..=13)), vec![10, 11, 12, 13]);
        assert_eq!(keys(t.range(..3)), vec![0, 1, 2]);
        assert_eq!(keys(t.range(..=3)), vec![0, 1, 2, 3]);
        assert_eq!(keys(t.range(97..)), vec![97, 98, 99]);
        assert_eq!(t.range(..).count(), 100);
        use std::ops::Bound;
        // Excluded start via explicit bounds.
        let got: Vec<u64> = t
            .range((Bound::Excluded(10u64), Bound::Included(13u64)))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(got, vec![11, 12, 13]);
    }

    #[test]
    fn range_spanning_duplicates() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        for i in 0..20u64 {
            t.insert(5, i);
        }
        t.insert(1, 0);
        t.insert(9, 0);
        assert_eq!(t.range(5..6).count(), 20, "all duplicates must be returned");
        assert_eq!(t.range(0..10).count(), 22);
        // Excluded start skips the entire duplicate run, across leaves.
        use std::ops::Bound;
        let past: Vec<u64> = t
            .range((Bound::Excluded(5u64), Bound::Unbounded))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(past, vec![9]);
    }

    #[test]
    fn quit_range_touches_fewer_leaves_than_classic() {
        // Fig 10c's mechanism: QuIT packs sorted data tighter, so a fixed
        // selectivity touches fewer leaves.
        let quit = filled(FastPathMode::Pole, 4000);
        let classic = filled(FastPathMode::None, 4000);
        let rq = quit.range_with_stats(1000..2000);
        let rc = classic.range_with_stats(1000..2000);
        assert_eq!(rq.entries, rc.entries);
        assert!(
            rq.leaf_accesses < rc.leaf_accesses,
            "QuIT {} vs classic {}",
            rq.leaf_accesses,
            rc.leaf_accesses
        );
    }

    #[test]
    fn iter_visits_everything_in_order() {
        let t = filled(FastPathMode::Lil, 300);
        let keys = t.keys();
        assert_eq!(keys.len(), 300);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.iter().count(), 300);
    }

    #[test]
    fn lazy_range_matches_eager() {
        let t = filled(FastPathMode::Pole, 1000);
        let lazy: Vec<(u64, u64)> = t.range(100..500).map(|(k, v)| (k, *v)).collect();
        let eager = t.range_with_stats(100..500).entries;
        assert_eq!(lazy, eager);
        assert_eq!(t.range(5..5).count(), 0);
        assert_eq!(t.range(2000..3000).count(), 0);
    }

    #[test]
    fn range_is_lazy_over_duplicates() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        for i in 0..30u64 {
            t.insert(7, i);
        }
        t.insert(1, 0);
        assert_eq!(t.range(7..8).count(), 30);
        // take() stops early without scanning the rest.
        assert_eq!(t.range(0..100).take(3).count(), 3);
    }

    #[test]
    fn range_stats_accumulate() {
        let t = filled(FastPathMode::None, 100);
        t.stats().reset();
        let _ = t.range_with_stats(0..50);
        let _ = t.range_with_stats(50..100);
        assert_eq!(t.stats().range_scans.get(), 2);
        assert!(t.stats().range_leaf_accesses.get() > 0);
    }

    #[test]
    fn range_count_bound_shapes() {
        let t = filled(FastPathMode::None, 50);
        assert_eq!(t.range_count(0..50), 50);
        assert_eq!(t.range_count(0..=49), 50);
        assert_eq!(t.range_count(10..20), 10);
        assert_eq!(t.range_count(..), 50);
    }
}

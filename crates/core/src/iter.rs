//! Range lookups and full scans (§4.4): a point lookup locates the first
//! entry `>= start`, then the interlinked leaf pointers drive the scan until
//! an entry `>= end` appears.

use crate::arena::NodeId;
use crate::key::Key;
use crate::stats::Stats;
use crate::tree::BpTree;

/// Result of a range lookup, including the leaf-access count the paper's
/// Fig 10c reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeResult<K, V> {
    /// Matching `(key, value)` pairs in key order.
    pub entries: Vec<(K, V)>,
    /// Leaf nodes touched by the scan.
    pub leaf_accesses: u64,
}

impl<K: Key, V: Clone> BpTree<K, V> {
    /// All entries with keys in `[start, end)`, in key order, plus the
    /// number of leaves the scan touched.
    pub fn range(&self, start: K, end: K) -> RangeResult<K, V> {
        Stats::bump(&self.stats.range_scans);
        let mut entries = Vec::new();
        let mut leaf_accesses = 0u64;
        if start >= end || self.is_empty() {
            return RangeResult {
                entries,
                leaf_accesses,
            };
        }
        let (mut leaf_id, _, _, node_accesses) = self.descend(start);
        Stats::add(&self.stats.lookup_node_accesses, node_accesses);
        leaf_accesses += 1;
        // A duplicate run equal to `start` may extend into earlier leaves.
        loop {
            let leaf = self.arena.get(leaf_id).as_leaf();
            let back = leaf.keys.first().is_some_and(|&k| k >= start)
                && leaf.prev.is_some_and(|p| {
                    self.arena
                        .get(p)
                        .as_leaf()
                        .keys
                        .last()
                        .is_some_and(|&k| k >= start)
                });
            if !back {
                break;
            }
            leaf_id = leaf.prev.expect("checked above");
            leaf_accesses += 1;
        }
        let mut pos = {
            let leaf = self.arena.get(leaf_id).as_leaf();
            leaf.keys.partition_point(|k| *k < start)
        };
        let mut current = Some(leaf_id);
        'scan: while let Some(id) = current {
            let leaf = self.arena.get(id).as_leaf();
            while pos < leaf.keys.len() {
                let k = leaf.keys[pos];
                if k >= end {
                    break 'scan;
                }
                entries.push((k, leaf.vals[pos].clone()));
                pos += 1;
            }
            current = leaf.next;
            if current.is_some() {
                leaf_accesses += 1;
            }
            pos = 0;
        }
        Stats::add(&self.stats.range_leaf_accesses, leaf_accesses);
        RangeResult {
            entries,
            leaf_accesses,
        }
    }

    /// Number of entries in `[start, end)` without materializing values.
    pub fn range_count(&self, start: K, end: K) -> usize {
        self.range(start, end).entries.len()
    }
}

impl<K: Key, V> BpTree<K, V> {
    /// Lazy, non-materializing iterator over entries with keys in
    /// `[start, end)`. Unlike [`BpTree::range`] it borrows values instead of
    /// cloning them and does not count leaf accesses.
    pub fn range_iter(&self, start: K, end: K) -> RangeIter<'_, K, V> {
        if start >= end || self.is_empty() {
            return RangeIter {
                tree: self,
                leaf: None,
                pos: 0,
                end,
            };
        }
        let (mut leaf_id, _, _, _) = self.descend(start);
        // Walk back through a duplicate run equal to `start`.
        loop {
            let leaf = self.arena.get(leaf_id).as_leaf();
            let back = leaf.keys.first().is_some_and(|&k| k >= start)
                && leaf.prev.is_some_and(|p| {
                    self.arena
                        .get(p)
                        .as_leaf()
                        .keys
                        .last()
                        .is_some_and(|&k| k >= start)
                });
            if !back {
                break;
            }
            leaf_id = leaf.prev.expect("checked above");
        }
        let pos = self
            .arena
            .get(leaf_id)
            .as_leaf()
            .keys
            .partition_point(|k| *k < start);
        RangeIter {
            tree: self,
            leaf: Some(leaf_id),
            pos,
            end,
        }
    }

    /// Iterates every `(key, &value)` entry in key order via the leaf chain.
    pub fn iter(&self) -> TreeIter<'_, K, V> {
        TreeIter {
            tree: self,
            leaf: Some(self.head),
            pos: 0,
        }
    }

    /// All keys in order (mainly for tests and examples).
    pub fn keys(&self) -> Vec<K> {
        self.iter().map(|(k, _)| k).collect()
    }
}

/// Lazy iterator over a key range. See [`BpTree::range_iter`].
pub struct RangeIter<'a, K, V> {
    tree: &'a BpTree<K, V>,
    leaf: Option<NodeId>,
    pos: usize,
    end: K,
}

impl<'a, K: Key, V> Iterator for RangeIter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let id = self.leaf?;
            let leaf = self.tree.arena.get(id).as_leaf();
            if self.pos < leaf.keys.len() {
                let k = leaf.keys[self.pos];
                if k >= self.end {
                    self.leaf = None;
                    return None;
                }
                let item = (k, &leaf.vals[self.pos]);
                self.pos += 1;
                return Some(item);
            }
            self.leaf = leaf.next;
            self.pos = 0;
        }
    }
}

/// Ordered iterator over the whole index. See [`BpTree::iter`].
pub struct TreeIter<'a, K, V> {
    tree: &'a BpTree<K, V>,
    leaf: Option<NodeId>,
    pos: usize,
}

impl<'a, K: Key, V> Iterator for TreeIter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let id = self.leaf?;
            let leaf = self.tree.arena.get(id).as_leaf();
            if self.pos < leaf.keys.len() {
                let item = (leaf.keys[self.pos], &leaf.vals[self.pos]);
                self.pos += 1;
                return Some(item);
            }
            self.leaf = leaf.next;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TreeConfig;
    use crate::fastpath::FastPathMode;
    use crate::tree::BpTree;

    fn filled(mode: FastPathMode, n: u64) -> BpTree<u64, u64> {
        let mut t = BpTree::with_config(mode, TreeConfig::small(8));
        for k in 0..n {
            t.insert(k, k * 10);
        }
        t
    }

    #[test]
    fn range_middle() {
        let t = filled(FastPathMode::None, 100);
        let r = t.range(10, 20);
        assert_eq!(r.entries.len(), 10);
        assert_eq!(r.entries[0], (10, 100));
        assert_eq!(r.entries[9], (19, 190));
        assert!(r.leaf_accesses >= 2);
    }

    #[test]
    fn range_empty_and_degenerate() {
        let t = filled(FastPathMode::None, 100);
        assert!(t.range(20, 10).entries.is_empty());
        assert!(t.range(15, 15).entries.is_empty());
        assert!(t.range(1000, 2000).entries.is_empty());
        let empty: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(8));
        assert!(empty.range(0, 10).entries.is_empty());
    }

    #[test]
    fn range_full_span() {
        let t = filled(FastPathMode::Pole, 500);
        let r = t.range(0, 500);
        assert_eq!(r.entries.len(), 500);
        for (i, (k, v)) in r.entries.iter().enumerate() {
            assert_eq!(*k, i as u64);
            assert_eq!(*v, i as u64 * 10);
        }
    }

    #[test]
    fn range_spanning_duplicates() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        for i in 0..20u64 {
            t.insert(5, i);
        }
        t.insert(1, 0);
        t.insert(9, 0);
        let r = t.range(5, 6);
        assert_eq!(r.entries.len(), 20, "all duplicates must be returned");
        let r = t.range(0, 10);
        assert_eq!(r.entries.len(), 22);
    }

    #[test]
    fn quit_range_touches_fewer_leaves_than_classic() {
        // Fig 10c's mechanism: QuIT packs sorted data tighter, so a fixed
        // selectivity touches fewer leaves.
        let quit = filled(FastPathMode::Pole, 4000);
        let classic = filled(FastPathMode::None, 4000);
        let rq = quit.range(1000, 2000);
        let rc = classic.range(1000, 2000);
        assert_eq!(rq.entries, rc.entries);
        assert!(
            rq.leaf_accesses < rc.leaf_accesses,
            "QuIT {} vs classic {}",
            rq.leaf_accesses,
            rc.leaf_accesses
        );
    }

    #[test]
    fn iter_visits_everything_in_order() {
        let t = filled(FastPathMode::Lil, 300);
        let keys = t.keys();
        assert_eq!(keys.len(), 300);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.iter().count(), 300);
    }

    #[test]
    fn range_iter_matches_range() {
        let t = filled(FastPathMode::Pole, 1000);
        let lazy: Vec<(u64, u64)> = t.range_iter(100, 500).map(|(k, v)| (k, *v)).collect();
        let eager = t.range(100, 500).entries;
        assert_eq!(lazy, eager);
        assert_eq!(t.range_iter(5, 5).count(), 0);
        assert_eq!(t.range_iter(2000, 3000).count(), 0);
        let empty: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(8));
        assert_eq!(empty.range_iter(0, 100).count(), 0);
    }

    #[test]
    fn range_iter_is_lazy_over_duplicates() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        for i in 0..30u64 {
            t.insert(7, i);
        }
        t.insert(1, 0);
        assert_eq!(t.range_iter(7, 8).count(), 30);
        // take() stops early without scanning the rest.
        assert_eq!(t.range_iter(0, 100).take(3).count(), 3);
    }

    #[test]
    fn range_stats_accumulate() {
        let t = filled(FastPathMode::None, 100);
        t.stats().reset();
        let _ = t.range(0, 50);
        let _ = t.range(50, 100);
        assert_eq!(t.stats().range_scans.get(), 2);
        assert!(t.stats().range_leaf_accesses.get() > 0);
    }
}

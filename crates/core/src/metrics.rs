//! The unified metrics registry shared by every index family.
//!
//! The paper's entire evaluation is read off operation counters (Figs 3,
//! 5a, 9–12, Table 2), and tuning a production deployment additionally
//! needs *latency* and *windowed* views: fast-path behaviour only makes
//! sense observed as a function of incoming sortedness over time, not as an
//! end-of-run total. This module provides the three pieces:
//!
//! * [`Counter`] / [`crate::Stats`] — atomic operation counters (relaxed
//!   ordering) usable through `&self`, so one counter type serves the
//!   single-writer [`crate::BpTree`], the buffered `sware::SaBpTree`, and
//!   `quit_concurrent::ConcurrentTree` alike.
//! * [`LatencyHistogram`] — fixed-bucket log2 latency histograms for
//!   insert/get/range (buckets span ~1 ns to >1 s), recorded only at
//!   [`MetricsLevel::Histograms`] so the default level never pays for a
//!   clock read.
//! * [`FastPathWindow`] — a ring buffer over the outcome (fast vs. top) of
//!   the last `W` inserts, exposing
//!   [`recent_fastpath_rate`](MetricsRegistry::recent_fastpath_rate) so
//!   harnesses can plot hit rate against stream sortedness over time.
//!
//! [`MetricsRegistry`] bundles the three; [`MetricsRegistry::snapshot`]
//! produces the plain-integer [`crate::StatsSnapshot`] read-side view,
//! which exports to JSON via [`crate::StatsSnapshot::to_json`].

use crate::stats::{Stats, StatsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How much telemetry an index records.
///
/// Levels are ordered: each level records everything the previous one does.
///
/// * [`Off`](MetricsLevel::Off) — operation counters only. The counters are
///   single relaxed atomic updates on paths that already touch the node;
///   they are the paper's measurement substrate and are never disabled.
/// * [`Counters`](MetricsLevel::Counters) *(default)* — counters plus the
///   windowed fast-path hit-rate tracker (two relaxed atomic updates per
///   insert).
/// * [`Histograms`](MetricsLevel::Histograms) — everything above plus log2
///   latency histograms for insert/get/range. This is the only level that
///   reads the clock (two `Instant::now()` calls per timed operation);
///   lower levels skip it behind one predictable branch, so histograms are
///   zero-cost when disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricsLevel {
    /// Operation counters only.
    Off,
    /// Counters + windowed fast-path hit rate (default).
    #[default]
    Counters,
    /// Counters + window + latency histograms.
    Histograms,
}

/// A `u64` event counter readable and writable through `&self`.
///
/// Two write flavours:
///
/// * [`bump`](Counter::bump) / [`add`](Counter::add) — a relaxed
///   load-then-store. Exact when writers are externally synchronized (the
///   `&mut self` write paths of [`crate::BpTree`]), and as cheap as the
///   `Cell` counters they replaced.
/// * [`bump_shared`](Counter::bump_shared) / [`add_shared`](Counter::add_shared)
///   — a relaxed `fetch_add`, exact under concurrent writers. Used by every
///   `&self` path that can race (lookups, scans, and the whole concurrent
///   tree).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (used by `reset`).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// `+= 1` for externally-synchronized writers (load + store).
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// `+= n` for externally-synchronized writers (load + store).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0
            .store(self.0.load(Ordering::Relaxed) + n, Ordering::Relaxed);
    }

    /// `+= 1`, exact under concurrent writers (`fetch_add`).
    #[inline]
    pub fn bump_shared(&self) {
        self.add_shared(1);
    }

    /// `+= n`, exact under concurrent writers (`fetch_add`).
    #[inline]
    pub fn add_shared(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
}

/// Number of log2 latency buckets: bucket `i` counts operations whose
/// duration `d` satisfies `2^i ns <= d < 2^(i+1) ns` (bucket 0 also takes
/// sub-nanosecond readings, bucket 31 everything from `~2.1 s` up).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket log2 latency histogram (~1 ns to >1 s span).
///
/// Recording is one relaxed atomic add into the bucket selected by
/// `ilog2(ns)` plus one into the running nanosecond sum; reading never
/// blocks writers. Percentiles come from the read-side
/// [`HistogramSnapshot`].
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [Counter; HISTOGRAM_BUCKETS],
    /// Total recorded nanoseconds (for mean latency).
    sum_ns: Counter,
}

#[inline]
fn bucket_index(ns: u64) -> usize {
    (ns.max(1).ilog2() as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl LatencyHistogram {
    /// Records one operation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].add_shared(1);
        self.sum_ns.add_shared(ns);
    }

    /// Records the time elapsed since `start`.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        self.record_ns(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Operations recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(Counter::get).sum()
    }

    /// Plain-integer copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, c) in buckets.iter_mut().zip(&self.buckets) {
            *b = c.get();
        }
        HistogramSnapshot {
            buckets,
            sum_ns: self.sum_ns.get(),
        }
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.set(0);
        }
        self.sum_ns.set(0);
    }
}

/// Read-side view of a [`LatencyHistogram`]: plain integers, so it stays
/// `Eq`/`Default` and diffs cleanly. Percentiles are computed on demand and
/// carry log2 resolution (the reported value is the lower bound of the
/// bucket containing the requested quantile, i.e. within 2× of the true
/// latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket operation counts; bucket `i` covers `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total recorded nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Operations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count()).unwrap_or(0)
    }

    /// The latency (ns, bucket lower bound) at quantile `q` in `[0, 1]`.
    /// Returns 0 when the histogram is empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the target operation, 1-based, clamped to the population.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (HISTOGRAM_BUCKETS - 1)
    }

    /// Median latency (ns, log2 resolution).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th-percentile latency (ns, log2 resolution).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile latency (ns, log2 resolution).
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }
}

/// Size (in inserts) of the fast-path outcome window.
pub const FASTPATH_WINDOW: usize = 1024;
const WINDOW_WORDS: usize = FASTPATH_WINDOW / 64;

/// A ring buffer over the outcome (fast vs. top) of the last
/// [`FASTPATH_WINDOW`] inserts.
///
/// One bit per insert, packed into atomic words. Under a single writer the
/// window is exact; under concurrent writers (the concurrent tree) two
/// racing inserts may claim the same slot, so the *rate* is approximate —
/// the authoritative totals are always the `fast_inserts`/`top_inserts`
/// counters. Batched ingestion records whole runs at word granularity
/// ([`record_run`](FastPathWindow::record_run)), keeping the per-entry cost
/// of `insert_batch` amortized.
#[derive(Debug, Default)]
pub struct FastPathWindow {
    bits: [AtomicU64; WINDOW_WORDS],
    /// Total inserts ever recorded (ring position = `pos % FASTPATH_WINDOW`).
    pos: AtomicU64,
}

impl FastPathWindow {
    /// Records one insert outcome (externally-synchronized writers).
    ///
    /// Like [`Counter::bump`], this is the load+store flavour: plain moves
    /// instead of locked read-modify-writes, so the hot `&mut self` insert
    /// path pays roughly what the old `Cell` counters cost.
    #[inline]
    pub fn record(&self, fast: bool) {
        let p = self.pos.load(Ordering::Relaxed);
        self.pos.store(p + 1, Ordering::Relaxed);
        let slot = (p % FASTPATH_WINDOW as u64) as usize;
        let mask = 1u64 << (slot % 64);
        let word = &self.bits[slot / 64];
        let w = word.load(Ordering::Relaxed);
        let w = if fast { w | mask } else { w & !mask };
        word.store(w, Ordering::Relaxed);
    }

    /// Records one insert outcome, slot-exact under concurrent writers.
    #[inline]
    pub fn record_shared(&self, fast: bool) {
        let p = self.pos.fetch_add(1, Ordering::Relaxed);
        self.set_bit(p, fast);
    }

    #[inline]
    fn set_bit(&self, p: u64, fast: bool) {
        let slot = (p % FASTPATH_WINDOW as u64) as usize;
        let mask = 1u64 << (slot % 64);
        let word = &self.bits[slot / 64];
        if fast {
            word.fetch_or(mask, Ordering::Relaxed);
        } else {
            word.fetch_and(!mask, Ordering::Relaxed);
        }
    }

    /// Records a run of `n` same-outcome inserts at word granularity (the
    /// batched-ingestion path: one update per leaf append, not per key).
    /// Up to 63 neighbouring slots may be overwritten with the run's
    /// outcome; the window is a windowed *estimate* by design.
    pub fn record_run(&self, fast: bool, n: u64) {
        if n == 0 {
            return;
        }
        let start = self.pos.load(Ordering::Relaxed);
        self.pos.store(start + n, Ordering::Relaxed);
        let fill = if fast { u64::MAX } else { 0 };
        if n >= FASTPATH_WINDOW as u64 {
            for w in &self.bits {
                w.store(fill, Ordering::Relaxed);
            }
            return;
        }
        let first = (start / 64) as usize;
        let last = ((start + n - 1) / 64) as usize;
        for w in first..=last {
            self.bits[w % WINDOW_WORDS].store(fill, Ordering::Relaxed);
        }
    }

    /// Inserts currently represented in the window
    /// (`min(total inserts, FASTPATH_WINDOW)`).
    pub fn len(&self) -> u64 {
        self.pos.load(Ordering::Relaxed).min(FASTPATH_WINDOW as u64)
    }

    /// True when no insert has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fast-path hits among the inserts currently in the window.
    pub fn fast_hits(&self) -> u64 {
        let len = self.len();
        if len == 0 {
            return 0;
        }
        let full_words = (len / 64) as usize;
        let mut hits: u64 = self.bits[..full_words]
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum();
        let rem = len % 64;
        if rem > 0 {
            let tail = self.bits[full_words].load(Ordering::Relaxed);
            hits += (tail & ((1u64 << rem) - 1)).count_ones() as u64;
        }
        hits.min(len)
    }

    /// Fraction of the last [`FASTPATH_WINDOW`] inserts (or all inserts, if
    /// fewer) that took the fast path. 0 before the first insert.
    pub fn rate(&self) -> f64 {
        let len = self.len();
        if len == 0 {
            0.0
        } else {
            self.fast_hits() as f64 / len as f64
        }
    }

    /// Zeroes the window.
    pub fn reset(&self) {
        for w in &self.bits {
            w.store(0, Ordering::Relaxed);
        }
        self.pos.store(0, Ordering::Relaxed);
    }
}

/// The per-index metrics registry: operation counters, latency histograms,
/// and the windowed fast-path tracker, gated by a [`MetricsLevel`].
///
/// All mutation goes through `&self` with relaxed atomics, so the same
/// registry type serves the single-writer `BpTree`, the buffered
/// `SaBpTree`, and the `ConcurrentTree`.
#[derive(Debug)]
pub struct MetricsRegistry {
    level: MetricsLevel,
    /// Operation counters (the paper's measurement substrate).
    pub counters: Stats,
    /// Insert latency (recorded at [`MetricsLevel::Histograms`]).
    pub insert_latency: LatencyHistogram,
    /// Point-lookup latency (recorded at [`MetricsLevel::Histograms`]).
    pub get_latency: LatencyHistogram,
    /// Range-scan latency (recorded at [`MetricsLevel::Histograms`]).
    pub range_latency: LatencyHistogram,
    /// Commit-group sizes under group commit. The log2 buckets hold
    /// *records per fsync*, not nanoseconds — [`LatencyHistogram`] is
    /// reused here as a generic log2 value histogram. Recorded by
    /// `quit-durability` regardless of level (no clock read involved).
    pub group_commit_size: LatencyHistogram,
    /// Crash-recovery wall-clock latency (one recording per recovery, so
    /// the clock read is off every hot path).
    pub recovery_latency: LatencyHistogram,
    /// Outcome window over the most recent inserts.
    pub fastpath_window: FastPathWindow,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new(MetricsLevel::default())
    }
}

impl MetricsRegistry {
    /// A fresh registry recording at `level`.
    pub fn new(level: MetricsLevel) -> Self {
        MetricsRegistry {
            level,
            counters: Stats::new(),
            insert_latency: LatencyHistogram::default(),
            get_latency: LatencyHistogram::default(),
            range_latency: LatencyHistogram::default(),
            group_commit_size: LatencyHistogram::default(),
            recovery_latency: LatencyHistogram::default(),
            fastpath_window: FastPathWindow::default(),
        }
    }

    /// The active recording level.
    #[inline]
    pub fn level(&self) -> MetricsLevel {
        self.level
    }

    /// Starts a latency measurement — `Some` only at
    /// [`MetricsLevel::Histograms`], so lower levels never read the clock.
    #[inline]
    pub fn op_timer(&self) -> Option<Instant> {
        if self.level >= MetricsLevel::Histograms {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finishes an insert measurement started by
    /// [`op_timer`](Self::op_timer).
    #[inline]
    pub fn record_insert_latency(&self, start: Option<Instant>) {
        if let Some(t0) = start {
            self.insert_latency.record_since(t0);
        }
    }

    /// Finishes a lookup measurement started by [`op_timer`](Self::op_timer).
    #[inline]
    pub fn record_get_latency(&self, start: Option<Instant>) {
        if let Some(t0) = start {
            self.get_latency.record_since(t0);
        }
    }

    /// Finishes a range measurement started by [`op_timer`](Self::op_timer).
    #[inline]
    pub fn record_range_latency(&self, start: Option<Instant>) {
        if let Some(t0) = start {
            self.range_latency.record_since(t0);
        }
    }

    /// Feeds one insert outcome to the window (externally-synchronized
    /// writers; no-op at [`MetricsLevel::Off`]).
    #[inline]
    pub fn record_insert_outcome(&self, fast: bool) {
        if self.level >= MetricsLevel::Counters {
            self.fastpath_window.record(fast);
        }
    }

    /// Feeds one insert outcome to the window, slot-exact under concurrent
    /// writers (no-op at [`MetricsLevel::Off`]).
    #[inline]
    pub fn record_insert_outcome_shared(&self, fast: bool) {
        if self.level >= MetricsLevel::Counters {
            self.fastpath_window.record_shared(fast);
        }
    }

    /// Feeds a same-outcome run to the window at word granularity (the
    /// batched-ingestion path; no-op at [`MetricsLevel::Off`]).
    #[inline]
    pub fn record_insert_run(&self, fast: bool, n: u64) {
        if self.level >= MetricsLevel::Counters {
            self.fastpath_window.record_run(fast, n);
        }
    }

    /// Fraction of the most recent inserts (up to [`FASTPATH_WINDOW`]) that
    /// took the fast path.
    pub fn recent_fastpath_rate(&self) -> f64 {
        self.fastpath_window.rate()
    }

    /// Point-in-time snapshot of everything: counters, histograms, window.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut snap = self.counters.snapshot();
        snap.insert_latency = self.insert_latency.snapshot();
        snap.get_latency = self.get_latency.snapshot();
        snap.range_latency = self.range_latency.snapshot();
        snap.group_commit_size = self.group_commit_size.snapshot();
        snap.recovery_latency = self.recovery_latency.snapshot();
        snap.window_fast = self.fastpath_window.fast_hits();
        snap.window_len = self.fastpath_window.len();
        snap
    }

    /// Zeroes every counter, histogram, and the window (e.g. between the
    /// ingest and query phases of an experiment).
    pub fn reset(&self) {
        self.counters.reset();
        self.insert_latency.reset();
        self.get_latency.reset();
        self.range_latency.reset();
        self.group_commit_size.reset();
        self.recovery_latency.reset();
        self.fastpath_window.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_both_flavours() {
        let c = Counter::default();
        c.bump();
        c.add(4);
        c.bump_shared();
        c.add_shared(4);
        assert_eq!(c.get(), 10);
        c.set(0);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn bucket_index_spans_1ns_to_1s() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        // 1 s lands inside the range, not in the overflow bucket.
        assert_eq!(bucket_index(1_000_000_000), 29);
        // Everything beyond ~2.1 s clamps to the last bucket.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles() {
        let h = LatencyHistogram::default();
        // 99 ops at ~16 ns, one at ~1 ms.
        for _ in 0..99 {
            h.record_ns(16);
        }
        h.record_ns(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50_ns(), 16);
        assert_eq!(s.p99_ns(), 16);
        assert_eq!(s.p999_ns(), 1 << 19); // bucket lower bound of 1 ms
        assert!(s.mean_ns() >= 10_000);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        assert_eq!(HistogramSnapshot::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn window_tracks_recent_rate() {
        let w = FastPathWindow::default();
        assert_eq!(w.rate(), 0.0);
        assert!(w.is_empty());
        for _ in 0..512 {
            w.record(true);
        }
        assert_eq!(w.rate(), 1.0);
        for _ in 0..512 {
            w.record(false);
        }
        assert!((w.rate() - 0.5).abs() < 1e-9);
        // Another full window of misses evicts every hit.
        for _ in 0..FASTPATH_WINDOW {
            w.record_shared(false);
        }
        assert_eq!(w.rate(), 0.0);
        assert_eq!(w.len(), FASTPATH_WINDOW as u64);
    }

    #[test]
    fn window_run_granularity() {
        let w = FastPathWindow::default();
        w.record_run(true, 5000);
        assert_eq!(w.rate(), 1.0);
        w.record_run(false, 64);
        // A 64-slot run can overwrite up to two words (127 extra slots).
        let rate = w.rate();
        assert!((0.8..1.0).contains(&rate), "rate {rate}");
        w.reset();
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn registry_level_gates_clock_and_window() {
        let off = MetricsRegistry::new(MetricsLevel::Off);
        assert!(off.op_timer().is_none());
        off.record_insert_outcome(true);
        assert_eq!(off.fastpath_window.len(), 0);

        let counters = MetricsRegistry::new(MetricsLevel::Counters);
        assert!(counters.op_timer().is_none());
        counters.record_insert_outcome(true);
        assert_eq!(counters.fastpath_window.len(), 1);

        let hist = MetricsRegistry::new(MetricsLevel::Histograms);
        let t0 = hist.op_timer();
        assert!(t0.is_some());
        hist.record_insert_latency(t0);
        assert_eq!(hist.insert_latency.count(), 1);
    }

    #[test]
    fn registry_snapshot_and_reset() {
        let r = MetricsRegistry::new(MetricsLevel::Histograms);
        r.counters.fast_inserts.bump();
        r.record_insert_outcome(true);
        r.insert_latency.record_ns(100);
        let snap = r.snapshot();
        assert_eq!(snap.fast_inserts, 1);
        assert_eq!(snap.window_fast, 1);
        assert_eq!(snap.window_len, 1);
        assert_eq!(snap.insert_latency.count(), 1);
        assert!((r.recent_fastpath_rate() - 1.0).abs() < 1e-12);
        r.reset();
        assert_eq!(r.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn level_ordering() {
        assert!(MetricsLevel::Off < MetricsLevel::Counters);
        assert!(MetricsLevel::Counters < MetricsLevel::Histograms);
        assert_eq!(MetricsLevel::default(), MetricsLevel::Counters);
    }
}

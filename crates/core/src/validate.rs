//! Structural invariant checker used throughout the test suite (and usable
//! by downstream users in debug builds). Not called on hot paths.

use crate::arena::NodeId;
use crate::key::Key;
use crate::node::Node;
use crate::tree::BpTree;

/// A violated invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violation: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

impl<K: Key, V> BpTree<K, V> {
    /// Verifies the full set of structural invariants:
    ///
    /// 1. every node's keys are sorted; leaf keys respect ancestor
    ///    separators;
    /// 2. internal fanout (`children = keys + 1`) and capacity limits;
    /// 3. parent pointers are consistent with child lists;
    /// 4. the leaf chain is doubly linked, ordered, and reaches every leaf;
    /// 5. `head`/`tail` point at the chain ends; `len` equals total entries;
    /// 6. fast-path metadata (when armed) points at a live leaf whose
    ///    separator bounds match `fp_min`/`fp_max`.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |msg: String| Err(InvariantViolation(msg));

        // --- recursive structural check ---
        let mut leaf_order: Vec<NodeId> = Vec::new();
        let mut entries = 0usize;
        self.check_subtree(self.root, None, None, &mut leaf_order, &mut entries)?;

        if entries != self.len {
            return err(format!("len says {} but leaves hold {}", self.len, entries));
        }

        // --- leaf chain ---
        if leaf_order.is_empty() {
            return err("tree has no leaves".into());
        }
        if self.head != leaf_order[0] {
            return err(format!(
                "head is {:?} but left-most leaf is {:?}",
                self.head, leaf_order[0]
            ));
        }
        if self.tail != *leaf_order.last().expect("non-empty") {
            return err(format!(
                "tail is {:?} but right-most leaf is {:?}",
                self.tail,
                leaf_order.last()
            ));
        }
        let mut walked = Vec::with_capacity(leaf_order.len());
        let mut cur = Some(self.head);
        let mut prev: Option<NodeId> = None;
        while let Some(id) = cur {
            let leaf = match self.arena.get(id) {
                Node::Leaf(l) => l,
                _ => return err(format!("chain node {id:?} is not a leaf")),
            };
            if leaf.prev != prev {
                return err(format!(
                    "leaf {id:?} prev is {:?}, expected {:?}",
                    leaf.prev, prev
                ));
            }
            walked.push(id);
            prev = Some(id);
            cur = leaf.next;
            if walked.len() > leaf_order.len() {
                return err("leaf chain longer than tree (cycle?)".into());
            }
        }
        if walked != leaf_order {
            return err("leaf chain order disagrees with tree order".into());
        }
        // Chain-wide key order.
        let mut last_key: Option<K> = None;
        for &id in &walked {
            for &k in &self.arena.get(id).as_leaf().keys {
                if last_key.is_some_and(|p| p > k) {
                    return err(format!("keys out of order at leaf {id:?}: {k:?}"));
                }
                last_key = Some(k);
            }
        }

        // --- height ---
        let mut depth = 1usize;
        let mut id = self.root;
        while let Node::Internal(n) = self.arena.get(id) {
            id = n.children[0];
            depth += 1;
        }
        if depth != self.height {
            return err(format!(
                "height says {} but depth is {}",
                self.height, depth
            ));
        }

        // --- fast-path metadata ---
        // A *narrower* fast-path range than the leaf's true separator bounds
        // only costs missed fast-inserts; a *wider* one would route keys into
        // the wrong leaf, so that direction is what we verify.
        if self.mode.has_fast_path() && self.fp.leaf.is_none() {
            return err("fast-path mode armed but fp_id is unset".into());
        }
        if let Some(fp_leaf) = self.fp.leaf.filter(|_| self.mode.has_fast_path()) {
            if !matches!(self.arena.get(fp_leaf), Node::Leaf(_)) {
                return err(format!("fast-path leaf {fp_leaf:?} is not a live leaf"));
            }
            let (low, high) = self.leaf_bounds(fp_leaf);
            if let Some(b) = low {
                if self.fp.min.is_none_or(|m| m < b) {
                    return err(format!(
                        "fp_min {:?} wider than separator bound {b:?} for {fp_leaf:?}",
                        self.fp.min
                    ));
                }
            }
            if let Some(b) = high {
                if self.fp.max.is_none_or(|m| m > b) {
                    return err(format!(
                        "fp_max {:?} wider than separator bound {b:?} for {fp_leaf:?}",
                        self.fp.max
                    ));
                }
            }
            // `poℓe_prev_{min,size}` are memoized at poℓe-split time and
            // may lag the node's live state (Table 1 metadata semantics);
            // only the id's structural validity is an invariant.
            if let Some(prev_id) = self.fp.prev_id {
                if !matches!(self.arena.get(prev_id), Node::Leaf(_)) {
                    return err(format!("poℓe_prev {prev_id:?} is not a live leaf"));
                }
            }
        }
        Ok(())
    }

    fn check_subtree(
        &self,
        id: NodeId,
        low: Option<K>,
        high: Option<K>,
        leaf_order: &mut Vec<NodeId>,
        entries: &mut usize,
    ) -> Result<(), InvariantViolation> {
        let err = |msg: String| Err(InvariantViolation(msg));
        match self.arena.get(id) {
            Node::Free => err(format!("reached freed node {id:?}")),
            Node::Leaf(l) => {
                if l.keys.len() != l.vals.len() {
                    return err(format!("leaf {id:?} keys/vals length mismatch"));
                }
                if l.keys.len() > self.config.leaf_capacity {
                    return err(format!(
                        "leaf {id:?} holds {} physical slots > capacity {}",
                        l.keys.len(),
                        self.config.leaf_capacity
                    ));
                }
                if !l.keys.windows(2).all(|w| w[0] <= w[1]) {
                    return err(format!("leaf {id:?} keys unsorted"));
                }
                // Gap-layout invariants (trivially satisfied by dense leaves).
                if self.config.node_layout == crate::layout::NodeLayoutKind::Dense
                    && !l.gaps.is_dense()
                {
                    return err(format!("leaf {id:?} holds gaps under the dense layout"));
                }
                if !l.keys.is_empty() && l.gaps.is_gap(l.keys.len() - 1) {
                    return err(format!("leaf {id:?} ends in a gap (trailing gaps trim)"));
                }
                let mut in_range_gaps = 0usize;
                for i in 0..l.keys.len() {
                    if l.gaps.is_gap(i) {
                        in_range_gaps += 1;
                        // Strict filler rule: a gap copies its nearest live
                        // right neighbour, so each gap key equals the key of
                        // the following slot (gap or live).
                        if l.keys[i] != l.keys[i + 1] {
                            return err(format!(
                                "leaf {id:?} gap slot {i} filler key {:?} != next slot key {:?}",
                                l.keys[i],
                                l.keys[i + 1]
                            ));
                        }
                    }
                }
                if in_range_gaps != l.gaps.count() {
                    return err(format!(
                        "leaf {id:?} gap bitmap counts {} but {} gaps lie in range",
                        l.gaps.count(),
                        in_range_gaps
                    ));
                }
                for &k in &l.keys {
                    if low.is_some_and(|b| k < b) {
                        return err(format!("leaf {id:?} key {k:?} below bound {low:?}"));
                    }
                    // Duplicate runs may straddle a separator: the invariant
                    // is left ≤ s ≤ right, so equality with the upper bound
                    // is legal.
                    if high.is_some_and(|b| k > b) {
                        return err(format!("leaf {id:?} key {k:?} above bound {high:?}"));
                    }
                }
                *entries += l.len();
                leaf_order.push(id);
                Ok(())
            }
            Node::Internal(n) => {
                if n.children.len() != n.keys.len() + 1 {
                    return err(format!(
                        "internal {id:?} has {} children for {} keys",
                        n.children.len(),
                        n.keys.len()
                    ));
                }
                if n.keys.len() > self.config.internal_capacity {
                    return err(format!(
                        "internal {id:?} holds {} > capacity {}",
                        n.keys.len(),
                        self.config.internal_capacity
                    ));
                }
                if !n.keys.windows(2).all(|w| w[0] <= w[1]) {
                    return err(format!("internal {id:?} keys unsorted"));
                }
                for &k in &n.keys {
                    if low.is_some_and(|b| k < b) || high.is_some_and(|b| k > b) {
                        return err(format!(
                            "internal {id:?} separator {k:?} outside ({low:?}, {high:?})"
                        ));
                    }
                }
                for (i, &child) in n.children.iter().enumerate() {
                    if self.arena.get(child).parent() != Some(id) {
                        return err(format!(
                            "child {child:?} of {id:?} has parent {:?}",
                            self.arena.get(child).parent()
                        ));
                    }
                    let clow = if i == 0 { low } else { Some(n.keys[i - 1]) };
                    let chigh = if i == n.keys.len() {
                        high
                    } else {
                        Some(n.keys[i])
                    };
                    self.check_subtree(child, clow, chigh, leaf_order, entries)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TreeConfig;
    use crate::fastpath::FastPathMode;
    use crate::tree::BpTree;

    #[test]
    fn fresh_tree_is_valid() {
        let t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(4));
        t.check_invariants().unwrap();
    }

    #[test]
    fn detects_corrupted_len() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        t.insert(1, 1);
        t.len = 5; // corrupt deliberately
        let e = t.check_invariants().unwrap_err();
        assert!(e.0.contains("len"), "{e}");
    }

    #[test]
    fn detects_unsorted_leaf() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        t.insert(1, 1);
        t.insert(2, 2);
        let root = t.root;
        t.arena.get_mut(root).as_leaf_mut().keys.swap(0, 1);
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn detects_bad_fp_bounds() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(4));
        for k in 0..64u64 {
            t.insert(k, k);
        }
        t.fp.min = Some(0); // corrupt deliberately: wider than the true bound
        let e = t.check_invariants().unwrap_err();
        assert!(e.0.contains("fp_min"), "{e}");
    }

    #[test]
    fn big_trees_validate_in_every_mode() {
        for mode in [
            FastPathMode::None,
            FastPathMode::Tail,
            FastPathMode::Lil,
            FastPathMode::Pole,
        ] {
            let mut t: BpTree<u64, u64> = BpTree::with_config(mode, TreeConfig::small(8));
            for k in 0..5000u64 {
                t.insert(k % 1000 * 7 + k / 1000, k);
            }
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

//! Snapshot persistence: extract a tree's logical content (entries +
//! configuration) and rebuild it later. Rebuilding uses the bulk loader, so
//! a restored index starts with optimally packed leaves regardless of the
//! insertion history that produced the snapshot; the fast path re-arms at
//! the tail and ingestion resumes seamlessly.
//!
//! [`TreeSnapshot`] is a plain-data struct (mode + config + sorted entries),
//! so callers can persist it with any encoding they already have on hand.

use crate::config::{StorageKind, TreeConfig};
use crate::error::Error;
use crate::fastpath::{FastPathMode, FastPathState};
use crate::key::Key;
use crate::metrics::MetricsRegistry;
use crate::pool::crc32;
use crate::tree::BpTree;

/// Magic prefix of a tree page image ([`BpTree::to_page_image`]).
pub const TREE_IMAGE_MAGIC: &[u8; 6] = b"QPTB1\n";

/// Byte length of the tree-metadata header that precedes the arena image:
/// magic + mode byte + leaf/internal capacities + root/head/tail ids +
/// height (`u32`s) + len + tops-at-last-split (`u64`s) + header CRC.
const TREE_HEADER_LEN: usize = 6 + 1 + 4 * 6 + 8 + 8 + 4;

/// A portable, self-contained snapshot of an index.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeSnapshot<K, V> {
    /// Fast-path mode the tree ran with.
    pub mode: FastPathMode,
    /// Tree geometry and QuIT feature toggles.
    pub config: TreeConfig,
    /// Every entry, sorted by key (duplicates preserved in order).
    pub entries: Vec<(K, V)>,
}

impl<K: Key, V: Clone + 'static> BpTree<K, V> {
    /// Captures the tree's logical state. Entries come out in key order via
    /// the leaf chain, so this is a single O(n) scan.
    pub fn to_snapshot(&self) -> TreeSnapshot<K, V> {
        TreeSnapshot {
            mode: self.mode(),
            config: self.config().clone(),
            entries: self.iter().map(|(k, v)| (k, v.clone())).collect(),
        }
    }

    /// Rebuilds an index from a snapshot, packing leaves to the snapshot
    /// configuration's [`TreeConfig::bulk_fill`] (1.0 unless the deployment
    /// opted into headroom); pass an explicit `fill` through
    /// [`TreeSnapshot::restore_with_fill`] to override it.
    pub fn from_snapshot(snapshot: TreeSnapshot<K, V>) -> Self {
        let fill = snapshot.config.bulk_fill;
        snapshot.restore_with_fill(fill)
    }
}

// Physical page images: the paged backend's snapshot format. Where
// [`TreeSnapshot`] is logical (entries, rebuilt via the bulk loader), a page
// image captures the tree *structurally* — every page verbatim plus the
// root/spine metadata — so reopening is mostly lazy: integrity (per-page
// CRCs) is checked eagerly in one byte sweep, but nodes decode only when
// an operation faults them in.
impl<K: Key, V: Clone + 'static> BpTree<K, V> {
    /// Serializes a paged tree into a self-contained page image: a small
    /// metadata header (mode, geometry, root/head/tail, height, len) in
    /// front of the arena's page file. Returns `None` on the in-memory
    /// arena backend — use [`BpTree::to_snapshot`] there.
    ///
    /// Takes `&mut self` because dirty resident frames are flushed to the
    /// page store first.
    #[allow(clippy::wrong_self_convention)]
    pub fn to_page_image(&mut self) -> Option<Vec<u8>> {
        let arena_image = self.arena.to_image()?;
        let mut out = Vec::with_capacity(TREE_HEADER_LEN + arena_image.len());
        out.extend_from_slice(TREE_IMAGE_MAGIC);
        out.push(match self.mode {
            FastPathMode::None => 0,
            FastPathMode::Tail => 1,
            FastPathMode::Lil => 2,
            FastPathMode::Pole => 3,
        });
        out.extend_from_slice(&(self.config.leaf_capacity as u32).to_le_bytes());
        out.extend_from_slice(&(self.config.internal_capacity as u32).to_le_bytes());
        out.extend_from_slice(&self.root.0.to_le_bytes());
        out.extend_from_slice(&self.head.0.to_le_bytes());
        out.extend_from_slice(&self.tail.0.to_le_bytes());
        out.extend_from_slice(&(self.height as u32).to_le_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&self.tops_at_last_split.to_le_bytes());
        out.extend_from_slice(&crc32(&out).to_le_bytes());
        out.extend_from_slice(&arena_image);
        Some(out)
    }

    /// Opens a tree from a page image written by
    /// [`to_page_image`](Self::to_page_image).
    ///
    /// `config.storage` must be [`StorageKind::Paged`] (its `pool_pages`
    /// caps residency; the page size comes from the image) and the
    /// geometry must match the image's. Integrity is validated eagerly —
    /// the metadata header and every page CRC — and any corruption
    /// rejects the whole image; node decoding is lazy, so recovery cost
    /// is one byte sweep plus faulting the root/spine on first use. The
    /// fast path re-arms at the tail leaf.
    pub fn from_page_image(image: &[u8], config: TreeConfig) -> Result<Self, Error> {
        config.assert_valid();
        let StorageKind::Paged { pool_pages, .. } = config.storage else {
            return Err(Error::config(
                "from_page_image requires StorageKind::Paged storage",
            ));
        };
        if image.len() < TREE_HEADER_LEN {
            return Err(Error::corruption("tree page image: truncated header"));
        }
        let (header, arena_image) = image.split_at(TREE_HEADER_LEN);
        if &header[..6] != TREE_IMAGE_MAGIC {
            return Err(Error::corruption("tree page image: bad magic"));
        }
        let stored_crc = u32::from_le_bytes(header[TREE_HEADER_LEN - 4..].try_into().unwrap());
        if crc32(&header[..TREE_HEADER_LEN - 4]) != stored_crc {
            return Err(Error::corruption("tree page image: header CRC mismatch"));
        }
        let mode = match header[6] {
            0 => FastPathMode::None,
            1 => FastPathMode::Tail,
            2 => FastPathMode::Lil,
            3 => FastPathMode::Pole,
            m => {
                return Err(Error::corruption(format!(
                    "tree page image: unknown fast-path mode {m}"
                )))
            }
        };
        let u32_at = |off: usize| u32::from_le_bytes(header[off..off + 4].try_into().unwrap());
        let u64_at = |off: usize| u64::from_le_bytes(header[off..off + 8].try_into().unwrap());
        let leaf_capacity = u32_at(7) as usize;
        let internal_capacity = u32_at(11) as usize;
        if leaf_capacity != config.leaf_capacity || internal_capacity != config.internal_capacity {
            return Err(Error::config(format!(
                "tree page image geometry {leaf_capacity}/{internal_capacity} does not match \
                 config {}/{}",
                config.leaf_capacity, config.internal_capacity
            )));
        }
        let root = crate::arena::NodeId(u32_at(15));
        let head = crate::arena::NodeId(u32_at(19));
        let tail = crate::arena::NodeId(u32_at(23));
        let height = u32_at(27) as usize;
        let len = u64_at(31) as usize;
        let tops_at_last_split = u64_at(39);
        let arena = crate::arena::Arena::from_image(
            arena_image,
            pool_pages,
            leaf_capacity,
            internal_capacity,
        )?;
        if root.0 as usize >= arena.slot_count() {
            return Err(Error::corruption("tree page image: root id out of range"));
        }
        let mut fp = FastPathState::initial(root);
        if !mode.has_fast_path() {
            fp.leaf = None;
            fp.path.clear();
        }
        let metrics = MetricsRegistry::new(config.metrics_level);
        let mut tree = BpTree {
            arena,
            root,
            head,
            tail,
            height,
            len,
            config,
            mode,
            fp,
            metrics,
            tops_at_last_split,
        };
        if tree.mode.has_fast_path() {
            // Faults in the tail leaf (and, for poℓe, its spine) — the
            // only eager node decoding recovery performs.
            tree.arm_fast_path_at_tail();
        }
        Ok(tree)
    }
}

impl<K: Key, V: 'static> TreeSnapshot<K, V> {
    /// Rebuilds the index, packing leaves to `fill` of capacity.
    pub fn restore_with_fill(self, fill: f64) -> BpTree<K, V> {
        BpTree::bulk_load(self.mode, self.config, self.entries, fill)
    }

    /// Number of entries captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::Variant;

    fn build() -> BpTree<u64, u64> {
        let mut t = Variant::Quit.build(TreeConfig::small(8));
        for k in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            t.insert(k, k * 10);
        }
        for k in 10..500u64 {
            t.insert(k, k * 10);
        }
        t
    }

    fn paged_config() -> TreeConfig {
        TreeConfig::small(8).with_storage(StorageKind::paged(4))
    }

    #[test]
    fn page_image_roundtrip_is_lazy_and_exact() {
        let mut t: BpTree<u64, u64> = Variant::Quit.build(paged_config());
        for k in 0..500u64 {
            t.insert(k, k * 10);
        }
        let expected: Vec<(u64, u64)> = t.range(..).map(|(k, v)| (k, *v)).collect();
        let image = t.to_page_image().expect("paged tree yields an image");
        assert_eq!(&image[..6], TREE_IMAGE_MAGIC);

        let mut back = BpTree::<u64, u64>::from_page_image(&image, paged_config()).unwrap();
        assert_eq!(back.len(), t.len());
        // Lazy recovery: only fast-path arming has touched nodes so far
        // (a spine's worth of overshoot past the 4-page budget is allowed
        // until the next operation boundary trims it).
        assert!(
            back.resident_nodes() <= 4 + back.height(),
            "resident {} is not lazy",
            back.resident_nodes()
        );
        assert!(back.node_count() > 50, "tree should have many nodes");
        let got: Vec<(u64, u64)> = back.range(..).map(|(k, v)| (k, *v)).collect();
        assert_eq!(got, expected);
        back.check_invariants().unwrap();
        // Ingestion resumes through the re-armed fast path.
        back.stats().reset();
        for k in 500..600u64 {
            back.insert(k, k * 10);
        }
        assert_eq!(back.stats().top_inserts.get(), 0);
    }

    #[test]
    fn page_image_rejects_corruption_and_wrong_config() {
        let mut t: BpTree<u64, u64> = Variant::Quit.build(paged_config());
        for k in 0..200u64 {
            t.insert(k, k);
        }
        let image = t.to_page_image().unwrap();

        // In-memory arena config: refused outright.
        let err = BpTree::<u64, u64>::from_page_image(&image, TreeConfig::small(8)).unwrap_err();
        assert_eq!(err.kind(), "config");
        // Mismatched geometry: refused.
        let err = BpTree::<u64, u64>::from_page_image(
            &image,
            TreeConfig::small(16).with_storage(StorageKind::paged(4)),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "config");
        // A flipped byte anywhere — header or page area — rejects the image.
        for off in [7usize, 20, TREE_HEADER_LEN + 40, image.len() - 3] {
            let mut bad = image.clone();
            bad[off] ^= 0xFF;
            assert!(
                BpTree::<u64, u64>::from_page_image(&bad, paged_config()).is_err(),
                "corruption at byte {off} went undetected"
            );
        }
        // Truncations never pass.
        for cut in [
            3usize,
            TREE_HEADER_LEN - 1,
            TREE_HEADER_LEN + 9,
            image.len() - 1,
        ] {
            assert!(BpTree::<u64, u64>::from_page_image(&image[..cut], paged_config()).is_err());
        }
    }

    #[test]
    fn page_image_none_on_arena_backend() {
        let mut t = build();
        assert!(t.to_page_image().is_none());
        assert!(!t.is_paged());
    }

    #[test]
    fn snapshot_roundtrip_preserves_content() {
        let t = build();
        let snap = t.to_snapshot();
        assert_eq!(snap.len(), t.len());
        assert!(snap.entries.windows(2).all(|w| w[0].0 <= w[1].0));
        let restored = BpTree::from_snapshot(snap);
        assert_eq!(restored.len(), t.len());
        for k in 0..500u64 {
            assert_eq!(restored.get(k), t.get(k), "key {k}");
        }
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restored_tree_is_packed_and_ingests_fast() {
        let t = build();
        let mut restored = BpTree::from_snapshot(t.to_snapshot());
        assert!(restored.memory_report().avg_leaf_occupancy > 0.95);
        restored.stats().reset();
        for k in 500..1000u64 {
            restored.insert(k, k);
        }
        assert_eq!(restored.stats().top_inserts.get(), 0, "fast path re-armed");
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restore_with_headroom() {
        let t = build();
        let restored = t.to_snapshot().restore_with_fill(0.7);
        let occ = restored.memory_report().avg_leaf_occupancy;
        assert!((0.6..0.8).contains(&occ), "occupancy {occ}");
        restored.check_invariants().unwrap();
    }

    #[test]
    fn from_snapshot_honours_configured_bulk_fill() {
        // A deployment that opted into leaf headroom must get it back on
        // restore without threading the fill factor by hand (Fig 10c leaf
        // counts depend on it).
        let mut t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(8).with_bulk_fill(0.7));
        for k in 0..800u64 {
            t.insert(k, k);
        }
        let restored = BpTree::from_snapshot(t.to_snapshot());
        let occ = restored.memory_report().avg_leaf_occupancy;
        assert!(
            (0.6..0.8).contains(&occ),
            "occupancy {occ} ignores bulk_fill"
        );
        assert_eq!(restored.config().bulk_fill, 0.7);
        restored.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_preserves_duplicates() {
        let mut t: BpTree<u64, u64> = Variant::Classic.build(TreeConfig::small(4));
        for i in 0..30u64 {
            t.insert(7, i);
        }
        let restored = BpTree::from_snapshot(t.to_snapshot());
        assert_eq!(restored.get_all(7).len(), 30);
    }

    #[test]
    fn empty_snapshot() {
        let t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(4));
        let snap = t.to_snapshot();
        assert!(snap.is_empty());
        let restored = BpTree::from_snapshot(snap);
        assert!(restored.is_empty());
        restored.check_invariants().unwrap();
    }
}

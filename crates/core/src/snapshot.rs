//! Snapshot persistence: extract a tree's logical content (entries +
//! configuration) and rebuild it later. Rebuilding uses the bulk loader, so
//! a restored index starts with optimally packed leaves regardless of the
//! insertion history that produced the snapshot; the fast path re-arms at
//! the tail and ingestion resumes seamlessly.
//!
//! [`TreeSnapshot`] is a plain-data struct (mode + config + sorted entries),
//! so callers can persist it with any encoding they already have on hand.

use crate::config::TreeConfig;
use crate::fastpath::FastPathMode;
use crate::key::Key;
use crate::tree::BpTree;

/// A portable, self-contained snapshot of an index.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeSnapshot<K, V> {
    /// Fast-path mode the tree ran with.
    pub mode: FastPathMode,
    /// Tree geometry and QuIT feature toggles.
    pub config: TreeConfig,
    /// Every entry, sorted by key (duplicates preserved in order).
    pub entries: Vec<(K, V)>,
}

impl<K: Key, V: Clone> BpTree<K, V> {
    /// Captures the tree's logical state. Entries come out in key order via
    /// the leaf chain, so this is a single O(n) scan.
    pub fn to_snapshot(&self) -> TreeSnapshot<K, V> {
        TreeSnapshot {
            mode: self.mode(),
            config: self.config().clone(),
            entries: self.iter().map(|(k, v)| (k, v.clone())).collect(),
        }
    }

    /// Rebuilds an index from a snapshot, packing leaves to the snapshot
    /// configuration's [`TreeConfig::bulk_fill`] (1.0 unless the deployment
    /// opted into headroom); pass an explicit `fill` through
    /// [`TreeSnapshot::restore_with_fill`] to override it.
    pub fn from_snapshot(snapshot: TreeSnapshot<K, V>) -> Self {
        let fill = snapshot.config.bulk_fill;
        snapshot.restore_with_fill(fill)
    }
}

impl<K: Key, V> TreeSnapshot<K, V> {
    /// Rebuilds the index, packing leaves to `fill` of capacity.
    pub fn restore_with_fill(self, fill: f64) -> BpTree<K, V> {
        BpTree::bulk_load(self.mode, self.config, self.entries, fill)
    }

    /// Number of entries captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::Variant;

    fn build() -> BpTree<u64, u64> {
        let mut t = Variant::Quit.build(TreeConfig::small(8));
        for k in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            t.insert(k, k * 10);
        }
        for k in 10..500u64 {
            t.insert(k, k * 10);
        }
        t
    }

    #[test]
    fn snapshot_roundtrip_preserves_content() {
        let t = build();
        let snap = t.to_snapshot();
        assert_eq!(snap.len(), t.len());
        assert!(snap.entries.windows(2).all(|w| w[0].0 <= w[1].0));
        let restored = BpTree::from_snapshot(snap);
        assert_eq!(restored.len(), t.len());
        for k in 0..500u64 {
            assert_eq!(restored.get(k), t.get(k), "key {k}");
        }
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restored_tree_is_packed_and_ingests_fast() {
        let t = build();
        let mut restored = BpTree::from_snapshot(t.to_snapshot());
        assert!(restored.memory_report().avg_leaf_occupancy > 0.95);
        restored.stats().reset();
        for k in 500..1000u64 {
            restored.insert(k, k);
        }
        assert_eq!(restored.stats().top_inserts.get(), 0, "fast path re-armed");
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restore_with_headroom() {
        let t = build();
        let restored = t.to_snapshot().restore_with_fill(0.7);
        let occ = restored.memory_report().avg_leaf_occupancy;
        assert!((0.6..0.8).contains(&occ), "occupancy {occ}");
        restored.check_invariants().unwrap();
    }

    #[test]
    fn from_snapshot_honours_configured_bulk_fill() {
        // A deployment that opted into leaf headroom must get it back on
        // restore without threading the fill factor by hand (Fig 10c leaf
        // counts depend on it).
        let mut t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(8).with_bulk_fill(0.7));
        for k in 0..800u64 {
            t.insert(k, k);
        }
        let restored = BpTree::from_snapshot(t.to_snapshot());
        let occ = restored.memory_report().avg_leaf_occupancy;
        assert!(
            (0.6..0.8).contains(&occ),
            "occupancy {occ} ignores bulk_fill"
        );
        assert_eq!(restored.config().bulk_fill, 0.7);
        restored.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_preserves_duplicates() {
        let mut t: BpTree<u64, u64> = Variant::Classic.build(TreeConfig::small(4));
        for i in 0..30u64 {
            t.insert(7, i);
        }
        let restored = BpTree::from_snapshot(t.to_snapshot());
        assert_eq!(restored.get_all(7).len(), 30);
    }

    #[test]
    fn empty_snapshot() {
        let t: BpTree<u64, u64> = Variant::Quit.build(TreeConfig::small(4));
        let snap = t.to_snapshot();
        assert!(snap.is_empty());
        let restored = BpTree::from_snapshot(snap);
        assert!(restored.is_empty());
        restored.check_invariants().unwrap();
    }
}

//! Structure-modification operations: leaf and internal splits, separator
//! maintenance, and QuIT's redistribution into `poℓe_prev`.

use crate::arena::NodeId;
use crate::key::Key;
use crate::node::{InternalNode, LeafNode, Node};
use crate::stats::Stats;
use crate::tree::BpTree;

// Leaf splits require `V: Clone` under the gapped layout: the left half is
// re-gapped after the split, which materializes filler copies.
impl<K: Key, V: Clone> BpTree<K, V> {
    /// Splits `leaf_id` at entry index `pos` (entries `[pos..]` move to a new
    /// right sibling) and wires the new node into the leaf chain and the
    /// parent. Returns `(right_id, separator)` where `separator` is the new
    /// node's smallest key.
    ///
    /// `1 <= pos <= len-1` so both halves are non-empty. Splits only happen
    /// on full leaves, and a full leaf is always dense (live == capacity ⇒
    /// zero gaps), so `pos` indexes physical == live slots.
    pub(crate) fn split_leaf_at(&mut self, leaf_id: NodeId, pos: usize) -> (NodeId, K) {
        Stats::bump(&self.metrics.counters.leaf_splits);
        let (right_keys, right_vals, old_next, parent) = {
            let leaf = self.arena.get_mut(leaf_id).as_leaf_mut();
            debug_assert!(leaf.gaps.is_dense(), "split target must be dense (full)");
            debug_assert!(pos >= 1 && pos < leaf.len(), "bad split pos {pos}");
            let rk = leaf.keys.split_off(pos);
            let rv = leaf.vals.split_off(pos);
            (rk, rv, leaf.next, leaf.parent)
        };
        let separator = right_keys[0];
        let right = LeafNode {
            keys: right_keys,
            vals: right_vals,
            gaps: crate::layout::GapMap::new(),
            next: old_next,
            prev: Some(leaf_id),
            parent,
        };
        let right_id = self.arena.alloc(Node::Leaf(right));
        self.arena.get_mut(leaf_id).as_leaf_mut().next = Some(right_id);
        if let Some(next) = old_next {
            self.arena.get_mut(next).as_leaf_mut().prev = Some(right_id);
        }
        if self.tail == leaf_id {
            self.tail = right_id;
        }
        if self.config.node_layout == crate::layout::NodeLayoutKind::Gapped {
            // Gap placement from the poℓe/IKR prediction, gated on observed
            // disorder: any top-insert since the previous leaf split means
            // the stream is delivering out-of-order traffic, and the nodes
            // this split freezes are exactly where the next stragglers
            // land — spread `⌊√cap⌋` gaps over the left node's upper half
            // (and over interior right nodes) so they absorb without
            // shifting. A purely sorted stream never advances the
            // top-insert counter between splits and never seeds a gap.
            let tops = self.metrics.counters.top_inserts.get();
            let disorder = tops > self.tops_at_last_split;
            self.tops_at_last_split = tops;
            if disorder {
                let cap = self.config.leaf_capacity;
                let want = (cap as f64).sqrt().floor() as usize;
                let leaf = self.arena.get_mut(leaf_id).as_leaf_mut();
                let mid = leaf.keys.len() / 2;
                crate::layout::regap(
                    &mut leaf.keys,
                    &mut leaf.vals,
                    &mut leaf.gaps,
                    mid,
                    want,
                    cap,
                );
                // Append frontiers (the tail, a splitting poℓe/ℓiℓ) must
                // stay dense: gaps there would force the in-order stream
                // off its push fast path into rotate-to-gap shuffles once
                // the physical length hits capacity.
                if self.tail != right_id && self.fp.leaf != Some(leaf_id) {
                    let right = self.arena.get_mut(right_id).as_leaf_mut();
                    crate::layout::regap(
                        &mut right.keys,
                        &mut right.vals,
                        &mut right.gaps,
                        0,
                        want,
                        cap,
                    );
                }
            }
        }
        // `poℓe_prev_{min,size}` are memoized at poℓe-split time and NOT
        // refreshed when the physical predecessor splits: the stale values
        // keep Eq. 2's density basis stable (redistribution re-checks chain
        // adjacency itself). Only the node id needs care, and the left half
        // keeps it.
        self.insert_into_parent(leaf_id, separator, right_id);
        (right_id, separator)
    }

    /// 50/50 split (`def_split_pos`), the classical strategy used by every
    /// non-QuIT variant and by QuIT on non-poℓe leaves.
    pub(crate) fn split_leaf_default(&mut self, leaf_id: NodeId) -> (NodeId, K) {
        let len = self.arena.get(leaf_id).as_leaf().len();
        self.split_leaf_at(leaf_id, len / 2)
    }
}

impl<K: Key, V> BpTree<K, V> {
    /// Links `right_id` (with lower bound `separator`) as the sibling
    /// immediately right of `left_id`, creating a new root or splitting
    /// ancestors as required.
    pub(crate) fn insert_into_parent(&mut self, left_id: NodeId, separator: K, right_id: NodeId) {
        let parent = self.arena.get(left_id).parent();
        match parent {
            None => {
                // left was the root: grow the tree by one level.
                let mut root = InternalNode::new();
                root.keys.push(separator);
                root.children.push(left_id);
                root.children.push(right_id);
                let root_id = self.arena.alloc(Node::Internal(root));
                self.arena.get_mut(left_id).set_parent(Some(root_id));
                self.arena.get_mut(right_id).set_parent(Some(root_id));
                self.root = root_id;
                self.height += 1;
            }
            Some(pid) => {
                {
                    let p = self.arena.get_mut(pid).as_internal_mut();
                    let idx = p.child_index(left_id);
                    p.keys.insert(idx, separator);
                    p.children.insert(idx + 1, right_id);
                }
                self.arena.get_mut(right_id).set_parent(Some(pid));
                if self.arena.get(pid).as_internal().len() > self.config.internal_capacity {
                    self.split_internal(pid);
                }
            }
        }
    }

    /// Splits an over-full internal node at its midpoint; the middle key
    /// moves up to the parent (it separates the two halves and is not
    /// retained in either).
    pub(crate) fn split_internal(&mut self, node_id: NodeId) {
        Stats::bump(&self.metrics.counters.internal_splits);
        let (up_key, right_keys, right_children) = {
            let n = self.arena.get_mut(node_id).as_internal_mut();
            let mid = n.keys.len() / 2;
            let up = n.keys[mid];
            let rk = n.keys.split_off(mid + 1);
            n.keys.pop(); // drop the promoted key
            let rc = n.children.split_off(mid + 1);
            (up, rk, rc)
        };
        let right = InternalNode {
            keys: right_keys,
            children: right_children.clone(),
            parent: self.arena.get(node_id).parent(),
        };
        let right_id = self.arena.alloc(Node::Internal(right));
        for child in right_children {
            self.arena.get_mut(child).set_parent(Some(right_id));
        }
        self.insert_into_parent(node_id, up_key, right_id);
    }

    /// Replaces the separator that lower-bounds `node_id`'s subtree with
    /// `new_key`. Walks up until the subtree stops being a left-most child;
    /// no-op for the globally left-most node (which has no lower separator).
    pub(crate) fn update_lower_separator(&mut self, node_id: NodeId, new_key: K) {
        let mut child = node_id;
        while let Some(pid) = self.arena.get(child).parent() {
            let p = self.arena.get_mut(pid).as_internal_mut();
            let idx = p.child_index(child);
            if idx > 0 {
                p.keys[idx - 1] = new_key;
                return;
            }
            child = pid;
        }
    }

    /// QuIT redistribution (Algorithm 2 line 10 / Fig 7c): moves the
    /// `move_count` smallest entries of `pole_id` into the tail of its
    /// chain-adjacent left sibling `prev_id`, then repairs the separator.
    ///
    /// Caller must have verified adjacency (`prev.next == pole`) and that
    /// `move_count < pole.len()`.
    pub(crate) fn redistribute_to_prev(
        &mut self,
        pole_id: NodeId,
        prev_id: NodeId,
        move_count: usize,
    ) {
        Stats::bump(&self.metrics.counters.redistributions);
        // The predecessor may hold gaps; dropping its fillers first keeps
        // its physical length equal to its live occupancy, so the appended
        // run cannot overflow the node. The poℓe itself is full ⇒ dense.
        self.compact_leaf(prev_id);
        {
            let (pole, prev) = self.arena.get2_mut(pole_id, prev_id);
            let pole = pole.as_leaf_mut();
            let prev = prev.as_leaf_mut();
            debug_assert_eq!(prev.next, Some(pole_id), "redistribute requires adjacency");
            debug_assert!(move_count >= 1 && move_count < pole.len());
            prev.keys.extend(pole.keys.drain(..move_count));
            prev.vals.extend(pole.vals.drain(..move_count));
        }
        let new_min = self.arena.get(pole_id).as_leaf().keys[0];
        self.update_lower_separator(pole_id, new_min);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TreeConfig;
    use crate::fastpath::FastPathMode;
    use crate::tree::BpTree;

    fn classic(cap: usize) -> BpTree<u64, u64> {
        BpTree::with_config(FastPathMode::None, TreeConfig::small(cap))
    }

    #[test]
    fn split_grows_height() {
        let mut t = classic(4);
        for k in 0..5 {
            t.insert(k, k);
        }
        assert_eq!(t.height(), 2);
        assert!(t.stats().leaf_splits.get() >= 1);
        for k in 0..5 {
            assert_eq!(t.get(k), Some(&k));
        }
    }

    #[test]
    fn cascading_splits_build_multilevel_tree() {
        let mut t = classic(4);
        for k in 0..1000u64 {
            t.insert(k, k * 2);
        }
        assert!(t.height() >= 4, "height {}", t.height());
        assert!(t.stats().internal_splits.get() > 0);
        for k in (0..1000).step_by(37) {
            assert_eq!(t.get(k), Some(&(k * 2)));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn reverse_insert_order_splits_left() {
        let mut t = classic(4);
        for k in (0..500u64).rev() {
            t.insert(k, k);
        }
        for k in 0..500 {
            assert_eq!(t.get(k), Some(&k), "key {k}");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn random_inserts_stay_consistent() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let mut keys: Vec<u64> = (0..2000).collect();
        keys.shuffle(&mut rng);
        let mut t = classic(8);
        for &k in &keys {
            t.insert(k, k + 1);
        }
        assert_eq!(t.len(), 2000);
        for &k in &keys {
            assert_eq!(t.get(k), Some(&(k + 1)));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn tail_pointer_follows_rightmost_leaf() {
        let mut t = classic(4);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        assert_eq!(t.max_key(), Some(99));
        // tail leaf must contain the max key
        let tail = t.arena.get(t.tail).as_leaf();
        assert_eq!(tail.keys.last(), Some(&99));
        assert_eq!(tail.next, None);
    }

    #[test]
    fn head_pointer_stays_leftmost() {
        let mut t = classic(4);
        for k in (0..100u64).rev() {
            t.insert(k, k);
        }
        let head = t.arena.get(t.head).as_leaf();
        assert_eq!(head.keys.first(), Some(&0));
        assert_eq!(head.prev, None);
    }
}

//! Cursor navigation: seek to a key, then walk entries forward or backward
//! — the access pattern database executors use for index scans, merge
//! joins, and ORDER BY … LIMIT. Cursors borrow the tree immutably; they are
//! invalidated by any mutation (enforced by the borrow checker).

use crate::arena::NodeId;
use crate::key::Key;
use crate::tree::BpTree;

/// A bidirectional cursor over a [`BpTree`].
///
/// A cursor is always either *positioned* on an entry or *exhausted* (off
/// either end). [`Cursor::next`]/[`Cursor::prev`] return the entry the
/// cursor is on and then advance, so a freshly sought cursor yields the
/// sought entry first.
///
/// ```
/// use quit_core::BpTree;
///
/// let mut t: BpTree<u64, &str> = BpTree::quit();
/// for (k, v) in [(10, "a"), (20, "b"), (30, "c")] {
///     t.insert(k, v);
/// }
/// let mut cur = t.cursor_at(15); // seeks the first entry >= 15
/// assert_eq!(cur.next(), Some((20, &"b")));
/// assert_eq!(cur.next(), Some((30, &"c")));
/// assert_eq!(cur.next(), None);
/// ```
pub struct Cursor<'a, K, V> {
    tree: &'a BpTree<K, V>,
    /// Current position; `None` = exhausted.
    pos: Option<(NodeId, usize)>,
}

impl<'a, K: Key, V> Cursor<'a, K, V> {
    /// True when the cursor is positioned on an entry.
    pub fn is_valid(&self) -> bool {
        self.pos.is_some()
    }

    /// The entry the cursor is positioned on, without advancing.
    pub fn peek(&self) -> Option<(K, &'a V)> {
        let (leaf_id, slot) = self.pos?;
        let leaf = self.tree.arena.get(leaf_id).as_leaf();
        Some((leaf.keys[slot], &leaf.vals[slot]))
    }

    /// Returns the current entry and moves one entry toward larger keys.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(K, &'a V)> {
        let item = self.peek()?;
        let (leaf_id, slot) = self.pos.expect("peek succeeded");
        let leaf = self.tree.arena.get(leaf_id).as_leaf();
        // The cursor only rests on live slots; skip gap fillers.
        self.pos = match leaf.gaps.next_live(slot + 1, leaf.keys.len()) {
            Some(live) => Some((leaf_id, live)),
            None => self.first_slot_of_next(leaf.next),
        };
        Some(item)
    }

    /// Returns the current entry and moves one entry toward smaller keys.
    pub fn prev(&mut self) -> Option<(K, &'a V)> {
        let item = self.peek()?;
        let (leaf_id, slot) = self.pos.expect("peek succeeded");
        let leaf = self.tree.arena.get(leaf_id).as_leaf();
        self.pos = match slot.checked_sub(1).and_then(|s| leaf.gaps.prev_live(s)) {
            Some(live) => Some((leaf_id, live)),
            None => self.last_slot_of_prev(leaf.prev),
        };
        Some(item)
    }

    /// Re-seeks to the first entry with key `>= key`.
    pub fn seek(&mut self, key: K) {
        *self = self.tree.cursor_at(key);
    }

    fn first_slot_of_next(&self, mut next: Option<NodeId>) -> Option<(NodeId, usize)> {
        // Skip leaves emptied by lazy deletion paths.
        while let Some(id) = next {
            let leaf = self.tree.arena.get(id).as_leaf();
            if let Some(live) = leaf.gaps.next_live(0, leaf.keys.len()) {
                return Some((id, live));
            }
            next = leaf.next;
        }
        None
    }

    fn last_slot_of_prev(&self, mut prev: Option<NodeId>) -> Option<(NodeId, usize)> {
        while let Some(id) = prev {
            let leaf = self.tree.arena.get(id).as_leaf();
            if let Some(last) = leaf.keys.len().checked_sub(1) {
                return Some((id, last));
            }
            prev = leaf.prev;
        }
        None
    }
}

impl<K: Key, V> BpTree<K, V> {
    /// A cursor positioned on the first entry with key `>= key`
    /// (exhausted if none exists).
    pub fn cursor_at(&self, key: K) -> Cursor<'_, K, V> {
        let (mut leaf_id, _, _, _) = self.descend(key);
        // Duplicate runs equal to `key` may begin in earlier leaves.
        loop {
            let leaf = self.arena.get(leaf_id).as_leaf();
            let back = leaf.keys.first().is_some_and(|&k| k >= key)
                && leaf.prev.is_some_and(|p| {
                    self.arena
                        .get(p)
                        .as_leaf()
                        .keys
                        .last()
                        .is_some_and(|&k| k >= key)
                });
            if !back {
                break;
            }
            leaf_id = leaf.prev.expect("checked above");
        }
        let mut pos = {
            let leaf = self.arena.get(leaf_id).as_leaf();
            let slot = crate::layout::search_leaf(self.config.search_kind, &leaf.keys, key);
            leaf.gaps
                .next_live(slot, leaf.keys.len())
                .map(|live| (leaf_id, live))
        };
        // The sought key may be past this leaf's content: move to the next
        // non-empty leaf.
        if pos.is_none() {
            let cursor = Cursor {
                tree: self,
                pos: None,
            };
            pos = cursor.first_slot_of_next(self.arena.get(leaf_id).as_leaf().next);
        }
        Cursor { tree: self, pos }
    }

    /// A cursor positioned on the smallest entry.
    pub fn cursor_first(&self) -> Cursor<'_, K, V> {
        let probe = Cursor {
            tree: self,
            pos: None,
        };
        let pos = probe.first_slot_of_next(Some(self.head));
        Cursor { tree: self, pos }
    }

    /// A cursor positioned on the largest entry.
    pub fn cursor_last(&self) -> Cursor<'_, K, V> {
        let probe = Cursor {
            tree: self,
            pos: None,
        };
        let pos = probe.last_slot_of_prev(Some(self.tail));
        Cursor { tree: self, pos }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TreeConfig;
    use crate::fastpath::FastPathMode;
    use crate::tree::BpTree;

    fn filled(n: u64) -> BpTree<u64, u64> {
        let mut t = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(4));
        for k in 0..n {
            t.insert(k * 2, k);
        }
        t
    }

    #[test]
    fn forward_scan_from_seek() {
        let t = filled(100);
        let mut c = t.cursor_at(51); // between 50 and 52
        assert_eq!(c.peek(), Some((52, &26)));
        let rest: Vec<u64> = std::iter::from_fn(|| c.next().map(|e| e.0)).collect();
        assert_eq!(rest.len(), 74); // 52, 54, …, 198
        assert_eq!(rest[0], 52);
        assert_eq!(*rest.last().expect("non-empty"), 198);
        assert!(!c.is_valid());
    }

    #[test]
    fn backward_scan() {
        let t = filled(100);
        let mut c = t.cursor_at(10);
        let back: Vec<u64> = std::iter::from_fn(|| c.prev().map(|e| e.0)).collect();
        assert_eq!(back, vec![10, 8, 6, 4, 2, 0]);
    }

    #[test]
    fn ping_pong_navigation() {
        let t = filled(10);
        let mut c = t.cursor_at(8);
        assert_eq!(c.next().map(|e| e.0), Some(8));
        // next() advanced to 10; prev() returns 10 then steps back to 8.
        assert_eq!(c.prev().map(|e| e.0), Some(10));
        assert_eq!(c.prev().map(|e| e.0), Some(8));
        assert_eq!(c.prev().map(|e| e.0), Some(6));
    }

    #[test]
    fn first_last_and_exhaustion() {
        let t = filled(5);
        assert_eq!(t.cursor_first().peek().map(|e| e.0), Some(0));
        assert_eq!(t.cursor_last().peek().map(|e| e.0), Some(8));
        let empty: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        assert!(!empty.cursor_first().is_valid());
        assert!(!empty.cursor_last().is_valid());
        assert!(!empty.cursor_at(0).is_valid());
        assert_eq!(t.cursor_at(9999).peek(), None);
    }

    #[test]
    fn seek_lands_on_duplicate_run_head() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::None, TreeConfig::small(4));
        for i in 0..20u64 {
            t.insert(7, i);
        }
        t.insert(1, 0);
        t.insert(9, 0);
        let mut c = t.cursor_at(7);
        let mut count = 0;
        while let Some((k, _)) = c.next() {
            if k == 7 {
                count += 1;
            } else {
                break;
            }
        }
        assert_eq!(count, 20, "cursor must start at the run head");
    }

    #[test]
    fn reseek_repositions() {
        let t = filled(50);
        let mut c = t.cursor_first();
        assert_eq!(c.next().map(|e| e.0), Some(0));
        c.seek(40);
        assert_eq!(c.next().map(|e| e.0), Some(40));
        c.seek(0);
        assert_eq!(c.peek().map(|e| e.0), Some(0));
    }

    #[test]
    fn cursor_agrees_with_iter() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(21);
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, TreeConfig::small(6));
        for _ in 0..2000 {
            let k = rng.gen_range(0..300u64);
            t.insert(k, k);
        }
        let via_iter: Vec<u64> = t.iter().map(|e| e.0).collect();
        let mut c = t.cursor_first();
        let via_cursor: Vec<u64> = std::iter::from_fn(|| c.next().map(|e| e.0)).collect();
        assert_eq!(via_iter, via_cursor);
        // And backward equals reversed forward.
        let mut c = t.cursor_last();
        let mut back: Vec<u64> = std::iter::from_fn(|| c.prev().map(|e| e.0)).collect();
        back.reverse();
        assert_eq!(via_iter, back);
    }
}

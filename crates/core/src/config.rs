//! Tree configuration: node geometry, IKR tuning, the QuIT feature set,
//! and the telemetry level.

use crate::layout::{NodeLayoutKind, SearchKind};
use crate::metrics::MetricsLevel;

/// Which rule locates the variable-split point `l` inside a full poℓe node
/// (paper Algorithm 2, line 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitBoundRule {
    /// Use the full IKR bound of Eq. (2):
    /// `x = q + ((q − p) / poℓe_prev_size) · poℓe_size · scale`.
    ///
    /// This matches the prose of §4.3 ("the first key greater than the
    /// estimated acceptable value lower bound") and is the default.
    Eq2,
    /// Use the expression literally printed in Algorithm 2 line 4, which
    /// omits the `poℓe_size` factor:
    /// `x = q + ((q − p) / poℓe_prev_size) · scale`.
    ///
    /// Kept for the ablation bench; it degenerates to near-50% splits for
    /// dense keys.
    Literal,
}

/// Where a tree's nodes live: the in-memory slab arena (default, the
/// bit-for-bit paper-reproduction path) or fixed-size pages behind the
/// buffer pool manager (`crate::pool` / `crate::paged`), which bounds
/// residency and is the larger-than-RAM path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageKind {
    /// Every node lives in the malloc'd slab arena (always resident).
    Arena,
    /// Nodes live in fixed-size pages behind a buffer pool: at most
    /// `pool_pages` decoded nodes stay resident between operations,
    /// CLOCK-evicted to the page store past that. Requires
    /// plain-old-data keys and values, and a geometry whose largest
    /// node fits in `page_size` bytes (both checked at construction).
    Paged {
        /// Frame budget: decoded nodes resident between operations.
        pool_pages: usize,
        /// Page size in bytes (checked against the node geometry).
        page_size: usize,
    },
}

impl StorageKind {
    /// Paged storage with the default 4 KiB page size.
    pub fn paged(pool_pages: usize) -> Self {
        StorageKind::Paged {
            pool_pages,
            page_size: crate::pool::DEFAULT_PAGE_SIZE,
        }
    }
}

/// Geometry and policy knobs shared by every index variant in this crate.
///
/// Defaults mirror the paper's setup (§5 "Index Design and Default Setup"):
/// 4 KB pages holding up to 510 8-byte entries, IKR scale 1.5, and a reset
/// threshold of `⌊√leaf_capacity⌋`.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeConfig {
    /// Maximum number of entries a leaf node holds.
    pub leaf_capacity: usize,
    /// Maximum number of keys an internal node holds (it has one more child).
    pub internal_capacity: usize,
    /// IKR scale factor (paper uses 1.5, following IQR practice).
    pub ikr_scale: f64,
    /// Consecutive top-inserts after which QuIT resets its fast path
    /// (`T_R` in §4.3). `None` disables the reset strategy
    /// (the "poℓe-B+-tree" ablation of Fig. 12).
    pub reset_threshold: Option<usize>,
    /// Enable the IKR-guided variable split of Algorithm 2.
    pub variable_split: bool,
    /// Enable redistribution into an under-half-full `poℓe_prev`
    /// (Algorithm 2 line 10 / Fig. 7c).
    pub redistribute: bool,
    /// Which bound locates the variable-split position.
    pub split_bound_rule: SplitBoundRule,
    /// Cap on the occupancy the variable split leaves behind, in
    /// `(0.5, 1.0]`. The paper notes (§5.2.1) that QuIT "can also be tuned
    /// to avoid being 100% full for fully-sorted data if we anticipate
    /// out-of-order entries in the future and want to avoid propagating
    /// splits" — this is that knob. 1.0 (default) packs maximally.
    pub max_variable_fill: f64,
    /// Leaf fill factor used when this configuration is bulk-loaded — by
    /// [`crate::BpTree::from_snapshot`] and by `quit-durability`'s
    /// crash recovery — in `(0, 1]`. 1.0 (default) packs leaves full like a
    /// classical bulk load; lower values leave insert headroom so a
    /// restored tree's leaf counts (the denominator of the paper's Fig 10c
    /// range-access numbers) match a deliberately under-filled deployment.
    pub bulk_fill: f64,
    /// Simulated page size in bytes, used for memory-footprint accounting
    /// (Table 2); nodes are charged one full page each like a paged index.
    pub page_size_bytes: usize,
    /// How much telemetry the tree records (counters, fast-path window,
    /// latency histograms). See [`MetricsLevel`]; the default records
    /// counters and the window but never reads the clock.
    pub metrics_level: MetricsLevel,
    /// Physical slot layout of leaf nodes. [`NodeLayoutKind::Dense`]
    /// (default) is the bit-for-bit paper-reproduction path;
    /// [`NodeLayoutKind::Gapped`] absorbs near-sorted inserts without
    /// shifting by keeping bitmap-tracked gap slots inside leaves.
    pub node_layout: NodeLayoutKind,
    /// Intra-node search algorithm. [`SearchKind::Binary`] (default) is the
    /// paper's `partition_point`; `Branchless` and `Simd` are the
    /// data-parallel alternatives. All kinds return identical positions.
    pub search_kind: SearchKind,
    /// Node storage backend. [`StorageKind::Arena`] (default) keeps every
    /// node in the in-memory slab; [`StorageKind::Paged`] puts nodes in
    /// fixed-size pages behind the buffer pool manager.
    pub storage: StorageKind,
}

impl TreeConfig {
    /// Paper-default geometry: 4 KB pages, 510-entry leaves.
    pub fn paper_default() -> Self {
        TreeConfig {
            leaf_capacity: 510,
            internal_capacity: 510,
            ikr_scale: 1.5,
            reset_threshold: Some(Self::default_reset_threshold(510)),
            variable_split: true,
            redistribute: true,
            split_bound_rule: SplitBoundRule::Eq2,
            max_variable_fill: 1.0,
            bulk_fill: 1.0,
            page_size_bytes: 4096,
            metrics_level: MetricsLevel::default(),
            node_layout: NodeLayoutKind::Dense,
            search_kind: SearchKind::Binary,
            storage: StorageKind::Arena,
        }
    }

    /// A small geometry that forces frequent splits; used heavily in tests.
    pub fn small(leaf_capacity: usize) -> Self {
        TreeConfig {
            leaf_capacity,
            internal_capacity: leaf_capacity.max(4),
            ikr_scale: 1.5,
            reset_threshold: Some(Self::default_reset_threshold(leaf_capacity)),
            variable_split: true,
            redistribute: true,
            split_bound_rule: SplitBoundRule::Eq2,
            max_variable_fill: 1.0,
            bulk_fill: 1.0,
            page_size_bytes: 4096,
            metrics_level: MetricsLevel::default(),
            node_layout: NodeLayoutKind::Dense,
            search_kind: SearchKind::Binary,
            storage: StorageKind::Arena,
        }
    }

    /// `T_R = ⌊√leaf_capacity⌋`, the paper's balanced reset trigger
    /// (§4.3; 22 for 510-entry leaves).
    pub fn default_reset_threshold(leaf_capacity: usize) -> usize {
        ((leaf_capacity as f64).sqrt().floor() as usize).max(1)
    }

    /// Default position for a 50/50 leaf split (`def_split_pos`, Alg. 2).
    #[inline]
    pub fn def_split_pos(&self) -> usize {
        self.leaf_capacity / 2
    }

    /// Set the leaf capacity, keeping the internal capacity and reset
    /// threshold in sync (same semantics as `ConcConfig::with_leaf_capacity`).
    ///
    /// "In sync" only touches values still at their derived defaults: an
    /// internal capacity or reset threshold you overrode explicitly is
    /// preserved whether the override came *before or after* this call,
    /// so builder chains compose in any order.
    pub fn with_leaf_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 2, "leaf capacity must be at least 2");
        let old = self.leaf_capacity;
        self.leaf_capacity = cap;
        if self.internal_capacity == old.max(4) {
            self.internal_capacity = cap.max(4);
        }
        if self.reset_threshold == Some(Self::default_reset_threshold(old)) {
            self.reset_threshold = Some(Self::default_reset_threshold(cap));
        }
        self
    }

    /// Builder-style override of the internal-node key capacity alone.
    pub fn with_internal_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 3, "internal capacity must be at least 3");
        self.internal_capacity = cap;
        self
    }

    /// Builder-style override of the IKR scale.
    pub fn with_ikr_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "IKR scale must be positive");
        self.ikr_scale = scale;
        self
    }

    /// Builder-style override of the reset threshold (`None` disables reset).
    pub fn with_reset_threshold(mut self, t: Option<usize>) -> Self {
        self.reset_threshold = t;
        self
    }

    /// Builder-style toggle of the variable-split strategy.
    pub fn with_variable_split(mut self, on: bool) -> Self {
        self.variable_split = on;
        self
    }

    /// Builder-style toggle of poℓe_prev redistribution.
    pub fn with_redistribute(mut self, on: bool) -> Self {
        self.redistribute = on;
        self
    }

    /// Builder-style override of the split-bound rule.
    pub fn with_split_bound_rule(mut self, rule: SplitBoundRule) -> Self {
        self.split_bound_rule = rule;
        self
    }

    /// Builder-style override of the variable-split fill cap
    /// (`0.5 < fill <= 1.0`).
    pub fn with_max_variable_fill(mut self, fill: f64) -> Self {
        assert!(
            fill > 0.5 && fill <= 1.0,
            "variable-split fill cap must be in (0.5, 1.0]"
        );
        self.max_variable_fill = fill;
        self
    }

    /// Builder-style override of the bulk-load fill factor (`0 < fill <= 1`)
    /// applied when restoring this configuration from a snapshot.
    pub fn with_bulk_fill(mut self, fill: f64) -> Self {
        assert!(
            fill > 0.0 && fill <= 1.0,
            "bulk-load fill factor must be in (0, 1]"
        );
        self.bulk_fill = fill;
        self
    }

    /// Builder-style override of the telemetry level.
    pub fn with_metrics_level(mut self, level: MetricsLevel) -> Self {
        self.metrics_level = level;
        self
    }

    /// Builder-style override of the leaf slot layout.
    pub fn with_node_layout(mut self, layout: NodeLayoutKind) -> Self {
        self.node_layout = layout;
        self
    }

    /// Builder-style override of the intra-node search algorithm.
    pub fn with_search_kind(mut self, kind: SearchKind) -> Self {
        self.search_kind = kind;
        self
    }

    /// Builder-style override of the node storage backend.
    ///
    /// `StorageKind::paged(pool_pages)` bounds residency to `pool_pages`
    /// decoded nodes between operations on 4 KiB pages. Note the paper's
    /// 510-entry geometry does not fit a 4 KiB page once encoded with its
    /// header — paged trees use smaller leaves (e.g.
    /// `TreeConfig::small(128)`) or a bigger `page_size`; the mismatch is
    /// caught at construction with an explicit message.
    pub fn with_storage(mut self, storage: StorageKind) -> Self {
        self.storage = storage;
        self
    }

    fn validate(&self) {
        assert!(self.leaf_capacity >= 2, "leaf capacity must be >= 2");
        assert!(
            self.internal_capacity >= 3,
            "internal capacity must be >= 3"
        );
        assert!(self.ikr_scale > 0.0, "IKR scale must be positive");
        assert!(
            self.max_variable_fill > 0.5 && self.max_variable_fill <= 1.0,
            "variable-split fill cap must be in (0.5, 1.0]"
        );
        assert!(
            self.bulk_fill > 0.0 && self.bulk_fill <= 1.0,
            "bulk-load fill factor must be in (0, 1]"
        );
        if let StorageKind::Paged {
            pool_pages,
            page_size,
        } = self.storage
        {
            assert!(pool_pages >= 2, "paged storage needs pool_pages >= 2");
            assert!(page_size >= 64, "paged storage needs page_size >= 64");
        }
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn assert_valid(&self) {
        self.validate();
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5() {
        let c = TreeConfig::paper_default();
        assert_eq!(c.leaf_capacity, 510);
        assert_eq!(c.page_size_bytes, 4096);
        assert_eq!(c.ikr_scale, 1.5);
        // ⌊√510⌋ = 22 (paper §5).
        assert_eq!(c.reset_threshold, Some(22));
        assert_eq!(c.def_split_pos(), 255);
    }

    #[test]
    fn reset_threshold_tracks_capacity() {
        let c = TreeConfig::paper_default().with_leaf_capacity(64);
        assert_eq!(c.reset_threshold, Some(8));
        assert_eq!(TreeConfig::default_reset_threshold(2), 1);
    }

    #[test]
    fn leaf_capacity_syncs_internal_capacity() {
        let c = TreeConfig::paper_default().with_leaf_capacity(64);
        assert_eq!(c.internal_capacity, 64, "internal tracks leaf by default");
        let c = c.with_internal_capacity(128);
        assert_eq!(c.internal_capacity, 128, "explicit override wins");
        assert_eq!(c.leaf_capacity, 64);
        c.assert_valid();
        // Tiny leaves still get a usable fan-out.
        assert_eq!(
            TreeConfig::paper_default()
                .with_leaf_capacity(2)
                .internal_capacity,
            4
        );
    }

    #[test]
    fn builder_toggles() {
        let c = TreeConfig::small(8)
            .with_variable_split(false)
            .with_redistribute(false)
            .with_reset_threshold(None)
            .with_ikr_scale(2.0)
            .with_split_bound_rule(SplitBoundRule::Literal);
        assert!(!c.variable_split);
        assert!(!c.redistribute);
        assert_eq!(c.reset_threshold, None);
        assert_eq!(c.ikr_scale, 2.0);
        assert_eq!(c.split_bound_rule, SplitBoundRule::Literal);
        c.assert_valid();
    }

    #[test]
    fn metrics_level_defaults_to_counters() {
        let c = TreeConfig::paper_default();
        assert_eq!(c.metrics_level, MetricsLevel::Counters);
        let c = c.with_metrics_level(MetricsLevel::Histograms);
        assert_eq!(c.metrics_level, MetricsLevel::Histograms);
    }

    #[test]
    fn bulk_fill_knob() {
        let c = TreeConfig::small(8);
        assert_eq!(c.bulk_fill, 1.0, "default packs leaves full");
        let c = c.with_bulk_fill(0.7);
        assert_eq!(c.bulk_fill, 0.7);
        c.assert_valid();
    }

    #[test]
    fn layout_and_search_knobs() {
        let c = TreeConfig::paper_default();
        assert_eq!(
            c.node_layout,
            NodeLayoutKind::Dense,
            "paper path by default"
        );
        assert_eq!(c.search_kind, SearchKind::Binary, "paper path by default");
        let c = c
            .with_node_layout(NodeLayoutKind::Gapped)
            .with_search_kind(SearchKind::Simd);
        assert_eq!(c.node_layout, NodeLayoutKind::Gapped);
        assert_eq!(c.search_kind, SearchKind::Simd);
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "fill factor")]
    fn rejects_zero_bulk_fill() {
        let _ = TreeConfig::small(8).with_bulk_fill(0.0);
    }

    #[test]
    #[should_panic(expected = "leaf capacity")]
    fn rejects_tiny_leaves() {
        let _ = TreeConfig::small(8).with_leaf_capacity(1);
    }

    #[test]
    fn builder_overrides_survive_any_order() {
        // Override *before* with_leaf_capacity: must not be clobbered.
        let c = TreeConfig::paper_default()
            .with_internal_capacity(128)
            .with_leaf_capacity(64);
        assert_eq!(c.internal_capacity, 128, "earlier override preserved");
        assert_eq!(c.leaf_capacity, 64);
        let c = TreeConfig::paper_default()
            .with_reset_threshold(Some(77))
            .with_leaf_capacity(64);
        assert_eq!(c.reset_threshold, Some(77), "earlier override preserved");
        // Untouched values still track the leaf capacity.
        let c = TreeConfig::paper_default().with_leaf_capacity(64);
        assert_eq!(c.internal_capacity, 64);
        assert_eq!(c.reset_threshold, Some(8));
    }

    #[test]
    fn storage_knob() {
        let c = TreeConfig::paper_default();
        assert_eq!(c.storage, StorageKind::Arena, "paper path by default");
        let c = c.with_storage(StorageKind::paged(64));
        assert_eq!(
            c.storage,
            StorageKind::Paged {
                pool_pages: 64,
                page_size: 4096
            }
        );
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "pool_pages")]
    fn rejects_tiny_pool() {
        TreeConfig::small(8)
            .with_storage(StorageKind::paged(1))
            .assert_valid();
    }
}

//! Deletes (§4.4): point-lookup the key, remove one entry, and rebalance
//! with classical borrow-then-merge — except on the poℓe node, which is
//! rebalanced lazily (it is about to receive fast inserts anyway). Deleting
//! the last entry of poℓe resets the fast path to `poℓe_prev`.

use crate::arena::NodeId;
use crate::fastpath::FastPathMode;
use crate::key::Key;
use crate::node::Node;
use crate::stats::Stats;
use crate::tree::BpTree;

// Removal requires `V: Clone` under the gapped layout: freed slots become
// gap fillers that copy their live right neighbour (see `crate::layout`).
impl<K: Key, V: Clone> BpTree<K, V> {
    /// Removes one entry with key `key` (the left-most when duplicates
    /// exist) and returns its value, or `None` when absent.
    pub fn delete(&mut self, key: K) -> Option<V> {
        // Operation boundary (see `insert`): trim paged residency.
        self.arena.begin_op();
        let (leaf_id, pos) = self.locate(key)?;
        // `locate` stops in the routed leaf, which for a duplicate run
        // spanning several leaves is a split-position-dependent instance.
        // Step to the run head so the removed entry (and its value) depends
        // only on the tree's contents, never on node boundaries.
        let (leaf_id, pos) = self.run_head(leaf_id, pos, key);
        Stats::bump(&self.metrics.counters.deletes);
        let layout = self.config.node_layout;
        let (value, now_len) = {
            let leaf = self.arena.get_mut(leaf_id).as_leaf_mut();
            let v = crate::layout::remove_at(
                layout,
                &mut leaf.keys,
                &mut leaf.vals,
                &mut leaf.gaps,
                pos,
                usize::MAX,
            );
            (v, leaf.len())
        };
        self.len -= 1;

        let is_pole_leaf = self.mode.is_pole() && self.fp.leaf == Some(leaf_id);
        if is_pole_leaf {
            self.fp.size = now_len;
            if now_len == 0 {
                // §4.4: the only key of poℓe was deleted — reset to poℓe_prev.
                self.remove_empty_leaf(leaf_id);
                match self.fp.prev_id {
                    Some(prev) if self.node_is_live_leaf(prev) => {
                        self.repoint_pole_auto(prev);
                    }
                    _ => self.repoint_pole_auto(self.head),
                }
            }
            // Otherwise: no eager rebalance of the poℓe node.
            return Some(value);
        }

        if now_len == 0 && self.height == 1 {
            // Empty root leaf: nothing to rebalance.
            return Some(value);
        }
        if now_len < self.leaf_min_occupancy() && leaf_id != self.root {
            self.rebalance_leaf(leaf_id);
        } else if self.fp.leaf == Some(leaf_id) {
            self.fp.size = now_len;
        }
        Some(value)
    }

    /// Removes every entry with a key in `[start, end)`; returns how many
    /// were removed. Rebalancing runs per removal, so the index remains
    /// query-ready throughout (retention workloads interleave scans).
    pub fn delete_range(&mut self, start: K, end: K) -> usize {
        let mut removed = 0usize;
        if start >= end {
            return 0;
        }
        // Re-locate after each removal: node boundaries shift under
        // rebalancing, so cached positions would dangle.
        loop {
            let Some((k, _)) = self.ceiling_key_below(start, end) else {
                return removed;
            };
            let took = self.delete(k).is_some();
            debug_assert!(took, "ceiling reported a key that delete missed");
            removed += 1;
        }
    }
}

impl<K: Key, V> BpTree<K, V> {
    /// Smallest key in `[start, end)`, if any (helper for `delete_range`).
    fn ceiling_key_below(&self, start: K, end: K) -> Option<(K, ())> {
        let (k, _) = self.ceiling(start)?;
        (k < end).then_some((k, ()))
    }

    #[inline]
    fn leaf_min_occupancy(&self) -> usize {
        self.config.leaf_capacity / 2
    }

    #[inline]
    fn internal_min_keys(&self) -> usize {
        self.config.internal_capacity / 2
    }

    fn node_is_live_leaf(&self, id: NodeId) -> bool {
        // The arena recycles slots; a stale id could point at anything, but
        // within one delete operation prev_id is only invalidated by the
        // merges we perform ourselves, which clear it. This check is a
        // last-resort guard.
        matches!(self.arena.get(id), Node::Leaf(_))
    }

    /// Separator bounds `[low, high)` the tree guarantees for `leaf_id`,
    /// derived from ancestor separators.
    pub(crate) fn leaf_bounds(&self, leaf_id: NodeId) -> (Option<K>, Option<K>) {
        let mut low = None;
        let mut high = None;
        let mut child = leaf_id;
        while let Some(pid) = self.arena.get(child).parent() {
            let p = self.arena.get(pid).as_internal();
            let idx = p.child_index(child);
            if low.is_none() && idx > 0 {
                low = Some(p.keys[idx - 1]);
            }
            if high.is_none() && idx < p.keys.len() {
                high = Some(p.keys[idx]);
            }
            if low.is_some() && high.is_some() {
                break;
            }
            child = pid;
        }
        (low, high)
    }

    /// Re-points the poℓe at `leaf`, computing bounds from the tree itself.
    pub(crate) fn repoint_pole_auto(&mut self, leaf: NodeId) {
        let (low, high) = self.leaf_bounds(leaf);
        self.repoint_pole(leaf, low, high);
    }

    /// Repairs whatever fast-path metadata referenced nodes touched by a
    /// structural delete (`survivor` absorbs `removed` on merges; on borrows
    /// `removed` is `None` and both siblings survive with new bounds).
    fn repair_fast_path(&mut self, survivor: NodeId, removed: Option<NodeId>) {
        let affected =
            |id: Option<NodeId>| id == Some(survivor) || (removed.is_some() && id == removed);
        match self.mode {
            FastPathMode::None => {}
            FastPathMode::Tail => {
                if affected(self.fp.leaf) || self.fp.leaf.is_none() {
                    let (low, _) = self.leaf_bounds(self.tail);
                    self.fp.leaf = Some(self.tail);
                    self.fp.min = low;
                    self.fp.size = self.leaf_len(self.tail);
                }
            }
            FastPathMode::Lil => {
                if affected(self.fp.leaf) {
                    let (low, high) = self.leaf_bounds(survivor);
                    self.fp.leaf = Some(survivor);
                    self.fp.min = low;
                    self.fp.max = high;
                    self.fp.size = self.leaf_len(survivor);
                }
            }
            FastPathMode::Pole => {
                if affected(self.fp.leaf) {
                    self.repoint_pole_auto(survivor);
                    return;
                }
                if affected(self.fp.prev_id) {
                    // Recompute prev from the poℓe's live chain predecessor.
                    if let Some(pole) = self.fp.leaf {
                        let prev = self.arena.get(pole).as_leaf().prev;
                        self.fp.prev_id = prev;
                        match prev {
                            Some(p) => {
                                let pl = self.arena.get(p).as_leaf();
                                self.fp.prev_min = pl.keys.first().copied();
                                self.fp.prev_size = pl.len();
                            }
                            None => {
                                self.fp.prev_min = None;
                                self.fp.prev_size = 0;
                            }
                        }
                    }
                }
                if affected(self.fp.pole_next) {
                    self.fp.pole_next = None;
                }
            }
        }
    }

    /// Unlinks an empty leaf from the chain and its parent, then fixes the
    /// parent chain. Never called on the root.
    fn remove_empty_leaf(&mut self, leaf_id: NodeId) {
        if leaf_id == self.root {
            return; // single empty root leaf stays
        }
        let (prev, next, parent) = {
            let l = self.arena.get(leaf_id).as_leaf();
            (l.prev, l.next, l.parent)
        };
        if let Some(p) = prev {
            self.arena.get_mut(p).as_leaf_mut().next = next;
        }
        if let Some(n) = next {
            self.arena.get_mut(n).as_leaf_mut().prev = prev;
        }
        if self.head == leaf_id {
            self.head = next.expect("non-root leaf must have a neighbour");
        }
        if self.tail == leaf_id {
            self.tail = prev.expect("non-root leaf must have a neighbour");
        }
        if self.fp.prev_id == Some(leaf_id) {
            self.fp.prev_id = None;
            self.fp.prev_min = None;
            self.fp.prev_size = 0;
        }
        if self.fp.pole_next == Some(leaf_id) {
            self.fp.pole_next = None;
        }
        let pid = parent.expect("non-root leaf has a parent");
        self.remove_child(pid, leaf_id);
        self.arena.free(leaf_id);
    }

    /// Removes `child` (and its adjoining separator) from internal node
    /// `pid`, rebalancing upward as needed.
    fn remove_child(&mut self, pid: NodeId, child: NodeId) {
        {
            let p = self.arena.get_mut(pid).as_internal_mut();
            let idx = p.child_index(child);
            p.children.remove(idx);
            if idx > 0 {
                p.keys.remove(idx - 1);
            } else if !p.keys.is_empty() {
                p.keys.remove(0);
            }
        }
        self.shrink_or_rebalance_internal(pid);
    }

    fn shrink_or_rebalance_internal(&mut self, pid: NodeId) {
        if pid == self.root {
            let root = self.arena.get(pid).as_internal();
            if root.children.len() == 1 {
                let only = root.children[0];
                self.arena.get_mut(only).set_parent(None);
                self.arena.free(pid);
                self.root = only;
                self.height -= 1;
            }
            return;
        }
        if self.arena.get(pid).as_internal().len() < self.internal_min_keys() {
            self.rebalance_internal(pid);
        }
    }

    // ------------------------------------------------------------------
    // Leaf rebalancing: borrow from a sibling, else merge.
    // ------------------------------------------------------------------

    /// Drops a leaf's gap fillers in place (no-op for dense leaves), so the
    /// classical borrow/merge choreography can move physical slots freely.
    pub(crate) fn compact_leaf(&mut self, id: NodeId) {
        let leaf = self.arena.get_mut(id).as_leaf_mut();
        crate::layout::compact(&mut leaf.keys, &mut leaf.vals, &mut leaf.gaps);
    }

    fn rebalance_leaf(&mut self, leaf_id: NodeId) {
        let parent = match self.arena.get(leaf_id).parent() {
            Some(p) => p,
            None => return, // root leaf: no invariant to restore
        };
        // Borrow/merge reason about physical slots; compacting first makes
        // live == physical for every leaf involved (cheap no-op when dense).
        self.compact_leaf(leaf_id);
        let idx = self.arena.get(parent).as_internal().child_index(leaf_id);
        let siblings = self.arena.get(parent).as_internal().children.clone();

        // Never disturb the poℓe node by borrowing *from* it if another
        // sibling can help; it is being packed by the fast path.
        let left = (idx > 0).then(|| siblings[idx - 1]);
        let right = (idx + 1 < siblings.len()).then(|| siblings[idx + 1]);

        let can_donate = |id: Option<NodeId>| -> bool {
            id.is_some_and(|s| self.arena.get(s).as_leaf().len() > self.leaf_min_occupancy())
        };
        let prefer_non_pole =
            |a: Option<NodeId>, b: Option<NodeId>| -> (Option<NodeId>, Option<NodeId>) {
                if self.mode.is_pole() && a == self.fp.leaf {
                    (b, a)
                } else {
                    (a, b)
                }
            };

        let (first, second) = prefer_non_pole(left, right);
        for donor in [first, second].into_iter().flatten() {
            if can_donate(Some(donor)) {
                self.compact_leaf(donor);
                self.borrow_leaf(parent, leaf_id, donor);
                return;
            }
        }
        // No donor: merge with a sibling (prefer non-poℓe partner).
        let (first, second) = prefer_non_pole(left, right);
        let partner = first.or(second).expect("non-root node has a sibling");
        self.compact_leaf(partner);
        if Some(partner) == left {
            self.merge_leaves(parent, partner, leaf_id);
        } else {
            self.merge_leaves(parent, leaf_id, partner);
        }
    }

    /// Moves one entry from `donor` into `leaf` and refreshes the separator.
    fn borrow_leaf(&mut self, parent: NodeId, leaf: NodeId, donor: NodeId) {
        Stats::bump(&self.metrics.counters.leaf_borrows);
        let donor_is_left = {
            let p = self.arena.get(parent).as_internal();
            p.child_index(donor) < p.child_index(leaf)
        };
        if donor_is_left {
            // donor's last entry becomes leaf's first; separator = that key.
            let (d, l) = self.arena.get2_mut(donor, leaf);
            let d = d.as_leaf_mut();
            let l = l.as_leaf_mut();
            let k = d.keys.pop().expect("donor non-empty");
            let v = d.vals.pop().expect("donor non-empty");
            l.keys.insert(0, k);
            l.vals.insert(0, v);
            self.update_lower_separator(leaf, k);
            if self.fp.leaf == Some(leaf) {
                self.fp.min = Some(k);
                self.fp.size = self.leaf_len(leaf);
            }
            if self.fp.leaf == Some(donor) {
                // The donor's upper bound tightened to the moved key.
                self.fp.max = Some(k);
                self.fp.size = self.leaf_len(donor);
            }
        } else {
            // donor's first entry becomes leaf's last; donor's bound rises.
            let (d, l) = self.arena.get2_mut(donor, leaf);
            let d = d.as_leaf_mut();
            let l = l.as_leaf_mut();
            let k = d.keys.remove(0);
            let v = d.vals.remove(0);
            let new_donor_min = d.keys[0];
            l.keys.push(k);
            l.vals.push(v);
            self.update_lower_separator(donor, new_donor_min);
            if self.fp.leaf == Some(donor) {
                self.fp.min = Some(new_donor_min);
                self.fp.size = self.leaf_len(donor);
            }
            if self.fp.leaf == Some(leaf) {
                self.fp.max = Some(new_donor_min);
                self.fp.size = self.leaf_len(leaf);
            }
        }
    }

    /// Merges `right` into `left` (chain-adjacent, same parent), freeing
    /// `right` and removing its separator from the parent.
    fn merge_leaves(&mut self, parent: NodeId, left: NodeId, right: NodeId) {
        Stats::bump(&self.metrics.counters.leaf_merges);
        let next = {
            let (l, r) = self.arena.get2_mut(left, right);
            let l = l.as_leaf_mut();
            let r = r.as_leaf_mut();
            l.keys.append(&mut r.keys);
            l.vals.append(&mut r.vals);
            let next = r.next;
            l.next = next;
            next
        };
        if let Some(n) = next {
            self.arena.get_mut(n).as_leaf_mut().prev = Some(left);
        }
        if self.tail == right {
            self.tail = left;
        }
        self.repair_fast_path(left, Some(right));
        {
            let p = self.arena.get_mut(parent).as_internal_mut();
            let ridx = p.child_index(right);
            p.children.remove(ridx);
            p.keys.remove(ridx - 1);
        }
        self.arena.free(right);
        self.shrink_or_rebalance_internal(parent);
    }

    // ------------------------------------------------------------------
    // Internal rebalancing.
    // ------------------------------------------------------------------

    fn rebalance_internal(&mut self, node: NodeId) {
        let parent = match self.arena.get(node).parent() {
            Some(p) => p,
            None => return,
        };
        let idx = self.arena.get(parent).as_internal().child_index(node);
        let children = self.arena.get(parent).as_internal().children.clone();
        let left = (idx > 0).then(|| children[idx - 1]);
        let right = (idx + 1 < children.len()).then(|| children[idx + 1]);

        let donates =
            |id: NodeId| self.arena.get(id).as_internal().len() > self.internal_min_keys();
        if let Some(l) = left {
            if donates(l) {
                self.rotate_internal_from_left(parent, l, node);
                return;
            }
        }
        if let Some(r) = right {
            if donates(r) {
                self.rotate_internal_from_right(parent, node, r);
                return;
            }
        }
        if let Some(l) = left {
            self.merge_internals(parent, l, node);
        } else if let Some(r) = right {
            self.merge_internals(parent, node, r);
        }
    }

    fn rotate_internal_from_left(&mut self, parent: NodeId, left: NodeId, node: NodeId) {
        let sep_idx = self.arena.get(parent).as_internal().child_index(node) - 1;
        let sep = self.arena.get(parent).as_internal().keys[sep_idx];
        let (up_key, child) = {
            let l = self.arena.get_mut(left).as_internal_mut();
            let k = l.keys.pop().expect("donor non-empty");
            let c = l.children.pop().expect("donor non-empty");
            (k, c)
        };
        {
            let n = self.arena.get_mut(node).as_internal_mut();
            n.keys.insert(0, sep);
            n.children.insert(0, child);
        }
        self.arena.get_mut(child).set_parent(Some(node));
        self.arena.get_mut(parent).as_internal_mut().keys[sep_idx] = up_key;
    }

    fn rotate_internal_from_right(&mut self, parent: NodeId, node: NodeId, right: NodeId) {
        let sep_idx = self.arena.get(parent).as_internal().child_index(node);
        let sep = self.arena.get(parent).as_internal().keys[sep_idx];
        let (up_key, child) = {
            let r = self.arena.get_mut(right).as_internal_mut();
            let k = r.keys.remove(0);
            let c = r.children.remove(0);
            (k, c)
        };
        {
            let n = self.arena.get_mut(node).as_internal_mut();
            n.keys.push(sep);
            n.children.push(child);
        }
        self.arena.get_mut(child).set_parent(Some(node));
        self.arena.get_mut(parent).as_internal_mut().keys[sep_idx] = up_key;
    }

    fn merge_internals(&mut self, parent: NodeId, left: NodeId, right: NodeId) {
        let sep_idx = self.arena.get(parent).as_internal().child_index(right) - 1;
        let sep = self.arena.get(parent).as_internal().keys[sep_idx];
        let moved_children = {
            let (l, r) = self.arena.get2_mut(left, right);
            let l = l.as_internal_mut();
            let r = r.as_internal_mut();
            l.keys.push(sep);
            l.keys.append(&mut r.keys);
            let moved: Vec<NodeId> = r.children.drain(..).collect();
            l.children.extend_from_slice(&moved);
            moved
        };
        for c in moved_children {
            self.arena.get_mut(c).set_parent(Some(left));
        }
        {
            let p = self.arena.get_mut(parent).as_internal_mut();
            p.children.remove(sep_idx + 1);
            p.keys.remove(sep_idx);
        }
        self.arena.free(right);
        self.shrink_or_rebalance_internal(parent);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::TreeConfig;
    use crate::fastpath::FastPathMode;
    use crate::tree::BpTree;

    fn tree(mode: FastPathMode, cap: usize) -> BpTree<u64, u64> {
        BpTree::with_config(mode, TreeConfig::small(cap))
    }

    #[test]
    fn delete_missing_returns_none() {
        let mut t = tree(FastPathMode::None, 4);
        t.insert(1, 1);
        assert_eq!(t.delete(9), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_single_leaf() {
        let mut t = tree(FastPathMode::None, 4);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.delete(1), Some(10));
        assert_eq!(t.get(1), None);
        assert_eq!(t.get(2), Some(&20));
        assert_eq!(t.len(), 1);
        assert_eq!(t.delete(2), Some(20));
        assert!(t.is_empty());
        // Tree stays usable after full drain.
        t.insert(5, 50);
        assert_eq!(t.get(5), Some(&50));
    }

    #[test]
    fn delete_everything_in_order() {
        let mut t = tree(FastPathMode::None, 4);
        for k in 0..500u64 {
            t.insert(k, k);
        }
        for k in 0..500u64 {
            assert_eq!(t.delete(k), Some(k), "key {k}");
            t.check_invariants()
                .unwrap_or_else(|e| panic!("after {k}: {e}"));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn delete_everything_in_reverse() {
        let mut t = tree(FastPathMode::None, 4);
        for k in 0..500u64 {
            t.insert(k, k);
        }
        for k in (0..500u64).rev() {
            assert_eq!(t.delete(k), Some(k), "key {k}");
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn random_interleaved_insert_delete() {
        use rand::prelude::*;
        use std::collections::BTreeMap;
        let mut rng = StdRng::seed_from_u64(42);
        let mut t = tree(FastPathMode::None, 6);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in 0..5000 {
            let k = rng.gen_range(0..500u64);
            if rng.gen_bool(0.6) {
                // keep keys unique in the model for comparability
                model.entry(k).or_insert_with(|| {
                    t.insert(k, op);
                    op
                });
            } else if model.remove(&k).is_some() {
                assert!(t.delete(k).is_some(), "op {op} key {k}");
            } else {
                assert_eq!(t.delete(k), None);
            }
        }
        for (&k, &v) in &model {
            assert_eq!(t.get(k), Some(&v));
        }
        assert_eq!(t.len(), model.len());
        t.check_invariants().unwrap();
    }

    #[test]
    fn quit_delete_with_active_pole() {
        let mut t = tree(FastPathMode::Pole, 8);
        for k in 0..2000u64 {
            t.insert(k, k);
        }
        // Delete a swath from the middle, including regions around the pole.
        for k in 500..1500u64 {
            assert_eq!(t.delete(k), Some(k));
        }
        t.check_invariants().unwrap();
        for k in 0..500u64 {
            assert!(t.contains_key(k), "key {k}");
        }
        for k in 1500..2000u64 {
            assert!(t.contains_key(k), "key {k}");
        }
        // Fast path keeps working after heavy deletion.
        let fast_before = t.stats().fast_inserts.get();
        for k in 2000..2500u64 {
            t.insert(k, k);
        }
        assert!(t.stats().fast_inserts.get() > fast_before);
        t.check_invariants().unwrap();
    }

    #[test]
    fn deleting_pole_to_empty_resets_to_prev() {
        let mut t = tree(FastPathMode::Pole, 4);
        for k in 0..32u64 {
            t.insert(k, k);
        }
        // Drain the current pole leaf completely.
        let pole = t.fp.leaf.expect("pole exists");
        let keys: Vec<u64> = t.arena.get(pole).as_leaf().keys.clone();
        for k in keys {
            t.delete(k);
        }
        assert!(t.fp.leaf.is_some(), "pole must be re-pointed");
        t.check_invariants().unwrap();
        // And ingestion continues.
        for k in 100..164u64 {
            t.insert(k, k);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_range_middle_swath() {
        let mut t = tree(FastPathMode::Pole, 8);
        for k in 0..2_000u64 {
            t.insert(k, k);
        }
        assert_eq!(t.delete_range(500, 1500), 1000);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.range_count(0..2_000), 1000);
        assert_eq!(t.delete_range(500, 1500), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_range_with_duplicates_and_bounds() {
        let mut t = tree(FastPathMode::None, 4);
        for i in 0..50u64 {
            t.insert(10, i);
            t.insert(20, i);
            t.insert(30, i);
        }
        assert_eq!(t.delete_range(20, 21), 50, "all duplicates of 20");
        assert_eq!(t.delete_range(31, 40), 0, "empty range");
        assert_eq!(t.delete_range(5, 5), 0, "degenerate range");
        assert_eq!(t.len(), 100);
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_range_everything() {
        let mut t = tree(FastPathMode::Pole, 6);
        for k in 0..700u64 {
            t.insert(k, k);
        }
        assert_eq!(t.delete_range(0, u64::MAX), 700);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
        // Still usable.
        t.insert(1, 1);
        assert_eq!(t.get(1), Some(&1));
    }

    #[test]
    fn delete_duplicates_one_at_a_time() {
        let mut t = tree(FastPathMode::None, 4);
        for i in 0..10u64 {
            t.insert(7, i);
        }
        for _ in 0..10 {
            assert!(t.delete(7).is_some());
        }
        assert_eq!(t.delete(7), None);
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_in_every_mode_keeps_reads_correct() {
        for mode in [
            FastPathMode::None,
            FastPathMode::Tail,
            FastPathMode::Lil,
            FastPathMode::Pole,
        ] {
            let mut t = tree(mode, 6);
            for k in 0..600u64 {
                t.insert(k, k);
            }
            for k in (0..600u64).step_by(2) {
                assert_eq!(t.delete(k), Some(k), "{mode:?} key {k}");
            }
            for k in 0..600u64 {
                assert_eq!(t.contains_key(k), k % 2 == 1, "{mode:?} key {k}");
            }
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }
}

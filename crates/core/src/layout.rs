//! Node layout & intra-node search policy — the one home for every
//! partition-point and slot-movement decision in the workspace.
//!
//! Before this module, intra-node binary search and leaf slot shifting
//! were open-coded at each call site (insert, delete, cursor, bulk, the
//! concurrent tree, the OLC raw-read path). They are now expressed once,
//! behind two small policy enums:
//!
//! * [`SearchKind`] — *how* a sorted key array is searched: `Binary`
//!   (libcore `partition_point`, the bit-for-bit paper-reproduction
//!   baseline), `Branchless` (fixed-shape branch-free binary search), or
//!   `Simd` (runtime-detected SSE2/AVX2 compare+popcount over a narrowed
//!   window, falling back to `Branchless` for unsupported key types or
//!   architectures). Every kind computes the **same unique partition
//!   point**, so tree shape and figure outputs are identical across kinds
//!   — only the nanoseconds differ.
//! * [`NodeLayoutKind`] — *how* leaf slots are arranged: `Dense` (packed
//!   arrays, the paper's layout) or `Gapped` (leaves keep interleaved gap
//!   slots so in-order and near-sorted inserts land without shifting the
//!   whole tail, in the spirit of the BS-tree / FB+-tree data-parallel
//!   designs).
//!
//! # The duplicate-run boundary contract
//!
//! Three key-comparison conventions exist in this codebase and they are
//! easy to mix up, so the API hard-codes them (pinned by unit tests
//! below):
//!
//! 1. **Inserts** use the *upper bound* — [`upper_bound`], the partition
//!    point of `k <= key` — so a new duplicate lands **after** every
//!    existing instance of its key (stable insertion order).
//! 2. **Lookups** use the *lower bound* — [`lower_bound`], the partition
//!    point of `k < key` — the **first** instance of a duplicate run.
//! 3. **Internal routing** is right-biased — [`search_internal`] is the
//!    upper bound over separators — so a key equal to a separator routes
//!    **right**, matching the strict-boundary split rule (a separator is
//!    the first key of the right node; splits never cut a duplicate run
//!    in the concurrent tree, and the core tree's lookups compensate by
//!    back-walking the leaf chain).
//!
//! # Gapped leaves
//!
//! The gapped layout keeps the *physical* key array fully sorted by
//! storing, in each gap slot, a **filler**: a copy of its right
//! neighbour's key/value pair (transitively, of the nearest live slot to
//! its right). A per-leaf [`GapMap`] bitmap marks which physical slots
//! are fillers. Because the physical array stays sorted, *every*
//! [`SearchKind`] — including the SIMD kernels — works on gapped leaves
//! unchanged; readers step from the computed partition point to the next
//! live slot. And because a filler's key always equals a live key to its
//! right, value-level reads of the key array (`keys.first()`, separator
//! checks, boundary walks) stay correct without consulting the bitmap —
//! only value access and entry counting are gap-aware.
//!
//! Invariants (checked by `BpTree::check_invariants` and exercised by the
//! proptests below):
//!
//! * physical length never exceeds the leaf capacity, so a leaf is full
//!   (live == capacity) **iff** it has zero gaps — splits only ever see
//!   dense leaves and need no pre-compaction;
//! * the last physical slot is always live (trailing gaps are trimmed on
//!   removal), so `keys.last()` remains the leaf's true maximum;
//! * `gap count == popcount(bitmap)` and every gap bit is below the
//!   physical length.

use crate::key::Key;

/// How sorted key arrays are searched inside a node.
///
/// All kinds return the same (unique) partition point; selecting one is
/// purely a performance decision. `Binary` is the default and the
/// bit-for-bit paper-reproduction path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchKind {
    /// Libcore `slice::partition_point` (branching binary search).
    #[default]
    Binary,
    /// Branch-free binary search with a data-independent access shape.
    Branchless,
    /// Branchless narrowing plus an SSE2/AVX2 compare+popcount over the
    /// final window. Runtime-detected; unsupported key types or
    /// architectures (and `QUIT_FORCE_SCALAR=1`) fall back to
    /// [`SearchKind::Branchless`].
    Simd,
}

/// How leaf slots are arranged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NodeLayoutKind {
    /// Packed arrays — the paper's layout and the default.
    #[default]
    Dense,
    /// Leaves carry interleaved gap slots (see the module docs) so
    /// in-order and near-sorted inserts avoid tail shifts.
    Gapped,
}

// ---------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------

/// Branch-free partition point over `0..n` of a monotone predicate,
/// expressed on indices so callers that cannot form a slice (the OLC
/// raw-read path, which must load each probed key atomically) share the
/// exact algorithm with the safe slice flavour.
///
/// The shape is the classical "base += half if predicate" ladder: the
/// probe sequence depends only on `n`, and the conditional advance
/// compiles to a conditional move rather than a branch.
#[inline]
pub fn branchless_partition_point_by(n: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
    let mut base = 0usize;
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        base += usize::from(pred(base + half - 1)) * half;
        len -= half;
    }
    // Final single-element step. The mutation smoke check (feature
    // `inject-search-bug`) drops it, misplacing keys by one slot — the
    // differential harness must catch and shrink that.
    #[cfg(not(feature = "inject-search-bug"))]
    {
        base + usize::from(len == 1 && pred(base))
    }
    #[cfg(feature = "inject-search-bug")]
    {
        base
    }
}

/// Branch-free partition point over a sorted slice.
#[inline]
pub fn branchless_partition_point<K>(s: &[K], mut pred: impl FnMut(&K) -> bool) -> usize {
    branchless_partition_point_by(s.len(), |i| pred(&s[i]))
}

/// First index whose key is **greater than** `key` — the insert
/// convention (a duplicate lands after every existing instance).
#[inline]
pub fn upper_bound<K: Key>(kind: SearchKind, keys: &[K], key: K) -> usize {
    match kind {
        SearchKind::Binary => keys.partition_point(|k| *k <= key),
        SearchKind::Branchless => branchless_partition_point(keys, |k| *k <= key),
        SearchKind::Simd => K::simd_upper_bound(keys, key)
            .unwrap_or_else(|| branchless_partition_point(keys, |k| *k <= key)),
    }
}

/// First index whose key is **at or above** `key` — the lookup
/// convention (the first instance of a duplicate run).
#[inline]
pub fn lower_bound<K: Key>(kind: SearchKind, keys: &[K], key: K) -> usize {
    match kind {
        SearchKind::Binary => keys.partition_point(|k| *k < key),
        SearchKind::Branchless => branchless_partition_point(keys, |k| *k < key),
        SearchKind::Simd => K::simd_lower_bound(keys, key)
            .unwrap_or_else(|| branchless_partition_point(keys, |k| *k < key)),
    }
}

/// Child index for routing `key` through an internal node: right-biased
/// (`key == separator` descends right), matching the strict-boundary
/// split rule. Identical to [`upper_bound`]; named separately so call
/// sites say what they mean.
#[inline]
pub fn search_internal<K: Key>(kind: SearchKind, separators: &[K], key: K) -> usize {
    upper_bound(kind, separators, key)
}

/// Leaf slot where a lookup for `key` starts: the [`lower_bound`].
#[inline]
pub fn search_leaf<K: Key>(kind: SearchKind, keys: &[K], key: K) -> usize {
    lower_bound(kind, keys, key)
}

// ---------------------------------------------------------------------
// SIMD kernels (x86_64; every entry point degrades to None elsewhere)
// ---------------------------------------------------------------------

/// Force-disable switch for the SIMD kernels, read once per process:
/// `QUIT_FORCE_SCALAR=1` makes every `simd_*` hook return `None`, so
/// [`SearchKind::Simd`] exercises the portable branchless fallback — the
/// cross-arch CI guard runs the whole test suite this way.
pub fn simd_force_disabled() -> bool {
    static FORCE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("QUIT_FORCE_SCALAR").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

/// Width of the window the branchless ladder narrows to before handing
/// over to a vector compare+popcount sweep.
#[cfg(target_arch = "x86_64")]
const SIMD_WINDOW: usize = 32;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod simd {
    //! Vector count kernels. Each computes, over a **sorted** window, the
    //! number of elements satisfying `elem <= key` (upper bound) or
    //! `elem < key` (lower bound) — which over a sorted slice *is* the
    //! partition point. Unsigned orderings ride the signed compare
    //! instructions via the usual sign-bias XOR. Loads are explicitly
    //! unaligned (`loadu`): `Vec` buffers give no 32-byte guarantee, and
    //! the pinned-buffer invariant of the concurrent tree rules out
    //! re-homing them into aligned allocations.
    #[cfg(test)]
    use super::branchless_partition_point_by;
    use super::SIMD_WINDOW;
    use core::arch::x86_64::*;

    #[inline]
    fn avx2() -> bool {
        // `is_x86_feature_detected!` caches after the first probe.
        !super::simd_force_disabled() && is_x86_feature_detected!("avx2")
    }

    #[inline]
    fn sse2() -> bool {
        // SSE2 is baseline on x86_64; only the force switch disables it.
        !super::simd_force_disabled()
    }

    /// Binary narrowing down to a `SIMD_WINDOW`-sized window, then the
    /// vector counter over that window.
    ///
    /// The narrowing deliberately *branches* instead of using a cmov
    /// ladder: a cmov chain serializes every probe behind the previous
    /// load, while a predicted branch lets the core speculate the next
    /// probe and overlap cache misses. The window count then replaces
    /// the worst-predicted final levels with branch-free vector work —
    /// each side plays to its strength. Expanded inside the per-type
    /// `target_feature` hybrids below so the window kernel inlines into
    /// the narrowing loop (a `target_feature` fn never inlines into a
    /// plain caller, and a per-search call would cost more than the
    /// vector work saves).
    macro_rules! hybrid_body {
        ($keys:expr, $key:expr, $strict:expr, $count:ident) => {{
            let mut base = 0usize;
            let mut len = $keys.len();
            while len > SIMD_WINDOW {
                let half = len / 2;
                let probe = $keys[base + half - 1];
                let go = if $strict { probe < $key } else { probe <= $key };
                if go {
                    base += half;
                }
                len -= half;
            }
            base + $count(&$keys[base..base + len], $key, $strict)
        }};
    }

    macro_rules! kernels_32 {
        ($ty:ty, $bias:expr, $avx:ident, $sse:ident) => {
            /// AVX2: 8 lanes of 32-bit compare, mask via `movemask_ps`.
            #[target_feature(enable = "avx2")]
            unsafe fn $avx(window: &[$ty], key: $ty, strict: bool) -> usize {
                let bias = _mm256_set1_epi32($bias);
                // `elem <= key` counts non-(elem > key); `elem < key`
                // counts (key > elem).
                let kv = _mm256_xor_si256(_mm256_set1_epi32(key as i32), bias);
                let mut n = 0usize;
                let mut chunks = window.chunks_exact(8);
                for c in &mut chunks {
                    let v =
                        _mm256_xor_si256(_mm256_loadu_si256(c.as_ptr() as *const __m256i), bias);
                    let m = if strict {
                        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(kv, v))) as u32
                    } else {
                        !(_mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(v, kv))) as u32)
                            & 0xff
                    };
                    n += m.count_ones() as usize;
                }
                n + scalar_count(chunks.remainder(), key, strict)
            }

            /// SSE2: 4 lanes of 32-bit compare.
            #[target_feature(enable = "sse2")]
            unsafe fn $sse(window: &[$ty], key: $ty, strict: bool) -> usize {
                let bias = _mm_set1_epi32($bias);
                let kv = _mm_xor_si128(_mm_set1_epi32(key as i32), bias);
                let mut n = 0usize;
                let mut chunks = window.chunks_exact(4);
                for c in &mut chunks {
                    let v = _mm_xor_si128(_mm_loadu_si128(c.as_ptr() as *const __m128i), bias);
                    let m = if strict {
                        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(v, kv))) as u32
                    } else {
                        !(_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(v, kv))) as u32) & 0xf
                    };
                    n += m.count_ones() as usize;
                }
                n + scalar_count(chunks.remainder(), key, strict)
            }
        };
    }

    macro_rules! kernels_64 {
        ($ty:ty, $bias:expr, $avx:ident) => {
            /// AVX2: 4 lanes of 64-bit compare, mask via `movemask_pd`.
            /// (SSE2 has no 64-bit compare; pre-AVX2 parts use the
            /// branchless fallback for 8-byte keys.)
            #[target_feature(enable = "avx2")]
            unsafe fn $avx(window: &[$ty], key: $ty, strict: bool) -> usize {
                let bias = _mm256_set1_epi64x($bias);
                let kv = _mm256_xor_si256(_mm256_set1_epi64x(key as i64), bias);
                let mut n = 0usize;
                let mut chunks = window.chunks_exact(4);
                for c in &mut chunks {
                    let v =
                        _mm256_xor_si256(_mm256_loadu_si256(c.as_ptr() as *const __m256i), bias);
                    let m = if strict {
                        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(kv, v))) as u32
                    } else {
                        !(_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, kv))) as u32)
                            & 0xf
                    };
                    n += m.count_ones() as usize;
                }
                n + scalar_count(chunks.remainder(), key, strict)
            }
        };
    }

    #[inline]
    fn scalar_count<K: Copy + Ord>(rem: &[K], key: K, strict: bool) -> usize {
        rem.iter()
            .filter(|&&e| if strict { e < key } else { e <= key })
            .count()
    }

    kernels_32!(u32, i32::MIN, count_u32_avx2, count_u32_sse2);
    kernels_32!(i32, 0, count_i32_avx2, count_i32_sse2);
    kernels_64!(u64, i64::MIN, count_u64_avx2);
    kernels_64!(i64, 0, count_i64_avx2);

    macro_rules! entry_32 {
        ($name:ident, $ty:ty, $avx:ident, $sse:ident, $havx:ident, $hsse:ident) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $havx(keys: &[$ty], key: $ty, strict: bool) -> usize {
                hybrid_body!(keys, key, strict, $avx)
            }

            #[target_feature(enable = "sse2")]
            unsafe fn $hsse(keys: &[$ty], key: $ty, strict: bool) -> usize {
                hybrid_body!(keys, key, strict, $sse)
            }

            pub(crate) fn $name(keys: &[$ty], key: $ty, strict: bool) -> Option<usize> {
                if avx2() {
                    // SAFETY: gated on runtime AVX2 detection.
                    Some(unsafe { $havx(keys, key, strict) })
                } else if sse2() {
                    // SAFETY: SSE2 is unconditionally present on x86_64.
                    Some(unsafe { $hsse(keys, key, strict) })
                } else {
                    None
                }
            }
        };
    }

    macro_rules! entry_64 {
        ($name:ident, $ty:ty, $avx:ident, $havx:ident) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $havx(keys: &[$ty], key: $ty, strict: bool) -> usize {
                hybrid_body!(keys, key, strict, $avx)
            }

            pub(crate) fn $name(keys: &[$ty], key: $ty, strict: bool) -> Option<usize> {
                if avx2() {
                    // SAFETY: gated on runtime AVX2 detection.
                    Some(unsafe { $havx(keys, key, strict) })
                } else {
                    None
                }
            }
        };
    }

    entry_32!(
        partition_u32,
        u32,
        count_u32_avx2,
        count_u32_sse2,
        hybrid_u32_avx2,
        hybrid_u32_sse2
    );
    entry_32!(
        partition_i32,
        i32,
        count_i32_avx2,
        count_i32_sse2,
        hybrid_i32_avx2,
        hybrid_i32_sse2
    );
    entry_64!(partition_u64, u64, count_u64_avx2, hybrid_u64_avx2);
    entry_64!(partition_i64, i64, count_i64_avx2, hybrid_i64_avx2);

    /// Exhaustive-ish agreement check used by tests: every kernel entry
    /// must match the branchless reference on the given slice.
    #[cfg(test)]
    pub(crate) fn reference<K: Copy + Ord>(keys: &[K], key: K, strict: bool) -> usize {
        branchless_partition_point_by(keys.len(), |i| {
            if strict {
                keys[i] < key
            } else {
                keys[i] <= key
            }
        })
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) mod simd {
    //! Non-x86_64 stub: every kernel declines, so [`super::SearchKind::Simd`]
    //! always takes the portable branchless fallback.
    pub(crate) fn partition_u32(_: &[u32], _: u32, _: bool) -> Option<usize> {
        None
    }
    pub(crate) fn partition_i32(_: &[i32], _: i32, _: bool) -> Option<usize> {
        None
    }
    pub(crate) fn partition_u64(_: &[u64], _: u64, _: bool) -> Option<usize> {
        None
    }
    pub(crate) fn partition_i64(_: &[i64], _: i64, _: bool) -> Option<usize> {
        None
    }
}

// ---------------------------------------------------------------------
// Gap bitmap
// ---------------------------------------------------------------------

/// Per-leaf bitmap marking which physical slots are gap fillers (bit set
/// ⇒ the slot is a filler, not a live entry).
///
/// Two construction modes: [`GapMap::new`] grows its word vector lazily
/// (the single-threaded core tree), while [`GapMap::pinned`] materializes
/// every word up front and never reallocates — required by the concurrent
/// tree's buffer-pinning invariant, whose optimistic readers load words
/// from this vector without locks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GapMap {
    bits: Vec<u64>,
    count: usize,
}

impl GapMap {
    /// An empty map that allocates words on first use.
    pub fn new() -> Self {
        GapMap::default()
    }

    /// A map whose word vector is fully materialized for `slots` slots
    /// and never grows (the concurrent tree's pinned flavour).
    pub fn pinned(slots: usize) -> Self {
        GapMap {
            bits: vec![0; slots.div_ceil(64)],
            count: 0,
        }
    }

    /// Number of gap slots.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when no slot is a gap (every physical slot is live).
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.count == 0
    }

    /// Whether physical slot `i` is a gap. Out-of-range slots are live.
    #[inline]
    pub fn is_gap(&self, i: usize) -> bool {
        self.bits
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Marks slot `i` as a gap.
    pub fn set(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        let mask = 1u64 << (i % 64);
        if self.bits[w] & mask == 0 {
            self.bits[w] |= mask;
            self.count += 1;
        }
    }

    /// Marks slot `i` as live.
    pub fn clear(&mut self, i: usize) {
        if let Some(w) = self.bits.get_mut(i / 64) {
            let mask = 1u64 << (i % 64);
            if *w & mask != 0 {
                *w &= !mask;
                self.count -= 1;
            }
        }
    }

    /// Clears every gap bit, keeping the word allocation (pinning).
    pub fn reset(&mut self) {
        for w in &mut self.bits {
            *w = 0;
        }
        self.count = 0;
    }

    /// Slots the existing word vector can mark without growing.
    #[inline]
    pub fn pinned_slots(&self) -> usize {
        self.bits.len() * 64
    }

    /// First live slot at or after `from`, if any, scanning no further
    /// than `len` (the physical length).
    #[inline]
    pub fn next_live(&self, mut from: usize, len: usize) -> Option<usize> {
        while from < len {
            if !self.is_gap(from) {
                return Some(from);
            }
            from += 1;
        }
        None
    }

    /// Last live slot at or before `from`, if any.
    #[inline]
    pub fn prev_live(&self, from: usize) -> Option<usize> {
        let mut i = from;
        loop {
            if !self.is_gap(i) {
                return Some(i);
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
    }

    /// Number of gap slots strictly below `i`.
    pub fn gaps_below(&self, i: usize) -> usize {
        let full = i / 64;
        let mut n = 0usize;
        for w in self.bits.iter().take(full) {
            n += w.count_ones() as usize;
        }
        if let Some(w) = self.bits.get(full) {
            n += (w & ((1u64 << (i % 64)) - 1)).count_ones() as usize;
        }
        n
    }

    /// First gap slot at or after `p`, strictly below `len`, scanning
    /// whole bitmap words (trailing-zeros) rather than slot-by-slot.
    fn first_gap_at_or_after(&self, p: usize, len: usize) -> Option<usize> {
        let mut w = p / 64;
        let mut word = *self.bits.get(w)? & (!0u64 << (p % 64));
        loop {
            if word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                return (i < len).then_some(i);
            }
            w += 1;
            word = *self.bits.get(w)?;
        }
    }

    /// Last gap slot strictly before `p`, scanning whole bitmap words
    /// (leading-zeros) rather than slot-by-slot.
    fn last_gap_before(&self, p: usize) -> Option<usize> {
        if p == 0 || self.bits.is_empty() {
            return None;
        }
        let top = (p - 1) / 64;
        let mut w = top.min(self.bits.len() - 1);
        let mut word = self.bits[w];
        if w == top {
            word &= !0u64 >> (63 - (p - 1) % 64);
        }
        loop {
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            word = self.bits[w];
        }
    }

    /// Nearest gap slot to position `p` within `0..len`: the closer of
    /// the first gap at/after `p` and the last gap before `p`. No live
    /// slot lies between `p` and the returned gap on its side.
    fn nearest_gap(&self, p: usize, len: usize) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let right = self.first_gap_at_or_after(p, len);
        let left = self.last_gap_before(p.min(len));
        match (left, right) {
            (Some(l), Some(r)) => Some(if p - l <= r - p { l } else { r }),
            (Some(l), None) => Some(l),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        }
    }

    /// The raw bitmap words — consumed by the validator and (as a raw
    /// pointer) by the concurrent tree's OLC leaf reads.
    #[doc(hidden)]
    pub fn raw_words(&self) -> &Vec<u64> {
        &self.bits
    }
}

// ---------------------------------------------------------------------
// Slot movement over (keys, vals, gaps)
// ---------------------------------------------------------------------

/// Outcome of a gap-aware leaf insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotInsert {
    /// Inserted; the physical slot that received the entry.
    Done(usize),
    /// The leaf is full (live == capacity, hence dense): split first.
    Full,
}

/// Inserts `(key, value)` into a leaf's raw parts at the upper-bound
/// position, reusing the nearest gap slot when one exists (bounded
/// shift), growing physically otherwise, and reporting [`SlotInsert::Full`]
/// when live occupancy has reached `capacity`.
///
/// Works for both layouts: with an empty [`GapMap`] (dense) it degrades
/// to exactly the classical `Vec::insert` at the upper bound.
pub fn insert_at<K: Key, V>(
    kind: SearchKind,
    keys: &mut Vec<K>,
    vals: &mut Vec<V>,
    gaps: &mut GapMap,
    key: K,
    value: V,
    capacity: usize,
) -> SlotInsert {
    let len = keys.len();
    if len - gaps.count() >= capacity {
        return SlotInsert::Full;
    }
    // Append fast path: in-order streams insert at the physical tail (the
    // last slot is always live, so no gap bookkeeping applies). One key
    // compare replaces the whole intra-node search; the computed position
    // is exactly the upper bound, so tree shape is unchanged.
    if len < capacity && keys.last().is_none_or(|l| *l <= key) {
        keys.push(key);
        vals.push(value);
        return SlotInsert::Done(len);
    }
    let p = upper_bound(kind, keys, key);
    if gaps.is_dense() {
        // No gaps to reuse (every dense-layout leaf, and gapped leaves
        // that have consumed theirs): the classical shifting insert.
        keys.insert(p, key);
        vals.insert(p, value);
        return SlotInsert::Done(p);
    }
    // Adjacent gap on the left: `keys[p-1] <= key`, so overwriting keeps
    // the physical array sorted with zero movement.
    if p > 0 && gaps.is_gap(p - 1) {
        keys[p - 1] = key;
        vals[p - 1] = value;
        gaps.clear(p - 1);
        return SlotInsert::Done(p - 1);
    }
    // Adjacent gap at the insertion point: `keys[p] > key` strictly, so
    // overwriting keeps order too.
    if p < len && gaps.is_gap(p) {
        keys[p] = key;
        vals[p] = value;
        gaps.clear(p);
        return SlotInsert::Done(p);
    }
    match gaps.nearest_gap(p, len) {
        // Rotate the (gap-free) span between the insertion point and the
        // nearest gap by one — the bounded shift that replaces the whole
        // tail memmove. Prefer the physical tail when it is closer and
        // available.
        Some(g) if len >= capacity || shift_to_gap_cheaper(p, g, len) => {
            if g >= p {
                keys[p..=g].rotate_right(1);
                vals[p..=g].rotate_right(1);
                gaps.clear(g);
                keys[p] = key;
                vals[p] = value;
                SlotInsert::Done(p)
            } else {
                keys[g..p].rotate_left(1);
                vals[g..p].rotate_left(1);
                gaps.clear(g);
                keys[p - 1] = key;
                vals[p - 1] = value;
                SlotInsert::Done(p - 1)
            }
        }
        _ => {
            keys.insert(p, key);
            vals.insert(p, value);
            SlotInsert::Done(p)
        }
    }
}

/// Whether rotating into the gap at `g` moves fewer slots than shifting
/// the tail `p..len` right by one.
#[inline]
fn shift_to_gap_cheaper(p: usize, g: usize, len: usize) -> bool {
    let gap_dist = g.abs_diff(p);
    gap_dist <= len - p
}

/// Removes the live entry at physical slot `pos`.
///
/// `Dense` removals are the classical shifting `Vec::remove` — the
/// bit-for-bit paper path. `Gapped` interior removals gap-ify the slot
/// instead: the slot is overwritten with a copy of its right neighbour's
/// key/value pair (upholding the filler rule from the module docs, which
/// keeps `keys` value-correct for min/boundary reads) and its bit is set.
/// Removing the last physical slot pops it and trims any gap run that
/// becomes trailing, keeping the "last physical slot is live" invariant
/// (and, transitively, "live == 0 ⇒ physical == 0").
///
/// `pinned_slots` bounds which slots the bitmap may mark without growing
/// its word vector (`usize::MAX` for the growable core flavour); beyond
/// it a gapped removal falls back to a dense `Vec::remove` (only
/// reachable in the concurrent tree's absorbed-overflow corner, where
/// every gap bit sits below the pinned region and is unaffected by the
/// shift).
pub fn remove_at<K: Key, V: Clone>(
    layout: NodeLayoutKind,
    keys: &mut Vec<K>,
    vals: &mut Vec<V>,
    gaps: &mut GapMap,
    pos: usize,
    pinned_slots: usize,
) -> V {
    debug_assert!(!gaps.is_gap(pos), "remove_at requires a live slot");
    if layout == NodeLayoutKind::Dense {
        debug_assert!(gaps.is_dense(), "dense leaves never hold gaps");
        keys.remove(pos);
        return vals.remove(pos);
    }
    if pos + 1 == keys.len() {
        keys.pop();
        let v = vals.pop().expect("parallel arrays");
        while let Some(last) = keys.len().checked_sub(1) {
            if !gaps.is_gap(last) {
                break;
            }
            gaps.clear(last);
            keys.pop();
            vals.pop();
        }
        v
    } else if pos < pinned_slots {
        // Not the last slot, so `pos + 1` exists. Copying that neighbour
        // (itself a filler of *its* right live neighbour, or live) keeps
        // the physical array sorted and the filler rule intact.
        let fk = keys[pos + 1];
        let fv = vals[pos + 1].clone();
        keys[pos] = fk;
        gaps.set(pos);
        let out = std::mem::replace(&mut vals[pos], fv);
        // Fillers in the gap run ending at `pos` copied the just-removed
        // entry; re-point them at the new source so the rule stays exact.
        let mut i = pos;
        while i > 0 && gaps.is_gap(i - 1) {
            i -= 1;
            keys[i] = fk;
            vals[i] = vals[pos].clone();
        }
        out
    } else {
        keys.remove(pos);
        vals.remove(pos)
    }
}

/// Compacts a leaf's raw parts: drops every gap slot, leaving packed
/// live entries and an empty bitmap (allocation retained for pinning).
pub fn compact<K: Key, V>(keys: &mut Vec<K>, vals: &mut Vec<V>, gaps: &mut GapMap) {
    if gaps.is_dense() {
        return;
    }
    let mut i = 0usize;
    keys.retain(|_| {
        let keep = !gaps.is_gap(i);
        i += 1;
        keep
    });
    let mut j = 0usize;
    vals.retain(|_| {
        let keep = !gaps.is_gap(j);
        j += 1;
        keep
    });
    gaps.reset();
}

/// Seeds a freshly split (dense) leaf with `want` gap fillers spread over
/// `[region_start, len)` — the region the IKR prediction marks as the
/// landing zone for future near-sorted inserts. Each filler is a clone of
/// its right neighbour's entry, so the physical array stays sorted and
/// every filler duplicates a live entry (reads that land on one see the
/// correct pair). Never creates trailing gaps and never pushes the
/// physical length past `capacity`.
pub fn regap<K: Key, V: Clone>(
    keys: &mut Vec<K>,
    vals: &mut Vec<V>,
    gaps: &mut GapMap,
    region_start: usize,
    want: usize,
    capacity: usize,
) {
    debug_assert!(gaps.is_dense(), "regap expects a dense (just-split) leaf");
    let len = keys.len();
    if region_start >= len || len >= capacity {
        return;
    }
    let span = len - region_start;
    let m = want.min(capacity - len).min(span);
    if m == 0 {
        return;
    }
    // Insertion points in the original array, ascending and distinct: a
    // filler is placed before original element p_j, so element i moves to
    // i + #{points <= i} and the j-th filler lands at p_j + j. One
    // backward pass moves every element to its final slot exactly once
    // (vs. m tail memmoves for repeated `Vec::insert`).
    let points: Vec<usize> = (0..m).map(|i| region_start + (i * span) / m).collect();
    let last_k = keys[len - 1];
    let last_v = vals[len - 1].clone();
    keys.resize(len + m, last_k);
    vals.resize(len + m, last_v);
    let mut i = len; // original elements `i..len` are already placed
    let mut dst = len + m;
    for j in (0..m).rev() {
        let p = points[j];
        while i > p {
            i -= 1;
            dst -= 1;
            keys[dst] = keys[i];
            vals.swap(dst, i);
        }
        // Element p now sits at `dst`; its filler duplicates it just below.
        dst -= 1;
        keys[dst] = keys[dst + 1];
        vals[dst] = vals[dst + 1].clone();
        gaps.set(dst);
        debug_assert_eq!(dst, p + j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_conventions_are_pinned() {
        // The duplicate-run contract from the module docs, in one place.
        let keys = [1u64, 3, 3, 3, 5];
        for kind in [SearchKind::Binary, SearchKind::Branchless, SearchKind::Simd] {
            // Insert lands AFTER the duplicate run.
            assert_eq!(upper_bound(kind, &keys, 3), 4, "{kind:?}");
            // Lookup finds the FIRST instance.
            assert_eq!(lower_bound(kind, &keys, 3), 1, "{kind:?}");
            // Routing on a separator hit goes RIGHT.
            assert_eq!(search_internal(kind, &keys, 3), 4, "{kind:?}");
            assert_eq!(search_leaf(kind, &keys, 3), 1, "{kind:?}");
            // Extremes.
            assert_eq!(upper_bound(kind, &keys, 0), 0, "{kind:?}");
            assert_eq!(upper_bound(kind, &keys, 9), 5, "{kind:?}");
            assert_eq!(lower_bound::<u64>(kind, &[], 7), 0, "{kind:?}");
        }
    }

    #[test]
    fn branchless_matches_std_partition_point() {
        let mut keys: Vec<u64> = Vec::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for n in 0..200usize {
            keys.clear();
            let mut k = 0u64;
            for _ in 0..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                k += state % 3; // runs of duplicates included
                keys.push(k);
            }
            for probe in 0..=(k + 2) {
                assert_eq!(
                    branchless_partition_point(&keys, |e| *e <= probe),
                    keys.partition_point(|e| *e <= probe),
                    "n={n} probe={probe} (upper)"
                );
                assert_eq!(
                    branchless_partition_point(&keys, |e| *e < probe),
                    keys.partition_point(|e| *e < probe),
                    "n={n} probe={probe} (lower)"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_kernels_match_reference() {
        let mut state = 0x9e37_79b9_97f4_a7c1u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [0usize, 1, 3, 7, 8, 15, 31, 32, 33, 64, 127, 510] {
            let mut k64: Vec<u64> = (0..n).map(|_| next() % 1000).collect();
            k64.sort_unstable();
            let mut k32: Vec<u32> = k64.iter().map(|&k| k as u32).collect();
            k32.sort_unstable();
            let mut ki32: Vec<i32> = k64.iter().map(|&k| k as i32 - 500).collect();
            ki32.sort_unstable();
            let mut ki64: Vec<i64> = k64.iter().map(|&k| k as i64 - 500).collect();
            ki64.sort_unstable();
            for _ in 0..64 {
                let p = next() % 1100;
                for strict in [false, true] {
                    if let Some(got) = simd::partition_u64(&k64, p, strict) {
                        assert_eq!(got, simd::reference(&k64, p, strict), "u64 n={n} p={p}");
                    }
                    if let Some(got) = simd::partition_u32(&k32, p as u32, strict) {
                        assert_eq!(
                            got,
                            simd::reference(&k32, p as u32, strict),
                            "u32 n={n} p={p}"
                        );
                    }
                    let pi = p as i32 - 550;
                    if let Some(got) = simd::partition_i32(&ki32, pi, strict) {
                        assert_eq!(got, simd::reference(&ki32, pi, strict), "i32 n={n} p={pi}");
                    }
                    let pl = p as i64 - 550;
                    if let Some(got) = simd::partition_i64(&ki64, pl, strict) {
                        assert_eq!(got, simd::reference(&ki64, pl, strict), "i64 n={n} p={pl}");
                    }
                }
            }
        }
    }

    #[test]
    fn gap_map_basics() {
        let mut g = GapMap::new();
        assert!(g.is_dense());
        assert!(!g.is_gap(130));
        g.set(3);
        g.set(130);
        g.set(3); // idempotent
        assert_eq!(g.count(), 2);
        assert!(g.is_gap(3) && g.is_gap(130));
        assert_eq!(g.gaps_below(3), 0);
        assert_eq!(g.gaps_below(4), 1);
        assert_eq!(g.gaps_below(131), 2);
        assert_eq!(g.next_live(3, 200), Some(4));
        assert_eq!(g.prev_live(3), Some(2));
        g.clear(3);
        assert_eq!(g.count(), 1);
        g.reset();
        assert!(g.is_dense());
        let p = GapMap::pinned(9);
        assert_eq!(p.pinned_slots(), 64);
    }

    #[test]
    fn nearest_gap_prefers_the_closer_side() {
        let mut g = GapMap::new();
        g.set(1);
        g.set(9);
        assert_eq!(g.nearest_gap(3, 12), Some(1));
        assert_eq!(g.nearest_gap(8, 12), Some(9));
        assert_eq!(g.nearest_gap(1, 12), Some(1));
        assert_eq!(GapMap::new().nearest_gap(3, 12), None);
    }

    fn live<K: Key, V: Clone>(keys: &[K], vals: &[V], gaps: &GapMap) -> Vec<(K, V)> {
        (0..keys.len())
            .filter(|&i| !gaps.is_gap(i))
            .map(|i| (keys[i], vals[i].clone()))
            .collect()
    }

    #[test]
    fn insert_dense_matches_classic_vec_insert() {
        let kind = SearchKind::Branchless;
        let mut keys: Vec<u64> = vec![];
        let mut vals: Vec<u64> = vec![];
        let mut gaps = GapMap::new();
        for k in [5u64, 1, 9, 5, 3] {
            assert!(matches!(
                insert_at(kind, &mut keys, &mut vals, &mut gaps, k, k * 10, 8),
                SlotInsert::Done(_)
            ));
        }
        assert_eq!(keys, vec![1, 3, 5, 5, 9]);
        assert!(gaps.is_dense());
        // Full leaf reports Full without touching the arrays.
        for k in [2u64, 4, 6] {
            insert_at(kind, &mut keys, &mut vals, &mut gaps, k, 0, 8);
        }
        assert_eq!(
            insert_at(kind, &mut keys, &mut vals, &mut gaps, 7, 0, 8),
            SlotInsert::Full
        );
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn insert_reuses_adjacent_and_rotated_gaps() {
        let kind = SearchKind::Binary;
        // Physical [1, (3), 5, 7] with slot 1 a filler for key 3.
        let mut keys: Vec<u64> = vec![1, 3, 5, 7];
        let mut vals: Vec<u64> = vec![10, 0, 50, 70];
        let mut gaps = GapMap::new();
        gaps.set(1);
        // Upper bound of 2 is slot 1, which is a gap: overwrite in place.
        assert_eq!(
            insert_at(kind, &mut keys, &mut vals, &mut gaps, 2, 20, 4),
            SlotInsert::Done(1)
        );
        assert_eq!(keys, vec![1, 2, 5, 7]);
        assert!(gaps.is_dense());
        // Now live == capacity: full.
        assert_eq!(
            insert_at(kind, &mut keys, &mut vals, &mut gaps, 6, 60, 4),
            SlotInsert::Full
        );
        // Rotate case: gap at far left, insert lands right of it.
        let mut keys: Vec<u64> = vec![1, 3, 5, 7];
        let mut vals: Vec<u64> = vec![0, 30, 50, 70];
        let mut gaps = GapMap::new();
        gaps.set(0);
        assert_eq!(
            insert_at(kind, &mut keys, &mut vals, &mut gaps, 6, 60, 4),
            SlotInsert::Done(2)
        );
        assert_eq!(keys, vec![3, 5, 6, 7]);
        assert_eq!(vals, vec![30, 50, 60, 70]);
        assert!(gaps.is_dense());
    }

    #[test]
    fn remove_gapifies_interior_and_trims_tail() {
        let mut keys: Vec<u64> = vec![1, 3, 5, 7];
        let mut vals: Vec<u64> = vec![10, 30, 50, 70];
        let mut gaps = GapMap::new();
        // Interior removal overwrites the slot with its right neighbour.
        let g = NodeLayoutKind::Gapped;
        assert_eq!(
            remove_at(g, &mut keys, &mut vals, &mut gaps, 1, usize::MAX),
            30
        );
        assert_eq!(keys, vec![1, 5, 5, 7], "filler copies the neighbour");
        assert_eq!(vals, vec![10, 50, 50, 70]);
        assert_eq!(gaps.count(), 1);
        assert!(gaps.is_gap(1));
        // Removing the last physical slot trims nothing here...
        assert_eq!(
            remove_at(g, &mut keys, &mut vals, &mut gaps, 3, usize::MAX),
            70
        );
        assert_eq!(keys, vec![1, 5, 5]);
        // ...but removing slot 2 pops it AND the now-trailing gap at 1.
        assert_eq!(
            remove_at(g, &mut keys, &mut vals, &mut gaps, 2, usize::MAX),
            50
        );
        assert_eq!(keys, vec![1]);
        assert!(gaps.is_dense());
        assert_eq!(
            remove_at(g, &mut keys, &mut vals, &mut gaps, 0, usize::MAX),
            10
        );
        assert!(keys.is_empty() && vals.is_empty() && gaps.is_dense());
    }

    #[test]
    fn remove_dense_matches_classic_vec_remove() {
        let mut keys: Vec<u64> = vec![1, 3, 5, 7];
        let mut vals: Vec<u64> = vec![10, 30, 50, 70];
        let mut gaps = GapMap::new();
        let d = NodeLayoutKind::Dense;
        assert_eq!(
            remove_at(d, &mut keys, &mut vals, &mut gaps, 1, usize::MAX),
            30
        );
        assert_eq!(keys, vec![1, 5, 7], "dense removal shifts, never gap-ifies");
        assert_eq!(vals, vec![10, 50, 70]);
        assert!(gaps.is_dense());
    }

    #[test]
    fn compact_drops_fillers_only() {
        let mut keys: Vec<u64> = vec![1, 3, 3, 5, 7];
        let mut vals: Vec<u64> = vec![10, 0, 30, 50, 70];
        let mut gaps = GapMap::new();
        gaps.set(1);
        compact(&mut keys, &mut vals, &mut gaps);
        assert_eq!(keys, vec![1, 3, 5, 7]);
        assert_eq!(vals, vec![10, 30, 50, 70]);
        assert!(gaps.is_dense());
    }

    #[test]
    fn regap_spreads_fillers_and_keeps_order() {
        let mut keys: Vec<u64> = (0..8u64).collect();
        let mut vals: Vec<u64> = (0..8u64).map(|k| k * 10).collect();
        let mut gaps = GapMap::new();
        let before = live(&keys, &vals, &gaps);
        regap(&mut keys, &mut vals, &mut gaps, 4, 3, 16);
        assert_eq!(gaps.count(), 3);
        assert_eq!(keys.len(), 11);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "physical sorted");
        assert!(!gaps.is_gap(keys.len() - 1), "no trailing gap");
        assert_eq!(live(&keys, &vals, &gaps), before, "live content unchanged");
        // Every filler duplicates its right live neighbour's pair.
        for i in 0..keys.len() {
            if gaps.is_gap(i) {
                let j = gaps.next_live(i, keys.len()).unwrap();
                assert_eq!((keys[i], vals[i]), (keys[j], vals[j]), "slot {i}");
            }
        }
        // Respects capacity and the region.
        let mut gaps2 = GapMap::new();
        regap(&mut keys, &mut vals, &mut gaps2, 0, 100, 12);
        assert!(keys.len() <= 12);
    }

    /// Randomized round-trip: a gapped leaf fed random insert/remove
    /// traffic (with periodic regap/compact) must always report the same
    /// live content as a sorted reference vector, and must uphold the
    /// structural invariants from the module docs.
    #[test]
    fn gapped_ops_match_reference_model() {
        let cap = 16usize;
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200u32 {
            let kind = match case % 3 {
                0 => SearchKind::Binary,
                1 => SearchKind::Branchless,
                _ => SearchKind::Simd,
            };
            let mut keys: Vec<u64> = vec![];
            let mut vals: Vec<u64> = vec![];
            let mut gaps = GapMap::new();
            let mut model: Vec<(u64, u64)> = vec![];
            for step in 0..200u32 {
                let r = next();
                let k = r % 32;
                if r % 100 < 60 {
                    let v = u64::from(step);
                    match insert_at(kind, &mut keys, &mut vals, &mut gaps, k, v, cap) {
                        SlotInsert::Done(slot) => {
                            assert!(!gaps.is_gap(slot));
                            assert_eq!((keys[slot], vals[slot]), (k, v));
                            let at = model.partition_point(|e| e.0 <= k);
                            model.insert(at, (k, v));
                        }
                        SlotInsert::Full => {
                            assert_eq!(model.len(), cap, "Full only when live == cap");
                            assert!(gaps.is_dense(), "full leaves are dense");
                            // Make room like a split would: compact + drop max.
                            model.pop();
                            keys.pop();
                            vals.pop();
                        }
                    }
                } else if !model.is_empty() {
                    // Remove a uniformly chosen live entry.
                    let mi = (r >> 8) as usize % model.len();
                    let (k, _) = model.remove(mi);
                    // Its physical slot: lower bound, skip gaps and
                    // earlier duplicates until values match the model's
                    // ordering (first live instance + offset).
                    let mut slot = lower_bound(kind, &keys, k);
                    slot = gaps.next_live(slot, keys.len()).expect("present");
                    // How many earlier live duplicates of k to pass: both
                    // sides insert duplicates at the upper bound, so live
                    // physical order matches model order instance-for-instance
                    // (entries before `mi` are unchanged by the removal).
                    let skip = model.iter().take(mi).filter(|e| e.0 == k).count();
                    for _ in 0..skip {
                        slot = gaps
                            .next_live(slot + 1, keys.len())
                            .expect("duplicate instance");
                    }
                    remove_at(
                        NodeLayoutKind::Gapped,
                        &mut keys,
                        &mut vals,
                        &mut gaps,
                        slot,
                        usize::MAX,
                    );
                }
                if step % 37 == 0 {
                    compact(&mut keys, &mut vals, &mut gaps);
                    let mid = keys.len() / 2;
                    regap(&mut keys, &mut vals, &mut gaps, mid, 4, cap);
                }
                // Invariants after every op.
                assert!(keys.len() <= cap, "physical length bounded by capacity");
                assert!(keys.len() == vals.len());
                assert!(keys.windows(2).all(|w| w[0] <= w[1]), "physical sorted");
                if let Some(last) = keys.len().checked_sub(1) {
                    assert!(!gaps.is_gap(last), "last physical slot live");
                }
                assert_eq!(keys.len() - gaps.count(), model.len(), "live length");
                for i in 0..keys.len() {
                    if gaps.is_gap(i) {
                        let j = gaps.next_live(i, keys.len()).expect("last slot is live");
                        assert_eq!(keys[i], keys[j], "filler copies its live neighbour");
                    }
                }
                let got: Vec<u64> = (0..keys.len())
                    .filter(|&i| !gaps.is_gap(i))
                    .map(|i| keys[i])
                    .collect();
                let want: Vec<u64> = model.iter().map(|e| e.0).collect();
                assert_eq!(got, want, "live keys match model");
            }
        }
    }
}

//! The five index variants of the paper's evaluation (§5), built from one
//! shared tree platform so comparisons are apples-to-apples.

use crate::config::TreeConfig;
use crate::fastpath::FastPathMode;
use crate::key::Key;
use crate::tree::BpTree;

/// Identifies an index design from the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Textbook B+-tree: top-inserts only.
    Classic,
    /// B+-tree with the tail-leaf fast path ("tail-B+-tree").
    Tail,
    /// B+-tree with the last-insertion-leaf fast path ("ℓiℓ-B+-tree").
    Lil,
    /// poℓe fast path *without* variable split / redistribute / reset
    /// ("poℓe-B+-tree", the ablation of Fig 12).
    PoleOnly,
    /// The full Quick Insertion Tree.
    Quit,
}

impl Variant {
    /// Every variant, in the order the paper's figures list them.
    pub const ALL: [Variant; 5] = [
        Variant::Classic,
        Variant::Tail,
        Variant::Lil,
        Variant::PoleOnly,
        Variant::Quit,
    ];

    /// The display name the paper uses.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Classic => "B+-tree",
            Variant::Tail => "tail-B+-tree",
            Variant::Lil => "lil-B+-tree",
            Variant::PoleOnly => "pole-B+-tree",
            Variant::Quit => "QuIT",
        }
    }

    /// Fast-path mode for this variant.
    pub fn mode(self) -> FastPathMode {
        match self {
            Variant::Classic => FastPathMode::None,
            Variant::Tail => FastPathMode::Tail,
            Variant::Lil => FastPathMode::Lil,
            Variant::PoleOnly | Variant::Quit => FastPathMode::Pole,
        }
    }

    /// Adjusts `config`'s QuIT feature toggles for this variant: only the
    /// full QuIT enables variable split, redistribution, and reset.
    pub fn configure(self, mut config: TreeConfig) -> TreeConfig {
        if self != Variant::Quit {
            config.variable_split = false;
            config.redistribute = false;
            config.reset_threshold = None;
        }
        config
    }

    /// Builds an empty index of this variant.
    pub fn build<K: Key, V: 'static>(self, config: TreeConfig) -> BpTree<K, V> {
        BpTree::with_config(self.mode(), self.configure(config))
    }
}

/// Textbook B+-tree (top-inserts only).
pub type ClassicBPlusTree<K, V> = BpTree<K, V>;

/// Convenience constructors mirroring [`Variant`].
impl<K: Key, V: 'static> BpTree<K, V> {
    /// A classical B+-tree with paper-default geometry.
    pub fn classic() -> Self {
        Variant::Classic.build(TreeConfig::paper_default())
    }

    /// A tail-B+-tree with paper-default geometry.
    pub fn tail_fastpath() -> Self {
        Variant::Tail.build(TreeConfig::paper_default())
    }

    /// A ℓiℓ-B+-tree with paper-default geometry.
    pub fn lil_fastpath() -> Self {
        Variant::Lil.build(TreeConfig::paper_default())
    }

    /// A poℓe-B+-tree (no variable split / redistribute / reset).
    pub fn pole_fastpath() -> Self {
        Variant::PoleOnly.build(TreeConfig::paper_default())
    }

    /// A full Quick Insertion Tree with paper-default geometry.
    pub fn quit() -> Self {
        Variant::Quit.build(TreeConfig::paper_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_configuration() {
        let base = TreeConfig::paper_default();
        let quit = Variant::Quit.configure(base.clone());
        assert!(quit.variable_split && quit.redistribute);
        assert!(quit.reset_threshold.is_some());
        let pole = Variant::PoleOnly.configure(base.clone());
        assert!(!pole.variable_split && !pole.redistribute);
        assert_eq!(pole.reset_threshold, None);
        assert_eq!(Variant::Tail.mode(), FastPathMode::Tail);
        assert_eq!(Variant::Classic.mode(), FastPathMode::None);
    }

    #[test]
    fn constructors_build_working_trees() {
        let mut trees: Vec<BpTree<u64, u64>> = vec![
            BpTree::classic(),
            BpTree::tail_fastpath(),
            BpTree::lil_fastpath(),
            BpTree::pole_fastpath(),
            BpTree::quit(),
        ];
        for t in &mut trees {
            for k in 0..100u64 {
                t.insert(k, k);
            }
            assert_eq!(t.len(), 100);
            assert_eq!(t.get(50), Some(&50));
            t.check_invariants().unwrap();
        }
        // Only the non-classic variants fast-insert.
        assert_eq!(trees[0].stats().fast_inserts.get(), 0);
        for t in &trees[1..] {
            assert_eq!(t.stats().fast_inserts.get(), 100);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Variant::Quit.name(), "QuIT");
        assert_eq!(Variant::ALL.len(), 5);
    }
}

//! Test-only pause points for deterministic OLC interleaving tests.
//!
//! Compiled only with the `olc-test-hooks` feature (never in release
//! artifacts). A test installs a hook that blocks at a well-defined point
//! of the optimistic descent — e.g. after the leaf's version was read but
//! before its contents are — then mutates the tree from another thread and
//! releases the paused reader, forcing the exact torn-read window the OLC
//! validation must catch.

use std::sync::{Arc, Mutex, OnceLock};

type Hook = Arc<dyn Fn() + Send + Sync>;

fn slot() -> &'static Mutex<Option<Hook>> {
    static SLOT: OnceLock<Mutex<Option<Hook>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs `hook` to run at the leaf pause point of every optimistic
/// point-lookup descent (after the leaf version is read, before its
/// contents are). Replaces any previous hook.
pub fn set_leaf_pause(hook: impl Fn() + Send + Sync + 'static) {
    *slot().lock().unwrap() = Some(Arc::new(hook));
}

/// Removes the installed hook, if any.
pub fn clear_leaf_pause() {
    *slot().lock().unwrap() = None;
}

/// Called by the tree at the leaf pause point. The hook is cloned out of
/// the registry before running so a blocking hook never holds the slot
/// lock (tests install/clear hooks concurrently with paused readers).
pub(crate) fn leaf_pause() {
    let hook = slot().lock().unwrap().clone();
    if let Some(h) = hook {
        h();
    }
}

//! Lock-per-node tree nodes for the concurrent QuIT (§4.5).
//!
//! Every node sits behind its own [`crate::sync::RwLock`]; links are `Arc`s
//! so guards can outlive the reference that produced them. Leaves
//! carry their own separator bounds (`low`/`high`), maintained under the
//! leaf's write lock at split time — this lets the fast path validate an
//! insert against the leaf itself, immune to staleness of the shared
//! fast-path metadata.
//!
//! # Buffer-pinning invariant (OLC)
//!
//! Optimistic readers ([`crate::ConcurrentTree`] with OLC enabled) read node
//! contents *without* holding the node's lock and only validate afterwards.
//! For those raw reads to never fault, a node's `Vec` buffers must never be
//! reallocated while the tree is alive: a concurrent reader may still be
//! dereferencing the old allocation. The constructors here therefore
//! reserve the maximum size a buffer can ever reach up front:
//!
//! * leaf `keys`/`vals`: `leaf_capacity + 1` (a full leaf accepts one
//!   overflow entry before/while it splits);
//! * internal `keys`: `internal_capacity + 1`, `children`:
//!   `internal_capacity + 2` (one separator/child of overshoot before the
//!   node splits).
//!
//! All in-place mutation stays within these reservations; the single
//! exception (a uniform-key leaf absorbing overflow past its capacity,
//! which cannot split) swaps in larger buffers and retires the old ones to
//! a tree-level keep-alive list instead of freeing them.

use crate::sync::RwLock;
use quit_core::GapMap;
use std::sync::Arc;

/// Shared handle to a locked node.
pub type NodeRef<K, V> = Arc<RwLock<CNode<K, V>>>;

/// A node of the concurrent tree.
#[derive(Debug)]
pub enum CNode<K, V> {
    /// Routing node: `children.len() == keys.len() + 1`.
    Internal {
        /// Separator keys, ascending.
        keys: Vec<K>,
        /// Child handles.
        children: Vec<NodeRef<K, V>>,
    },
    /// Data node.
    Leaf {
        /// Entry keys, ascending (duplicates allowed). Under the gapped
        /// layout some slots are *fillers* — each holds a copy of the
        /// key/value pair of its nearest live slot to the right — so the
        /// physical array stays fully sorted and value-correct for every
        /// point read, including the latch-free OLC `leaf_get`.
        keys: Vec<K>,
        /// Values parallel to `keys`.
        vals: Vec<V>,
        /// Which physical slots are gap fillers (empty ⇒ dense). Only read
        /// and written under the leaf's latch: optimistic raw readers never
        /// consult it (the filler rule keeps raw reads value-correct), so
        /// the buffer-pinning invariant does not extend to this bitmap.
        gaps: GapMap,
        /// Next leaf in key order.
        next: Option<NodeRef<K, V>>,
        /// Inclusive lower separator bound (`None` = unbounded).
        low: Option<K>,
        /// Exclusive upper separator bound (`None` = right-most leaf).
        high: Option<K>,
    },
}

impl<K, V> CNode<K, V> {
    /// A fresh empty leaf with unbounded range. Reserves `capacity + 1`
    /// slots so in-capacity inserts (plus the transient overflow entry
    /// around a split) never reallocate — see the buffer-pinning invariant
    /// in the module docs.
    pub fn empty_leaf(capacity: usize) -> Self {
        CNode::Leaf {
            keys: Vec::with_capacity(capacity + 1),
            vals: Vec::with_capacity(capacity + 1),
            gaps: GapMap::new(),
            next: None,
            low: None,
            high: None,
        }
    }

    /// Pre-sized buffers for a new leaf (`capacity + 1` slots each), for
    /// split code that fills them by draining the overfull left sibling.
    pub fn leaf_buffers(capacity: usize) -> (Vec<K>, Vec<V>) {
        (
            Vec::with_capacity(capacity + 1),
            Vec::with_capacity(capacity + 1),
        )
    }

    /// Pre-sized buffers for a new internal node: `capacity + 1` separator
    /// slots and `capacity + 2` child slots, the maximum an internal node
    /// reaches in the instant before it splits.
    pub fn internal_buffers(capacity: usize) -> (Vec<K>, Vec<NodeRef<K, V>>) {
        (
            Vec::with_capacity(capacity + 1),
            Vec::with_capacity(capacity + 2),
        )
    }

    /// Wraps a node in its lock + handle.
    pub fn into_ref(self) -> NodeRef<K, V> {
        Arc::new(RwLock::new(self))
    }

    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, CNode::Leaf { .. })
    }

    /// Live entry count (leaves, gap fillers excluded) or separator count
    /// (internal nodes).
    pub fn len(&self) -> usize {
        match self {
            CNode::Internal { keys, .. } => keys.len(),
            CNode::Leaf { keys, gaps, .. } => keys.len() - gaps.count(),
        }
    }

    /// True when the node holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_construction() {
        let n: CNode<u64, u64> = CNode::empty_leaf(16);
        assert!(n.is_leaf());
        assert!(n.is_empty());
        assert_eq!(n.len(), 0);
        let r = n.into_ref();
        assert!(r.read().is_leaf());
    }

    #[test]
    fn guards_are_arc_detached() {
        let r: NodeRef<u64, u64> = CNode::empty_leaf(4).into_ref();
        let guard = crate::sync::RwLock::write_arc(&r);
        // The guard owns an Arc clone: dropping `r` is fine.
        drop(r);
        assert!(guard.is_leaf());
    }

    #[test]
    fn buffers_reserve_overflow_slack() {
        let n: CNode<u64, u64> = CNode::empty_leaf(8);
        let CNode::Leaf { keys, vals, .. } = &n else {
            unreachable!();
        };
        assert!(keys.capacity() >= 9, "leaf keys pin capacity + 1");
        assert!(vals.capacity() >= 9, "leaf vals pin capacity + 1");
        let (ik, ic) = CNode::<u64, u64>::internal_buffers(8);
        assert!(ik.capacity() >= 9, "internal keys pin capacity + 1");
        assert!(ic.capacity() >= 10, "internal children pin capacity + 2");
        let (lk, lv) = CNode::<u64, u64>::leaf_buffers(8);
        assert!(lk.capacity() >= 9 && lv.capacity() >= 9);
    }
}

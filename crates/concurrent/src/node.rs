//! Lock-per-node tree nodes for the concurrent QuIT (§4.5).
//!
//! Every node sits behind its own [`crate::sync::RwLock`]; links are `Arc`s
//! so guards can outlive the reference that produced them. Leaves
//! carry their own separator bounds (`low`/`high`), maintained under the
//! leaf's write lock at split time — this lets the fast path validate an
//! insert against the leaf itself, immune to staleness of the shared
//! fast-path metadata.

use crate::sync::RwLock;
use std::sync::Arc;

/// Shared handle to a locked node.
pub type NodeRef<K, V> = Arc<RwLock<CNode<K, V>>>;

/// A node of the concurrent tree.
#[derive(Debug)]
pub enum CNode<K, V> {
    /// Routing node: `children.len() == keys.len() + 1`.
    Internal {
        /// Separator keys, ascending.
        keys: Vec<K>,
        /// Child handles.
        children: Vec<NodeRef<K, V>>,
    },
    /// Data node.
    Leaf {
        /// Entry keys, ascending (duplicates allowed).
        keys: Vec<K>,
        /// Values parallel to `keys`.
        vals: Vec<V>,
        /// Next leaf in key order.
        next: Option<NodeRef<K, V>>,
        /// Inclusive lower separator bound (`None` = unbounded).
        low: Option<K>,
        /// Exclusive upper separator bound (`None` = right-most leaf).
        high: Option<K>,
    },
}

impl<K, V> CNode<K, V> {
    /// A fresh empty leaf with unbounded range.
    pub fn empty_leaf(capacity: usize) -> Self {
        CNode::Leaf {
            keys: Vec::with_capacity(capacity),
            vals: Vec::with_capacity(capacity),
            next: None,
            low: None,
            high: None,
        }
    }

    /// Wraps a node in its lock + handle.
    pub fn into_ref(self) -> NodeRef<K, V> {
        Arc::new(RwLock::new(self))
    }

    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, CNode::Leaf { .. })
    }

    /// Entry or separator count.
    pub fn len(&self) -> usize {
        match self {
            CNode::Internal { keys, .. } | CNode::Leaf { keys, .. } => keys.len(),
        }
    }

    /// True when the node holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_construction() {
        let n: CNode<u64, u64> = CNode::empty_leaf(16);
        assert!(n.is_leaf());
        assert!(n.is_empty());
        assert_eq!(n.len(), 0);
        let r = n.into_ref();
        assert!(r.read().is_leaf());
    }

    #[test]
    fn guards_are_arc_detached() {
        let r: NodeRef<u64, u64> = CNode::empty_leaf(4).into_ref();
        let guard = crate::sync::RwLock::write_arc(&r);
        // The guard owns an Arc clone: dropping `r` is fine.
        drop(r);
        assert!(guard.is_leaf());
    }
}

//! # quit-concurrent — thread-safe QuIT and B+-tree (paper §4.5)
//!
//! Classical lock-crabbing made sortedness-aware: a dedicated mutex guards
//! the poℓe fast-path metadata, and an in-range insert into a non-full poℓe
//! leaf locks exactly **one leaf** instead of crabbing a whole root-to-leaf
//! path — the shorter critical section behind the paper's Fig 13 result
//! (1.5–2× higher insert throughput under contention).
//!
//! ```
//! use quit_concurrent::ConcurrentTree;
//! use std::sync::Arc;
//!
//! let tree: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::quit());
//! let handles: Vec<_> = (0..4)
//!     .map(|t| {
//!         let tree = tree.clone();
//!         std::thread::spawn(move || {
//!             for k in 0..1000u64 {
//!                 tree.insert(t * 1_000_000 + k, k);
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(tree.len(), 4000);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod node;
#[allow(unsafe_code)]
mod sync;
mod tree;

pub use node::{CNode, NodeRef};
pub use tree::{ConcConfig, ConcRangeIter, ConcurrentTree};

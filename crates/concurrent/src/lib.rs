//! # quit-concurrent — thread-safe QuIT and B+-tree (paper §4.5)
//!
//! Traversal uses **optimistic lock coupling** (OLC): every node lock
//! carries a seqlock version word, and `get`/`range`/insert descents read
//! node contents without latching, validating parent-then-child versions
//! and restarting (with bounded exponential backoff) when a writer
//! intervened, before falling back to classical pessimistic lock-crabbing.
//! On top of that, a dedicated mutex guards the poℓe fast-path metadata,
//! and an in-range insert into a non-full poℓe leaf locks exactly **one
//! leaf** instead of crabbing a whole root-to-leaf path — the shorter
//! critical section behind the paper's Fig 13 result (1.5–2× higher insert
//! throughput under contention).
//!
//! ```
//! use quit_concurrent::{ConcConfig, ConcurrentTree};
//! use std::sync::Arc;
//!
//! let tree: Arc<ConcurrentTree<u64, u64>> =
//!     Arc::new(ConcurrentTree::new(ConcConfig::paper_default()));
//! let handles: Vec<_> = (0..4)
//!     .map(|t| {
//!         let tree = tree.clone();
//!         std::thread::spawn(move || {
//!             for k in 0..1000u64 {
//!                 tree.insert(t * 1_000_000 + k, k);
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(tree.len(), 4000);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod mvcc;
mod node;
#[allow(unsafe_code)]
mod olc;
#[allow(unsafe_code)]
mod sync;
#[cfg(feature = "olc-test-hooks")]
pub mod test_hooks;
mod tree;

pub use mvcc::{MvccTree, StripeGuards, VersionCell, VersionChain};
pub use node::{CNode, NodeRef};
pub use quit_core::StorageKind;
pub use tree::{ConcConfig, ConcRangeIter, ConcurrentTree};

//! Multi-version concurrency control over [`ConcurrentTree`]: version
//! chains keyed by commit timestamp, snapshot reads riding the OLC
//! descent, and a watermark garbage collector.
//!
//! # Shape
//!
//! The tree maps each key to one [`VersionCell`] — an `Arc`-shared,
//! mutex-guarded [`VersionChain`] holding `(commit_ts, Option<V>)`
//! versions newest-first (`None` is a delete tombstone). The cell is the
//! tree's *value*, so reads reach it through the existing descent
//! machinery unchanged: the descent to the leaf is latch-free under OLC,
//! and because `Arc` has drop glue the leaf-level read takes the
//! shared-latch materialization path that PR 4 added for heap-owning
//! values (an `Arc` clone must never race a writer's drop). Version
//! visibility is then resolved under the cell's own mutex, off the tree's
//! lock protocol entirely.
//!
//! # Visibility rule
//!
//! A reader at snapshot `s` sees the newest version with `commit_ts <= s`
//! — a live value or nothing (tombstone / no such version). Writers
//! append strictly increasing `commit_ts` per chain (enforced by the
//! caller holding the key's stripe across allocation and apply; see
//! [`MvccTree::apply`]).
//!
//! # Cells are immortal, chains are not
//!
//! A key's cell is inserted once and never removed from the tree —
//! deletes append tombstones. This sidesteps every cell-identity race
//! (two writers racing get-or-insert would duplicate chains; the
//! [`ConcurrentTree`] keeps duplicate keys) at the cost of a husk per
//! ever-written key, reclaimed only by a checkpoint+reopen cycle in the
//! durable wrapper.
//!
//! This is also what makes the Gapped layout's filler copies safe: a
//! gapped leaf fills its gap slots with *clones* of the nearest live
//! right neighbour's value — for an MVCC tree that is an `Arc` clone
//! aliasing the same chain, never a deep copy of the versions. GC
//! through any alias prunes the one shared chain, so a filler can never
//! resurrect a version the collector reclaimed (pinned by
//! `gc_vs_gapped_fillers` below against both layouts).

use crate::sync::Mutex;
use crate::{ConcConfig, ConcurrentTree};
use quit_core::Key;
use std::ops::RangeBounds;
use std::sync::Arc;
use std::sync::MutexGuard;

/// Stripe count for the per-key write locks — same 64-way sizing as
/// `quit-durability`'s shared-path ordering stripes (PR 5), which this
/// lock manager is seeded from.
const STRIPES: usize = 64;

/// One key's version history, newest-first. `None` values are delete
/// tombstones.
#[derive(Debug, Default)]
pub struct VersionChain<V> {
    /// `(commit_ts, value)` pairs, strictly decreasing in `commit_ts`.
    versions: Vec<(u64, Option<V>)>,
}

impl<V: Clone> VersionChain<V> {
    /// The newest version visible at snapshot `s`, if it is a live value.
    fn read_at(&self, s: u64) -> Option<V> {
        self.versions
            .iter()
            .find(|(ts, _)| *ts <= s)
            .and_then(|(_, v)| v.clone())
    }

    /// Commit timestamp of the newest version, GC'd or not.
    fn latest_ts(&self) -> Option<u64> {
        self.versions.first().map(|(ts, _)| *ts)
    }

    /// Drops every version a reader at or above `watermark` can no longer
    /// reach: all versions strictly older than the newest one with
    /// `commit_ts <= watermark` — and that newest one too when it is a
    /// tombstone (a reader that would have found it now finds nothing,
    /// which reads identically). Returns how many versions were dropped.
    fn prune(&mut self, watermark: u64) -> usize {
        let Some(split) = self.versions.iter().position(|(ts, _)| *ts <= watermark) else {
            return 0;
        };
        let keep = if self.versions[split].1.is_some() {
            split + 1
        } else {
            split
        };
        let dropped = self.versions.len() - keep;
        self.versions.truncate(keep);
        dropped
    }
}

/// A shared handle to one key's [`VersionChain`] — the value type
/// [`MvccTree`] stores in its [`ConcurrentTree`]. Cloning is an `Arc`
/// clone: every alias (including Gapped-layout filler copies) sees the
/// same chain.
pub struct VersionCell<V>(Arc<Mutex<VersionChain<V>>>);

impl<V> Clone for VersionCell<V> {
    fn clone(&self) -> Self {
        VersionCell(Arc::clone(&self.0))
    }
}

impl<V> VersionCell<V> {
    fn new() -> Self {
        VersionCell(Arc::new(Mutex::new(VersionChain {
            versions: Vec::new(),
        })))
    }
}

/// A guard set over the write stripes covering one transaction's keys,
/// acquired in stripe order (deadlock-free) by [`MvccTree::lock_keys`].
/// Dropping it releases every stripe.
pub struct StripeGuards<'a> {
    #[allow(dead_code)] // held for its drop side effect
    guards: Vec<MutexGuard<'a, ()>>,
}

/// A multi-version [`ConcurrentTree`]: keys map to version chains, reads
/// are snapshot reads, writes are timestamped appends. See the module
/// docs for the visibility rule and locking contract.
///
/// This type is mechanism, not policy: it does not allocate timestamps,
/// detect conflicts, or log. `quit-durability`'s `TxnStore` layers the
/// transaction protocol (snapshot/commit timestamps, first-committer-wins
/// validation, WAL commit groups, GC scheduling) on top of exactly this
/// API.
pub struct MvccTree<K: Key, V: Clone> {
    tree: ConcurrentTree<K, VersionCell<V>>,
    stripes: Box<[Mutex<()>]>,
}

impl<K: Key, V: Clone> MvccTree<K, V> {
    /// An empty multi-version tree with the given inner-tree
    /// configuration (layout, search kind, OLC on/off all apply).
    pub fn new(config: ConcConfig) -> Self {
        MvccTree {
            tree: ConcurrentTree::new(config),
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Bulk-builds from `(key, commit_ts, value)` entries in key order —
    /// the recovery path: each key gets a single-version chain. Rides the
    /// inner tree's sorted-run batch fast path.
    pub fn bulk_load(config: ConcConfig, entries: Vec<(K, u64, V)>) -> Self {
        use quit_core::SortedIndex;
        let mut this = Self::new(config);
        let cells: Vec<(K, VersionCell<V>)> = entries
            .into_iter()
            .map(|(k, ts, v)| {
                let cell = VersionCell::new();
                cell.0.lock().versions.push((ts, Some(v)));
                (k, cell)
            })
            .collect();
        this.tree.insert_batch(&cells);
        this
    }

    /// The stripe index covering `key` — `to_ikr`-based, identical in
    /// shape to `quit-durability`'s shared-path stripe hash so equal keys
    /// always collide and `f64`'s two zeros normalize alike.
    fn stripe_of(&self, key: K) -> usize {
        let ikr = key.to_ikr();
        let mut h = (if ikr == 0.0 { 0.0 } else { ikr }).to_bits();
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h % self.stripes.len() as u64) as usize
    }

    /// Locks the write stripes covering `keys` — deduplicated and
    /// acquired in ascending stripe order, so any two transactions
    /// acquire their overlapping stripes in the same order and cannot
    /// deadlock. Hold the returned guards across conflict validation,
    /// logging, and [`apply`](Self::apply) of every key in the set.
    pub fn lock_keys(&self, keys: &[K]) -> StripeGuards<'_> {
        let mut idx: Vec<usize> = keys.iter().map(|&k| self.stripe_of(k)).collect();
        idx.sort_unstable();
        idx.dedup();
        StripeGuards {
            guards: idx.into_iter().map(|i| self.stripes[i].lock()).collect(),
        }
    }

    /// Snapshot read: the newest live value with `commit_ts <=
    /// snapshot_ts`. The descent is the tree's ordinary read path (OLC
    /// latch-free when enabled); version resolution happens under the
    /// cell's mutex.
    pub fn read_at(&self, key: K, snapshot_ts: u64) -> Option<V> {
        let cell = self.tree.get(key)?;
        let chain = cell.0.lock();
        chain.read_at(snapshot_ts)
    }

    /// Commit timestamp of the newest version of `key` (live or
    /// tombstone), or `None` if the key was never written or its chain
    /// was fully GC'd. This is the first-committer-wins witness: a
    /// transaction at snapshot `s` writing `key` conflicts iff
    /// `latest_commit_ts(key) > s`.
    pub fn latest_commit_ts(&self, key: K) -> Option<u64> {
        let cell = self.tree.get(key)?;
        let chain = cell.0.lock();
        chain.latest_ts()
    }

    /// Appends a version: `Some(v)` writes, `None` deletes (tombstone).
    /// Returns whether the previous newest version was a live value (the
    /// caller's live-key accounting).
    ///
    /// # Contract
    ///
    /// The caller must hold `key`'s stripe (via
    /// [`lock_keys`](Self::lock_keys)) and must allocate `commit_ts`
    /// *while holding it*, so per-chain timestamps are strictly
    /// increasing — debug-asserted here.
    pub fn apply(&self, key: K, commit_ts: u64, value: Option<V>) -> bool {
        let cell = match self.tree.get(key) {
            Some(c) => c,
            None => {
                // First write to this key. Safe without a get-or-insert
                // CAS: the stripe serializes all writers of this key, so
                // no other thread can be inserting the same key's cell.
                let c = VersionCell::new();
                self.tree.insert(key, c.clone());
                c
            }
        };
        let mut chain = cell.0.lock();
        debug_assert!(
            chain.latest_ts().is_none_or(|ts| ts < commit_ts),
            "per-chain commit timestamps must be strictly increasing"
        );
        let prev_live = chain.versions.first().is_some_and(|(_, v)| v.is_some());
        chain.versions.insert(0, (commit_ts, value));
        prev_live
    }

    /// Reclaims versions no live snapshot can reach: for every chain,
    /// drops everything older than the newest version with `commit_ts <=
    /// watermark` (and that version too if it is a tombstone). The caller
    /// guarantees no reader holds a snapshot below `watermark`. Returns
    /// the number of versions reclaimed.
    pub fn gc(&self, watermark: u64) -> usize {
        let mut reclaimed = 0;
        for (_, cell) in self.tree.range(..) {
            reclaimed += cell.0.lock().prune(watermark);
        }
        reclaimed
    }

    /// Materialized snapshot scan: every `(key, value)` live at
    /// `snapshot_ts` within `bounds`, in key order. Materialized rather
    /// than lazy so the whole scan observes one snapshot regardless of
    /// how long the caller iterates.
    pub fn scan_at<R: RangeBounds<K>>(&self, bounds: R, snapshot_ts: u64) -> Vec<(K, V)> {
        self.tree
            .range(bounds)
            .filter_map(|(k, cell)| cell.0.lock().read_at(snapshot_ts).map(|v| (k, v)))
            .collect()
    }

    /// Every key whose newest version is a live value, as `(key,
    /// commit_ts, value)` in key order — the checkpoint image. Tombstoned
    /// and fully-GC'd keys are omitted: after the WAL rotates, no
    /// post-restart snapshot can predate the checkpoint, so their
    /// history is unreachable by construction.
    pub fn latest_live(&self) -> Vec<(K, u64, V)> {
        self.tree
            .range(..)
            .filter_map(|(k, cell)| {
                let chain = cell.0.lock();
                match chain.versions.first() {
                    Some((ts, Some(v))) => Some((k, *ts, v.clone())),
                    _ => None,
                }
            })
            .collect()
    }

    /// Number of keys ever written (live, tombstoned, and GC-husk cells
    /// alike) — a capacity statistic, not a live-key count; the
    /// transaction layer tracks live keys exactly.
    pub fn keys_ever(&self) -> usize {
        self.tree.len()
    }

    /// Metrics of the underlying tree (fast-path counters, OLC restart
    /// counts, latency histograms per the configured `MetricsLevel`).
    pub fn metrics(&self) -> quit_core::StatsSnapshot {
        self.tree.metrics()
    }

    /// Structural consistency check of the underlying tree plus the MVCC
    /// invariant that every chain's timestamps strictly decrease.
    pub fn check_consistency(&self) -> Result<(), String> {
        self.tree.check_consistency()?;
        for (k, cell) in self.tree.range(..) {
            let chain = cell.0.lock();
            for w in chain.versions.windows(2) {
                if w[0].0 <= w[1].0 {
                    return Err(format!(
                        "non-decreasing version timestamps {} -> {} in a chain (key ikr {})",
                        w[1].0,
                        w[0].0,
                        k.to_ikr()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quit_core::NodeLayoutKind;

    fn tiny(layout: NodeLayoutKind) -> MvccTree<u64, u64> {
        // Tiny leaves force splits (and, for Gapped, filler seeding) with
        // few keys.
        MvccTree::new(
            ConcConfig::paper_default()
                .with_leaf_capacity(8)
                .with_node_layout(layout),
        )
    }

    fn write(t: &MvccTree<u64, u64>, key: u64, ts: u64, v: Option<u64>) -> bool {
        let _g = t.lock_keys(&[key]);
        t.apply(key, ts, v)
    }

    #[test]
    fn visibility_picks_newest_at_or_below_snapshot() {
        let t = tiny(NodeLayoutKind::Dense);
        write(&t, 5, 10, Some(100));
        write(&t, 5, 20, Some(200));
        write(&t, 5, 30, None); // delete
        assert_eq!(t.read_at(5, 9), None);
        assert_eq!(t.read_at(5, 10), Some(100));
        assert_eq!(t.read_at(5, 19), Some(100));
        assert_eq!(t.read_at(5, 20), Some(200));
        assert_eq!(t.read_at(5, 29), Some(200));
        assert_eq!(t.read_at(5, 30), None);
        assert_eq!(t.read_at(5, u64::MAX), None);
        assert_eq!(t.latest_commit_ts(5), Some(30));
        assert_eq!(t.latest_commit_ts(6), None);
        t.check_consistency().unwrap();
    }

    #[test]
    fn apply_reports_previous_liveness() {
        let t = tiny(NodeLayoutKind::Dense);
        assert!(!write(&t, 1, 1, Some(10))); // absent -> live
        assert!(write(&t, 1, 2, Some(11))); // live -> live
        assert!(write(&t, 1, 3, None)); // live -> tombstone
        assert!(!write(&t, 1, 4, Some(12))); // tombstone -> live
    }

    #[test]
    fn gc_prunes_exactly_the_unreachable_suffix() {
        let t = tiny(NodeLayoutKind::Dense);
        for ts in 1..=5u64 {
            write(&t, 7, ts * 10, Some(ts));
        }
        // watermark 35: versions 10,20,30 collapse to just 30.
        assert_eq!(t.gc(35), 2);
        assert_eq!(t.read_at(7, 35), Some(3));
        assert_eq!(t.read_at(7, 40), Some(4));
        assert_eq!(t.read_at(7, u64::MAX), Some(5));
        // Tombstone at the watermark boundary is dropped entirely.
        write(&t, 8, 10, Some(1));
        write(&t, 8, 20, None);
        assert_eq!(t.gc(25), 2);
        assert_eq!(t.read_at(8, 25), None);
        assert_eq!(t.latest_commit_ts(8), None);
        t.check_consistency().unwrap();
    }

    #[test]
    fn scan_at_is_a_point_in_time_image() {
        let t = tiny(NodeLayoutKind::Dense);
        for k in 0..20u64 {
            write(&t, k, 10, Some(k * 100));
        }
        write(&t, 3, 20, None);
        write(&t, 4, 20, Some(999));
        write(&t, 21, 20, Some(1));
        let old = t.scan_at(.., 10);
        assert_eq!(old.len(), 20);
        assert_eq!(old[3], (3, 300));
        assert_eq!(old[4], (4, 400));
        let new = t.scan_at(.., 20);
        assert_eq!(new.len(), 20); // -3, +21
        assert!(!new.iter().any(|&(k, _)| k == 3));
        assert!(new.contains(&(4, 999)));
        assert!(new.contains(&(21, 1)));
        assert_eq!(t.scan_at(5..10, 20).len(), 5);
    }

    /// Satellite: Gapped-layout filler slots clone the neighbouring
    /// cell — an `Arc` alias of the same chain, not a snapshot of its
    /// versions. GC must therefore be visible through every alias, and a
    /// filler must never resurrect a reclaimed version. Pinned against
    /// both layouts so a future deep-copying layout change fails loudly.
    #[test]
    fn gc_vs_gapped_fillers_never_resurrects() {
        for layout in [NodeLayoutKind::Dense, NodeLayoutKind::Gapped] {
            let t = tiny(layout);
            // Random-ish insertion order and enough keys to split leaves
            // repeatedly, seeding gaps (filler clones) under Gapped.
            let mut keys: Vec<u64> = (0..200).map(|i| (i * 37) % 211).collect();
            keys.dedup();
            for (i, &k) in keys.iter().enumerate() {
                write(&t, k, 10 + i as u64, Some(k * 2));
            }
            // Overwrite every key, then GC below the overwrite ts.
            let base = 10_000u64;
            for (i, &k) in keys.iter().enumerate() {
                write(&t, k, base + i as u64, Some(k * 3));
            }
            let reclaimed = t.gc(u64::MAX - 1);
            assert_eq!(reclaimed, keys.len(), "layout {layout:?}");
            // Every read — including ones that land on filler slots
            // inside gapped leaves — must see only the surviving version,
            // at every snapshot.
            for &k in &keys {
                assert_eq!(t.read_at(k, u64::MAX), Some(k * 3), "layout {layout:?}");
                assert_eq!(
                    t.read_at(k, base.saturating_sub(1)),
                    None,
                    "layout {layout:?}: GC'd version resurrected"
                );
            }
            t.check_consistency().unwrap();
        }
    }

    #[test]
    fn lock_keys_is_deadlock_free_across_threads() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let t = Arc::new(tiny(NodeLayoutKind::Dense));
        let ts = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|tid| {
                let t = Arc::clone(&t);
                let ts = Arc::clone(&ts);
                std::thread::spawn(move || {
                    // Overlapping multi-key sets in clashing orders.
                    for i in 0..200u64 {
                        // Overlapping shared keys lock in clashing
                        // orders; each thread writes only its own key.
                        let keys = [i % 7, (i + tid) % 7, 1000 + tid];
                        let _g = t.lock_keys(&keys);
                        let now = ts.fetch_add(1, Ordering::Relaxed) + 1;
                        t.apply(1000 + tid, now, Some(i));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        t.check_consistency().unwrap();
    }
}

//! Minimal lock primitives replacing `parking_lot` (+`arc_lock`), which the
//! offline build environment cannot download — now built around a seqlock
//! version word so the tree can traverse optimistically (§4.5 + OLC).
//!
//! The tree needs five things from its locks:
//! 1. borrowed read/write guards (`RwLock::read` / `RwLock::write`),
//! 2. **Arc-owning** guards that can outlive the binding that produced them
//!    (`write_arc` / `read_arc`), which lock-crabbing relies on to hand a
//!    locked child up the loop while the parent guard drops,
//! 3. a non-blocking `try_write_arc` for the fast path's single-leaf lock,
//! 4. a poison-free `Mutex` for the fast-path metadata,
//! 5. an **optimistic** protocol: read a version, read the data without any
//!    lock, then validate that no writer intervened
//!    ([`RwLock::optimistic_version`] / [`RwLock::validate`]).
//!
//! # Version word
//!
//! `version` packs the whole write-side state into one `AtomicU64`:
//!
//! ```text
//! bit 0      : write-lock bit (odd = a writer is active)
//! bits 1..64 : epoch, incremented once per completed write section
//! ```
//!
//! A writer CASes `even → even+1` (odd) to lock and `fetch_add(1)`s back to
//! even on unlock, so every write section advances the epoch by exactly one.
//! Readers are counted in a separate word; a writer that holds the lock bit
//! waits for the reader count to drain before touching data. Arriving
//! readers back off while the version is odd, which also gives writers
//! priority over reader streams (the old condvar lock could starve writers).
//!
//! The lock-bit/reader-count handshake is a Dekker pattern on two locations
//! (writer: set bit, *then* read count; reader: bump count, *then* read
//! bit), so those four accesses use `SeqCst`. The optimistic validate uses
//! the classic seqlock fence recipe: data reads happen between an `Acquire`
//! load of the version and an `Acquire` fence followed by a re-load. The
//! data reads themselves are word-wise `Relaxed` atomic loads (see
//! `olc::atomic_read`), not plain or volatile loads, so the read side of
//! the race is made of genuine atomics; only the writers' plain stores
//! through `&mut` remain outside the formal model, the residual gray area
//! every production seqlock shares.
//!
//! The lock is not fair, which matches `parking_lot`'s default well enough
//! for the workloads in this repo. The `unsafe` is confined to the
//! `UnsafeCell` accesses in the guards, each justified by the version-word
//! protocol above.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// The write-lock bit of the version word (bit 0; odd version = locked).
const WRITER: u64 = 1;

/// Spin-then-yield backoff for lock acquisition loops. Brief pure spins
/// cover the common sub-microsecond critical sections; after that the
/// thread yields so single-core machines (and oversubscribed runners)
/// let the lock holder finish instead of burning its own quantum.
#[inline]
fn spin_wait(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 16 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// A readers–writer lock with borrowed guards, Arc-owning guards, and an
/// optimistic (lock-free read) protocol on a seqlock version word.
pub struct RwLock<T> {
    /// Lock bit + epoch (see module docs).
    version: AtomicU64,
    /// Active shared holders.
    readers: AtomicU32,
    data: UnsafeCell<T>,
}

// SAFETY: the lock protocol guarantees exclusive access for writers and
// shared access for readers, exactly the contract `RwLock` exists to
// enforce; `T: Send` lets the value move with the lock, and `Sync` access
// from many threads is mediated by the guards.
unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            version: AtomicU64::new(0),
            readers: AtomicU32::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// True when `v` has the write-lock bit set.
    #[inline]
    pub fn is_write_locked_version(v: u64) -> bool {
        v & WRITER != 0
    }

    /// The epoch (completed write sections) encoded in version `v`.
    #[inline]
    pub fn epoch_of(v: u64) -> u64 {
        v >> 1
    }

    /// Begins an optimistic read: returns the current version, or `None`
    /// when a writer is active (the caller should restart or back off).
    ///
    /// Pair with [`RwLock::validate`] after reading data through
    /// [`RwLock::data_ptr`].
    #[inline]
    pub fn optimistic_version(&self) -> Option<u64> {
        let v = self.version.load(Ordering::Acquire);
        (v & WRITER == 0).then_some(v)
    }

    /// Ends an optimistic read: true iff no write section started since
    /// `seen` was returned by [`RwLock::optimistic_version`], i.e. every
    /// unlocked read in between observed a consistent snapshot.
    #[inline]
    pub fn validate(&self, seen: u64) -> bool {
        // Seqlock read-side fence: the data loads issued before this call
        // must complete before the version re-load below.
        fence(Ordering::Acquire);
        self.version.load(Ordering::Relaxed) == seen
    }

    /// Raw pointer to the protected value for optimistic reads.
    ///
    /// Dereferencing is sound only under a guard, or inside an
    /// `optimistic_version`/`validate` bracket using reads that tolerate
    /// concurrent writes (and whose results are discarded when validation
    /// fails).
    #[inline]
    pub fn data_ptr(&self) -> *const T {
        self.data.get()
    }

    /// The current raw version word (diagnostics/tests; racy by nature).
    #[inline]
    pub fn version_raw(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn lock_shared(&self) {
        let mut spins = 0;
        loop {
            // Announce the reader first, then check for a writer (Dekker
            // handshake with `lock_exclusive`, hence SeqCst).
            self.readers.fetch_add(1, Ordering::SeqCst);
            if self.version.load(Ordering::SeqCst) & WRITER == 0 {
                return;
            }
            // A writer is active or draining readers: retreat and wait.
            self.readers.fetch_sub(1, Ordering::SeqCst);
            while self.version.load(Ordering::Relaxed) & WRITER != 0 {
                spin_wait(&mut spins);
            }
        }
    }

    fn lock_exclusive(&self) {
        let mut spins = 0;
        loop {
            let v = self.version.load(Ordering::Relaxed);
            if v & WRITER == 0
                && self
                    .version
                    .compare_exchange_weak(v, v + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
            {
                // Lock bit is ours; wait for in-flight readers to drain.
                let mut drain_spins = 0;
                while self.readers.load(Ordering::SeqCst) != 0 {
                    spin_wait(&mut drain_spins);
                }
                return;
            }
            spin_wait(&mut spins);
        }
    }

    fn try_lock_exclusive(&self) -> bool {
        let v = self.version.load(Ordering::SeqCst);
        if v & WRITER != 0 {
            return false;
        }
        if self
            .version
            .compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        if self.readers.load(Ordering::SeqCst) != 0 {
            // Contended by readers: restore the pre-lock version instead of
            // bumping the epoch (no data was written, so optimistic readers
            // must not be disturbed). Only the lock-bit holder may change
            // the version, so this exchange cannot fail.
            self.version
                .compare_exchange(v + 1, v, Ordering::SeqCst, Ordering::Relaxed)
                .expect("lock-bit holder owns the version word");
            return false;
        }
        true
    }

    fn unlock_shared(&self) {
        self.readers.fetch_sub(1, Ordering::Release);
    }

    fn unlock_exclusive(&self) {
        // odd → even: releases the lock bit and advances the epoch, which
        // invalidates every optimistic read that overlapped this section.
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Acquires shared access for the guard's lifetime.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.lock_shared();
        RwLockReadGuard { lock: self }
    }

    /// Acquires exclusive access for the guard's lifetime.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Acquires shared access through an `Arc`, so the guard keeps the node
    /// alive and is not tied to the borrow of `this`.
    pub fn read_arc(this: &Arc<Self>) -> ArcRwLockReadGuard<T> {
        this.lock_shared();
        ArcRwLockReadGuard { lock: this.clone() }
    }

    /// Exclusive counterpart of [`RwLock::read_arc`].
    pub fn write_arc(this: &Arc<Self>) -> ArcRwLockWriteGuard<T> {
        this.lock_exclusive();
        ArcRwLockWriteGuard { lock: this.clone() }
    }

    /// Non-blocking [`RwLock::write_arc`]; `None` when contended.
    pub fn try_write_arc(this: &Arc<Self>) -> Option<ArcRwLockWriteGuard<T>> {
        this.try_lock_exclusive()
            .then(|| ArcRwLockWriteGuard { lock: this.clone() })
    }
}

impl<T> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never touches `data`: reading it here could deadlock (e.g. Debug
        // on a write-locked node while printing the tree).
        f.write_str("RwLock { .. }")
    }
}

/// Borrowed shared guard. See [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: shared access is held until drop; writers are excluded.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Borrowed exclusive guard. See [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive access is held until drop.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive access is held until drop.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

/// Arc-owning shared guard. See [`RwLock::read_arc`].
pub struct ArcRwLockReadGuard<T> {
    lock: Arc<RwLock<T>>,
}

impl<T> Deref for ArcRwLockReadGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: shared access is held until drop; writers are excluded.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for ArcRwLockReadGuard<T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Arc-owning exclusive guard. See [`RwLock::write_arc`].
pub struct ArcRwLockWriteGuard<T> {
    lock: Arc<RwLock<T>>,
}

impl<T> Deref for ArcRwLockWriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive access is held until drop.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for ArcRwLockWriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive access is held until drop.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for ArcRwLockWriteGuard<T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

/// A poison-free mutex (lock() never returns a `Result`), mirroring the
/// parking_lot API the fast-path metadata uses.
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the mutex, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn exclusive_excludes_everyone() {
        let lock = Arc::new(RwLock::new(0u64));
        let g = RwLock::write_arc(&lock);
        assert!(RwLock::try_write_arc(&lock).is_none());
        drop(g);
        assert!(RwLock::try_write_arc(&lock).is_some());
    }

    #[test]
    fn readers_share_and_block_writers() {
        let lock = Arc::new(RwLock::new(5u64));
        let r1 = RwLock::read_arc(&lock);
        let r2 = lock.read();
        assert_eq!(*r1 + *r2, 10);
        assert!(RwLock::try_write_arc(&lock).is_none());
        drop(r1);
        drop(r2);
        *RwLock::write_arc(&lock) = 6;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn arc_guard_outlives_handle() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let guard = RwLock::write_arc(&lock);
        drop(lock);
        assert_eq!(guard.len(), 3);
    }

    #[test]
    fn contended_counter_stays_consistent() {
        let lock = Arc::new(RwLock::new(0u64));
        let reads = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                });
            }
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let reads = Arc::clone(&reads);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let v = *lock.read();
                        assert!(v <= 4000);
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 4000);
        assert_eq!(reads.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn mutex_ignores_poison() {
        let m = Arc::new(Mutex::new(1u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    // ------------------------------------------------------------------
    // Version word / optimistic protocol
    // ------------------------------------------------------------------

    #[test]
    fn version_word_bit_layout_roundtrip() {
        let lock = RwLock::new(0u64);
        // Fresh lock: even version, epoch 0.
        let v0 = lock.version_raw();
        assert!(!RwLock::<u64>::is_write_locked_version(v0));
        assert_eq!(RwLock::<u64>::epoch_of(v0), 0);
        for n in 1..=5u64 {
            {
                let _g = lock.write();
                // Held: lock bit set, epoch still the pre-lock epoch.
                let held = lock.version_raw();
                assert!(RwLock::<u64>::is_write_locked_version(held));
                assert_eq!(RwLock::<u64>::epoch_of(held), n - 1);
            }
            // Released: lock bit clear, epoch advanced by exactly one —
            // i.e. version == 2 * completed-write-sections.
            let v = lock.version_raw();
            assert!(!RwLock::<u64>::is_write_locked_version(v));
            assert_eq!(RwLock::<u64>::epoch_of(v), n);
            assert_eq!(v, 2 * n);
        }
    }

    #[test]
    fn optimistic_version_refused_while_write_locked() {
        let lock = RwLock::new(7u64);
        assert!(lock.optimistic_version().is_some());
        let g = lock.write();
        assert!(lock.optimistic_version().is_none());
        drop(g);
        assert!(lock.optimistic_version().is_some());
    }

    #[test]
    fn validate_fails_after_writer_unlock() {
        let lock = RwLock::new(1u64);
        let seen = lock.optimistic_version().unwrap();
        assert!(lock.validate(seen), "no writer: still valid");
        *lock.write() = 2;
        assert!(
            !lock.validate(seen),
            "a completed write section must invalidate prior optimistic reads"
        );
        // A fresh bracket sees the new epoch and validates again.
        let seen2 = lock.optimistic_version().unwrap();
        assert!(seen2 > seen);
        assert!(lock.validate(seen2));
    }

    #[test]
    fn failed_try_lock_does_not_disturb_optimistic_readers() {
        let lock = Arc::new(RwLock::new(3u64));
        let seen = lock.optimistic_version().unwrap();
        // A try-lock that aborts on reader contention must roll the version
        // back: no data was written, so the bracket stays valid.
        let r = lock.read();
        assert!(RwLock::try_write_arc(&lock).is_none());
        drop(r);
        assert!(lock.validate(seen));
    }

    #[test]
    fn optimistic_read_bracket_under_contention() {
        // Seqlock smoke test: a writer flips two words in lockstep; readers
        // must never observe a torn pair through a validated bracket.
        let lock = Arc::new(RwLock::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let wl = Arc::clone(&lock);
            let wstop = Arc::clone(&stop);
            s.spawn(move || {
                for i in 1..=20_000u64 {
                    let mut g = wl.write();
                    g.0 = i;
                    g.1 = i * 2;
                    drop(g);
                }
                wstop.store(true, Ordering::Relaxed);
            });
            for _ in 0..2 {
                let rl = Arc::clone(&lock);
                let rstop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut validated = 0u64;
                    loop {
                        if let Some(v) = rl.optimistic_version() {
                            // SAFETY (test): plain reads of two u64s between
                            // version and validate; values are discarded when
                            // validation fails.
                            let pair = unsafe { std::ptr::read_volatile(rl.data_ptr()) };
                            if rl.validate(v) {
                                assert_eq!(pair.1, pair.0 * 2, "torn read validated");
                                validated += 1;
                            }
                        }
                        // Keep reading until at least one bracket validated;
                        // once the writer stopped every bracket succeeds, so
                        // this terminates even if the writer finished before
                        // we were first scheduled (single-core runners).
                        if validated > 0 && rstop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                });
            }
        });
        assert_eq!(*lock.read(), (20_000, 40_000));
    }
}

//! Minimal lock primitives replacing `parking_lot` (+`arc_lock`), which the
//! offline build environment cannot download.
//!
//! The tree needs exactly four things from its locks:
//! 1. borrowed read/write guards (`RwLock::read` / `RwLock::write`),
//! 2. **Arc-owning** guards that can outlive the binding that produced them
//!    (`write_arc` / `read_arc`), which lock-crabbing relies on to hand a
//!    locked child up the loop while the parent guard drops,
//! 3. a non-blocking `try_write_arc` for the fast path's single-leaf lock,
//! 4. a poison-free `Mutex` for the fast-path metadata.
//!
//! The implementation is a classic condvar-based readers–writer lock. It is
//! not fair (writers can starve under a stream of readers), which matches
//! `parking_lot`'s default well enough for the workloads in this repo; the
//! paper's Fig 13 experiment is insert-dominated, so fairness is not on the
//! measured path. The `unsafe` is confined to the `UnsafeCell` accesses in
//! the guards, each justified by the state machine in `LockState`.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

#[derive(Default)]
struct LockState {
    /// Active shared holders.
    readers: usize,
    /// Whether the exclusive holder is active.
    writer: bool,
}

/// A readers–writer lock with borrowed and Arc-owning guards.
pub struct RwLock<T> {
    state: StdMutex<LockState>,
    cond: Condvar,
    data: UnsafeCell<T>,
}

// SAFETY: the lock protocol guarantees exclusive access for writers and
// shared access for readers, exactly the contract `RwLock` exists to
// enforce; `T: Send` lets the value move with the lock, and `Sync` access
// from many threads is mediated by the guards.
unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            state: StdMutex::new(LockState::default()),
            cond: Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    fn state(&self) -> StdMutexGuard<'_, LockState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_shared(&self) {
        let mut s = self.state();
        while s.writer {
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.readers += 1;
    }

    fn lock_exclusive(&self) {
        let mut s = self.state();
        while s.writer || s.readers > 0 {
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.writer = true;
    }

    fn try_lock_exclusive(&self) -> bool {
        let mut s = self.state();
        if s.writer || s.readers > 0 {
            false
        } else {
            s.writer = true;
            true
        }
    }

    fn unlock_shared(&self) {
        let mut s = self.state();
        s.readers -= 1;
        if s.readers == 0 {
            drop(s);
            self.cond.notify_all();
        }
    }

    fn unlock_exclusive(&self) {
        self.state().writer = false;
        self.cond.notify_all();
    }

    /// Acquires shared access for the guard's lifetime.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.lock_shared();
        RwLockReadGuard { lock: self }
    }

    /// Acquires exclusive access for the guard's lifetime.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Acquires shared access through an `Arc`, so the guard keeps the node
    /// alive and is not tied to the borrow of `this`.
    pub fn read_arc(this: &Arc<Self>) -> ArcRwLockReadGuard<T> {
        this.lock_shared();
        ArcRwLockReadGuard { lock: this.clone() }
    }

    /// Exclusive counterpart of [`RwLock::read_arc`].
    pub fn write_arc(this: &Arc<Self>) -> ArcRwLockWriteGuard<T> {
        this.lock_exclusive();
        ArcRwLockWriteGuard { lock: this.clone() }
    }

    /// Non-blocking [`RwLock::write_arc`]; `None` when contended.
    pub fn try_write_arc(this: &Arc<Self>) -> Option<ArcRwLockWriteGuard<T>> {
        this.try_lock_exclusive()
            .then(|| ArcRwLockWriteGuard { lock: this.clone() })
    }
}

impl<T> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never touches `data`: reading it here could deadlock (e.g. Debug
        // on a write-locked node while printing the tree).
        f.write_str("RwLock { .. }")
    }
}

/// Borrowed shared guard. See [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: shared access is held until drop; writers are excluded.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Borrowed exclusive guard. See [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive access is held until drop.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive access is held until drop.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

/// Arc-owning shared guard. See [`RwLock::read_arc`].
pub struct ArcRwLockReadGuard<T> {
    lock: Arc<RwLock<T>>,
}

impl<T> Deref for ArcRwLockReadGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: shared access is held until drop; writers are excluded.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for ArcRwLockReadGuard<T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Arc-owning exclusive guard. See [`RwLock::write_arc`].
pub struct ArcRwLockWriteGuard<T> {
    lock: Arc<RwLock<T>>,
}

impl<T> Deref for ArcRwLockWriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive access is held until drop.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for ArcRwLockWriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive access is held until drop.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for ArcRwLockWriteGuard<T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

/// A poison-free mutex (lock() never returns a `Result`), mirroring the
/// parking_lot API the fast-path metadata uses.
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the mutex, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn exclusive_excludes_everyone() {
        let lock = Arc::new(RwLock::new(0u64));
        let g = RwLock::write_arc(&lock);
        assert!(RwLock::try_write_arc(&lock).is_none());
        drop(g);
        assert!(RwLock::try_write_arc(&lock).is_some());
    }

    #[test]
    fn readers_share_and_block_writers() {
        let lock = Arc::new(RwLock::new(5u64));
        let r1 = RwLock::read_arc(&lock);
        let r2 = lock.read();
        assert_eq!(*r1 + *r2, 10);
        assert!(RwLock::try_write_arc(&lock).is_none());
        drop(r1);
        drop(r2);
        *RwLock::write_arc(&lock) = 6;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn arc_guard_outlives_handle() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let guard = RwLock::write_arc(&lock);
        drop(lock);
        assert_eq!(guard.len(), 3);
    }

    #[test]
    fn contended_counter_stays_consistent() {
        let lock = Arc::new(RwLock::new(0u64));
        let reads = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                });
            }
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let reads = Arc::clone(&reads);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let v = *lock.read();
                        assert!(v <= 4000);
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 4000);
        assert_eq!(reads.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn mutex_ignores_poison() {
        let m = Arc::new(Mutex::new(1u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}

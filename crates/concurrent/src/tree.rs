//! The concurrent QuIT / B+-tree (§4.5) with optimistic lock coupling.
//!
//! * **Reads and insert descents** are optimistic by default (OLC): every
//!   node lock carries a seqlock version word; the descent reads node
//!   contents without latching, validating child-then-parent versions
//!   hand-over-hand. For plain-data values (no drop glue) `get` is fully
//!   latch-free (the leaf value is copied and validated, never locked);
//!   heap-owning values descend latch-free but re-read the leaf under its
//!   shared latch, because a validated byte snapshot must not be cloned
//!   once a concurrent delete may have dropped the original (see
//!   `olc::leaf_get`). Inserts latch only the target leaf and
//!   re-validate via the leaf's own separator bounds. A conflicting writer
//!   triggers a restart with bounded exponential backoff; when the budget
//!   (`ConcConfig::olc_max_restarts`) is exhausted the operation falls back
//!   to the pessimistic paths below. Restarts and fallbacks are counted in
//!   [`quit_core::Stats::olc_restarts`] / `olc_fallbacks`.
//! * **Structural writes** (splits) use classical pessimistic lock-crabbing:
//!   descend with write locks, releasing all ancestors as soon as the
//!   current node is *safe* (cannot split). Only the ancestors that may be
//!   modified stay locked. Write unlocks bump the version word, which is
//!   what invalidates overlapping optimistic brackets.
//! * **Pessimistic reads** (OLC off, or fallback) use shared-lock crabbing:
//!   lock child, release parent.
//! * **Fast path**: a dedicated mutex guards the poℓe metadata. An insert
//!   first consults it; if the key is covered and the poℓe leaf is not
//!   full, one `try_lock` on that single leaf replaces the whole descent —
//!   the short critical section behind Fig 13's scaling advantage. The
//!   insert is validated against the leaf's own separator bounds (stored in
//!   the leaf, maintained at split time), so stale metadata can only cost a
//!   missed fast-insert, never a misplaced key. The poℓe `try_lock`
//!   composes with OLC unchanged: it is a real write lock, so it bumps the
//!   version like any other write section.
//!
//! poℓe maintenance follows Algorithm 1 (IKR-guided promotion on split) plus
//! the §4.3 reset strategy. The single-threaded-only refinements (variable
//! split, redistribution, catch-up) are intentionally omitted here: they
//! require multi-node lock choreography that the paper does not specify, and
//! they affect space, not the concurrency behaviour Fig 13 measures.

use crate::node::{CNode, NodeRef};
use crate::olc::{self, LeafRead, Routed, Target};
use crate::sync::{ArcRwLockReadGuard, ArcRwLockWriteGuard, Mutex, RwLock};
use quit_core::{
    ikr_bound, Key, MetricsLevel, MetricsRegistry, NodeLayoutKind, SearchKind, SlotInsert, Stats,
    StatsSnapshot, StorageKind,
};
use std::ops::{Bound, RangeBounds};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

type WriteGuard<K, V> = ArcRwLockWriteGuard<CNode<K, V>>;

/// Configuration of the concurrent tree, mirroring `quit-core`'s
/// [`quit_core::TreeConfig`] naming: `paper_default()` / `small(cap)`
/// constructors plus `with_*` builder overrides.
#[derive(Debug, Clone)]
pub struct ConcConfig {
    /// Maximum entries per leaf.
    pub leaf_capacity: usize,
    /// Maximum separator keys per internal node.
    pub internal_capacity: usize,
    /// IKR scale (Eq. 2).
    pub ikr_scale: f64,
    /// Enable the poℓe fast path (off ⇒ plain concurrent B+-tree).
    pub pole_enabled: bool,
    /// Consecutive top-inserts before the fast path resets (`T_R` in §4.3).
    /// `None` disables the reset strategy.
    pub reset_threshold: Option<usize>,
    /// How much telemetry the tree records (same semantics as
    /// [`quit_core::TreeConfig::metrics_level`]). All counters are exact
    /// under concurrency at every level.
    pub metrics_level: MetricsLevel,
    /// Enable optimistic lock coupling for `get`/`range`/insert descents
    /// (off ⇒ pessimistic lock-crabbing everywhere, the pre-OLC behaviour).
    pub olc_enabled: bool,
    /// Restarts an optimistic operation tolerates before falling back to
    /// the pessimistic path (the exponential-backoff budget).
    pub olc_max_restarts: u32,
    /// Physical leaf layout (same semantics as
    /// [`quit_core::TreeConfig::node_layout`]): `Dense` is the bit-for-bit
    /// paper path, `Gapped` absorbs near-sorted inserts without shifting.
    pub node_layout: NodeLayoutKind,
    /// Intra-node search strategy for latched reads and writes (the
    /// latch-free OLC descent always uses the branchless scalar search —
    /// SIMD loads must not race writers).
    pub search_kind: SearchKind,
    /// Node storage backend (same semantics as
    /// [`quit_core::TreeConfig::storage`]). The concurrent tree itself
    /// runs only [`StorageKind::Arena`] — its optimistic readers hold raw
    /// node pointers that a buffer pool could evict from under them —
    /// so construction rejects `Paged`; the knob exists so one config type
    /// can describe a whole deployment and so callers get a *typed*
    /// rejection instead of silently falling back to the arena. For paged
    /// storage, use the single-writer `BpTree` via
    /// `quit_durability::Durable::open_paged`.
    pub storage: StorageKind,
}

/// Default optimistic restart budget. Backoff doubles per restart, so the
/// budget bounds the worst-case optimistic latency at well under a
/// millisecond before the operation falls back to pessimistic crabbing.
const DEFAULT_OLC_MAX_RESTARTS: u32 = 12;

impl ConcConfig {
    /// Paper-default geometry: 510-entry nodes, IKR scale 1.5, poℓe fast
    /// path on, `T_R = ⌊√510⌋ = 22`.
    pub fn paper_default() -> Self {
        ConcConfig {
            leaf_capacity: 510,
            internal_capacity: 510,
            ikr_scale: 1.5,
            pole_enabled: true,
            reset_threshold: Some(Self::default_reset_threshold(510)),
            metrics_level: MetricsLevel::default(),
            olc_enabled: true,
            olc_max_restarts: DEFAULT_OLC_MAX_RESTARTS,
            node_layout: NodeLayoutKind::Dense,
            search_kind: SearchKind::Binary,
            storage: StorageKind::Arena,
        }
    }

    /// A small geometry that forces frequent splits; used heavily in tests.
    pub fn small(leaf_capacity: usize) -> Self {
        ConcConfig {
            leaf_capacity,
            internal_capacity: leaf_capacity.max(4),
            ikr_scale: 1.5,
            pole_enabled: true,
            reset_threshold: Some(Self::default_reset_threshold(leaf_capacity)),
            metrics_level: MetricsLevel::default(),
            olc_enabled: true,
            olc_max_restarts: DEFAULT_OLC_MAX_RESTARTS,
            node_layout: NodeLayoutKind::Dense,
            search_kind: SearchKind::Binary,
            storage: StorageKind::Arena,
        }
    }

    /// `T_R = ⌊√leaf_capacity⌋`, the paper's balanced reset trigger.
    pub fn default_reset_threshold(leaf_capacity: usize) -> usize {
        ((leaf_capacity as f64).sqrt().floor() as usize).max(1)
    }

    /// Set the leaf capacity, keeping the internal capacity and reset
    /// threshold in sync (same semantics as `TreeConfig::with_leaf_capacity`).
    ///
    /// "In sync" only touches values still at their derived defaults: an
    /// internal capacity or reset threshold you overrode explicitly is
    /// preserved whether the override came *before or after* this call,
    /// so builder chains compose in any order.
    pub fn with_leaf_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 2, "leaf capacity must be at least 2");
        let old = self.leaf_capacity;
        self.leaf_capacity = cap;
        if self.internal_capacity == old.max(4) {
            self.internal_capacity = cap.max(4);
        }
        if self.reset_threshold == Some(Self::default_reset_threshold(old)) {
            self.reset_threshold = Some(Self::default_reset_threshold(cap));
        }
        self
    }

    /// Builder-style override of the internal-node key capacity alone.
    pub fn with_internal_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 3, "internal capacity must be at least 3");
        self.internal_capacity = cap;
        self
    }

    /// Builder-style toggle of the poℓe fast path.
    pub fn with_pole(mut self, enabled: bool) -> Self {
        self.pole_enabled = enabled;
        self
    }

    /// Builder-style override of the IKR scale.
    pub fn with_ikr_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "IKR scale must be positive");
        self.ikr_scale = scale;
        self
    }

    /// Builder-style override of the reset threshold (`None` disables reset).
    pub fn with_reset_threshold(mut self, t: Option<usize>) -> Self {
        self.reset_threshold = t;
        self
    }

    /// Builder-style override of the telemetry level.
    pub fn with_metrics_level(mut self, level: MetricsLevel) -> Self {
        self.metrics_level = level;
        self
    }

    /// Builder-style toggle of optimistic lock coupling.
    pub fn with_olc(mut self, enabled: bool) -> Self {
        self.olc_enabled = enabled;
        self
    }

    /// Builder-style override of the optimistic restart budget.
    pub fn with_olc_max_restarts(mut self, budget: u32) -> Self {
        self.olc_max_restarts = budget;
        self
    }

    /// Builder-style override of the physical leaf layout (mirrors
    /// [`quit_core::TreeConfig::with_node_layout`]).
    pub fn with_node_layout(mut self, layout: NodeLayoutKind) -> Self {
        self.node_layout = layout;
        self
    }

    /// Builder-style override of the intra-node search strategy (mirrors
    /// [`quit_core::TreeConfig::with_search_kind`]).
    pub fn with_search_kind(mut self, kind: SearchKind) -> Self {
        self.search_kind = kind;
        self
    }

    /// Builder-style override of the storage backend (mirrors
    /// [`quit_core::TreeConfig::with_storage`]). See the field docs for
    /// why [`ConcurrentTree`] construction rejects [`StorageKind::Paged`].
    pub fn with_storage(mut self, storage: StorageKind) -> Self {
        self.storage = storage;
        self
    }

    /// Panics if the configuration is internally inconsistent (same
    /// contract as `TreeConfig::assert_valid`).
    pub fn assert_valid(&self) {
        assert!(self.leaf_capacity >= 2, "leaf capacity must be >= 2");
        assert!(
            self.internal_capacity >= 3,
            "internal capacity must be >= 3"
        );
        assert!(self.ikr_scale > 0.0, "IKR scale must be positive");
        if let StorageKind::Paged {
            pool_pages,
            page_size,
        } = self.storage
        {
            assert!(pool_pages >= 2, "pool must hold at least 2 pages");
            assert!(page_size >= 64, "page size must be at least 64 bytes");
        }
    }
}

impl Default for ConcConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// poℓe metadata, guarded by one mutex (the "lock on the fast-path
/// metadata" of §4.5).
struct ConcFp<K, V> {
    leaf: Option<NodeRef<K, V>>,
    min: Option<K>,
    max: Option<K>,
    /// `q`: smallest key of the poℓe at the time it was (re)pointed.
    q: Option<K>,
    prev_min: Option<K>,
    prev_size: usize,
    fails: usize,
}

/// A thread-safe sortedness-aware B+-tree.
pub struct ConcurrentTree<K, V> {
    root: RwLock<NodeRef<K, V>>,
    config: ConcConfig,
    fp: Mutex<ConcFp<K, V>>,
    /// Shared observability substrate — the same [`MetricsRegistry`] type
    /// `quit-core`'s trees use; every update here takes the `_shared`
    /// (`fetch_add`) flavour so counters are exact under concurrency.
    metrics: MetricsRegistry,
    len: AtomicUsize,
    /// Buffers swapped out when a uniform-key leaf outgrows its pinned
    /// reservation (the absorb-overflow case). Optimistic readers may still
    /// hold raw pointers into the old allocations, so they are kept alive
    /// here until the tree drops (geometric growth bounds the waste; the
    /// case itself needs a leaf full of one repeated key).
    retired: Mutex<Vec<(Vec<K>, Vec<V>)>>,
}

impl<K: Key, V: Clone> ConcurrentTree<K, V> {
    /// An empty tree. Panics on a [`StorageKind::Paged`] config: the
    /// optimistic readers hold raw node pointers a buffer pool could evict
    /// from under them (fallible openers like
    /// `quit_durability::TxnStore::open` surface the same restriction as a
    /// `config` error instead).
    pub fn new(config: ConcConfig) -> Self {
        assert!(config.leaf_capacity >= 2 && config.internal_capacity >= 3);
        assert!(
            matches!(config.storage, StorageKind::Arena),
            "ConcurrentTree supports only StorageKind::Arena; for paged \
             storage use the single-writer BpTree (Durable::open_paged)"
        );
        let root = CNode::empty_leaf(config.leaf_capacity).into_ref();
        let fp = ConcFp {
            leaf: config.pole_enabled.then(|| root.clone()),
            min: None,
            max: None,
            q: None,
            prev_min: None,
            prev_size: 0,
            fails: 0,
        };
        let metrics = MetricsRegistry::new(config.metrics_level);
        ConcurrentTree {
            root: RwLock::new(root),
            config,
            fp: Mutex::new(fp),
            metrics,
            len: AtomicUsize::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Entries in the tree.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters — the same [`Stats`] block `quit-core` trees
    /// expose, so harness code reads one vocabulary across families.
    pub fn stats(&self) -> &Stats {
        &self.metrics.counters
    }

    /// The full metrics registry: counters, latency histograms, and the
    /// fast-path window.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Point-in-time snapshot of everything the registry records.
    pub fn metrics(&self) -> StatsSnapshot {
        self.metrics.snapshot()
    }

    /// Fraction of the most recent inserts that took the fast path — the
    /// live sortedness signal (approximate under concurrent writers; the
    /// counter totals are exact).
    pub fn recent_fastpath_rate(&self) -> f64 {
        self.metrics.recent_fastpath_rate()
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts an entry (thread-safe).
    pub fn insert(&self, key: K, value: V) {
        let t0 = self.metrics.op_timer();
        let (value, count_as_fast) = if self.config.pole_enabled {
            match self.try_fast_insert(key, value) {
                FastAttempt::Done => {
                    self.metrics.record_insert_latency(t0);
                    return;
                }
                // Covered key, full poℓe: the paper splits through fp_path
                // and still accounts this as a fast-path insert; we crab
                // from the root but preserve the accounting.
                FastAttempt::PoleFull(v) => (v, true),
                FastAttempt::NotCovered(v) | FastAttempt::Busy(v) => (v, false),
            }
        } else {
            (value, false)
        };
        // Optimistic descent first (unless this insert is already known to
        // split — `count_as_fast` implies a full poℓe leaf — or OLC is
        // off). The OLC path hands back the value when the target leaf
        // turns out to need a split, or when the restart budget runs out.
        let value = if self.config.olc_enabled && !count_as_fast {
            match self.insert_olc(key, value) {
                Ok(()) => {
                    self.metrics.record_insert_latency(t0);
                    return;
                }
                Err(v) => v,
            }
        } else {
            value
        };
        self.top_insert(key, value, count_as_fast);
        self.metrics.record_insert_latency(t0);
    }

    /// Optimistic insert: latch-free descent, then a write lock on the
    /// target leaf only, re-validated through the leaf's own separator
    /// bounds (which partition the key space, so covering the key proves
    /// this is *the* leaf regardless of what happened during the descent).
    ///
    /// `Err(value)` returns ownership when the pessimistic path must take
    /// over: the leaf is full (split required) or the restart budget is
    /// exhausted.
    fn insert_olc(&self, key: K, value: V) -> Result<(), V> {
        let mut restarts = 0u32;
        loop {
            if restarts > 0 {
                self.metrics.counters.olc_restarts.bump_shared();
                if restarts > self.config.olc_max_restarts {
                    self.metrics.counters.olc_fallbacks.bump_shared();
                    return Err(value);
                }
                olc_backoff(restarts);
            }
            let Some(leaf) = self.descend_olc(Target::Key(key)) else {
                restarts += 1;
                continue;
            };
            let mut g = RwLock::write_arc(&leaf);
            let CNode::Leaf {
                keys,
                vals,
                gaps,
                low,
                high,
                ..
            } = &mut *g
            else {
                unreachable!("descend_olc ends at a leaf");
            };
            let in_range = low.is_none_or(|b| key >= b) && high.is_none_or(|b| key < b);
            if !in_range {
                // The leaf split (or we were misrouted) between the
                // optimistic read and the latch: restart from the root.
                drop(g);
                restarts += 1;
                continue;
            }
            if keys.len() - gaps.count() >= self.config.leaf_capacity {
                drop(g);
                return Err(value);
            }
            match quit_core::insert_at(
                self.config.search_kind,
                keys,
                vals,
                gaps,
                key,
                value,
                self.config.leaf_capacity,
            ) {
                SlotInsert::Done(_) => {}
                SlotInsert::Full => unreachable!("live occupancy checked above"),
            }
            let (target_low, target_high) = (*low, *high);
            let target_len = keys.len();
            drop(g);
            self.len.fetch_add(1, Ordering::Relaxed);
            self.metrics.counters.top_inserts.bump_shared();
            self.metrics.record_insert_outcome_shared(false);
            if self.config.pole_enabled {
                self.update_pole_after_top_insert(
                    key,
                    None,
                    leaf,
                    target_low,
                    target_high,
                    target_len,
                );
            }
            return Ok(());
        }
    }

    /// One optimistic descent to the leaf responsible for `target`,
    /// cloning `Arc` handles level by level (used by insert and range,
    /// which need an owned leaf handle). `None` = a conflict; the caller
    /// counts the restart and retries or falls back.
    fn descend_olc(&self, target: Target<K>) -> Option<NodeRef<K, V>> {
        let mut node = olc::root_arc(&self.root)?;
        let mut v = node.optimistic_version()?;
        loop {
            match olc::route_step_arc(&node, v, target) {
                Ok(Routed::Child(child, cv)) => {
                    node = child;
                    v = cv;
                }
                Ok(Routed::Leaf) => return Some(node),
                Err(_) => return None,
            }
        }
    }

    /// The short-critical-section path: metadata mutex, then a single
    /// `try_lock` on the poℓe leaf.
    fn try_fast_insert(&self, key: K, value: V) -> FastAttempt<V> {
        let mut fp = self.fp.lock();
        let covered =
            fp.leaf.is_some() && fp.min.is_none_or(|m| key >= m) && fp.max.is_none_or(|m| key < m);
        if !covered {
            return FastAttempt::NotCovered(value);
        }
        let leaf = fp.leaf.clone().expect("covered implies leaf");
        let Some(mut g) = RwLock::try_write_arc(&leaf) else {
            return FastAttempt::Busy(value);
        };
        let CNode::Leaf {
            keys,
            vals,
            gaps,
            low,
            high,
            ..
        } = &mut *g
        else {
            return FastAttempt::NotCovered(value);
        };
        // Authoritative validation against the leaf's own bounds.
        let in_range = low.is_none_or(|b| key >= b) && high.is_none_or(|b| key < b);
        if !in_range {
            return FastAttempt::NotCovered(value);
        }
        if keys.len() - gaps.count() >= self.config.leaf_capacity {
            return FastAttempt::PoleFull(value);
        }
        match quit_core::insert_at(
            self.config.search_kind,
            keys,
            vals,
            gaps,
            key,
            value,
            self.config.leaf_capacity,
        ) {
            SlotInsert::Done(_) => {}
            SlotInsert::Full => unreachable!("live occupancy checked above"),
        }
        if fp.q.is_none_or(|q| key < q) {
            fp.q = Some(key);
        }
        fp.fails = 0;
        drop(g);
        self.len.fetch_add(1, Ordering::Relaxed);
        self.metrics.counters.fast_inserts.bump_shared();
        self.metrics.record_insert_outcome_shared(true);
        FastAttempt::Done
    }

    fn node_unsafe_for_insert(&self, n: &CNode<K, V>) -> bool {
        match n {
            // Live occupancy: a gapped leaf with free fillers can still
            // absorb the insert without splitting.
            CNode::Leaf { keys, gaps, .. } => {
                keys.len() - gaps.count() >= self.config.leaf_capacity
            }
            CNode::Internal { keys, .. } => keys.len() >= self.config.internal_capacity,
        }
    }

    /// Full crabbing insert. `count_as_fast` preserves the paper's
    /// accounting for covered-but-full poℓe inserts.
    fn top_insert(&self, key: K, value: V, count_as_fast: bool) {
        // Lock the root pointer; it plays the role of the root's parent and
        // is released as soon as any node on the path is safe.
        let mut root_guard = Some(self.root.write());
        let mut current: NodeRef<K, V> = (**root_guard.as_ref().expect("held")).clone();
        let mut guard: WriteGuard<K, V> = RwLock::write_arc(&current);
        if !self.node_unsafe_for_insert(&guard) {
            root_guard = None;
        }
        let mut path: Vec<(NodeRef<K, V>, WriteGuard<K, V>)> = Vec::new();
        loop {
            let child = match &*guard {
                CNode::Leaf { .. } => break,
                CNode::Internal { keys, children } => {
                    let i = quit_core::search_internal(self.config.search_kind, keys, key);
                    children[i].clone()
                }
            };
            let child_guard = RwLock::write_arc(&child);
            let safe = !self.node_unsafe_for_insert(&child_guard);
            path.push((current, guard));
            current = child;
            guard = child_guard;
            if safe {
                path.clear();
                root_guard = None;
            }
        }

        // `guard` is the leaf; `path` holds exactly the ancestors that may
        // change; `root_guard` is held iff the whole path may split.
        let mut leaf_split: Option<PoleSplitEvent<K, V>> = None;
        let mut target_arc = current.clone();
        if self.node_unsafe_for_insert(&guard) {
            match self.split_leaf(&mut guard) {
                Some((right_arc, sep, left_len, q)) => {
                    self.metrics.counters.leaf_splits.bump_shared();
                    leaf_split = Some(PoleSplitEvent {
                        left: current.clone(),
                        right: right_arc.clone(),
                        sep,
                        left_len,
                        q,
                    });
                    if key >= sep {
                        // Move to the new right node: lock it (nobody else can
                        // reach it yet through the tree, but scans via `next`
                        // can).
                        let right_guard = RwLock::write_arc(&right_arc);
                        target_arc = right_arc.clone();
                        guard = right_guard;
                    }
                    self.propagate_split(path, root_guard, sep, right_arc);
                }
                None => {
                    // Uniform-key leaf: no legal separator exists, so the
                    // leaf absorbs the overflow. A later differing key
                    // re-opens a boundary and the next insert splits.
                    drop(path);
                    drop(root_guard);
                }
            }
        } else {
            drop(path);
            drop(root_guard);
        }

        if let CNode::Leaf {
            keys, vals, gaps, ..
        } = &mut *guard
        {
            if keys.len() - gaps.count() >= self.config.leaf_capacity {
                // Absorb-overflow (uniform-key leaf that cannot split, so
                // `split_leaf` returned `None`): such a leaf is dense —
                // gaps only exist below live capacity — and grows
                // physically past the configured capacity.
                debug_assert!(gaps.is_dense(), "overfull leaves are dense");
                if keys.len() == keys.capacity() {
                    // Growth past the pinned reservation: optimistic
                    // readers may hold raw pointers into the current
                    // buffers, so swap in doubled buffers and retire the
                    // old allocations instead of reallocating.
                    let mut new_keys = Vec::with_capacity(keys.capacity() * 2);
                    let mut new_vals = Vec::with_capacity(vals.capacity().max(1) * 2);
                    new_keys.append(keys);
                    new_vals.append(vals);
                    let old_keys = std::mem::replace(keys, new_keys);
                    let old_vals = std::mem::replace(vals, new_vals);
                    self.retired.lock().push((old_keys, old_vals));
                }
                let pos = quit_core::upper_bound(self.config.search_kind, keys, key);
                keys.insert(pos, key);
                vals.insert(pos, value);
            } else {
                // In-capacity insert: gap-aware, bounded shift. `insert_at`
                // never grows the physical array past `leaf_capacity`
                // (at physical capacity it reuses a gap or reports full),
                // so the pinned `capacity + 1` reservation never reallocates.
                match quit_core::insert_at(
                    self.config.search_kind,
                    keys,
                    vals,
                    gaps,
                    key,
                    value,
                    self.config.leaf_capacity,
                ) {
                    SlotInsert::Done(_) => {}
                    SlotInsert::Full => unreachable!("live occupancy checked above"),
                }
            }
        } else {
            unreachable!("descent ends at a leaf");
        }
        let (target_low, target_high) = match &*guard {
            CNode::Leaf { low, high, .. } => (*low, *high),
            _ => unreachable!(),
        };
        let target_len = guard.len();
        drop(guard);
        self.len.fetch_add(1, Ordering::Relaxed);
        if count_as_fast {
            self.metrics.counters.fast_inserts.bump_shared();
        } else {
            self.metrics.counters.top_inserts.bump_shared();
        }
        self.metrics.record_insert_outcome_shared(count_as_fast);

        if self.config.pole_enabled {
            self.update_pole_after_top_insert(
                key,
                leaf_split,
                target_arc,
                target_low,
                target_high,
                target_len,
            );
        }
    }

    /// Splits the write-locked leaf near the midpoint; returns the new right
    /// node, the separator, the left node's remaining size, and its smallest
    /// key.
    ///
    /// The cut is placed at the strict key boundary nearest the midpoint so
    /// a duplicate run never straddles the separator: routing sends
    /// `key == sep` right, so every instance of a key must live right of any
    /// separator equal to it, and separators stay strictly ascending in the
    /// parents. A leaf holding a single repeated key has no legal cut and
    /// returns `None` — the caller lets it absorb the overflow (the lazy
    /// trade-off for duplicate-heavy runs, mirroring lazy deletes).
    fn split_leaf(&self, guard: &mut WriteGuard<K, V>) -> Option<(NodeRef<K, V>, K, usize, K)> {
        let CNode::Leaf {
            keys,
            vals,
            gaps,
            next,
            high,
            ..
        } = &mut **guard
        else {
            unreachable!("split_leaf on a leaf");
        };
        // Splits only run at live == capacity, which forces zero gaps, so
        // physical slot indices below are live indices.
        debug_assert!(gaps.is_dense(), "split target must be dense (full)");
        let mid = keys.len() / 2;
        let cut = (mid..keys.len())
            .find(|&m| keys[m - 1] < keys[m])
            .or_else(|| (1..mid).rev().find(|&m| keys[m - 1] < keys[m]))?;
        // Drain into pre-pinned buffers (no `split_off`: the left node's
        // buffers must never reallocate under optimistic readers, and the
        // right node's must start at their pinned reservation). A leaf that
        // absorbed uniform-key overflow can carry more than the pinned
        // reservation into the split; size for that plus one insert.
        let pinned = self
            .config
            .leaf_capacity
            .max(keys.len().saturating_sub(cut) + 1);
        let (mut right_keys, mut right_vals) = CNode::leaf_buffers(pinned);
        right_keys.extend(keys.drain(cut..));
        right_vals.extend(vals.drain(cut..));
        let mut right_gaps = quit_core::GapMap::new();
        let sep = right_keys[0];
        let q = keys[0];
        if self.config.node_layout == NodeLayoutKind::Gapped {
            // Gap placement from the IKR prediction (mirrors the core
            // tree): the left node's prefix is frozen in-order history;
            // stragglers of a near-sorted stream land just below the
            // separator, so spread `⌊√cap⌋` fillers over its upper half.
            // `regap` caps the physical length at `leaf_capacity`, within
            // the pinned `capacity + 1` reservation — no reallocation
            // under optimistic readers. The right (poℓe) node grows by
            // appends and needs no gaps.
            let cap = self.config.leaf_capacity;
            let want = (cap as f64).sqrt().floor() as usize;
            let region = keys.len() / 2;
            quit_core::regap(keys, vals, gaps, region, want, cap);
            // Interior right nodes take straggler traffic too; the
            // rightmost leaf (`high == None`) is the append frontier and
            // must stay dense so the in-order stream keeps its push fast
            // path. Seeding happens before publication, so the buffers
            // settle within their pinned reservation (`regap` never grows
            // past `leaf_capacity`) before any reader can see them.
            if high.is_some() {
                quit_core::regap(
                    &mut right_keys,
                    &mut right_vals,
                    &mut right_gaps,
                    0,
                    want,
                    cap,
                );
            }
        }
        let right = CNode::Leaf {
            keys: right_keys,
            vals: right_vals,
            gaps: right_gaps,
            next: next.take(),
            low: Some(sep),
            high: *high,
        }
        .into_ref();
        *next = Some(right.clone());
        *high = Some(sep);
        Some((right, sep, cut, q))
    }

    /// Installs `(sep, right)` into the locked ancestors, splitting upward
    /// as needed; swaps the root pointer when the root itself splits.
    fn propagate_split(
        &self,
        mut path: Vec<(NodeRef<K, V>, WriteGuard<K, V>)>,
        mut root_guard: Option<crate::sync::RwLockWriteGuard<'_, NodeRef<K, V>>>,
        mut sep: K,
        mut right: NodeRef<K, V>,
    ) {
        let mut child_of_root: Option<NodeRef<K, V>> = None;
        loop {
            match path.pop() {
                Some((parent_arc, mut parent_guard)) => {
                    let CNode::Internal { keys, children } = &mut *parent_guard else {
                        unreachable!("ancestors are internal");
                    };
                    let idx = quit_core::upper_bound(self.config.search_kind, keys, sep);
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() <= self.config.internal_capacity {
                        return; // absorbed; all remaining guards drop
                    }
                    // Split this internal node and keep climbing. Drain
                    // into pre-pinned buffers: the left node's allocations
                    // must never move under optimistic readers.
                    let mid = keys.len() / 2;
                    let up = keys[mid];
                    let (mut right_keys, mut right_children) =
                        CNode::internal_buffers(self.config.internal_capacity);
                    right_keys.extend(keys.drain(mid + 1..));
                    keys.pop();
                    right_children.extend(children.drain(mid + 1..));
                    let new_right = CNode::Internal {
                        keys: right_keys,
                        children: right_children,
                    }
                    .into_ref();
                    sep = up;
                    right = new_right;
                    child_of_root = Some(parent_arc);
                    drop(parent_guard);
                }
                None => {
                    // The root itself split (leaf root or cascaded): swap the
                    // pointer under the root-pointer lock we kept for this.
                    // The new root gets pinned buffers like every internal.
                    let rg = root_guard
                        .as_mut()
                        .expect("root pointer lock retained when the whole path splits");
                    let old_root = child_of_root.unwrap_or_else(|| (**rg).clone());
                    let (mut root_keys, mut root_children) =
                        CNode::internal_buffers(self.config.internal_capacity);
                    root_keys.push(sep);
                    root_children.push(old_root);
                    root_children.push(right);
                    let new_root = CNode::Internal {
                        keys: root_keys,
                        children: root_children,
                    }
                    .into_ref();
                    **rg = new_root;
                    return;
                }
            }
        }
    }

    /// Algorithm 1 poℓe maintenance after a top-insert, done after all node
    /// locks are released (metadata staleness is tolerated; leaf-local
    /// bounds keep the fast path safe).
    #[allow(clippy::too_many_arguments)]
    fn update_pole_after_top_insert(
        &self,
        key: K,
        leaf_split: Option<PoleSplitEvent<K, V>>,
        target_arc: NodeRef<K, V>,
        target_low: Option<K>,
        target_high: Option<K>,
        _target_len: usize,
    ) {
        let mut fp = self.fp.lock();
        if let Some(ev) = leaf_split {
            let pole_was_left = fp.leaf.as_ref().is_some_and(|p| Arc::ptr_eq(p, &ev.left));
            if pole_was_left {
                // Fig 6: promote iff the split key passes IKR.
                let promote = match fp.prev_min {
                    Some(p) if fp.prev_size > 0 => {
                        ev.sep.to_ikr()
                            <= ikr_bound(
                                p,
                                fp.q.unwrap_or(ev.q),
                                fp.prev_size,
                                ev.left_len * 2,
                                self.config.ikr_scale,
                            )
                    }
                    _ => key >= ev.sep,
                };
                if promote {
                    fp.prev_min = Some(ev.q);
                    fp.prev_size = ev.left_len;
                    fp.leaf = Some(ev.right);
                    fp.min = Some(ev.sep);
                    fp.q = Some(ev.sep);
                } else {
                    fp.max = Some(ev.sep);
                }
                return;
            }
        }
        fp.fails += 1;
        let Some(reset_threshold) = self.config.reset_threshold else {
            return;
        };
        if fp.fails >= reset_threshold {
            // §4.3 reset: adopt the leaf that accepted the latest insert.
            self.metrics.counters.fp_resets.bump_shared();
            fp.leaf = Some(target_arc);
            fp.min = target_low;
            fp.max = target_high;
            fp.q = target_low;
            fp.prev_min = None;
            fp.prev_size = 0;
            fp.fails = 0;
        }
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Removes one entry with key `key` and returns its value.
    ///
    /// Deletion is *lazy* (Bw-tree style): the entry is removed under the
    /// leaf's write lock, but under-full leaves are not merged — a common
    /// production trade-off that avoids multi-node lock choreography on the
    /// delete path. Space is reclaimed when neighbouring inserts split or
    /// when the index is rebuilt.
    pub fn delete(&self, key: K) -> Option<V> {
        // Shared-crab down to the leaf, then upgrade by re-locking just the
        // leaf exclusively. Deletes never modify internal nodes, and taking
        // only read locks on the way down keeps their version words
        // untouched — a write-crab would spuriously restart every
        // optimistic reader passing the root. Between dropping the leaf's
        // read lock and taking its write lock the leaf may split, so the
        // write-locked leaf is re-validated against its own separator
        // bounds and the descent retried on failure (same protocol as the
        // optimistic insert).
        loop {
            let root_ptr = self.root.read();
            let root = root_ptr.clone();
            let mut read_guard = RwLock::read_arc(&root);
            let mut current = root;
            drop(root_ptr);
            loop {
                let child = match &*read_guard {
                    CNode::Leaf { .. } => break,
                    CNode::Internal { keys, children } => {
                        let i = quit_core::search_internal(self.config.search_kind, keys, key);
                        children[i].clone()
                    }
                };
                read_guard = RwLock::read_arc(&child);
                current = child;
            }
            drop(read_guard);
            let mut guard = RwLock::write_arc(&current);
            let CNode::Leaf {
                keys,
                vals,
                gaps,
                low,
                high,
                ..
            } = &mut *guard
            else {
                unreachable!("descent ends at a leaf");
            };
            let in_range = low.is_none_or(|b| key >= b) && high.is_none_or(|b| key < b);
            if !in_range {
                drop(guard);
                continue; // raced a split of this leaf; re-descend
            }
            let pos = quit_core::lower_bound(self.config.search_kind, keys, key);
            return if pos < keys.len() && keys[pos] == key {
                // The lower bound may land on a gap filler; the filler rule
                // (a gap copies its nearest live right neighbour) puts the
                // matching live slot at the next live position.
                let live = gaps
                    .next_live(pos, keys.len())
                    .expect("last physical slot is always live");
                debug_assert_eq!(keys[live], key);
                // A leaf that absorbed uniform-key overflow (physical length
                // past `leaf_capacity`) must stay dense — the split and
                // absorb paths assert so — hence `pinned = 0` makes
                // `remove_at` shift instead of gap-ify there. Regular
                // leaves never exceed the pinned reservation, so every
                // slot sits below `capacity + 1` and gap-ifies in place.
                let pinned = if keys.len() > self.config.leaf_capacity {
                    0
                } else {
                    self.config.leaf_capacity + 1
                };
                let v =
                    quit_core::remove_at(self.config.node_layout, keys, vals, gaps, live, pinned);
                drop(guard);
                self.len.fetch_sub(1, Ordering::Relaxed);
                self.metrics.counters.deletes.bump_shared();
                Some(v)
            } else {
                None
            };
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Point lookup: latch-free optimistic descent when OLC is enabled,
    /// shared-lock crabbing otherwise (and as the fallback).
    pub fn get(&self, key: K) -> Option<V> {
        let t0 = self.metrics.op_timer();
        self.metrics.counters.lookups.bump_shared();
        let found = if self.config.olc_enabled {
            self.get_olc(key)
        } else {
            self.get_pessimistic(key)
        };
        self.metrics.record_get_latency(t0);
        found
    }

    /// Optimistic point lookup: the root-to-leaf descent takes **no
    /// locks** — node versions are validated hand-over-hand — and for
    /// plain-data values the leaf read is latch-free too: the copied value
    /// is only returned when the leaf validation proves no writer
    /// overlapped the reads. Heap-owning values (and oversize
    /// absorbed-overflow leaves) re-read the leaf under its shared latch,
    /// validated by the leaf's own separator bounds.
    fn get_olc(&self, key: K) -> Option<V> {
        let mut restarts = 0u32;
        'restart: loop {
            if restarts > 0 {
                self.metrics.counters.olc_restarts.bump_shared();
                if restarts > self.config.olc_max_restarts {
                    self.metrics.counters.olc_fallbacks.bump_shared();
                    return self.get_pessimistic(key);
                }
                olc_backoff(restarts);
            }
            let Some(mut node) = olc::root_ref(&self.root) else {
                restarts += 1;
                continue;
            };
            let Some(mut v) = node.optimistic_version() else {
                restarts += 1;
                continue;
            };
            loop {
                match olc::route_step_ref(node, v, Target::Key(key)) {
                    Ok(Routed::Child(child, cv)) => {
                        node = child;
                        v = cv;
                    }
                    Ok(Routed::Leaf) => {
                        #[cfg(feature = "olc-test-hooks")]
                        crate::test_hooks::leaf_pause();
                        match olc::leaf_get(node, v, key, self.config.leaf_capacity) {
                            LeafRead::Hit(val) => return Some(val),
                            LeafRead::Miss => return None,
                            LeafRead::NeedsLatch => {
                                // Heap-owning value type or absorbed-
                                // overflow leaf: re-read under a shared
                                // latch; the leaf's own bounds prove it is
                                // the right one.
                                let g = node.read();
                                if let CNode::Leaf {
                                    keys,
                                    vals,
                                    low,
                                    high,
                                    ..
                                } = &*g
                                {
                                    let in_range = low.is_none_or(|b| key >= b)
                                        && high.is_none_or(|b| key < b);
                                    if in_range {
                                        // A hit on a gap filler is value-
                                        // correct: fillers copy the pair of
                                        // their nearest live right slot.
                                        let pos = quit_core::lower_bound(
                                            self.config.search_kind,
                                            keys,
                                            key,
                                        );
                                        return (pos < keys.len() && keys[pos] == key)
                                            .then(|| vals[pos].clone());
                                    }
                                }
                                drop(g);
                                restarts += 1;
                                continue 'restart;
                            }
                            LeafRead::Conflict => {
                                restarts += 1;
                                continue 'restart;
                            }
                        }
                    }
                    Err(_) => {
                        restarts += 1;
                        continue 'restart;
                    }
                }
            }
        }
    }

    /// Shared-lock-crabbing point lookup (OLC off, or optimistic fallback).
    fn get_pessimistic(&self, key: K) -> Option<V> {
        let root_ptr = self.root.read();
        let root = root_ptr.clone();
        let mut guard = RwLock::read_arc(&root);
        drop(root_ptr);
        loop {
            let child = match &*guard {
                CNode::Leaf { keys, vals, .. } => {
                    // Gap fillers are value-correct copies, so no bitmap
                    // consultation is needed for a point read.
                    let pos = quit_core::lower_bound(self.config.search_kind, keys, key);
                    if pos < keys.len() && keys[pos] == key {
                        return Some(vals[pos].clone());
                    }
                    // Boundary-respecting splits keep every instance of a
                    // key in the one leaf right-biased routing reaches, so
                    // a miss here is a genuine miss.
                    return None;
                }
                CNode::Internal { keys, children } => {
                    let i = quit_core::search_internal(self.config.search_kind, keys, key);
                    children[i].clone()
                }
            };
            guard = RwLock::read_arc(&child); // parent guard drops (crabbing)
        }
    }

    /// True when the key exists.
    pub fn contains_key(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Lazy range scan over the entries within `bounds` (`a..b`, `a..=b`,
    /// `..b`, `a..`, `..`), with shared lock coupling along the leaf chain
    /// (§4.5 "Locking Protocol for Lookups").
    ///
    /// The iterator holds a read lock on the leaf it is positioned in and
    /// acquires the next leaf's lock before releasing the current one, so a
    /// scan observes each leaf atomically. Writers block on the locked leaf
    /// only — drop (or finish) the iterator promptly, and never insert into
    /// the same tree from the thread that holds an open scan.
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> ConcRangeIter<K, V> {
        self.metrics.counters.range_scans.bump_shared();
        let end = copy_bound(bounds.end_bound());
        if bounds_empty(bounds.start_bound(), bounds.end_bound()) {
            return ConcRangeIter {
                leaf: None,
                pos: 0,
                end,
                leaf_accesses: 0,
            };
        }
        let start = copy_bound(bounds.start_bound());
        if self.config.olc_enabled {
            if let Some(iter) = self.range_olc(start, end) {
                return iter;
            }
        }
        self.range_pessimistic(start, end)
    }

    /// Optimistic descent to the scan's start leaf: no internal node is
    /// latched; only the start leaf takes a shared lock, re-validated via
    /// its separator bounds. Iteration itself then lock-couples along the
    /// leaf chain exactly like the pessimistic scan. `None` = restart
    /// budget exhausted; the caller crabs pessimistically.
    fn range_olc(&self, start: Bound<K>, end: Bound<K>) -> Option<ConcRangeIter<K, V>> {
        let target = match start {
            Bound::Unbounded => Target::Leftmost,
            Bound::Included(s) | Bound::Excluded(s) => Target::Key(s),
        };
        let mut restarts = 0u32;
        loop {
            if restarts > 0 {
                self.metrics.counters.olc_restarts.bump_shared();
                if restarts > self.config.olc_max_restarts {
                    self.metrics.counters.olc_fallbacks.bump_shared();
                    return None;
                }
                olc_backoff(restarts);
            }
            let Some(leaf) = self.descend_olc(target) else {
                restarts += 1;
                continue;
            };
            let guard = RwLock::read_arc(&leaf);
            let CNode::Leaf {
                keys, low, high, ..
            } = &*guard
            else {
                unreachable!("descend_olc ends at a leaf");
            };
            // The leaf's own bounds partition the key space: covering the
            // start position proves this is the scan's first leaf even if
            // the optimistic routing raced a split.
            let covered = match start {
                Bound::Unbounded => low.is_none(),
                Bound::Included(s) | Bound::Excluded(s) => {
                    low.is_none_or(|b| s >= b) && high.is_none_or(|b| s < b)
                }
            };
            if !covered {
                drop(guard);
                restarts += 1;
                continue;
            }
            let pos = match start {
                Bound::Unbounded => 0,
                Bound::Included(s) => quit_core::lower_bound(self.config.search_kind, keys, s),
                Bound::Excluded(s) => quit_core::upper_bound(self.config.search_kind, keys, s),
            };
            return Some(ConcRangeIter {
                leaf: Some(guard),
                pos,
                end,
                leaf_accesses: 1,
            });
        }
    }

    /// Shared-lock-crabbing descent to the scan's start leaf (OLC off, or
    /// optimistic fallback).
    fn range_pessimistic(&self, start: Bound<K>, end: Bound<K>) -> ConcRangeIter<K, V> {
        let root_ptr = self.root.read();
        let root = root_ptr.clone();
        let mut guard = RwLock::read_arc(&root);
        drop(root_ptr);
        // Descend to the first leaf that can hold an admitted key. Routing
        // is right-biased on equality, matching inserts: splits respect key
        // boundaries, so every instance of the start key lives in the one
        // leaf this descent reaches; the in-leaf `pos` scan then admits or
        // skips the run.
        loop {
            let child = match &*guard {
                CNode::Leaf { .. } => break,
                CNode::Internal { keys, children } => {
                    let i = match start {
                        Bound::Unbounded => 0,
                        Bound::Included(s) | Bound::Excluded(s) => {
                            quit_core::search_internal(self.config.search_kind, keys, s)
                        }
                    };
                    children[i].clone()
                }
            };
            guard = RwLock::read_arc(&child);
        }
        let pos = match (&*guard, start) {
            (_, Bound::Unbounded) => 0,
            (CNode::Leaf { keys, .. }, Bound::Included(s)) => {
                quit_core::lower_bound(self.config.search_kind, keys, s)
            }
            (CNode::Leaf { keys, .. }, Bound::Excluded(s)) => {
                quit_core::upper_bound(self.config.search_kind, keys, s)
            }
            _ => unreachable!("descent ends at a leaf"),
        };
        ConcRangeIter {
            leaf: Some(guard),
            pos,
            end,
            leaf_accesses: 1,
        }
    }

    /// All entries in key order (test/diagnostic helper; locks one leaf at
    /// a time).
    pub fn collect_all(&self) -> Vec<(K, V)> {
        self.range(..).collect()
    }

    /// Structural self-check for tests and the differential testkit.
    ///
    /// Verifies under read locks (call on a quiesced tree — concurrent
    /// writers would race the walk, not corrupt it):
    ///
    /// - internal nodes: ascending separator keys, `children == keys + 1`,
    ///   every subtree within its routing window;
    /// - leaves: ascending keys that respect the leaf's own `low`/`high`
    ///   separator bounds (the metadata the lock-free-adjacent fast path
    ///   relies on);
    /// - the leaf chain: non-decreasing keys across consecutive leaves;
    /// - total entries along the chain equal to [`ConcurrentTree::len`].
    pub fn check_consistency(&self) -> Result<(), String> {
        self.check_consistency_inner(true)
    }

    /// [`ConcurrentTree::check_consistency`] minus the exact
    /// chain-total-vs-[`ConcurrentTree::len`] comparison, which is the one
    /// check that cannot hold mid-flight: the chain walk and the length
    /// counter are read at different instants, so live writers make them
    /// disagree transiently without any corruption. Every per-node and
    /// chain-ordering invariant is still verified, so the concurrent
    /// testkit calls this while writer threads are still running.
    pub fn check_consistency_concurrent(&self) -> Result<(), String> {
        self.check_consistency_inner(false)
    }

    fn check_consistency_inner(&self, exact_len: bool) -> Result<(), String> {
        let root = self.root.read().clone();
        check_node(&root, None, None)?;
        // Descend to the leftmost leaf, then walk the chain.
        let mut node = root;
        loop {
            let first_child = {
                let guard = node.read();
                match &*guard {
                    CNode::Internal { children, .. } => children
                        .first()
                        .cloned()
                        .ok_or_else(|| "internal node with no children".to_string())?,
                    CNode::Leaf { .. } => break,
                }
            };
            node = first_child;
        }
        let mut total = 0usize;
        let mut prev_last: Option<K> = None;
        let mut leaf = Some(node);
        while let Some(l) = leaf {
            let guard = l.read();
            let CNode::Leaf {
                keys,
                vals,
                gaps,
                next,
                ..
            } = &*guard
            else {
                return Err("leaf chain reached an internal node".to_string());
            };
            if keys.len() != vals.len() {
                return Err(format!(
                    "leaf holds {} keys but {} values",
                    keys.len(),
                    vals.len()
                ));
            }
            if self.config.node_layout == NodeLayoutKind::Dense && !gaps.is_dense() {
                return Err("leaf holds gaps under the dense layout".to_string());
            }
            if !keys.is_empty() && gaps.is_gap(keys.len() - 1) {
                return Err("leaf ends in a gap (trailing gaps must trim)".to_string());
            }
            let mut in_range_gaps = 0usize;
            for i in 0..keys.len() {
                if gaps.is_gap(i) {
                    in_range_gaps += 1;
                    // Strict filler rule: every gap slot copies its nearest
                    // live right neighbour, so its key equals the next
                    // slot's key (gap or live).
                    if keys[i] != keys[i + 1] {
                        return Err(format!(
                            "gap slot {i} filler key {:?} != next slot key {:?}",
                            keys[i],
                            keys[i + 1]
                        ));
                    }
                }
            }
            if in_range_gaps != gaps.count() {
                return Err(format!(
                    "gap bitmap counts {} but {in_range_gaps} gaps lie in range",
                    gaps.count()
                ));
            }
            if let (Some(prev), Some(first)) = (prev_last, keys.first()) {
                if *first < prev {
                    return Err(format!("leaf chain regresses: {first:?} follows {prev:?}"));
                }
            }
            prev_last = keys.last().copied().or(prev_last);
            total += keys.len() - gaps.count();
            leaf = next.clone();
        }
        if exact_len && total != self.len() {
            return Err(format!(
                "leaf chain holds {total} entries but len() reports {}",
                self.len()
            ));
        }
        Ok(())
    }
}

/// Recursive helper for [`ConcurrentTree::check_consistency`]: validates a
/// subtree against its routing window `[low, high)`.
fn check_node<K: Key, V>(
    node: &NodeRef<K, V>,
    low: Option<K>,
    high: Option<K>,
) -> Result<(), String> {
    let guard = node.read();
    match &*guard {
        CNode::Internal { keys, children } => {
            if children.len() != keys.len() + 1 {
                return Err(format!(
                    "internal node with {} separators but {} children",
                    keys.len(),
                    children.len()
                ));
            }
            for pair in keys.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!(
                        "internal separators not ascending: {:?} >= {:?}",
                        pair[0], pair[1]
                    ));
                }
            }
            if let (Some(lo), Some(first)) = (low, keys.first()) {
                if *first < lo {
                    return Err(format!("separator {first:?} below window low {lo:?}"));
                }
            }
            if let (Some(hi), Some(last)) = (high, keys.last()) {
                if *last > hi {
                    return Err(format!("separator {last:?} above window high {hi:?}"));
                }
            }
            for (i, child) in children.iter().enumerate() {
                let lo = if i == 0 { low } else { Some(keys[i - 1]) };
                let hi = if i == keys.len() { high } else { Some(keys[i]) };
                check_node(child, lo, hi)?;
            }
            Ok(())
        }
        CNode::Leaf {
            keys,
            low: leaf_low,
            high: leaf_high,
            ..
        } => {
            for pair in keys.windows(2) {
                if pair[0] > pair[1] {
                    return Err(format!(
                        "leaf keys out of order: {:?} > {:?}",
                        pair[0], pair[1]
                    ));
                }
            }
            // The leaf's own recorded bounds gate fast-path inserts; every
            // key must satisfy them (`low` inclusive, `high` exclusive —
            // boundary-respecting splits guarantee no key ever equals the
            // high bound), and they must not be wider than the routing
            // window that reaches this leaf.
            if let (Some(lo), Some(first)) = (leaf_low, keys.first()) {
                if first < lo {
                    return Err(format!("leaf key {first:?} below its low bound {lo:?}"));
                }
            }
            if let (Some(hi), Some(last)) = (leaf_high, keys.last()) {
                if last >= hi {
                    return Err(format!(
                        "leaf key {last:?} at or above its high bound {hi:?}"
                    ));
                }
            }
            if let (Some(win), Some(first)) = (low, keys.first()) {
                if *first < win {
                    return Err(format!(
                        "leaf key {first:?} below routing window low {win:?}"
                    ));
                }
            }
            if let (Some(win), Some(last)) = (high, keys.last()) {
                if *last >= win {
                    return Err(format!(
                        "leaf key {last:?} at or above routing window high {win:?}"
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Bounded exponential backoff between optimistic restarts: brief
/// exponential spinning for the first few conflicts (writers' critical
/// sections are sub-microsecond), then a yield so a preempted writer — the
/// usual cause of repeated conflicts on loaded or single-core machines —
/// can finish its section.
fn olc_backoff(restart: u32) {
    if restart <= 3 {
        for _ in 0..(1u32 << restart.min(6)) {
            std::hint::spin_loop();
        }
    } else {
        std::thread::yield_now();
    }
}

fn copy_bound<K: Copy>(b: Bound<&K>) -> Bound<K> {
    match b {
        Bound::Included(&k) => Bound::Included(k),
        Bound::Excluded(&k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn bounds_empty<K: Ord>(start: Bound<&K>, end: Bound<&K>) -> bool {
    match (start, end) {
        (Bound::Included(s), Bound::Included(e)) => s > e,
        (Bound::Included(s), Bound::Excluded(e))
        | (Bound::Excluded(s), Bound::Included(e))
        | (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
        _ => false,
    }
}

/// Lazy, lock-coupled range iterator. See [`ConcurrentTree::range`].
pub struct ConcRangeIter<K, V> {
    leaf: Option<ArcRwLockReadGuard<CNode<K, V>>>,
    pos: usize,
    end: Bound<K>,
    leaf_accesses: u64,
}

impl<K: Key, V: Clone> ConcRangeIter<K, V> {
    /// Leaf nodes this scan has locked so far.
    pub fn leaf_accesses(&self) -> u64 {
        self.leaf_accesses
    }
}

impl<K: Key, V: Clone> Iterator for ConcRangeIter<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let guard = self.leaf.as_ref()?;
            let CNode::Leaf {
                keys,
                vals,
                gaps,
                next,
                ..
            } = &**guard
            else {
                unreachable!("chain holds leaves");
            };
            if self.pos < keys.len() {
                // Yield live slots only: a gap filler duplicates the entry
                // of its nearest live right neighbour.
                if gaps.is_gap(self.pos) {
                    self.pos += 1;
                    continue;
                }
                let k = keys[self.pos];
                let admitted = match self.end {
                    Bound::Included(e) => k <= e,
                    Bound::Excluded(e) => k < e,
                    Bound::Unbounded => true,
                };
                if !admitted {
                    self.leaf = None;
                    return None;
                }
                let v = vals[self.pos].clone();
                self.pos += 1;
                return Some((k, v));
            }
            // Acquire the next leaf before releasing this one (coupling).
            match next.clone() {
                Some(n) => {
                    let g = RwLock::read_arc(&n);
                    self.leaf = Some(g);
                    self.pos = 0;
                    self.leaf_accesses += 1;
                }
                None => {
                    self.leaf = None;
                    return None;
                }
            }
        }
    }
}

impl<K: Key, V: Clone> quit_core::SortedIndex<K, V> for ConcurrentTree<K, V> {
    fn insert(&mut self, key: K, value: V) {
        ConcurrentTree::insert(self, key, value);
    }

    fn get(&mut self, key: K) -> Option<V> {
        ConcurrentTree::get(self, key)
    }

    fn delete(&mut self, key: K) -> Option<V> {
        ConcurrentTree::delete(self, key)
    }

    fn range<R: RangeBounds<K>>(&mut self, bounds: R) -> impl Iterator<Item = (K, V)> + '_ {
        ConcurrentTree::range(self, bounds)
    }

    fn range_with_stats<R: RangeBounds<K>>(&mut self, bounds: R) -> quit_core::RangeScan<K, V> {
        let t0 = self.metrics.op_timer();
        let mut iter = ConcurrentTree::range(self, bounds);
        let entries: Vec<(K, V)> = iter.by_ref().collect();
        let leaf_accesses = iter.leaf_accesses();
        drop(iter);
        self.metrics
            .counters
            .range_leaf_accesses
            .add_shared(leaf_accesses);
        self.metrics.record_range_latency(t0);
        quit_core::RangeScan {
            entries,
            leaf_accesses,
        }
    }

    fn len(&self) -> usize {
        ConcurrentTree::len(self)
    }

    fn metrics(&self) -> StatsSnapshot {
        ConcurrentTree::metrics(self)
    }

    fn reset_metrics(&self) {
        self.metrics.reset();
    }
}

/// Outcome of a fast-path attempt.
enum FastAttempt<V> {
    /// Inserted through the fast path.
    Done,
    /// Key outside the fast-path range (or metadata stale): top-insert.
    NotCovered(V),
    /// Covered, but the poℓe is full: split path, accounted as fast.
    PoleFull(V),
    /// Covered, but the leaf lock was contended: top-insert.
    Busy(V),
}

struct PoleSplitEvent<K, V> {
    left: NodeRef<K, V>,
    right: NodeRef<K, V>,
    sep: K,
    left_len: usize,
    q: K,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn builder_mirrors_tree_config() {
        let c = ConcConfig::paper_default().with_leaf_capacity(64);
        assert_eq!(c.internal_capacity, 64, "internal tracks leaf by default");
        let c = c.with_internal_capacity(128);
        assert_eq!(c.internal_capacity, 128, "explicit override wins");
        assert_eq!(c.reset_threshold, Some(8));
        c.assert_valid();
    }

    #[test]
    fn builder_order_does_not_matter() {
        // An explicit internal-capacity or reset-threshold override must
        // survive a later `with_leaf_capacity`, and vice versa.
        let before = ConcConfig::paper_default()
            .with_internal_capacity(128)
            .with_leaf_capacity(64);
        let after = ConcConfig::paper_default()
            .with_leaf_capacity(64)
            .with_internal_capacity(128);
        assert_eq!(before.internal_capacity, 128);
        assert_eq!(before.internal_capacity, after.internal_capacity);
        assert_eq!(before.reset_threshold, after.reset_threshold);

        let before = ConcConfig::paper_default()
            .with_reset_threshold(Some(3))
            .with_leaf_capacity(64);
        let after = ConcConfig::paper_default()
            .with_leaf_capacity(64)
            .with_reset_threshold(Some(3));
        assert_eq!(before.reset_threshold, Some(3));
        assert_eq!(before.reset_threshold, after.reset_threshold);
        before.assert_valid();

        // Values still at their derived defaults keep tracking the leaf.
        let derived = ConcConfig::paper_default().with_leaf_capacity(100);
        assert_eq!(derived.internal_capacity, 100);
        assert_eq!(
            derived.reset_threshold,
            Some(ConcConfig::default_reset_threshold(100))
        );
    }

    #[test]
    fn single_threaded_roundtrip() {
        let t: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(8));
        for k in 0..2000u64 {
            t.insert(k, k * 2);
        }
        assert_eq!(t.len(), 2000);
        for k in (0..2000).step_by(61) {
            assert_eq!(t.get(k), Some(k * 2));
        }
        assert_eq!(t.get(5000), None);
        let all = t.collect_all();
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn sorted_ingest_uses_fast_path() {
        let t: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(8));
        for k in 0..1000u64 {
            t.insert(k, k);
        }
        let fast = t.stats().fast_inserts.get();
        let top = t.stats().top_inserts.get();
        assert!(fast > top * 5, "fast {fast}, top {top}");
    }

    #[test]
    fn classic_mode_never_fast_inserts() {
        let t: ConcurrentTree<u64, u64> =
            ConcurrentTree::new(ConcConfig::small(8).with_pole(false));
        for k in 0..500u64 {
            t.insert(k, k);
        }
        assert_eq!(t.stats().fast_inserts.get(), 0);
    }

    #[test]
    fn range_scan_matches() {
        let t: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(8));
        for k in 0..500u64 {
            t.insert(k, k);
        }
        let r: Vec<_> = t.range(100..200).collect();
        assert_eq!(r.len(), 100);
        assert_eq!(r[0], (100, 100));
        assert_eq!(r[99], (199, 199));
        assert!(t.range(9_999..10_000).next().is_none());
        assert!(t.range(10..10).next().is_none());
        let inclusive: Vec<_> = t.range(100..=102).map(|e| e.0).collect();
        assert_eq!(inclusive, vec![100, 101, 102]);
        assert_eq!(t.range(..).count(), 500);
        assert_eq!(t.range(495..).count(), 5);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t: StdArc<ConcurrentTree<u64, u64>> =
            StdArc::new(ConcurrentTree::new(ConcConfig::small(16)));
        let threads = 8;
        let per = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let base = tid as u64 * 1_000_000;
                    for k in 0..per {
                        t.insert(base + k, k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), threads * per as usize);
        let all = t.collect_all();
        assert_eq!(all.len(), threads * per as usize);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0), "global order");
        for tid in 0..threads as u64 {
            assert_eq!(t.get(tid * 1_000_000 + 17), Some(17));
        }
    }

    #[test]
    fn concurrent_interleaved_inserts_same_range() {
        use rand::prelude::*;
        let t: StdArc<ConcurrentTree<u64, u64>> =
            StdArc::new(ConcurrentTree::new(ConcConfig::small(8)));
        let threads = 8;
        let per = 1500usize;
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(tid as u64);
                    for _ in 0..per {
                        let k = rng.gen_range(0..10_000u64);
                        t.insert(k, k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), threads * per);
        let all = t.collect_all();
        assert_eq!(all.len(), threads * per);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let t: StdArc<ConcurrentTree<u64, u64>> =
            StdArc::new(ConcurrentTree::new(ConcConfig::small(8)));
        for k in 0..1000u64 {
            t.insert(k, k);
        }
        let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..2000u64 {
                    t.insert(1_000 + tid * 10_000 + k, k);
                }
            }));
        }
        for _ in 0..4 {
            let t = t.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut hits = 0u64;
                // do-while: on a single-core box the writers can finish
                // before this thread's first quantum, so always complete
                // at least one sweep before honouring `stop`.
                loop {
                    for k in (0..1000u64).step_by(101) {
                        if t.get(k).is_some() {
                            hits += 1;
                        }
                    }
                    let n = t.range(0..500).count();
                    assert!(n >= 500, "pre-loaded keys must stay visible");
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                assert!(hits > 0);
            }));
        }
        // Let writers finish, then stop readers.
        for h in handles.drain(..4) {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 1000 + 4 * 2000);
    }

    #[test]
    fn delete_roundtrip_single_threaded() {
        let t: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(8));
        for k in 0..1000u64 {
            t.insert(k, k * 3);
        }
        for k in (0..1000u64).step_by(2) {
            assert_eq!(t.delete(k), Some(k * 3));
        }
        assert_eq!(t.delete(0), None);
        assert_eq!(t.len(), 500);
        for k in 0..1000u64 {
            assert_eq!(t.get(k).is_some(), k % 2 == 1, "key {k}");
        }
        let all = t.collect_all();
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn concurrent_deletes_and_inserts() {
        let t: StdArc<ConcurrentTree<u64, u64>> =
            StdArc::new(ConcurrentTree::new(ConcConfig::small(8)));
        for k in 0..10_000u64 {
            t.insert(k, k);
        }
        std::thread::scope(|s| {
            // Deleters drain even keys; an inserter extends the key space.
            for part in 0..4u64 {
                let t = t.clone();
                s.spawn(move || {
                    for k in (0..10_000u64).step_by(2) {
                        if k % 8 == part * 2 {
                            assert_eq!(t.delete(k), Some(k), "key {k}");
                        }
                    }
                });
            }
            let t2 = t.clone();
            s.spawn(move || {
                for k in 10_000..14_000u64 {
                    t2.insert(k, k);
                }
            });
        });
        assert_eq!(t.len(), 10_000 - 5_000 + 4_000);
        for k in 0..10_000u64 {
            assert_eq!(t.get(k).is_some(), k % 2 == 1, "key {k}");
        }
        for k in 10_000..14_000u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn fast_path_keeps_working_after_deletes() {
        let t: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(8));
        for k in 0..2_000u64 {
            t.insert(k, k);
        }
        for k in 500..1500u64 {
            t.delete(k);
        }
        let fast_before = t.stats().fast_inserts.get();
        for k in 2_000..3_000u64 {
            t.insert(k, k);
        }
        assert!(
            t.stats().fast_inserts.get() > fast_before + 800,
            "fast path must survive deletions"
        );
    }

    #[test]
    fn olc_and_pessimistic_modes_agree() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0x01C0_FFEE);
        let ops: Vec<(u64, u64)> = (0..4000)
            .map(|_| (rng.gen_range(0..2_000u64), rng.next_u64()))
            .collect();
        let results: Vec<_> = [true, false]
            .into_iter()
            .map(|olc| {
                let t: ConcurrentTree<u64, u64> =
                    ConcurrentTree::new(ConcConfig::small(8).with_olc(olc));
                for &(k, v) in &ops {
                    t.insert(k, v);
                    if k % 3 == 0 {
                        t.delete(k / 2);
                    }
                }
                for k in (0..2_000).step_by(17) {
                    let _ = t.get(k);
                }
                (t.len(), t.collect_all(), t.range(100..900).count())
            })
            .collect();
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn layout_builder_knobs_roundtrip() {
        let c = ConcConfig::paper_default()
            .with_node_layout(NodeLayoutKind::Gapped)
            .with_search_kind(SearchKind::Simd);
        assert_eq!(c.node_layout, NodeLayoutKind::Gapped);
        assert_eq!(c.search_kind, SearchKind::Simd);
        c.assert_valid();
        // Defaults stay pinned to the bit-for-bit paper path.
        let d = ConcConfig::paper_default();
        assert_eq!(d.node_layout, NodeLayoutKind::Dense);
        assert_eq!(d.search_kind, SearchKind::Binary);
    }

    #[test]
    fn gapped_layout_matches_dense_in_both_latch_modes() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0x6A99_ED01);
        let ops: Vec<(u64, u64)> = (0..6000)
            .map(|_| (rng.gen_range(0..2_500u64), rng.next_u64()))
            .collect();
        for olc in [true, false] {
            let results: Vec<_> = [
                (NodeLayoutKind::Dense, SearchKind::Binary),
                (NodeLayoutKind::Gapped, SearchKind::Branchless),
                (NodeLayoutKind::Gapped, SearchKind::Simd),
            ]
            .into_iter()
            .map(|(layout, kind)| {
                let t: ConcurrentTree<u64, u64> = ConcurrentTree::new(
                    ConcConfig::small(8)
                        .with_olc(olc)
                        .with_node_layout(layout)
                        .with_search_kind(kind),
                );
                for &(k, v) in &ops {
                    t.insert(k, v);
                    if k % 3 == 0 {
                        t.delete(k / 2);
                    }
                }
                t.check_consistency().unwrap();
                let gets: Vec<_> = (0..2_500).step_by(13).map(|k| t.get(k)).collect();
                (t.len(), t.collect_all(), t.range(100..900).count(), gets)
            })
            .collect();
            assert_eq!(results[0], results[1], "branchless diverged (olc={olc})");
            assert_eq!(results[0], results[2], "simd diverged (olc={olc})");
        }
    }

    #[test]
    fn gapped_layout_survives_concurrent_churn() {
        use rand::prelude::*;
        for olc in [true, false] {
            let t: StdArc<ConcurrentTree<u64, u64>> = StdArc::new(ConcurrentTree::new(
                ConcConfig::small(16)
                    .with_olc(olc)
                    .with_node_layout(NodeLayoutKind::Gapped)
                    .with_search_kind(SearchKind::Branchless),
            ));
            let threads = 4;
            std::thread::scope(|s| {
                for tid in 0..threads {
                    let t = t.clone();
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(0x6A99_ED02 + tid as u64);
                        // Near-sorted per-thread stream with stragglers and
                        // deletes: exactly the workload gaps absorb.
                        for i in 0..4_000u64 {
                            let k = tid as u64 * 1_000_000
                                + if rng.gen_bool(0.1) && i > 50 {
                                    i * 4 - rng.gen_range(1..200u64)
                                } else {
                                    i * 4
                                };
                            t.insert(k, k);
                            if i % 5 == 0 {
                                t.delete(tid as u64 * 1_000_000 + i * 2);
                            }
                            if i % 7 == 0 {
                                let _ = t.get(tid as u64 * 1_000_000 + i);
                            }
                        }
                    });
                }
            });
            t.check_consistency().unwrap();
            let all = t.collect_all();
            assert_eq!(all.len(), t.len());
            assert!(
                all.windows(2).all(|w| w[0].0 <= w[1].0),
                "global order (olc={olc})"
            );
        }
    }

    #[test]
    fn olc_counters_stay_zero_when_disabled() {
        let t: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(8).with_olc(false));
        for k in 0..2_000u64 {
            t.insert(k, k);
            let _ = t.get(k / 2);
        }
        let _ = t.range(..).count();
        assert_eq!(t.stats().olc_restarts.get(), 0);
        assert_eq!(t.stats().olc_fallbacks.get(), 0);
    }

    #[test]
    fn olc_restarts_then_falls_back_under_forced_contention() {
        // Hold the root *node* write-locked: every optimistic descent fails
        // at its first version read, so one get must count exactly
        // budget + 1 restarts, then one fallback, then complete on the
        // pessimistic path once the lock is released.
        let budget = 4u32;
        let t: ConcurrentTree<u64, u64> =
            ConcurrentTree::new(ConcConfig::small(8).with_olc_max_restarts(budget));
        for k in 0..100u64 {
            t.insert(k, k * 2);
        }
        let root = t.root.read().clone();
        let g = RwLock::write_arc(&root);
        std::thread::scope(|s| {
            let h = s.spawn(|| t.get(42));
            // Deterministic rendezvous: wait until the reader has burned
            // its whole budget and fallen back (it then blocks on the
            // pessimistic read lock), then release the writer.
            while t.stats().olc_fallbacks.get() == 0 {
                std::thread::yield_now();
            }
            drop(g);
            assert_eq!(h.join().unwrap(), Some(84));
        });
        assert_eq!(t.stats().olc_fallbacks.get(), 1);
        assert_eq!(t.stats().olc_restarts.get(), u64::from(budget) + 1);
    }

    #[test]
    fn olc_insert_falls_back_and_key_lands_once() {
        // Same forced-contention scheme for the insert descent: the
        // optimistic insert exhausts its budget, hands the value back, and
        // the pessimistic crabbing path inserts it exactly once.
        let budget = 2u32;
        let t: ConcurrentTree<u64, u64> = ConcurrentTree::new(
            ConcConfig::small(8)
                .with_olc_max_restarts(budget)
                .with_pole(false),
        );
        for k in 0..100u64 {
            t.insert(k, k);
        }
        let before = t.stats().olc_restarts.get();
        let root = t.root.read().clone();
        let g = RwLock::write_arc(&root);
        std::thread::scope(|s| {
            let h = s.spawn(|| t.insert(1_000, 7));
            while t.stats().olc_fallbacks.get() == 0 {
                std::thread::yield_now();
            }
            drop(g);
            h.join().unwrap();
        });
        assert_eq!(t.stats().olc_fallbacks.get(), 1);
        assert_eq!(t.stats().olc_restarts.get() - before, u64::from(budget) + 1);
        assert_eq!(t.get(1_000), Some(7));
        assert_eq!(t.len(), 101);
        assert_eq!(t.collect_all().iter().filter(|e| e.0 == 1_000).count(), 1);
    }

    #[test]
    fn absorbed_uniform_key_leaf_reads_through_latched_fallback() {
        // A leaf full of one repeated key cannot split and absorbs the
        // overflow past its pinned buffer reservation; optimistic gets
        // must detect the oversize leaf and fall back to a latched read.
        let t: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(4));
        for i in 0..12u64 {
            t.insert(7, i);
        }
        assert_eq!(t.len(), 12);
        assert!(t.get(7).is_some());
        assert_eq!(t.get(3), None);
        assert_eq!(t.collect_all().len(), 12);
        assert!(t.check_consistency().is_ok());
        // The retired-buffer keep-alive list took the outgrown allocations.
        assert!(!t.retired.lock().is_empty());
    }

    #[test]
    fn heap_owning_values_route_through_latched_leaf_read() {
        // A validated latch-free snapshot must never be cloned for a V
        // with drop glue: a racing delete could drop the original between
        // validate and clone, leaving the snapshot's heap pointers
        // dangling. `leaf_get` must refuse such V outright…
        let node: NodeRef<u64, String> = CNode::empty_leaf(8).into_ref();
        {
            let mut g = RwLock::write_arc(&node);
            let CNode::Leaf { keys, vals, .. } = &mut *g else {
                unreachable!();
            };
            keys.push(1);
            vals.push("one".to_owned());
        }
        let v = node.optimistic_version().unwrap();
        assert!(matches!(
            olc::leaf_get(&node, v, 1, 8),
            LeafRead::NeedsLatch
        ));
        // …while plain-data values stay on the latch-free path.
        let plain: NodeRef<u64, u64> = CNode::empty_leaf(8).into_ref();
        {
            let mut g = RwLock::write_arc(&plain);
            let CNode::Leaf { keys, vals, .. } = &mut *g else {
                unreachable!();
            };
            keys.push(1);
            vals.push(10);
        }
        let v = plain.optimistic_version().unwrap();
        assert!(matches!(olc::leaf_get(&plain, v, 1, 8), LeafRead::Hit(10)));
        // The tree-level API serves heap-owning values correctly through
        // the latched fallback.
        let t: ConcurrentTree<u64, String> = ConcurrentTree::new(ConcConfig::small(8));
        for k in 0..500u64 {
            t.insert(k, format!("value-{k}"));
        }
        assert_eq!(t.get(123).as_deref(), Some("value-123"));
        assert_eq!(t.get(9_999), None);
    }

    #[test]
    fn heap_values_survive_concurrent_deletes_and_gets() {
        // Regression for the OLC use-after-free: readers hammer `get` on
        // String values while deleters drop them. Before the `needs_drop`
        // gate, a get could clone a validated byte snapshot whose backing
        // String a delete had just freed.
        let t: StdArc<ConcurrentTree<u64, String>> =
            StdArc::new(ConcurrentTree::new(ConcConfig::small(8)));
        let n = 4_000u64;
        for k in 0..n {
            t.insert(k, format!("value-{k}"));
        }
        std::thread::scope(|s| {
            for part in 0..2u64 {
                let t = t.clone();
                s.spawn(move || {
                    for k in (0..n).filter(|k| k % 2 == part) {
                        assert_eq!(t.delete(k), Some(format!("value-{k}")));
                    }
                });
            }
            for _ in 0..2 {
                let t = t.clone();
                s.spawn(move || {
                    for round in 0..4 {
                        for k in (0..n).skip(round).step_by(3) {
                            if let Some(v) = t.get(k) {
                                assert_eq!(v, format!("value-{k}"));
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 0);
        assert!(t.check_consistency().is_ok());
    }

    #[test]
    fn near_sorted_concurrent_stream() {
        let keys = bods::BodsSpec::new(20_000, 0.05, 1.0).generate();
        let t: StdArc<ConcurrentTree<u64, u64>> =
            StdArc::new(ConcurrentTree::new(ConcConfig::paper_default()));
        let chunk = keys.len() / 4;
        let handles: Vec<_> = keys
            .chunks(chunk)
            .map(|c| {
                let c = c.to_vec();
                let t = t.clone();
                std::thread::spawn(move || {
                    for k in c {
                        t.insert(k, k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 20_000);
        let all = t.collect_all();
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

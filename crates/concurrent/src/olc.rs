//! Raw node reads for optimistic lock coupling (OLC).
//!
//! With OLC enabled, traversal reads node contents **without holding the
//! node's lock**: take the node's version ([`RwLock::optimistic_version`]),
//! copy the interesting bytes, then [`RwLock::validate`]. When validation
//! fails the copied bytes are discarded unread; when it succeeds, no write
//! section overlapped the reads, so the copy is a consistent snapshot.
//!
//! # Safety argument
//!
//! Raw reads race with writers by design, so everything here is built on
//! three structural invariants of [`crate::ConcurrentTree`]:
//!
//! 1. **Nodes are immortal while the tree lives.** Splits only add nodes,
//!    deletes are lazy (no merges), and a replaced root stays linked as a
//!    child — so a node pointer obtained from the tree at any time remains
//!    dereferenceable until the tree is dropped (which requires `&mut`, i.e.
//!    no concurrent readers).
//! 2. **Node buffers are pinned** (see the `node` module docs): a node's
//!    `Vec` allocations are created with their maximum-ever capacity and
//!    never reallocated in place; the one growth case swaps buffers and
//!    retires the old allocation to a tree-level keep-alive list. Every
//!    leaf buffer therefore holds at least `leaf_capacity + 1` slots and
//!    every internal buffer at least its pinned reservation, alive for the
//!    tree's lifetime.
//! 3. **A node's discriminant (leaf vs internal) never changes** after
//!    construction, so matching on the enum without a lock is stable.
//!
//! Under those invariants every raw access below stays within a live
//! allocation even when it races a writer: `Vec` headers are copied with
//! `read_volatile` (a racing swap yields the old or the new header, both
//! pointing at live, sufficiently-large buffers), element indices are
//! clamped to the pinned minimum capacity, and values are copied as
//! `MaybeUninit` bytes that are only interpreted (cloned) after validation
//! succeeds. What remains — word-sized loads that race word-sized stores —
//! is the standard seqlock idiom; it is not blessed by the formal memory
//! model but is exactly what production OLC trees (LeanStore, Umbra,
//! crossbeam's `SeqLock`) rely on, and it is confined to this module.

use crate::node::{CNode, NodeRef};
use crate::sync::RwLock;
use quit_core::Key;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ptr;
use std::sync::Arc;

/// A validation failure: the bracket raced a write section; restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Conflict;

/// Outcome of one optimistic routing step at `node`.
pub(crate) enum Routed<H> {
    /// Descend into this child, whose optimistic version is the `u64`.
    Child(H, u64),
    /// The node is a leaf; the caller handles it (raw read or latch).
    Leaf,
}

/// Routing target of a descent: a concrete key, or the leftmost child
/// (unbounded range start).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Target<K> {
    /// Right-biased routing to `key` (`partition_point(sep <= key)`),
    /// matching the pessimistic descent.
    Key(K),
    /// Always take child 0.
    Leftmost,
}

/// Copies a `Vec`'s header (data pointer + length) without locking.
///
/// # Safety
///
/// `vec` must point into a node covered by the module invariants: the
/// header bytes are always those of a live `Vec` (a racing buffer swap
/// publishes old or new header words, each pointing at a live pinned
/// allocation). The returned length is *untrusted* — callers must clamp it
/// to the pinned minimum capacity before indexing.
unsafe fn vec_header<T>(vec: *const Vec<T>) -> (*const T, usize) {
    let copy = ptr::read_volatile(vec.cast::<MaybeUninit<Vec<T>>>());
    // Never dropped (MaybeUninit): this is a bitwise alias of the real Vec.
    let alias = copy.assume_init_ref();
    (alias.as_ptr(), alias.len())
}

/// `partition_point` over a raw key slice with volatile element loads.
///
/// # Safety
///
/// `ptr..ptr+len` must stay within one live allocation (caller clamps
/// `len`). Keys may be torn mid-write; the result is only meaningful once
/// the caller validates the node version.
unsafe fn raw_partition_point<K: Key>(
    ptr: *const K,
    len: usize,
    pred: impl Fn(&K) -> bool,
) -> usize {
    let (mut lo, mut hi) = (0usize, len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let k = ptr::read_volatile(ptr.add(mid));
        if pred(&k) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Copies the `Arc` in `slot` without touching its refcount, returning the
/// raw pointer to its `RwLock`.
///
/// # Safety
///
/// `slot` must be in-capacity of a live children buffer. The word read may
/// be stale or a mid-`memmove` duplicate of a neighbour, but it is always
/// *some* node handle that was linked into the tree, hence live (invariant
/// 1); misrouting is caught by version validation.
unsafe fn child_ptr_at<K, V>(slot: *const NodeRef<K, V>) -> *const RwLock<CNode<K, V>> {
    let copy = ptr::read_volatile(slot.cast::<ManuallyDrop<NodeRef<K, V>>>());
    Arc::as_ptr(&copy)
}

/// Like [`child_ptr_at`] but returns an owned handle (refcount bumped).
///
/// # Safety
///
/// Same as [`child_ptr_at`]; cloning is sound because the aliased `Arc` is
/// live with strong count ≥ 1 (the tree links it).
unsafe fn child_arc_at<K, V>(slot: *const NodeRef<K, V>) -> NodeRef<K, V> {
    let copy = ptr::read_volatile(slot.cast::<ManuallyDrop<NodeRef<K, V>>>());
    NodeRef::clone(&copy)
}

/// Reads the root pointer optimistically, returning a borrowed node handle
/// with no refcount traffic. `None` = the root cell is write-locked or was
/// swapped mid-read; restart.
///
/// The returned borrow is tied to the root cell's borrow, i.e. to the tree
/// borrow — exactly the span for which invariant 1 keeps every node alive.
pub(crate) fn root_ref<K: Key, V>(cell: &RwLock<NodeRef<K, V>>) -> Option<&RwLock<CNode<K, V>>> {
    let v = cell.optimistic_version()?;
    // SAFETY: the cell always holds a live NodeRef; a racing root swap is
    // caught by the validate below and the word itself is a valid handle
    // either way (invariant 1), live for the tree borrow.
    let node = unsafe {
        let copy = ptr::read_volatile(cell.data_ptr().cast::<ManuallyDrop<NodeRef<K, V>>>());
        &*Arc::as_ptr(&copy)
    };
    cell.validate(v).then_some(node)
}

/// Owned-handle flavour of [`root_ref`] for descents that need `Arc`s
/// (insert needs the leaf handle for poℓe maintenance, range for its
/// iterator guards).
pub(crate) fn root_arc<K: Key, V>(cell: &RwLock<NodeRef<K, V>>) -> Option<NodeRef<K, V>> {
    let v = cell.optimistic_version()?;
    // SAFETY: as in `root_ptr`; cloning a live Arc is sound.
    let arc = unsafe {
        let copy = ptr::read_volatile(cell.data_ptr().cast::<ManuallyDrop<NodeRef<K, V>>>());
        NodeRef::clone(&copy)
    };
    cell.validate(v).then_some(arc)
}

/// One optimistic routing step: if `node` (read under version `v`) is
/// internal, pick the child for `target`, read the **child's** version,
/// then validate the **parent** — the OLC hand-over-hand order that makes
/// the child version meaningful before the parent is released.
///
/// Generic over how the child handle is materialized so the hot `get` path
/// can stay refcount-free (raw pointers) while insert/range clone `Arc`s.
fn route_step<K: Key, V, H>(
    node: &RwLock<CNode<K, V>>,
    v: u64,
    target: Target<K>,
    materialize: impl Fn(*const NodeRef<K, V>) -> (H, *const RwLock<CNode<K, V>>),
) -> Result<Routed<H>, Conflict> {
    // SAFETY: discriminant is stable (invariant 3); field reads below are
    // volatile copies within pinned live buffers (invariants 1–2), and the
    // result is discarded unless `validate` succeeds.
    unsafe {
        let (keys, children) = match &*node.data_ptr() {
            CNode::Leaf { .. } => {
                // Leaf-ness is stable; no validation needed to report it.
                return Ok(Routed::Leaf);
            }
            CNode::Internal { keys, children } => (keys as *const Vec<K>, children as *const _),
        };
        let (kptr, klen) = vec_header(keys);
        let (cptr, clen) = vec_header::<NodeRef<K, V>>(children);
        if clen == 0 {
            return Err(Conflict); // torn header; cannot happen at rest
        }
        // Internal buffers are pinned at `internal_capacity + 1` keys and
        // `internal_capacity + 2` children; torn lengths are old-or-new
        // values and thus already in-capacity, but clamp the routing index
        // to the children length actually read so the slot access stays
        // in-bounds even if the two headers disagree.
        let i = match target {
            Target::Leftmost => 0,
            Target::Key(key) => raw_partition_point(kptr, klen.min(clen - 1), |k| *k <= key),
        };
        let (handle, child_ptr) = materialize(cptr.add(i.min(clen - 1)));
        let child = &*child_ptr;
        let Some(cv) = child.optimistic_version() else {
            return Err(Conflict);
        };
        if !node.validate(v) {
            return Err(Conflict);
        }
        Ok(Routed::Child(handle, cv))
    }
}

/// [`route_step`] returning a borrowed child handle (no refcount traffic)
/// — the point-lookup hot path. The child borrow inherits the parent's
/// lifetime, which is bounded by the tree borrow (invariant 1).
pub(crate) fn route_step_ref<K: Key, V>(
    node: &RwLock<CNode<K, V>>,
    v: u64,
    target: Target<K>,
) -> Result<Routed<&RwLock<CNode<K, V>>>, Conflict> {
    route_step(node, v, target, |slot| {
        // SAFETY: `slot` is in-capacity per route_step's clamping, and the
        // node behind it is live for the tree borrow (invariant 1).
        let p = unsafe { child_ptr_at(slot) };
        (unsafe { &*p }, p)
    })
}

/// [`route_step`] returning an owned child handle.
pub(crate) fn route_step_arc<K: Key, V>(
    node: &RwLock<CNode<K, V>>,
    v: u64,
    target: Target<K>,
) -> Result<Routed<NodeRef<K, V>>, Conflict> {
    route_step(node, v, target, |slot| {
        // SAFETY: `slot` is in-capacity per route_step's clamping.
        let arc = unsafe { child_arc_at(slot) };
        let p = Arc::as_ptr(&arc);
        (arc, p)
    })
}

/// Outcome of a latch-free leaf point lookup.
pub(crate) enum LeafRead<V> {
    /// Key present; the value was copied and validated.
    Hit(V),
    /// Key absent (validated).
    Miss,
    /// The leaf has absorbed overflow past its pinned reservation (the
    /// uniform-key case); the caller must re-read under a shared latch.
    Oversize,
    /// A write section raced the read; restart.
    Conflict,
}

/// Latch-free point lookup in the leaf behind `node`, read under version
/// `v`. `leaf_capacity` is the tree's configured leaf capacity — the pinned
/// buffer reservation is `leaf_capacity + 1`, so any in-range index below
/// that is in-capacity of **every** leaf buffer, past or present.
pub(crate) fn leaf_get<K: Key, V: Clone>(
    node: &RwLock<CNode<K, V>>,
    v: u64,
    key: K,
    leaf_capacity: usize,
) -> LeafRead<V> {
    // SAFETY: invariants 1–3 as in `route_step`; the value copy is held as
    // `MaybeUninit` and only interpreted after validation proves no write
    // section overlapped the reads.
    unsafe {
        let (keys, vals) = match &*node.data_ptr() {
            CNode::Internal { .. } => return LeafRead::Conflict,
            CNode::Leaf { keys, vals, .. } => (keys as *const Vec<K>, vals as *const Vec<V>),
        };
        let (kptr, klen) = vec_header(keys);
        if klen > leaf_capacity + 1 {
            // Absorbed-overflow leaf (or a torn length): the pinned-minimum
            // clamp no longer covers it; fall back to a latched read.
            return LeafRead::Oversize;
        }
        let pos = raw_partition_point(kptr, klen, |k| *k < key);
        if pos < klen && ptr::read_volatile(kptr.add(pos)) == key {
            let (vptr, _) = vec_header(vals);
            // `pos <= leaf_capacity`, in-capacity of every pinned vals
            // buffer even if the two headers raced differently.
            let copy = ptr::read_volatile(vptr.add(pos).cast::<MaybeUninit<V>>());
            if node.validate(v) {
                // Validated: `copy` is a bitwise alias of a live value that
                // was not touched during our reads. Clone it; never drop
                // the alias itself (MaybeUninit never drops).
                LeafRead::Hit(copy.assume_init_ref().clone())
            } else {
                LeafRead::Conflict
            }
        } else if node.validate(v) {
            LeafRead::Miss
        } else {
            LeafRead::Conflict
        }
    }
}

//! Raw node reads for optimistic lock coupling (OLC).
//!
//! With OLC enabled, traversal reads node contents **without holding the
//! node's lock**: take the node's version ([`RwLock::optimistic_version`]),
//! copy the interesting bytes, then [`RwLock::validate`]. When validation
//! fails the copied bytes are discarded unread; when it succeeds, no write
//! section overlapped the reads, so the copy is a consistent snapshot.
//!
//! # Safety argument
//!
//! Raw reads race with writers by design, so everything here is built on
//! three structural invariants of [`crate::ConcurrentTree`]:
//!
//! 1. **Nodes are immortal while the tree lives.** Splits only add nodes,
//!    deletes are lazy (no merges), and a replaced root stays linked as a
//!    child — so a node pointer obtained from the tree at any time remains
//!    dereferenceable until the tree is dropped (which requires `&mut`, i.e.
//!    no concurrent readers).
//! 2. **Node buffers are pinned** (see the `node` module docs): a node's
//!    `Vec` allocations are created with their maximum-ever capacity and
//!    never reallocated in place; the one growth case swaps buffers and
//!    retires the old allocation to a tree-level keep-alive list. Every
//!    leaf buffer therefore holds at least `leaf_capacity + 1` slots and
//!    every internal buffer at least its pinned reservation, alive for the
//!    tree's lifetime.
//! 3. **A node's discriminant (leaf vs internal) never changes** after
//!    construction, so matching on the enum without a lock is stable.
//!
//! Under those invariants every raw access below stays within a live
//! allocation even when it races a writer. The racing loads themselves go
//! through [`atomic_read`], a word-wise `Relaxed` atomic copy (the
//! "atomic memcpy" idiom), so the read side contains no plain or volatile
//! load that races a store — each word observed is a value some writer
//! actually published. What the memory model still does not fully bless is
//! the *write* side (writers mutate through `&mut` with plain stores); that
//! residual gray area is the same one production OLC trees (LeanStore,
//! Umbra, crossbeam's `SeqLock`) live with, and it is confined to this
//! module.
//!
//! Two typed gates make the copied bytes safe to *use*:
//!
//! * **Keys** may be torn across words, so materializing one as a `K`
//!   requires every bit pattern to be valid — exactly the contract of the
//!   [`quit_core::AnyBitPattern`] supertrait of [`Key`]. A torn key can
//!   still compare arbitrarily (or panic, e.g. NaN inside `OrderedF64`);
//!   both are safe, and the result is discarded once validation fails.
//! * **Values** are copied as `MaybeUninit` bytes and only interpreted
//!   after validation — and only when `V` has **no drop glue**
//!   (`!needs_drop::<V>()`). Validation proves the snapshot is consistent,
//!   but it does not keep the original value alive: a concurrent delete
//!   may drop it right after `validate`. With no drop glue that destruction
//!   releases nothing, so the snapshot aliases no freeable heap; for
//!   heap-owning values ([`LeafRead::NeedsLatch`]) the caller re-reads
//!   under the leaf's shared latch instead.

use crate::node::{CNode, NodeRef};
use crate::sync::RwLock;
use quit_core::Key;
use std::mem::{align_of, size_of, MaybeUninit};
use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// A validation failure: the bracket raced a write section; restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Conflict;

/// Outcome of one optimistic routing step at `node`.
pub(crate) enum Routed<H> {
    /// Descend into this child, whose optimistic version is the `u64`.
    Child(H, u64),
    /// The node is a leaf; the caller handles it (raw read or latch).
    Leaf,
}

/// Routing target of a descent: a concrete key, or the leftmost child
/// (unbounded range start).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Target<K> {
    /// Right-biased routing to `key` (`partition_point(sep <= key)`),
    /// matching the pessimistic descent.
    Key(K),
    /// Always take child 0.
    Leftmost,
}

/// Copies `*src` with word-wise `Relaxed` atomic loads ("atomic memcpy").
///
/// This is the one primitive every racing read in this module goes
/// through. Unlike `ptr::read_volatile`, each chunk is a real atomic load,
/// so a load racing an (atomic) store is defined behavior and yields a
/// value that was actually stored; the copy as a whole may still be torn
/// *across* chunks, which is why callers only trust it after
/// [`RwLock::validate`] (or via a typed gate such as `AnyBitPattern`).
/// `Relaxed` suffices: the `Acquire` fence inside `validate` orders every
/// one of these loads before the version re-load (seqlock recipe).
///
/// # Safety
///
/// `src` must be non-null, aligned for `T`, and point into a live
/// allocation with `size_of::<T>()` readable bytes for the duration of the
/// call (the module invariants provide this). The result is a bitwise
/// snapshot: do not `assume_init` it unless torn/stale bytes are valid for
/// `T`, and never drop it.
unsafe fn atomic_read<T>(src: *const T) -> MaybeUninit<T> {
    let mut out = MaybeUninit::<T>::uninit();
    let size = size_of::<T>();
    let align = align_of::<T>();
    let dst = out.as_mut_ptr().cast::<u8>();
    let src = src.cast::<u8>();
    // Chunk at the widest atomic granule `T`'s layout guarantees: every
    // chunk offset is a multiple of the granule, so each load is aligned.
    macro_rules! chunks {
        ($atom:ty, $prim:ty) => {{
            let step = size_of::<$prim>();
            let mut off = 0;
            while off < size {
                let word = (*src.add(off).cast::<$atom>()).load(Ordering::Relaxed);
                dst.add(off).cast::<$prim>().write(word);
                off += step;
            }
        }};
    }
    if align >= align_of::<AtomicUsize>() && size.is_multiple_of(size_of::<usize>()) {
        chunks!(AtomicUsize, usize)
    } else if align >= 4 && size.is_multiple_of(4) {
        chunks!(AtomicU32, u32)
    } else if align >= 2 && size.is_multiple_of(2) {
        chunks!(AtomicU16, u16)
    } else {
        chunks!(AtomicU8, u8)
    }
    out
}

/// Copies a `Vec`'s header (data pointer + length) without locking.
///
/// # Safety
///
/// `vec` must point into a node covered by the module invariants: each
/// header word read is one a writer actually published (a racing buffer
/// swap yields old or new words, each field of which belongs to a live
/// pinned allocation's header — in particular the data pointer is always
/// one of the two valid non-null pointers, satisfying `NonNull`). The
/// returned length is *untrusted* — callers must clamp it to the pinned
/// minimum capacity before indexing.
unsafe fn vec_header<T>(vec: *const Vec<T>) -> (*const T, usize) {
    let copy = atomic_read(vec);
    // Never dropped (MaybeUninit): this is a bitwise alias of the real Vec.
    let alias = copy.assume_init_ref();
    (alias.as_ptr(), alias.len())
}

/// `partition_point` over a raw key slice with racing atomic element loads.
///
/// Probes follow the branchless fixed-trip schedule from
/// [`quit_core::branchless_partition_point_by`] — the scalar data-parallel
/// search, never the SIMD one: each element must go through
/// [`atomic_read`], so wide vector loads on this racing memory are off the
/// table regardless of the tree's configured [`quit_core::SearchKind`].
///
/// # Safety
///
/// `ptr..ptr+len` must stay within one live allocation (caller clamps
/// `len`). Keys may be torn mid-write — materializing them is sound
/// because [`Key`]'s `AnyBitPattern` supertrait guarantees every bit
/// pattern is a valid `K` — and the result is only meaningful once the
/// caller validates the node version.
unsafe fn raw_partition_point<K: Key>(
    ptr: *const K,
    len: usize,
    pred: impl Fn(&K) -> bool,
) -> usize {
    quit_core::branchless_partition_point_by(len, |i| {
        let k = atomic_read(ptr.add(i)).assume_init();
        pred(&k)
    })
}

/// Copies the `Arc` in `slot` without touching its refcount, returning the
/// raw pointer to its `RwLock`.
///
/// # Safety
///
/// `slot` must be in-capacity of a live children buffer. The word read may
/// be stale or a mid-`memmove` duplicate of a neighbour, but it is always
/// *some* node handle that was linked into the tree, hence live (invariant
/// 1); misrouting is caught by version validation. The `MaybeUninit` copy
/// is never dropped, so the refcount is untouched.
unsafe fn child_ptr_at<K, V>(slot: *const NodeRef<K, V>) -> *const RwLock<CNode<K, V>> {
    let copy = atomic_read(slot);
    Arc::as_ptr(copy.assume_init_ref())
}

/// Like [`child_ptr_at`] but returns an owned handle (refcount bumped).
///
/// # Safety
///
/// Same as [`child_ptr_at`]; cloning is sound because the aliased `Arc` is
/// live with strong count ≥ 1 (the tree links it).
unsafe fn child_arc_at<K, V>(slot: *const NodeRef<K, V>) -> NodeRef<K, V> {
    let copy = atomic_read(slot);
    NodeRef::clone(copy.assume_init_ref())
}

/// Reads the root pointer optimistically, returning a borrowed node handle
/// with no refcount traffic. `None` = the root cell is write-locked or was
/// swapped mid-read; restart.
///
/// The returned borrow is tied to the root cell's borrow, i.e. to the tree
/// borrow — exactly the span for which invariant 1 keeps every node alive.
pub(crate) fn root_ref<K: Key, V>(cell: &RwLock<NodeRef<K, V>>) -> Option<&RwLock<CNode<K, V>>> {
    let v = cell.optimistic_version()?;
    // SAFETY: the cell always holds a live NodeRef; a racing root swap is
    // caught by the validate below and the word itself is a valid handle
    // either way (invariant 1), live for the tree borrow. The copy is
    // never dropped (no refcount traffic).
    let node = unsafe {
        let copy = atomic_read(cell.data_ptr());
        &*Arc::as_ptr(copy.assume_init_ref())
    };
    cell.validate(v).then_some(node)
}

/// Owned-handle flavour of [`root_ref`] for descents that need `Arc`s
/// (insert needs the leaf handle for poℓe maintenance, range for its
/// iterator guards).
pub(crate) fn root_arc<K: Key, V>(cell: &RwLock<NodeRef<K, V>>) -> Option<NodeRef<K, V>> {
    let v = cell.optimistic_version()?;
    // SAFETY: as in `root_ref`; cloning a live Arc is sound.
    let arc = unsafe {
        let copy = atomic_read(cell.data_ptr());
        NodeRef::clone(copy.assume_init_ref())
    };
    cell.validate(v).then_some(arc)
}

/// One optimistic routing step: if `node` (read under version `v`) is
/// internal, pick the child for `target`, read the **child's** version,
/// then validate the **parent** — the OLC hand-over-hand order that makes
/// the child version meaningful before the parent is released.
///
/// Generic over how the child handle is materialized so the hot `get` path
/// can stay refcount-free (raw pointers) while insert/range clone `Arc`s.
fn route_step<K: Key, V, H>(
    node: &RwLock<CNode<K, V>>,
    v: u64,
    target: Target<K>,
    materialize: impl Fn(*const NodeRef<K, V>) -> (H, *const RwLock<CNode<K, V>>),
) -> Result<Routed<H>, Conflict> {
    // SAFETY: discriminant is stable (invariant 3); field reads below are
    // atomic copies within pinned live buffers (invariants 1–2), and the
    // result is discarded unless `validate` succeeds.
    unsafe {
        let (keys, children) = match &*node.data_ptr() {
            CNode::Leaf { .. } => {
                // Leaf-ness is stable; no validation needed to report it.
                return Ok(Routed::Leaf);
            }
            CNode::Internal { keys, children } => (keys as *const Vec<K>, children as *const _),
        };
        let (kptr, klen) = vec_header(keys);
        let (cptr, clen) = vec_header::<NodeRef<K, V>>(children);
        if clen == 0 {
            return Err(Conflict); // torn header; cannot happen at rest
        }
        // Internal buffers are pinned at `internal_capacity + 1` keys and
        // `internal_capacity + 2` children; torn lengths are old-or-new
        // values and thus already in-capacity, but clamp the routing index
        // to the children length actually read so the slot access stays
        // in-bounds even if the two headers disagree.
        let i = match target {
            Target::Leftmost => 0,
            Target::Key(key) => raw_partition_point(kptr, klen.min(clen - 1), |k| *k <= key),
        };
        let (handle, child_ptr) = materialize(cptr.add(i.min(clen - 1)));
        let child = &*child_ptr;
        let Some(cv) = child.optimistic_version() else {
            return Err(Conflict);
        };
        if !node.validate(v) {
            return Err(Conflict);
        }
        Ok(Routed::Child(handle, cv))
    }
}

/// [`route_step`] returning a borrowed child handle (no refcount traffic)
/// — the point-lookup hot path. The child borrow inherits the parent's
/// lifetime, which is bounded by the tree borrow (invariant 1).
pub(crate) fn route_step_ref<K: Key, V>(
    node: &RwLock<CNode<K, V>>,
    v: u64,
    target: Target<K>,
) -> Result<Routed<&RwLock<CNode<K, V>>>, Conflict> {
    route_step(node, v, target, |slot| {
        // SAFETY: `slot` is in-capacity per route_step's clamping, and the
        // node behind it is live for the tree borrow (invariant 1).
        let p = unsafe { child_ptr_at(slot) };
        (unsafe { &*p }, p)
    })
}

/// [`route_step`] returning an owned child handle.
pub(crate) fn route_step_arc<K: Key, V>(
    node: &RwLock<CNode<K, V>>,
    v: u64,
    target: Target<K>,
) -> Result<Routed<NodeRef<K, V>>, Conflict> {
    route_step(node, v, target, |slot| {
        // SAFETY: `slot` is in-capacity per route_step's clamping.
        let arc = unsafe { child_arc_at(slot) };
        let p = Arc::as_ptr(&arc);
        (arc, p)
    })
}

/// Outcome of a latch-free leaf point lookup.
pub(crate) enum LeafRead<V> {
    /// Key present; the value was copied and validated.
    Hit(V),
    /// Key absent (validated).
    Miss,
    /// The leaf cannot be read latch-free; re-read it under a shared
    /// latch. Two triggers: the value type owns heap (`needs_drop::<V>()`
    /// — a post-validate clone of a raw snapshot could chase pointers a
    /// concurrent delete already freed), or the leaf has absorbed overflow
    /// past its pinned reservation (the uniform-key case), so the
    /// pinned-minimum index clamp no longer covers it.
    NeedsLatch,
    /// A write section raced the read; restart.
    Conflict,
}

/// Latch-free point lookup in the leaf behind `node`, read under version
/// `v`. `leaf_capacity` is the tree's configured leaf capacity — the pinned
/// buffer reservation is `leaf_capacity + 1`, so any in-range index below
/// that is in-capacity of **every** leaf buffer, past or present.
pub(crate) fn leaf_get<K: Key, V: Clone>(
    node: &RwLock<CNode<K, V>>,
    v: u64,
    key: K,
    leaf_capacity: usize,
) -> LeafRead<V> {
    if std::mem::needs_drop::<V>() {
        // Validation proves the byte snapshot is consistent, but it does
        // not keep the *original* value alive: a concurrent delete
        // (`vals.remove`) may drop it between `validate` and the clone of
        // the snapshot. For a heap-owning V that drop frees memory the
        // snapshot's internal pointers still reference — use-after-free —
        // so such values must be read under the leaf's shared latch. The
        // branch is monomorphized away for plain-data values (u64 etc.).
        return LeafRead::NeedsLatch;
    }
    // SAFETY: invariants 1–3 as in `route_step`; the value copy is held as
    // `MaybeUninit` and only interpreted after validation proves no write
    // section overlapped the reads, and `V` has no drop glue (gate above),
    // so no concurrent destruction of the original can free anything the
    // snapshot aliases.
    unsafe {
        let (keys, vals) = match &*node.data_ptr() {
            CNode::Internal { .. } => return LeafRead::Conflict,
            CNode::Leaf { keys, vals, .. } => (keys as *const Vec<K>, vals as *const Vec<V>),
        };
        let (kptr, klen) = vec_header(keys);
        if klen > leaf_capacity + 1 {
            // Absorbed-overflow leaf (or a torn length): the pinned-minimum
            // clamp no longer covers it; fall back to a latched read.
            return LeafRead::NeedsLatch;
        }
        let pos = raw_partition_point(kptr, klen, |k| *k < key);
        if pos < klen && atomic_read(kptr.add(pos)).assume_init() == key {
            let (vptr, _) = vec_header(vals);
            // `pos <= leaf_capacity`, in-capacity of every pinned vals
            // buffer even if the two headers raced differently.
            let copy = atomic_read(vptr.add(pos));
            if node.validate(v) {
                // Validated: `copy` is a bitwise alias of a live value that
                // was not touched during our reads. Clone it; never drop
                // the alias itself (MaybeUninit never drops), and the
                // `needs_drop` gate above guarantees nothing the alias
                // points at can have been freed since.
                LeafRead::Hit(copy.assume_init_ref().clone())
            } else {
                LeafRead::Conflict
            }
        } else if node.validate(v) {
            LeafRead::Miss
        } else {
            LeafRead::Conflict
        }
    }
}

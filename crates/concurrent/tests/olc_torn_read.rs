//! Deterministic torn-read regression for optimistic lock coupling.
//!
//! Requires `--features olc-test-hooks`: the tree exposes a pause point
//! in the optimistic point-lookup descent, after the leaf's version has
//! been read but before its contents are. A reader is pinned exactly
//! there while a writer splits the very leaf it is about to read — the
//! worst-case torn window. The reader must detect the version change,
//! restart, and still return the correct value; if validation were
//! broken it would instead return a value read from a half-moved leaf.
#![cfg(feature = "olc-test-hooks")]

use quit_concurrent::{test_hooks, ConcConfig, ConcurrentTree};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock};

/// The hook registry is process-global, so tests that install hooks must
/// not overlap (cargo runs `#[test]`s in parallel by default).
fn hook_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Pins one optimistic lookup at the leaf pause point, splits that leaf
/// underneath it, releases it, and returns the lookup's result.
fn read_during_split(
    tree: &ConcurrentTree<u64, u64>,
    read_key: u64,
    split_inserts: &[u64],
) -> Option<u64> {
    let paused = Arc::new(Barrier::new(2));
    let resume = Arc::new(Barrier::new(2));
    // The hook fires on every optimistic leaf arrival — including the
    // reader's own post-restart retry — so a latch makes it one-shot.
    let fired = Arc::new(AtomicBool::new(false));
    {
        let (paused, resume, fired) = (paused.clone(), resume.clone(), fired.clone());
        test_hooks::set_leaf_pause(move || {
            if !fired.swap(true, Ordering::SeqCst) {
                paused.wait();
                resume.wait();
            }
        });
    }

    let result = std::thread::scope(|s| {
        let reader = s.spawn(|| tree.get(read_key));
        // Reader is now pinned between leaf-version read and leaf read.
        paused.wait();
        for &k in split_inserts {
            tree.insert(k, k * 10);
        }
        resume.wait();
        reader.join().unwrap()
    });
    test_hooks::clear_leaf_pause();
    result
}

#[test]
fn pinned_reader_survives_leaf_split() {
    let _serial = hook_lock();
    let tree: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(4));
    for k in [0u64, 2, 4] {
        tree.insert(k, k * 10);
    }
    let restarts_before = tree.stats().olc_restarts.get();

    // Phase 1: the read key stays in the LEFT half after the split, so a
    // torn read would see the leaf mid-drain.
    assert_eq!(read_during_split(&tree, 2, &[1, 3, 5]), Some(20));

    // Phase 2: the read key has moved to the RIGHT half — the pinned
    // reader holds a pre-split leaf reference whose key range no longer
    // covers the key, and must restart into the new sibling.
    let probe = 5;
    assert_eq!(read_during_split(&tree, probe, &[6, 7, 8, 9]), Some(50));

    // Both phases forced at least one validate-fail-and-restart; a
    // validation bug would have returned torn data with zero restarts.
    assert!(
        tree.stats().olc_restarts.get() > restarts_before,
        "pinned reads never restarted: validation is not detecting the split"
    );
    assert!(tree.check_consistency().is_ok());
}

#[test]
fn unpaused_lookups_are_unaffected_by_an_installed_then_cleared_hook() {
    let _serial = hook_lock();
    let tree: ConcurrentTree<u64, u64> = ConcurrentTree::new(ConcConfig::small(4));
    test_hooks::set_leaf_pause(|| {});
    for k in 0..64u64 {
        tree.insert(k, k + 1);
    }
    assert_eq!(tree.get(17), Some(18));
    test_hooks::clear_leaf_pause();
    assert_eq!(tree.get(63), Some(64));
    assert_eq!(tree.len(), 64);
}

//! Fig 5a: ℓiℓ vs tail fast-insert fractions for highly sorted data.
//! Fig 5b: the analytic model — ℓiℓ expects `FI = (1−k)²` fast-inserts
//! (Eq. 1) against the ideal `1−k`, compared with simulation.

use bods::BodsSpec;
use quit_bench::{ingest, pct, print_table, Opts};
use quit_core::Variant;

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;

    // ---- Fig 5a ----
    let ks = [0.0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.03];
    let mut rows = Vec::new();
    for &k in &ks {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        let tail = ingest(Variant::Tail, opts.tree_config(), &keys);
        let lil = ingest(Variant::Lil, opts.tree_config(), &keys);
        rows.push(vec![
            pct(k),
            format!("{:.1}", tail.tree.stats().fast_insert_fraction() * 100.0),
            format!("{:.1}", lil.tree.stats().fast_insert_fraction() * 100.0),
        ]);
    }
    print_table(
        &format!("Fig 5a — fast-inserts: tail vs lil (N={n})"),
        &["K (%)", "tail %", "lil %"],
        &rows,
    );
    println!("paper: lil holds ~98% fast-inserts at K=1% where tail collapses to ~0%");

    // ---- Fig 5b ----
    let sim_n = (n / 10).max(100_000);
    let mut rows = Vec::new();
    for k10 in 0..=10 {
        let k = k10 as f64 / 10.0;
        let keys = BodsSpec::new(sim_n, k, 1.0).with_seed(opts.seed).generate();
        let lil = ingest(Variant::Lil, opts.tree_config(), &keys);
        let model = (1.0 - k) * (1.0 - k) * 100.0;
        let ideal = (1.0 - k) * 100.0;
        rows.push(vec![
            pct(k),
            format!("{:.1}", lil.tree.stats().fast_insert_fraction() * 100.0),
            format!("{model:.1}"),
            format!("{ideal:.1}"),
        ]);
    }
    print_table(
        &format!("Fig 5b — lil measured vs model (1−k)² vs ideal 1−k (N={sim_n})"),
        &["K (%)", "lil measured %", "lil model %", "ideal %"],
        &rows,
    );
    println!("paper: measured lil tracks (1−k)²; the gap to 1−k is the poℓe headroom");
}

//! Fig 8: ingestion speedup of tail-B+-tree, ℓiℓ-B+-tree, and QuIT relative
//! to the classical B+-tree while varying data sortedness (L = 100%).

use bods::BodsSpec;
use quit_bench::{ingest_reps, pct, print_table, Opts, K_GRID};
use quit_core::Variant;

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let mut rows = Vec::new();
    for &k in &K_GRID {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        let base = ingest_reps(Variant::Classic, opts.tree_config(), &keys, opts.reps);
        let mut row = vec![pct(k), "1.00".to_string()];
        for v in [Variant::Tail, Variant::Lil, Variant::Quit] {
            let run = ingest_reps(v, opts.tree_config(), &keys, opts.reps);
            row.push(format!(
                "{:.2}",
                base.elapsed.as_secs_f64() / run.elapsed.as_secs_f64()
            ));
        }
        rows.push(row);
    }
    print_table(
        &format!("Fig 8 — ingestion speedup over B+-tree (N={n}, L=100%)"),
        &["K (%)", "B+-tree", "tail", "lil", "QuIT"],
        &rows,
    );
    println!("\npaper: QuIT ~3x at K=0, ~2.5x for K<25%, ~1.4x at K=25%, ~1x at 100%;");
    println!("       tail ~3x only at K=0; lil within 10% of QuIT for K<5%");
}

//! Fig 12: stress test — a workload alternating between near-sorted
//! (K=10%) and fully scrambled (K=100%) segments. Reports the cumulative
//! fast-inserts of tail-, ℓiℓ-, poℓe- (no reset), and full QuIT trees at
//! each segment boundary; a flat step means the fast path was stale.

use bods::segmented_workload;
use quit_bench::{print_table, Opts};
use quit_core::Variant;

fn main() {
    let opts = Opts::from_args();
    let seg = (opts.n / 5).max(10_000);
    let segments = [
        (seg, 0.10),
        (seg, 1.0),
        (seg, 0.10),
        (seg, 1.0),
        (seg, 0.10),
    ];
    let keys = segmented_workload(&segments, opts.seed);

    let variants = [
        Variant::Tail,
        Variant::Lil,
        Variant::PoleOnly,
        Variant::Quit,
    ];
    let mut series: Vec<Vec<u64>> = Vec::new();
    for v in variants {
        let mut tree = v.build::<u64, u64>(opts.tree_config());
        let mut snaps = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i as u64);
            if (i + 1) % seg == 0 {
                snaps.push(tree.stats().fast_inserts.get());
            }
        }
        tree.check_invariants().expect("tree stays valid");
        series.push(snaps);
    }

    let mut rows = Vec::new();
    for s in 0..segments.len() {
        let mut row = vec![format!(
            "seg {} (K={}%)",
            s + 1,
            (segments[s].1 * 100.0) as u32
        )];
        for vs in &series {
            row.push(format!("{}", vs[s]));
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Fig 12 — cumulative fast-inserts after each segment ({} x {seg} entries)",
            segments.len()
        ),
        &["segment end", "tail", "lil", "pole", "QuIT"],
        &rows,
    );
    println!("\npaper: tail goes stale immediately; pole is trapped after the first");
    println!("       scrambled segment; QuIT's reset keeps recovering (~11% more");
    println!("       fast-inserts than lil by the end)");
}

//! Fig 11: K×L heatmaps comparing ℓiℓ-B+-tree and QuIT — (a)/(b) fraction
//! of fast-inserts and (c)/(d) average leaf occupancy while varying both
//! the number of out-of-order entries (K) and their max displacement (L).

use bods::BodsSpec;
use quit_bench::{ingest, pct, print_table, Opts};
use quit_core::Variant;

const K_VALUES: [f64; 6] = [0.0, 0.01, 0.03, 0.05, 0.25, 0.50];
const L_VALUES: [f64; 5] = [0.01, 0.03, 0.05, 0.25, 0.50];

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let headers: Vec<String> = std::iter::once("L\\K (%)".to_string())
        .chain(K_VALUES.iter().map(|&k| pct(k)))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    for (variant, label) in [(Variant::Lil, "lil"), (Variant::Quit, "QuIT")] {
        let mut fast_rows = Vec::new();
        let mut occ_rows = Vec::new();
        for &l in &L_VALUES {
            let mut fast_row = vec![pct(l)];
            let mut occ_row = vec![pct(l)];
            for &k in &K_VALUES {
                let keys = BodsSpec::new(n, k, l).with_seed(opts.seed).generate();
                let run = ingest(variant, opts.tree_config(), &keys);
                fast_row.push(format!(
                    "{:.0}",
                    run.tree.stats().fast_insert_fraction() * 100.0
                ));
                occ_row.push(format!(
                    "{:.0}",
                    run.tree.memory_report().avg_leaf_occupancy * 100.0
                ));
            }
            fast_rows.push(fast_row);
            occ_rows.push(occ_row);
        }
        print_table(
            &format!("Fig 11 — {label}: %% fast-inserts (N={n})"),
            &headers_ref,
            &fast_rows,
        );
        print_table(
            &format!("Fig 11 — {label}: %% avg leaf occupancy (N={n})"),
            &headers_ref,
            &occ_rows,
        );
    }
    println!("\npaper: fast-inserts are insensitive to L; lil ~57/26% at K=25/50% vs");
    println!("       QuIT ~70/46%; occupancy: lil 50%→62% as K grows, QuIT 100%→61%");
}

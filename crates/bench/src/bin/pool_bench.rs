//! Buffer-pool benchmark: larger-than-RAM ingest and read behaviour of
//! the paged backend. Sizes the pool at ~1/8 of the tree's working set
//! (measured on an identical in-memory build), then drives sorted ingest,
//! random point reads, and a full scan through it, reporting hit rate,
//! faults, evictions, resident pages, and the paged-vs-arena overhead.
//! Dumps everything to `results/pool.json`.
//!
//! With `--check`, self-asserts the subsystem's acceptance bars: the JSON
//! is valid, the working set really is larger than RAM (live nodes ≥ 8×
//! the pool), residency stays bounded by the pool budget plus one
//! operation's pin set, eviction actually happened, and sorted ingest —
//! the paper's fast-path regime, which keeps hitting the rightmost spine —
//! sustains a ≥ 90% pool hit rate despite the 1/8 budget.
//!
//! ```sh
//! cargo run --release -p quit-bench --bin pool_bench -- --check
//! ```

use quit_bench::json_is_valid;
use quit_core::{BpTree, FastPathMode, StorageKind, TreeConfig};
use std::time::Instant;

struct Args {
    n: usize,
    seed: u64,
    check: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        n: 2_000_000,
        seed: 0xB00C,
        check: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let take = |i: usize| argv.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match argv[i].as_str() {
            "--n" => {
                if let Some(v) = take(i) {
                    a.n = v as usize;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = take(i) {
                    a.seed = v;
                    i += 1;
                }
            }
            "--check" => a.check = true,
            "--quick" => a.n = a.n.min(200_000),
            "--help" | "-h" => {
                eprintln!("options: --n <entries> --seed <u64> --quick --check");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other}"),
        }
        i += 1;
    }
    a
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn main() {
    let args = parse_args();
    let n = args.n;
    // 120-entry leaves: the largest geometry whose encoded u64/u64 nodes
    // fit a 4 KiB page (paper-default 510 would need ~8 KiB pages). The
    // arena baseline uses the same geometry so the overhead is pool-only.
    let base = TreeConfig::small(120);

    // --- Size the pool off the real working set -----------------------
    // An identical in-memory build tells us how many nodes n sorted keys
    // settle into with this geometry; the pool gets 1/8 of that.
    let mut sizing: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, base.clone());
    let t0 = Instant::now();
    for k in 0..n as u64 {
        sizing.insert(k, k);
    }
    let arena_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    let working_set = sizing.node_count();
    let pool_pages = (working_set / 8).max(8);
    drop(sizing);
    println!(
        "pool bench: N={n} sorted keys -> {working_set} nodes; pool budget {pool_pages} pages \
         (1/8 working set)"
    );

    let config = base.with_storage(StorageKind::paged(pool_pages));
    let page_size = match config.storage {
        StorageKind::Paged { page_size, .. } => page_size,
        StorageKind::Arena => unreachable!(),
    };

    // --- Sorted ingest through the 1/8 pool ---------------------------
    // The paper's fast-path regime: every insert lands on the rightmost
    // leaf, so the hot spine stays resident and the pool only faults when
    // a leaf fills and retires. This is the ≥ 90% hit-rate bar.
    let mut tree: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, config);
    let t0 = Instant::now();
    for k in 0..n as u64 {
        tree.insert(k, k);
    }
    let paged_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    let ingest = tree.metrics();
    let ingest_hit_rate = ingest.pool_hit_rate();
    let resident = tree.resident_nodes();
    let resident_bound = pool_pages + 2 * (tree.height() + 2);
    let resident_bytes = resident * page_size;
    println!(
        "  sorted ingest: {paged_ns:.1} ns/insert ({arena_ns:.1} arena, {:.2}x), \
         hit rate {:.4}, {} faults, {} evictions, {resident}/{} resident \
         (~{} KiB pool RSS)",
        paged_ns / arena_ns,
        ingest_hit_rate,
        ingest.page_faults,
        ingest.page_evictions,
        tree.node_count(),
        resident_bytes >> 10,
    );

    // --- Random point reads under pressure ----------------------------
    // Uniform gets over the full key space have no locality: with 1/8
    // residency most leaf visits fault, so this phase prices a miss-heavy
    // pool (the spine still hits). `&self` reads fault without evicting,
    // so residency is trimmed back to budget every 1k gets — otherwise
    // the read burst would quietly cache the whole tree.
    let reads = (n / 10).max(1);
    tree.trim_residency();
    let before = tree.metrics();
    let mut rng = args.seed;
    let t0 = Instant::now();
    let mut found = 0usize;
    for i in 0..reads {
        if tree.get(splitmix(&mut rng) % n as u64).is_some() {
            found += 1;
        }
        if i % 1024 == 1023 {
            tree.trim_residency();
        }
    }
    let read_ns = t0.elapsed().as_nanos() as f64 / reads as f64;
    let after = tree.metrics();
    let read_faults = after.page_faults - before.page_faults;
    let read_hits = after.pool_hits - before.pool_hits;
    let read_hit_rate = read_hits as f64 / (read_hits + read_faults).max(1) as f64;
    assert_eq!(found, reads, "every sampled key was inserted");
    println!(
        "  random reads:  {read_ns:.1} ns/get, hit rate {read_hit_rate:.4}, {read_faults} faults"
    );

    // --- Full scan -----------------------------------------------------
    // One pass over every leaf: the pool can at best keep the spine, so
    // the fault count approaches the leaf count — the worst case the pool
    // must survive with bounded residency (after the post-scan trim).
    tree.trim_residency();
    let before = tree.metrics();
    let t0 = Instant::now();
    let scanned = tree.range(..).count();
    let scan_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = tree.metrics();
    let scan_faults = after.page_faults - before.page_faults;
    assert_eq!(scanned, n, "scan must see every entry");
    tree.trim_residency();
    let resident_after_scan = tree.resident_nodes();
    println!(
        "  full scan:     {scan_ms:.1} ms, {scan_faults} faults, {resident_after_scan} resident \
         after trim"
    );

    let json = format!(
        "{{\"n\":{n},\"working_set_nodes\":{working_set},\"pool_pages\":{pool_pages},\
         \"page_size\":{page_size},\
         \"ingest\":{{\"arena_ns_per_insert\":{arena_ns:.1},\"paged_ns_per_insert\":{paged_ns:.1},\
         \"hit_rate\":{ingest_hit_rate:.4},\"page_faults\":{},\"evictions\":{},\
         \"resident_nodes\":{resident},\"resident_bytes\":{resident_bytes}}},\
         \"random_reads\":{{\"reads\":{reads},\"ns_per_get\":{read_ns:.1},\
         \"hit_rate\":{read_hit_rate:.4},\"page_faults\":{read_faults}}},\
         \"scan\":{{\"ms\":{scan_ms:.1},\"page_faults\":{scan_faults},\
         \"resident_nodes\":{resident_after_scan}}}}}",
        ingest.page_faults, ingest.page_evictions,
    );
    assert!(json_is_valid(&json), "emitted document must be valid JSON");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/pool.json", &json).expect("write results/pool.json");
    println!("wrote results/pool.json ({} bytes)", json.len());

    if args.check {
        assert!(
            tree.node_count() >= 8 * pool_pages,
            "working set ({} nodes) must dwarf the pool ({pool_pages} pages)",
            tree.node_count()
        );
        assert!(
            resident <= resident_bound && resident_after_scan <= resident_bound,
            "residency must stay bounded: {resident} / {resident_after_scan} resident vs \
             pool {pool_pages} + pin-set bound {resident_bound}"
        );
        assert!(
            ingest.page_evictions > 0,
            "a 1/8 pool must evict during ingest"
        );
        assert!(
            ingest_hit_rate >= 0.90,
            "sorted ingest hit rate {ingest_hit_rate:.4} below the 0.90 bar"
        );
        println!(
            "check passed: hit rate {ingest_hit_rate:.4} (bar 0.90), residency {resident} <= \
             {resident_bound}, {} evictions, working set {}x pool",
            ingest.page_evictions,
            tree.node_count() / pool_pages
        );
    }
}

//! Fig 3: the tail-leaf optimization is only effective for extremely high
//! sortedness — fraction of fast-inserts when ingesting into a tail-B+-tree
//! as the percentage of out-of-order entries (K) grows.

use bods::BodsSpec;
use quit_bench::{ingest, pct, print_table, Opts};
use quit_core::Variant;

fn main() {
    let opts = Opts::from_args();
    // Paper uses 5M entries for this figure.
    let n = opts.n;
    let ks = [0.0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.03, 0.05, 0.10];
    let mut rows = Vec::new();
    for &k in &ks {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        let run = ingest(Variant::Tail, opts.tree_config(), &keys);
        let fast = run.tree.stats().fast_insert_fraction() * 100.0;
        rows.push(vec![pct(k), format!("{fast:.1}")]);
    }
    print_table(
        &format!("Fig 3 — tail-B+-tree fast-inserts vs K (N={n})"),
        &["K (%)", "% fast-inserts"],
        &rows,
    );
    println!("\npaper: ~100% at K=0, 23% at K=0.05%, 11% at K=0.1%, <1% at K>=1%");
}

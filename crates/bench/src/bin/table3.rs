//! Table 3: QuIT scales with data size — ingestion speedup over the
//! classical B+-tree and the fraction of fast-inserts, for fully sorted,
//! nearly sorted (K=L=5%), and less sorted (K=L=25%) streams as N grows.

use bods::BodsSpec;
use quit_bench::{ingest_reps, print_table, Opts};
use quit_core::Variant;

fn main() {
    let opts = Opts::from_args();
    // Paper scales 50M→4B; default harness scales n/4 → 4n.
    let sizes: Vec<usize> = [1, 2, 4, 8, 16]
        .iter()
        .map(|m| opts.n * m / 4)
        .filter(|&s| s >= 10_000)
        .collect();
    let workloads = [
        ("fully sorted", 0.0, 1.0),
        ("nearly sorted", 0.05, 0.05),
        ("less sorted", 0.25, 0.25),
    ];
    let mut rows = Vec::new();
    for (label, k, l) in workloads {
        for &n in &sizes {
            let keys = BodsSpec::new(n, k, l).with_seed(opts.seed).generate();
            let base = ingest_reps(Variant::Classic, opts.tree_config(), &keys, opts.reps);
            let quit = ingest_reps(Variant::Quit, opts.tree_config(), &keys, opts.reps);
            rows.push(vec![
                label.to_string(),
                format!("{:.1}M", n as f64 / 1e6),
                format!(
                    "{:.2}x",
                    base.elapsed.as_secs_f64() / quit.elapsed.as_secs_f64()
                ),
                format!("{:.1}", quit.tree.stats().fast_insert_fraction() * 100.0),
            ]);
        }
    }
    print_table(
        "Table 3 — QuIT scales with data size",
        &["workload", "N", "speedup", "% fast-inserts"],
        &rows,
    );
    println!("\npaper: speedup 3.13→3.31x (sorted), 2.43→2.77x (nearly), 1.31→1.35x");
    println!("       (less); fast-inserts flat at 100% / 95.2% / ~75% across sizes");
}

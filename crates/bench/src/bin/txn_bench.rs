//! Transaction overhead benchmark: auto-commit single-op `TxnStore`
//! inserts priced against raw (non-transactional) `Durable` inserts at
//! the same durability level, multi-key transaction batching, and an SI
//! soak whose recorded history is re-verified by the testkit's
//! snapshot-isolation checker. Dumps everything to `results/txn.json`.
//!
//! With `--check`, self-asserts the subsystem's acceptance bars: the
//! JSON is valid, the soak history has **zero** SI violations, and
//! single-op transactional overhead at `GroupCommit` (the production
//! default, where the fsync dominates both sides) stays within 2× of a
//! raw insert.
//!
//! ```sh
//! cargo run --release -p quit-bench --bin txn_bench -- --check
//! ```
//!
//! Storage is `MemStorage` — the numbers price the MVCC + commit-group
//! machinery itself (version chains, timestamp allocation, stripe locks,
//! WAL framing), not a device.

use quit_bench::json_is_valid;
use quit_concurrent::ConcConfig;
use quit_durability::{
    concurrent_builder, DurabilityConfig, DurabilityLevel, Durable, MemStorage, Storage, TxnConfig,
    TxnStore,
};
use quit_testkit::{replay_txn_concurrent, SiSoakSpec};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    n: usize,
    seed: u64,
    check: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        n: 200_000,
        seed: 0x7A_B3CC,
        check: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let take = |i: usize| argv.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match argv[i].as_str() {
            "--n" => {
                if let Some(v) = take(i) {
                    a.n = v as usize;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = take(i) {
                    a.seed = v;
                    i += 1;
                }
            }
            "--check" => a.check = true,
            "--quick" => a.n = a.n.min(50_000),
            "--help" | "-h" => {
                eprintln!("options: --n <entries> --seed <u64> --quick --check");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other}"),
        }
        i += 1;
    }
    a
}

fn main() {
    let args = parse_args();
    let n = args.n;
    let tree = ConcConfig::paper_default();

    // --- Single-op overhead: raw Durable vs auto-commit TxnStore ------
    // Same keys, same tree family, same durability level; the delta is
    // the transaction machinery (commit timestamp, version chain, the
    // extra TxnCommit frame). Three repeats per side, best taken — the
    // first iteration eats cold caches and allocator warmup for both.
    const REPEATS: usize = 3;
    println!("single-op txn overhead (N={n} sorted inserts, MemStorage, best of {REPEATS}):");
    println!(
        "  {:<14} {:>12} {:>12} {:>8}",
        "level", "raw ns/op", "txn ns/op", "ratio"
    );
    let mut json = format!("{{\"n\":{n},\"single_op\":[");
    let mut group_ratio = f64::NAN;
    for level in [DurabilityLevel::Buffered, DurabilityLevel::GroupCommit] {
        let mut raw_ns = f64::INFINITY;
        let mut txn_ns = f64::INFINITY;
        for _ in 0..REPEATS {
            let storage = Arc::new(MemStorage::new());
            let (raw, _) = Durable::open(
                storage as Arc<dyn Storage>,
                DurabilityConfig::default().with_level(level),
                concurrent_builder::<u64, u64>(tree.clone()),
            )
            .unwrap();
            let start = Instant::now();
            for k in 0..n as u64 {
                raw.insert_shared(k, k);
            }
            raw_ns = raw_ns.min(start.elapsed().as_nanos() as f64 / n as f64);
            drop(raw);

            let storage = Arc::new(MemStorage::new());
            let config = TxnConfig::default()
                .with_tree(tree.clone())
                .with_durability(DurabilityConfig::default().with_level(level));
            let (txn, _) = TxnStore::open(storage as Arc<dyn Storage>, config).unwrap();
            let start = Instant::now();
            for k in 0..n as u64 {
                txn.insert(k, k).unwrap();
            }
            txn_ns = txn_ns.min(start.elapsed().as_nanos() as f64 / n as f64);
            assert_eq!(txn.len(), n);
            drop(txn);
        }
        let ratio = txn_ns / raw_ns;
        if level == DurabilityLevel::GroupCommit {
            group_ratio = ratio;
        }
        println!(
            "  {:<14} {raw_ns:>12.1} {txn_ns:>12.1} {ratio:>7.2}x",
            format!("{level:?}")
        );
        if !json.ends_with('[') {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"level\":\"{level:?}\",\"raw_ns\":{raw_ns:.1},\"txn_ns\":{txn_ns:.1},\
             \"ratio\":{ratio:.3}}}"
        ));
    }
    json.push(']');

    // --- Multi-key transactions: commit-group amortization ------------
    // One commit group (and at GroupCommit one fsync wait) per 4096-key
    // transaction instead of per key.
    let storage = Arc::new(MemStorage::new());
    let config = TxnConfig::default()
        .with_tree(tree.clone())
        .with_durability(DurabilityConfig::group_commit());
    let (store, _) = TxnStore::open(storage as Arc<dyn Storage>, config).unwrap();
    let entries: Vec<(u64, u64)> = (0..n as u64).map(|k| (k, k)).collect();
    let start = Instant::now();
    for chunk in entries.chunks(4096) {
        let mut txn = store.begin();
        for &(k, v) in chunk {
            txn.insert(k, v);
        }
        txn.commit().unwrap();
    }
    let batch_ns = start.elapsed().as_nanos() as f64 / n as f64;
    assert_eq!(store.len(), n);
    println!("4096-key transactions: {batch_ns:.1} ns/key");
    json.push_str(&format!(",\"batch_txn\":{{\"ns_per_key\":{batch_ns:.1}}}"));
    drop(store);

    // --- SI soak: the history the bench ran is itself verified --------
    let spec = SiSoakSpec {
        threads: 4,
        txns_per_thread: 1_500,
        keys: 256,
        seed: args.seed,
        ..SiSoakSpec::default()
    };
    let start = Instant::now();
    let soak = replay_txn_concurrent(&spec);
    let soak_secs = start.elapsed().as_secs_f64();
    let (violations, detail) = match &soak {
        Ok(report) => {
            println!(
                "SI soak: {} events, {} commits, {} conflicts, 0 violations in {soak_secs:.2} s",
                report.events, report.stats.commits, report.stats.conflicts
            );
            json.push_str(&format!(
                ",\"si_soak\":{{\"events\":{},\"commits\":{},\"conflicts\":{},\
                 \"aborts\":{},\"violations\":0,\"secs\":{soak_secs:.2}}}}}",
                report.events, report.stats.commits, report.stats.conflicts, report.stats.aborts
            ));
            (0, String::new())
        }
        Err(v) => {
            println!("SI soak FAILED: {v}");
            json.push_str(&format!(
                ",\"si_soak\":{{\"violations\":1,\"detail\":{:?},\"secs\":{soak_secs:.2}}}}}",
                v.to_string()
            ));
            (1, v.to_string())
        }
    };

    assert!(json_is_valid(&json), "emitted document must be valid JSON");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/txn.json", &json).expect("write results/txn.json");
    println!("wrote results/txn.json ({} bytes)", json.len());

    if args.check {
        assert_eq!(violations, 0, "SI soak must be violation-free: {detail}");
        assert!(
            group_ratio <= 2.0,
            "single-op txn overhead at GroupCommit is {group_ratio:.2}x, bar is 2x"
        );
        println!("check passed: 0 SI violations, GroupCommit overhead {group_ratio:.2}x (bar 2x)");
    }
}

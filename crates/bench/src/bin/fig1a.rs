//! Fig 1a: the teaser — average insert latency for fully / nearly / less
//! sorted streams, and average point-lookup latency, for the tail-B+-tree,
//! SWARE, and QuIT.

use bods::{point_lookup_keys, BodsSpec};
use quit_bench::{ingest_reps, print_table, time_best, time_point_lookups, Opts};
use quit_core::Variant;
use sware::{SaBpTree, SwareConfig};

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let lookups = (n / 100).max(1000);
    let workloads = [("fully", 0.0), ("near", 0.05), ("less", 0.25)];

    let mut insert_rows = Vec::new();
    let mut lookup_row = vec!["lookup".to_string()];
    let mut lookup_done = false;
    for (label, k) in workloads {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();

        let mut tail = ingest_reps(Variant::Tail, opts.tree_config(), &keys, opts.reps);
        let mut quit = ingest_reps(Variant::Quit, opts.tree_config(), &keys, opts.reps);
        let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::for_data_size(n));
        let best = time_best(opts.reps, || {
            sa = SaBpTree::new(SwareConfig::for_data_size(n));
            for (i, &key) in keys.iter().enumerate() {
                sa.insert(key, i as u64);
            }
        });
        let sware_ns = best.as_nanos() as f64 / n as f64;

        insert_rows.push(vec![
            label.to_string(),
            format!("{:.0}", tail.ns_per_insert),
            format!("{sware_ns:.0}"),
            format!("{:.0}", quit.ns_per_insert),
        ]);

        if !lookup_done && label == "near" {
            // The paper's lookup bar is measured once, on a near-sorted
            // build, with uniform random lookups.
            let probes = point_lookup_keys(n, lookups, opts.seed ^ 9);
            let tail_q = (0..opts.reps)
                .map(|_| time_point_lookups(&mut tail.tree, &probes))
                .fold(f64::MAX, f64::min);
            let best = time_best(opts.reps, || {
                let mut hits = 0usize;
                for &p in &probes {
                    if sa.get(p).is_some() {
                        hits += 1;
                    }
                }
                std::hint::black_box(hits);
            });
            let sware_q = best.as_nanos() as f64 / probes.len() as f64;
            let quit_q = (0..opts.reps)
                .map(|_| time_point_lookups(&mut quit.tree, &probes))
                .fold(f64::MAX, f64::min);
            lookup_row.extend([
                format!("{tail_q:.0}"),
                format!("{sware_q:.0}"),
                format!("{quit_q:.0}"),
            ]);
            lookup_done = true;
        }
    }
    print_table(
        &format!("Fig 1a — avg insert latency ns (N={n})"),
        &["sortedness", "tail", "SWARE", "QuIT"],
        &insert_rows,
    );
    print_table(
        "Fig 1a — avg point lookup latency ns",
        &["", "tail", "SWARE", "QuIT"],
        &[lookup_row],
    );
    println!("\npaper: QuIT beats tail ~2.5x and SWARE ~2x on near-sorted ingestion;");
    println!("       lookups: QuIT == tail-B+-tree, SWARE pays the buffer probe");
}

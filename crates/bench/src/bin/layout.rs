//! Fig 8/9-style node-layout comparison: dense + binary (the bit-for-bit
//! paper path), dense + SIMD, and gapped + SIMD, across sorted,
//! near-sorted, and fully random ingest, with per-config point-lookup
//! latency over the populated trees and machine-readable output.
//!
//! Grid: workloads {sorted (K=0), near-sorted (K=5%), random (K=100%)} ×
//! layouts {dense-scalar, dense-simd, gapped-simd}. Every cell reports
//! ns/insert and ns/lookup, and the matrix is written as hand-rolled JSON
//! to `results/layout.json`.
//!
//! `--check` turns the run into a self-asserting smoke test for CI: the
//! emitted document must pass the shared mini JSON validator, every cell
//! must have made progress with identical tree contents across layouts,
//! the gapped + SIMD configuration must win ns/insert on fully random
//! ingest (where gap absorption replaces the half-node memmove and the
//! headroom split cuts the split count — the layout's home turf), and the
//! sorted / near-sorted workloads must stay within [`NOISE_TOLERANCE`] of
//! the dense-scalar baseline (QuIT's poℓe already absorbs the in-order
//! bulk there, so the honest claim is "never slower", not "wins").
//! Under `QUIT_FORCE_SCALAR=1` (the cross-arch guard: every `simd_*`
//! probe falls back to the portable branchless ladder) the win assertion
//! relaxes to a regression bound too — the scalar fallback must be
//! *safe* everywhere, not fast.

use bods::{point_lookup_keys, BodsSpec};
use quit_bench::{ingest_index, json_is_valid, print_table, time_point_lookups, Opts};
use quit_core::{simd_force_disabled, NodeLayoutKind, SearchKind, Variant};

/// Allowed ns/insert regression where the claim is "no slower than the
/// paper path": interleaved best-of-reps ratios on a shared 1-core runner
/// still swing by ±15%, while a real slot-management regression (say,
/// quadratic gap reuse turning every insert into a full-node scan) blows
/// far past this.
const NOISE_TOLERANCE: f64 = 1.25;

/// Bound used when the run cannot make a perf claim at all — `--quick`
/// scales (cache-resident trees) and `QUIT_FORCE_SCALAR=1` (cross-arch
/// guard). Those runs only prove the code is *safe*; ±25% swings are
/// routine there, so only a blow-up should fail them.
const SMOKE_TOLERANCE: f64 = 1.5;

struct LayoutCfg {
    label: &'static str,
    layout: NodeLayoutKind,
    kind: SearchKind,
}

const CONFIGS: [LayoutCfg; 3] = [
    LayoutCfg {
        label: "dense-scalar",
        layout: NodeLayoutKind::Dense,
        kind: SearchKind::Binary,
    },
    LayoutCfg {
        label: "dense-simd",
        layout: NodeLayoutKind::Dense,
        kind: SearchKind::Simd,
    },
    LayoutCfg {
        label: "gapped-simd",
        layout: NodeLayoutKind::Gapped,
        kind: SearchKind::Simd,
    },
];

struct Cell {
    workload: &'static str,
    config: &'static str,
    insert_ns: f64,
    lookup_ns: f64,
    len: usize,
}

fn main() {
    let opts = Opts::from_args();
    let check = std::env::args().any(|a| a == "--check");
    let n = opts.n;
    let scalar_forced = simd_force_disabled();
    if scalar_forced {
        println!("QUIT_FORCE_SCALAR=1: SIMD probes fall back to the branchless scalar ladder");
    }

    // `near_sorted` is a genuine BoDS stream: 5% of entries out of place,
    // each displaced at most 1% of the stream (L bounds the lateness).
    // Unbounded L would turn every straggler into a cold random descend,
    // hiding the node-layout term this binary exists to measure.
    let workloads: [(&'static str, f64, f64); 3] = [
        ("sorted", 0.0, 1.0),
        ("near_sorted", 0.05, 0.01),
        ("random", 1.0, 1.0),
    ];
    let probes = point_lookup_keys(n, (n / 4).max(10_000), opts.seed ^ 7);

    let mut cells: Vec<Cell> = Vec::new();
    for (workload, k, l) in workloads {
        let keys = BodsSpec::new(n, k, l).with_seed(opts.seed).generate();
        // Round-robin the repetitions across configurations instead of
        // finishing one config before starting the next: slow machine
        // phases (frequency scaling, co-tenants) then hit every config
        // about equally, so best-of-reps *ratios* stay meaningful even
        // when absolute wall clock drifts between repetitions.
        let mut best = [f64::INFINITY; CONFIGS.len()];
        let mut trees: Vec<Option<quit_core::BpTree<u64, u64>>> =
            (0..CONFIGS.len()).map(|_| None).collect();
        for _rep in 0..opts.reps.max(1) {
            for (ci, cfg) in CONFIGS.iter().enumerate() {
                let tree_config = opts
                    .tree_config()
                    .with_node_layout(cfg.layout)
                    .with_search_kind(cfg.kind);
                let run = ingest_index(
                    || Variant::Quit.build::<u64, u64>(tree_config.clone()),
                    &keys,
                    1,
                );
                if run.ns_per_insert < best[ci] {
                    best[ci] = run.ns_per_insert;
                }
                trees[ci] = Some(run.tree);
            }
        }
        for (ci, cfg) in CONFIGS.iter().enumerate() {
            let mut tree = trees[ci].take().expect("populated above");
            let lookup_ns = time_point_lookups(&mut tree, &probes);
            cells.push(Cell {
                workload,
                config: cfg.label,
                insert_ns: best[ci],
                lookup_ns,
                len: tree.len(),
            });
        }
    }

    // Human-readable matrix.
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.workload.to_string(),
                c.config.to_string(),
                format!("{:.1}", c.insert_ns),
                format!("{:.1}", c.lookup_ns),
            ]
        })
        .collect();
    print_table(
        &format!("Node layout × search kind (N={n}, best of {})", opts.reps),
        &["workload", "layout", "ns/insert", "ns/lookup"],
        &rows,
    );
    let cell = |workload: &str, config: &str| -> &Cell {
        cells
            .iter()
            .find(|c| c.workload == workload && c.config == config)
            .expect("cell present")
    };
    for (workload, _, _) in workloads {
        let base = cell(workload, "dense-scalar").insert_ns;
        let best = cell(workload, "gapped-simd").insert_ns;
        println!(
            "{workload}: gapped-simd / dense-scalar insert ratio {:.3}",
            best / base
        );
    }

    // Machine-readable matrix.
    let mut out = format!(
        "{{\"n\":{n},\"reps\":{},\"scalar_forced\":{scalar_forced},\"rows\":[",
        opts.reps
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"workload\":\"{}\",\"layout\":\"{}\",\"insert_ns\":{:.2},\
             \"lookup_ns\":{:.2},\"len\":{}}}",
            c.workload, c.config, c.insert_ns, c.lookup_ns, c.len
        ));
    }
    out.push_str("]}");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/layout.json", &out).expect("write results/layout.json");
    println!("wrote results/layout.json ({} bytes)", out.len());

    if check {
        assert!(json_is_valid(&out), "emitted document must be valid JSON");
        for c in &cells {
            assert!(
                c.insert_ns > 0.0 && c.lookup_ns > 0.0 && c.len > 0,
                "cell {}/{} made no progress",
                c.workload,
                c.config
            );
        }
        for (workload, _, _) in workloads {
            let base = cell(workload, "dense-scalar");
            for config in ["dense-simd", "gapped-simd"] {
                assert_eq!(
                    cell(workload, config).len,
                    base.len,
                    "{workload}: {config} must hold the same keys as dense-scalar"
                );
            }
        }
        for (workload, bound, label) in [
            // Sorted and near-sorted ingest mostly ride the poℓe fast path
            // (one key compare, no intra-node search, disorder-gated
            // seeding never fires on the in-order bulk), so the honest
            // claim there is "never slower than the paper path". Fully
            // random ingest is where the layout must pay off: gap
            // absorption replaces the half-node memmove and split headroom
            // cuts the split count, so gapped-SIMD must beat dense-scalar
            // outright.
            // Sorted ingest rides the poℓe append path at ~16 ns/insert,
            // so even at 2M keys the whole cell is ~30 ms of work — one
            // frequency-scaling transient swings the best-of-reps ratio by
            // ±30%. It gets the smoke bound; near-sorted (~4×) and random
            // (~30× longer) cells are stable enough for the tight bounds.
            ("sorted", SMOKE_TOLERANCE, "must not regress"),
            ("near_sorted", NOISE_TOLERANCE, "must not regress"),
            ("random", 1.02, "must win (2% measurement floor)"),
        ] {
            let base = cell(workload, "dense-scalar").insert_ns;
            let best = cell(workload, "gapped-simd").insert_ns;
            // The cross-arch guard only proves the scalar fallback is
            // safe, and below ~1M keys the whole tree is cache-resident —
            // the memmove/split savings the win assertion measures are
            // smaller than scheduler noise there.
            let bound = if scalar_forced || n < 1_000_000 {
                SMOKE_TOLERANCE.max(bound)
            } else {
                bound
            };
            assert!(
                best < base * bound,
                "{workload}: gapped-simd {label}: {best:.1} ns vs dense-scalar {base:.1} ns \
                 (bound {bound})"
            );
        }
        println!(
            "check passed: JSON valid, layouts agree on contents, \
             random gapped-simd/dense-scalar ratio {:.3}",
            cell("random", "gapped-simd").insert_ns / cell("random", "dense-scalar").insert_ns
        );
    }
}

//! Fig-13-style thread-scaling matrix for the concurrent tree, comparing
//! optimistic lock coupling (OLC) against the pessimistic lock-crabbing
//! baseline, with machine-readable output.
//!
//! Grid: threads {1, 2, 4, 8} (∩ `--threads`) × workloads {read-only
//! point lookups, mixed 50/50 read-insert, sorted ingest with readers} ×
//! {OLC on, OLC off}. Every cell reports ops/sec plus the tree's OLC
//! restart/fallback counters, and the whole matrix is written as
//! hand-rolled JSON to `results/scaling.json`.
//!
//! `--check` turns the run into a self-asserting smoke test for CI: the
//! emitted document must pass the shared mini JSON validator, every cell
//! must have made progress, and read-only throughput at the highest
//! measured thread count must not collapse below the single-thread run
//! (with a documented tolerance for single-core runners, where extra
//! threads add scheduling overhead but no parallelism).

use bods::{point_lookup_keys, BodsSpec};
use quit_bench::{json_is_valid, print_table, Opts};
use quit_concurrent::{ConcConfig, ConcurrentTree};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Single-core runners (the CI container has one physical core) make
/// "4 threads ≥ 1 thread" unachievable in the strict sense: the work is
/// serialized either way and context switches only subtract. The check
/// therefore allows this fraction of regression before failing.
const SCALING_TOLERANCE: f64 = 0.85;

struct Cell {
    workload: &'static str,
    threads: usize,
    olc: bool,
    ops: u64,
    secs: f64,
    restarts: u64,
    fallbacks: u64,
}

impl Cell {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs.max(1e-9)
    }
}

fn build(opts: &Opts, olc: bool) -> Arc<ConcurrentTree<u64, u64>> {
    Arc::new(ConcurrentTree::new(
        ConcConfig::paper_default()
            .with_leaf_capacity(opts.leaf_capacity)
            .with_olc(olc),
    ))
}

fn prefill(tree: &ConcurrentTree<u64, u64>, keys: &[u64]) {
    for &k in keys {
        tree.insert(k, k);
    }
}

/// T threads over disjoint slices of the probe set; zero mutations.
fn run_read_only(opts: &Opts, keys: &[u64], probes: &[u64], threads: usize, olc: bool) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..opts.reps.max(1) {
        let tree = build(opts, olc);
        prefill(&tree, keys);
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let tree = tree.clone();
                let mine: Vec<u64> = probes.iter().skip(t).step_by(threads).copied().collect();
                s.spawn(move || {
                    let mut hits = 0usize;
                    for k in mine {
                        if tree.get(k).is_some() {
                            hits += 1;
                        }
                    }
                    std::hint::black_box(hits);
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let stats = tree.stats();
        let cell = Cell {
            workload: "read_only",
            threads,
            olc,
            ops: probes.len() as u64,
            secs,
            restarts: stats.olc_restarts.get(),
            fallbacks: stats.olc_fallbacks.get(),
        };
        if best.as_ref().is_none_or(|b| cell.secs < b.secs) {
            best = Some(cell);
        }
    }
    best.expect("at least one repetition")
}

/// Every thread alternates a lookup into the prefilled range with an
/// insert into its own fresh partition — 50/50 at any instant.
fn run_mixed(opts: &Opts, keys: &[u64], probes: &[u64], threads: usize, olc: bool) -> Cell {
    let per = (probes.len() / threads.max(1)).max(1);
    let fresh_base = keys.iter().copied().max().unwrap_or(0) + 1;
    let mut best: Option<Cell> = None;
    for _ in 0..opts.reps.max(1) {
        let tree = build(opts, olc);
        prefill(&tree, keys);
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let tree = tree.clone();
                let mine: Vec<u64> = probes
                    .iter()
                    .skip(t)
                    .step_by(threads)
                    .take(per)
                    .copied()
                    .collect();
                s.spawn(move || {
                    let mut hits = 0usize;
                    for (i, k) in mine.into_iter().enumerate() {
                        if tree.get(k).is_some() {
                            hits += 1;
                        }
                        let fresh = fresh_base + (i * threads + t) as u64;
                        tree.insert(fresh, fresh);
                    }
                    std::hint::black_box(hits);
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let stats = tree.stats();
        let cell = Cell {
            workload: "mixed_50_50",
            threads,
            olc,
            ops: 2 * (per * threads) as u64,
            secs,
            restarts: stats.olc_restarts.get(),
            fallbacks: stats.olc_fallbacks.get(),
        };
        if best.as_ref().is_none_or(|b| cell.secs < b.secs) {
            best = Some(cell);
        }
    }
    best.expect("at least one repetition")
}

/// One writer appends a fully sorted stream (the poℓe fast-path regime)
/// while the remaining threads read the stable prefix until it finishes.
fn run_sorted_ingest(opts: &Opts, keys: &[u64], probes: &[u64], threads: usize, olc: bool) -> Cell {
    let ingest = (keys.len() / 2).max(1);
    let fresh_base = keys.iter().copied().max().unwrap_or(0) + 1;
    let mut best: Option<Cell> = None;
    for _ in 0..opts.reps.max(1) {
        let tree = build(opts, olc);
        prefill(&tree, keys);
        let done = AtomicBool::new(false);
        let reads = AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|s| {
            {
                let tree = tree.clone();
                let done = &done;
                s.spawn(move || {
                    for i in 0..ingest as u64 {
                        tree.insert(fresh_base + i, i);
                    }
                    done.store(true, Ordering::Relaxed);
                });
            }
            for t in 1..threads {
                let tree = tree.clone();
                let (done, reads) = (&done, &reads);
                s.spawn(move || {
                    let mut hits = 0usize;
                    let mut local = 0u64;
                    let mut i = t;
                    while !done.load(Ordering::Relaxed) {
                        let k = probes[i % probes.len()];
                        if tree.get(k).is_some() {
                            hits += 1;
                        }
                        local += 1;
                        i += threads;
                    }
                    reads.fetch_add(local, Ordering::Relaxed);
                    std::hint::black_box(hits);
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let stats = tree.stats();
        let cell = Cell {
            workload: "sorted_ingest_readers",
            threads,
            olc,
            ops: ingest as u64 + reads.load(Ordering::Relaxed),
            secs,
            restarts: stats.olc_restarts.get(),
            fallbacks: stats.olc_fallbacks.get(),
        };
        // Reader counts vary between reps; highest throughput wins.
        if best
            .as_ref()
            .is_none_or(|b| cell.ops_per_sec() > b.ops_per_sec())
        {
            best = Some(cell);
        }
    }
    best.expect("at least one repetition")
}

fn main() {
    let opts = Opts::from_args();
    let check = std::env::args().any(|a| a == "--check");
    let n = opts.n;
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= opts.max_threads)
        .collect();

    let keys = BodsSpec::new(n, 0.05, 1.0).with_seed(opts.seed).generate();
    let probes = point_lookup_keys(n, (n / 2).max(10_000), opts.seed ^ 3);

    let mut cells: Vec<Cell> = Vec::new();
    for &threads in &thread_counts {
        for olc in [true, false] {
            cells.push(run_read_only(&opts, &keys, &probes, threads, olc));
            cells.push(run_mixed(&opts, &keys, &probes, threads, olc));
            cells.push(run_sorted_ingest(&opts, &keys, &probes, threads, olc));
        }
    }

    // Human-readable matrix.
    let mut rows = Vec::new();
    for c in &cells {
        rows.push(vec![
            c.workload.to_string(),
            c.threads.to_string(),
            if c.olc { "olc" } else { "pess" }.to_string(),
            format!("{:.2}M", c.ops_per_sec() / 1e6),
            c.restarts.to_string(),
            c.fallbacks.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Thread scaling, OLC vs pessimistic (N={n}, best of {})",
            opts.reps
        ),
        &[
            "workload",
            "threads",
            "mode",
            "ops/sec",
            "restarts",
            "fallbacks",
        ],
        &rows,
    );
    let speedup = |workload: &str, threads: usize| -> Option<f64> {
        let find = |olc| {
            cells
                .iter()
                .find(|c| c.workload == workload && c.threads == threads && c.olc == olc)
                .map(Cell::ops_per_sec)
        };
        Some(find(true)? / find(false)?)
    };
    for &t in &thread_counts {
        if let Some(s) = speedup("read_only", t) {
            println!("read-only OLC/pessimistic at {t} threads: {s:.2}x");
        }
    }

    // Machine-readable matrix.
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = format!(
        "{{\"n\":{n},\"reps\":{},\"available_parallelism\":{parallelism},\"rows\":[",
        opts.reps
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"workload\":\"{}\",\"threads\":{},\"olc\":{},\"ops\":{},\"secs\":{:.6},\
             \"ops_per_sec\":{:.1},\"olc_restarts\":{},\"olc_fallbacks\":{}}}",
            c.workload,
            c.threads,
            c.olc,
            c.ops,
            c.secs,
            c.ops_per_sec(),
            c.restarts,
            c.fallbacks
        ));
    }
    out.push_str("]}");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/scaling.json", &out).expect("write results/scaling.json");
    println!("wrote results/scaling.json ({} bytes)", out.len());

    if check {
        assert!(json_is_valid(&out), "emitted document must be valid JSON");
        for c in &cells {
            assert!(
                c.ops > 0 && c.ops_per_sec() > 0.0,
                "cell {}/{}threads/olc={} made no progress",
                c.workload,
                c.threads,
                c.olc
            );
            if !c.olc {
                assert_eq!(c.restarts, 0, "pessimistic cells must not restart");
                assert_eq!(c.fallbacks, 0, "pessimistic cells must not fall back");
            }
        }
        let top = *thread_counts.iter().max().unwrap();
        let tput = |threads| {
            cells
                .iter()
                .find(|c| c.workload == "read_only" && c.threads == threads && c.olc)
                .map(Cell::ops_per_sec)
                .expect("read_only cell present")
        };
        let (one, many) = (tput(1), tput(top));
        assert!(
            many >= SCALING_TOLERANCE * one,
            "read-only throughput collapsed: {many:.0} ops/s at {top} threads \
             vs {one:.0} at 1 (tolerance {SCALING_TOLERANCE})"
        );
        println!(
            "check passed: JSON valid, all cells progressed, \
             read-only {top}-thread/1-thread ratio {:.2}",
            many / one
        );
    }
}

//! Durability overhead and recovery benchmark: ingest throughput across
//! the `DurabilityLevel` grid × K% sortedness, group-commit batching under
//! concurrent writers, and crash-recovery time (full WAL replay vs sorted
//! snapshot + tail). Dumps everything to `results/durability.json`.
//!
//! With `--check`, self-asserts the subsystem's acceptance bars: the JSON
//! is valid, sorted-stream ingest at `GroupCommit` stays within 3× of
//! `Buffered`, and recovery of the full dataset (snapshot + tail) lands
//! under 5 s.
//!
//! ```sh
//! cargo run --release -p quit-bench --bin durability -- --check
//! ```
//!
//! Storage is `MemStorage` (its fsync is a bookkeeping mark, not a device
//! flush) — the numbers price the WAL machinery itself: framing, CRC,
//! buffer management, group-commit coordination, recovery replay.

use bods::BodsSpec;
use quit_bench::json_is_valid;
use quit_concurrent::ConcConfig;
use quit_core::{FastPathMode, SortedIndex, TreeConfig};
use quit_durability::{
    bptree_builder, concurrent_builder, DurabilityConfig, DurabilityLevel, Durable, MemStorage,
    Storage,
};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    n: usize,
    seed: u64,
    threads: usize,
    check: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        n: 2_000_000,
        seed: 0xB0D5,
        threads: 4,
        check: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let take = |i: usize| argv.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match argv[i].as_str() {
            "--n" => {
                if let Some(v) = take(i) {
                    a.n = v as usize;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = take(i) {
                    a.seed = v;
                    i += 1;
                }
            }
            "--threads" => {
                if let Some(v) = take(i) {
                    a.threads = (v as usize).max(1);
                    i += 1;
                }
            }
            "--check" => a.check = true,
            "--quick" => a.n = a.n.min(200_000),
            "--help" | "-h" => {
                eprintln!("options: --n <entries> --seed <u64> --threads <n> --quick --check");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other}"),
        }
        i += 1;
    }
    a
}

fn level_config(level: DurabilityLevel) -> DurabilityConfig {
    DurabilityConfig::default().with_level(level)
}

fn main() {
    let args = parse_args();
    let n = args.n;
    let tree_config = TreeConfig::paper_default();

    // --- Ingest grid: durability level × sortedness -------------------
    println!("durability overhead (N={n} point inserts, MemStorage):");
    println!(
        "  {:<14} {:>8} {:>12} {:>12} {:>10}",
        "level", "K", "ns/insert", "wal appends", "fsyncs"
    );
    let mut json = format!("{{\"n\":{n},\"ingest\":[");
    for level in [
        DurabilityLevel::Off,
        DurabilityLevel::Buffered,
        DurabilityLevel::GroupCommit,
    ] {
        for k in [0.0f64, 0.05, 1.0] {
            let keys = BodsSpec::new(n, k, 1.0).with_seed(args.seed).generate();
            let storage = Arc::new(MemStorage::new());
            let (mut d, _) = Durable::open(
                storage as Arc<dyn Storage>,
                level_config(level),
                bptree_builder::<u64, u64>(FastPathMode::Pole, tree_config.clone()),
            )
            .unwrap();
            let start = Instant::now();
            for (i, &key) in keys.iter().enumerate() {
                d.insert(key, i as u64);
            }
            let ns = start.elapsed().as_nanos() as f64 / n as f64;
            let m = SortedIndex::<u64, u64>::metrics(&d);
            println!(
                "  {:<14} {:>7}% {:>12.1} {:>12} {:>10}",
                format!("{level:?}"),
                (k * 100.0) as u32,
                ns,
                m.wal_appends,
                m.wal_fsyncs
            );
            if !json.ends_with('[') {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"level\":\"{level:?}\",\"k_pct\":{},\"ns_per_insert\":{ns:.1},\
                 \"wal_appends\":{},\"wal_fsyncs\":{}}}",
                (k * 100.0) as u32,
                m.wal_appends,
                m.wal_fsyncs
            ));
        }
    }
    json.push(']');

    // --- Sorted-stream batch ingest per level -------------------------
    // The paper's sorted-stream regime ingests leaf-at-a-time through
    // `insert_batch`; the WAL amortizes identically — one append (and at
    // GroupCommit one fsync) per sorted run, not per record. This is the
    // phase the 3× acceptance bar measures.
    println!("sorted-stream batch ingest (runs of 4096):");
    let sorted: Vec<(u64, u64)> = (0..n as u64).map(|k| (k, k)).collect();
    let mut batch_ns = std::collections::BTreeMap::new();
    json.push_str(",\"batch_ingest\":[");
    for level in [
        DurabilityLevel::Off,
        DurabilityLevel::Buffered,
        DurabilityLevel::GroupCommit,
    ] {
        let storage = Arc::new(MemStorage::new());
        let (mut d, _) = Durable::open(
            storage as Arc<dyn Storage>,
            level_config(level),
            bptree_builder::<u64, u64>(FastPathMode::Pole, tree_config.clone()),
        )
        .unwrap();
        let start = Instant::now();
        for run in sorted.chunks(4096) {
            d.insert_batch(run);
        }
        let ns = start.elapsed().as_nanos() as f64 / n as f64;
        let m = SortedIndex::<u64, u64>::metrics(&d);
        batch_ns.insert(format!("{level:?}"), ns);
        println!(
            "  {:<14} {ns:>8.1} ns/insert ({} fsyncs)",
            format!("{level:?}"),
            m.wal_fsyncs
        );
        if !json.ends_with('[') {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"level\":\"{level:?}\",\"ns_per_insert\":{ns:.1},\"wal_fsyncs\":{}}}",
            m.wal_fsyncs
        ));
    }
    json.push(']');

    // --- Group commit under concurrent writers ------------------------
    // N writers through Durable<ConcurrentTree>. Note MemStorage's fsync
    // returns in nanoseconds, so the batching window is tiny and groups
    // stay small here; on a real device (FsStorage) the multi-millisecond
    // fsync is what makes writers pile into large groups.
    let threads = args.threads;
    let per = n / threads;
    let storage = Arc::new(MemStorage::new());
    let (d, _) = Durable::open(
        storage as Arc<dyn Storage>,
        DurabilityConfig::group_commit(),
        concurrent_builder::<u64, u64>(ConcConfig::paper_default()),
    )
    .unwrap();
    let d = Arc::new(d);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let d = d.clone();
            scope.spawn(move || {
                let base = (w as u64) << 40;
                for i in 0..per as u64 {
                    d.insert_shared(base + i, i);
                }
            });
        }
    });
    let conc_ns = start.elapsed().as_nanos() as f64 / (per * threads) as f64;
    let snap = d.wal().metrics().snapshot();
    let groups = snap.group_commit_size.count();
    let mean_group = if groups == 0 {
        0.0
    } else {
        snap.group_commit_size.sum_ns as f64 / groups as f64
    };
    println!(
        "group commit, {threads} writers: {conc_ns:.1} ns/insert, {} records in {} fsync groups \
         (mean group {mean_group:.2})",
        per * threads,
        groups
    );
    json.push_str(&format!(
        ",\"group_commit\":{{\"threads\":{threads},\"ns_per_insert\":{conc_ns:.1},\
         \"fsync_groups\":{groups},\"mean_group_size\":{mean_group:.2}}}"
    ));
    drop(d);

    // --- Recovery: full WAL replay vs snapshot + tail -----------------
    let keys = BodsSpec::new(n, 0.05, 1.0).with_seed(args.seed).generate();
    let storage = Arc::new(MemStorage::new());
    let (mut d, _) = Durable::open(
        storage.clone() as Arc<dyn Storage>,
        DurabilityConfig::buffered(),
        bptree_builder::<u64, u64>(FastPathMode::Pole, tree_config.clone()),
    )
    .unwrap();
    for (i, &key) in keys.iter().enumerate() {
        d.insert(key, i as u64);
    }
    d.commit_all().unwrap();
    drop(d);

    // Full replay: every record comes back through the WAL tail.
    let crashed = Arc::new(storage.crash_durable_only());
    let t0 = Instant::now();
    let (d, report) = Durable::open(
        crashed as Arc<dyn Storage>,
        DurabilityConfig::buffered(),
        bptree_builder::<u64, u64>(FastPathMode::Pole, tree_config.clone()),
    )
    .unwrap();
    let replay_secs = t0.elapsed().as_secs_f64();
    assert_eq!(report.tail_records, n);
    assert_eq!(d.len(), n);
    println!("recovery, full WAL replay: {n} records in {replay_secs:.3} s");
    drop(d);

    // Snapshot + tail: checkpoint, append a 1% tail, crash, recover.
    let storage = Arc::new(MemStorage::new());
    let (mut d, _) = Durable::open(
        storage.clone() as Arc<dyn Storage>,
        DurabilityConfig::buffered(),
        bptree_builder::<u64, u64>(FastPathMode::Pole, tree_config.clone()),
    )
    .unwrap();
    for (i, &key) in keys.iter().enumerate() {
        d.insert(key, i as u64);
    }
    d.checkpoint::<u64, u64>().unwrap();
    let tail = n / 100;
    for i in 0..tail as u64 {
        d.insert(u64::MAX - tail as u64 + i, i);
    }
    d.commit_all().unwrap();
    drop(d);
    let crashed = Arc::new(storage.crash_durable_only());
    let t0 = Instant::now();
    let (d, report) = Durable::open(
        crashed as Arc<dyn Storage>,
        DurabilityConfig::buffered(),
        bptree_builder::<u64, u64>(FastPathMode::Pole, tree_config),
    )
    .unwrap();
    let snapshot_secs = t0.elapsed().as_secs_f64();
    assert_eq!(report.snapshot_entries, n);
    assert_eq!(report.tail_records, tail);
    assert_eq!(d.len(), n + tail);
    println!(
        "recovery, snapshot + tail: {} + {} entries in {snapshot_secs:.3} s",
        report.snapshot_entries, report.tail_records
    );
    json.push_str(&format!(
        ",\"recovery\":{{\"replay_records\":{n},\"replay_secs\":{replay_secs:.3},\
         \"snapshot_entries\":{n},\"tail_records\":{tail},\"snapshot_tail_secs\":{snapshot_secs:.3}}}}}"
    ));

    assert!(json_is_valid(&json), "emitted document must be valid JSON");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/durability.json", &json).expect("write results/durability.json");
    println!("wrote results/durability.json ({} bytes)", json.len());

    if args.check {
        // Acceptance bars: sorted-stream group commit within 3× of
        // buffered; snapshot+tail recovery under 5 s at 2M keys.
        let buffered = batch_ns["Buffered"];
        let group = batch_ns["GroupCommit"];
        assert!(
            group <= buffered * 3.0,
            "GroupCommit sorted ingest {group:.1} ns must be within 3x of Buffered {buffered:.1} ns"
        );
        assert!(
            snapshot_secs < 5.0,
            "snapshot+tail recovery took {snapshot_secs:.3} s, bar is 5 s"
        );
        assert!(mean_group >= 1.0, "group commit must form groups");
        println!(
            "check passed: GroupCommit/Buffered = {:.2}x (bar 3x), recovery {snapshot_secs:.3} s \
             (bar 5 s)",
            group / buffered
        );
    }
}

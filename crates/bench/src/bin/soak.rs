//! Differential correctness soak: replays `quit-testkit` workloads against
//! the `BTreeMap` oracle and all three index families until the case budget
//! runs out, printing throughput per grid point.
//!
//! ```text
//! soak [--cases N] [--ops N] [--seed S]
//! ```
//!
//! `--cases` defaults to `QUIT_FUZZ_CASES` (else 20). Every case sweeps the
//! K×L sortedness grid at two tree geometries; any divergence aborts with
//! the offending spec so it can be replayed verbatim. CI runs a short soak
//! via the fuzz-smoke job; leave this running with a big `--cases` for an
//! overnight hunt.

use quit_core::{NodeLayoutKind, SearchKind};
use quit_testkit::{fuzz_cases, replay, OpMix, OracleConfig, WorkloadSpec};
use std::time::Instant;

const KL_GRID: [(f64, f64); 6] = [
    (0.0, 1.0),
    (0.01, 1.0),
    (0.05, 0.5),
    (0.2, 0.25),
    (0.5, 1.0),
    (1.0, 0.1),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let take = |flag: &str, default: u64| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: soak [--cases N] [--ops N] [--seed S]");
        return;
    }
    let cases = take("--cases", fuzz_cases(20) as u64);
    let ops_per_workload = take("--ops", 2_000) as usize;
    let base_seed = take("--seed", 0x50AC);

    let geometries = [
        OracleConfig::default(),
        OracleConfig {
            leaf_capacity: 4,
            buffer_capacity: 8,
            check_every: 64,
            ..OracleConfig::default()
        },
        OracleConfig {
            node_layout: NodeLayoutKind::Gapped,
            search_kind: SearchKind::Simd,
            ..OracleConfig::default()
        },
    ];
    let started = Instant::now();
    let mut total_ops = 0usize;
    let mut total_checks = 0usize;
    for case in 0..cases {
        for (g, (k, l)) in KL_GRID.iter().enumerate() {
            let spec = WorkloadSpec {
                ops: ops_per_workload,
                k_fraction: *k,
                l_fraction: *l,
                seed: base_seed ^ (case << 8) ^ g as u64,
                mix: if (case as usize + g).is_multiple_of(2) {
                    OpMix::mixed()
                } else {
                    OpMix::ingest_heavy()
                },
                dup_fraction: 0.08,
            };
            let ops = spec.generate();
            for cfg in &geometries {
                match replay(&ops, cfg) {
                    Ok(report) => {
                        total_ops += report.ops;
                        total_checks += report.structural_checks;
                    }
                    Err(d) => {
                        eprintln!("DIVERGENCE: {d}");
                        eprintln!("spec: {spec:?}");
                        eprintln!("geometry: {cfg:?}");
                        std::process::exit(1);
                    }
                }
            }
        }
        println!(
            "case {:>4}/{cases}: {total_ops} ops, {total_checks} structural checks, {:.1}s",
            case + 1,
            started.elapsed().as_secs_f64()
        );
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "soak clean: {total_ops} ops per family in {secs:.1}s ({:.0} ops/s/family)",
        total_ops as f64 / secs.max(1e-9)
    );
}

//! Fig 15: indexing real-world data — ingestion speedup over the classical
//! B+-tree for two intraday stock-price streams (synthetic stand-ins for
//! NIFTY and SPXUSD; see DESIGN.md "Substitutions").

use bods::{adjacent_inversion_fraction, measure, StockSpec};
use quit_bench::{ingest_reps, print_table, time_best, Opts};
use quit_core::Variant;
use sware::{SaBpTree, SwareConfig};

fn main() {
    let opts = Opts::from_args();
    // Scale the series to the harness size while keeping the 1.4M:2.2M
    // ratio of the paper's datasets.
    let nifty_n = opts.n.min(1_400_000);
    let spx_n = (nifty_n as f64 * 2.2 / 1.4) as usize;
    let datasets = [
        ("NIFTY", StockSpec::nifty().scaled(nifty_n)),
        ("SPXUSD", StockSpec::spxusd().scaled(spx_n)),
    ];

    let mut rows = Vec::new();
    for (name, spec) in datasets {
        let ticks = spec.generate_ticks();
        let m = measure(&ticks);
        println!(
            "{name}: {} bars, realized K={:.1}% L={:.1}% adjacent-inversions={:.1}%",
            ticks.len(),
            m.k_fraction * 100.0,
            m.l_fraction * 100.0,
            adjacent_inversion_fraction(&ticks) * 100.0,
        );
        let base = ingest_reps(Variant::Classic, opts.tree_config(), &ticks, opts.reps);

        let mut row = vec![name.to_string()];
        for v in [Variant::Tail, Variant::Lil, Variant::Quit] {
            let run = ingest_reps(v, opts.tree_config(), &ticks, opts.reps);
            row.push(format!(
                "{:.2}",
                base.elapsed.as_secs_f64() / run.elapsed.as_secs_f64()
            ));
        }
        // SWARE
        let sware_secs = time_best(opts.reps, || {
            let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::for_data_size(ticks.len()));
            for (i, &t) in ticks.iter().enumerate() {
                sa.insert(t, i as u64);
            }
            std::hint::black_box(sa.len());
        })
        .as_secs_f64();
        row.insert(2, format!("{:.2}", base.elapsed.as_secs_f64() / sware_secs));
        rows.push(row);
    }
    print_table(
        "Fig 15c — ingestion speedup over B+-tree (synthetic stock streams)",
        &["dataset", "tail", "SWARE", "lil", "QuIT"],
        &rows,
    );
    println!("\npaper: QuIT best on both (≈30% over tail; ≈8%/5% over SWARE on");
    println!("       NIFTY/SPXUSD); all sortedness-aware designs beat the B+-tree");
}

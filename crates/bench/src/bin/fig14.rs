//! Fig 14: SA-B+-tree (SWARE) vs QuIT — (a) average insert latency and
//! (b) average point-lookup latency, varying data sortedness (L = 100%).

use bods::{point_lookup_keys, BodsSpec};
use quit_bench::{ingest_reps, pct, print_table, time_best, time_point_lookups, Opts, K_GRID};
use quit_core::Variant;
use sware::{SaBpTree, SwareConfig};

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let lookups = (n / 100).max(1000);
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for &k in &K_GRID {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();

        // SWARE ingest (buffer = 1% of data size, as in the paper).
        let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::for_data_size(n));
        let best = time_best(opts.reps, || {
            sa = SaBpTree::new(SwareConfig::for_data_size(n));
            for (i, &key) in keys.iter().enumerate() {
                sa.insert(key, i as u64);
            }
        });
        let sware_ns = best.as_nanos() as f64 / n as f64;

        // QuIT ingest.
        let mut quit = ingest_reps(Variant::Quit, opts.tree_config(), &keys, opts.reps);

        rows_a.push(vec![
            pct(k),
            format!("{sware_ns:.0}"),
            format!("{:.0}", quit.ns_per_insert),
            format!("{:.2}", sware_ns / quit.ns_per_insert),
        ]);

        // Lookups: the paper queries post-ingestion with the buffer still
        // active (that is the read penalty being measured).
        let probes = point_lookup_keys(n, lookups, opts.seed ^ 5);
        let best = time_best(opts.reps, || {
            let mut hits = 0usize;
            for &p in &probes {
                if sa.get(p).is_some() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits);
        });
        let sware_q = best.as_nanos() as f64 / probes.len() as f64;
        let quit_q = (0..opts.reps)
            .map(|_| time_point_lookups(&mut quit.tree, &probes))
            .fold(f64::MAX, f64::min);
        rows_b.push(vec![
            pct(k),
            format!("{sware_q:.0}"),
            format!("{quit_q:.0}"),
            format!("{:.2}", sware_q / quit_q),
        ]);
    }
    print_table(
        &format!("Fig 14a — insert latency ns (N={n}, SWARE buffer = 1%)"),
        &["K (%)", "SWARE", "QuIT", "SWARE/QuIT"],
        &rows_a,
    );
    println!("paper: QuIT ~16% faster at K=0, >=1.5x (1.86x avg) for K<=10%,");
    println!("       comparable at K>=25%");
    print_table(
        "Fig 14b — point lookup latency ns",
        &["K (%)", "SWARE", "QuIT", "SWARE/QuIT"],
        &rows_b,
    );
    println!("paper: QuIT up to 26% faster (SWARE pays the buffer probe);");
    println!("       SWARE ~8% faster only at K=0 (buffered keys, zonemaps)");
}

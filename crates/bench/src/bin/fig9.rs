//! Fig 9: fraction of fast-inserts vs top-inserts per variant while varying
//! data sortedness — QuIT pays approximately one top-insert per
//! out-of-order entry, the optimal behaviour of Fig 5b.

use bods::BodsSpec;
use quit_bench::{ingest, pct, print_table, Opts, K_GRID};
use quit_core::Variant;

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let mut rows = Vec::new();
    for &k in &K_GRID {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        let mut row = vec![pct(k)];
        for v in [Variant::Tail, Variant::Lil, Variant::Quit] {
            let run = ingest(v, opts.tree_config(), &keys);
            row.push(format!(
                "{:.1}",
                run.tree.stats().fast_insert_fraction() * 100.0
            ));
        }
        let ideal = (1.0 - k) * 100.0;
        row.push(format!("{ideal:.1}"));
        rows.push(row);
    }
    print_table(
        &format!("Fig 9 — %% fast-inserts (N={n}, L=100%)"),
        &["K (%)", "tail", "lil", "QuIT", "ideal (1−k)"],
        &rows,
    );
    println!("\npaper: QuIT ~matches the ideal; lil ~65% at K=50%; tail ~0% beyond K=0");
}

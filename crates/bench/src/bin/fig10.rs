//! Fig 10: (a) average leaf occupancy of QuIT vs B+-tree; (b) normalized
//! point-lookup latency (QuIT / B+-tree, no read penalty expected); (c)
//! range lookups access fewer leaf nodes in QuIT, per selectivity.

use bods::{point_lookup_keys, range_lookup_bounds, BodsSpec};
use quit_bench::{ingest, pct, print_table, time_point_lookups, Opts, K_GRID};
use quit_core::Variant;

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let lookups = (n / 100).max(1000); // 1% of data size, like the paper
    let n_ranges = 200;
    let sels = [0.001, 0.01, 0.10];

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for &k in &K_GRID {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        let mut classic = ingest(Variant::Classic, opts.tree_config(), &keys);
        let mut quit = ingest(Variant::Quit, opts.tree_config(), &keys);

        // (a) occupancy
        let mc = classic.tree.memory_report();
        let mq = quit.tree.memory_report();
        rows_a.push(vec![
            pct(k),
            format!("{:.0}", mc.avg_leaf_occupancy * 100.0),
            format!("{:.0}", mq.avg_leaf_occupancy * 100.0),
        ]);

        // (b) point lookups
        let probes = point_lookup_keys(n, lookups, opts.seed ^ 1);
        let ns_c = (0..opts.reps)
            .map(|_| time_point_lookups(&mut classic.tree, &probes))
            .fold(f64::MAX, f64::min);
        let ns_q = (0..opts.reps)
            .map(|_| time_point_lookups(&mut quit.tree, &probes))
            .fold(f64::MAX, f64::min);
        rows_b.push(vec![
            pct(k),
            format!("{ns_c:.0}"),
            format!("{ns_q:.0}"),
            format!("{:.2}", ns_q / ns_c),
        ]);

        // (c) range accesses
        let mut row = vec![pct(k)];
        for &sel in &sels {
            let ranges = range_lookup_bounds(n, n_ranges, sel, opts.seed ^ 2);
            let leaf_c: u64 = ranges
                .iter()
                .map(|&(s, e)| classic.tree.range_with_stats(s..e).leaf_accesses)
                .sum();
            let leaf_q: u64 = ranges
                .iter()
                .map(|&(s, e)| quit.tree.range_with_stats(s..e).leaf_accesses)
                .sum();
            row.push(format!("{:.2}", leaf_c as f64 / leaf_q.max(1) as f64));
        }
        rows_c.push(row);
    }
    print_table(
        &format!("Fig 10a — avg leaf occupancy %% (N={n})"),
        &["K (%)", "B+-tree", "QuIT"],
        &rows_a,
    );
    println!("paper: B+-tree 51-54% for near-sorted; QuIT 62-74%, 100% at K=0");
    print_table(
        &format!("Fig 10b — point lookup latency, {lookups} random lookups"),
        &["K (%)", "B+-tree ns", "QuIT ns", "QuIT/B+-tree"],
        &rows_b,
    );
    println!("paper: ratio ~1.0 (QuIT ~2% faster on average: smaller tree)");
    print_table(
        &format!("Fig 10c — x fewer leaf accesses in range scans ({n_ranges} ranges)"),
        &["K (%)", "sel 0.1%", "sel 1%", "sel 10%"],
        &rows_c,
    );
    println!("paper: up to 2x fewer leaves for K<=10% (~1.3x average), ~1.15x at K>=25%");
}

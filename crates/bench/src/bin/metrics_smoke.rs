//! Observability smoke test: ingest K%-sorted streams at
//! `MetricsLevel::Histograms`, snapshot the registry after every phase, and
//! dump all snapshots (counters, latency percentiles, fast-path window) to
//! `results/metrics_smoke.json`.
//!
//! Self-checking: the emitted document must pass a minimal hand-rolled JSON
//! validator, the fully sorted phase must report `fast_inserts > 0`, and
//! every phase's insert-latency histogram must have recorded exactly one
//! sample per insert.

use bods::BodsSpec;
use quit_bench::{json_is_valid, pct, Opts};
use quit_concurrent::{ConcConfig, ConcurrentTree};
use quit_core::{MetricsLevel, StatsSnapshot, Variant};
use std::sync::Arc;

fn push_phase(out: &mut String, name: &str, snap: &StatsSnapshot) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push_str(&format!("{{\"phase\":\"{name}\",\"metrics\":"));
    out.push_str(&snap.to_json());
    out.push('}');
}

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;

    // Overhead sweep: identical sorted ingest at each MetricsLevel. The
    // Off→Counters delta prices the always-on counters + window; the
    // Counters→Histograms delta prices the two clock reads per operation.
    println!(
        "metrics-level overhead (sorted ingest, N={n}, best of {} reps):",
        opts.reps
    );
    let keys = BodsSpec::new(n, 0.0, 1.0).with_seed(opts.seed).generate();
    for level in [
        MetricsLevel::Off,
        MetricsLevel::Counters,
        MetricsLevel::Histograms,
    ] {
        let config = opts.tree_config().with_metrics_level(level);
        let mut best = f64::INFINITY;
        for _ in 0..opts.reps.max(1) {
            let mut tree = Variant::Quit.build::<u64, u64>(config.clone());
            let start = std::time::Instant::now();
            for (i, &key) in keys.iter().enumerate() {
                tree.insert(key, i as u64);
            }
            best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
            std::hint::black_box(&tree);
        }
        println!("  {:<12} {best:>6.1} ns/insert", format!("{level:?}"));
    }

    let mut out = format!("{{\"n\":{n},\"phases\":[");

    // Single-threaded QuIT across the sortedness grid.
    for k in [0.0, 0.05, 1.0] {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        let config = opts
            .tree_config()
            .with_metrics_level(MetricsLevel::Histograms);
        let mut tree = Variant::Quit.build::<u64, u64>(config);
        for (i, &key) in keys.iter().enumerate() {
            tree.insert(key, i as u64);
        }
        for &key in keys.iter().step_by(101) {
            std::hint::black_box(tree.get(key));
        }
        std::hint::black_box(tree.range(..).count());
        let snap = tree.metrics();
        assert_eq!(
            snap.total_inserts(),
            n as u64,
            "K={k}: every insert must be counted"
        );
        assert_eq!(
            snap.insert_latency.count(),
            n as u64,
            "K={k}: one histogram sample per insert"
        );
        if k == 0.0 {
            assert!(
                snap.fast_inserts > 0,
                "sorted stream must hit the fast path"
            );
        }
        push_phase(&mut out, &format!("quit_k{}", pct(k)), &snap);
    }

    // Concurrent phase: 4 producers into one ConcurrentTree; counters must
    // stay exact (fetch_add write path), histogram count must match.
    let threads = 4.min(opts.max_threads.max(1));
    let keys = BodsSpec::new(n, 0.05, 1.0).with_seed(opts.seed).generate();
    let conc: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::new(
        ConcConfig::paper_default().with_metrics_level(MetricsLevel::Histograms),
    ));
    std::thread::scope(|s| {
        for t in 0..threads {
            let conc = conc.clone();
            let mine: Vec<u64> = keys.iter().skip(t).step_by(threads).copied().collect();
            s.spawn(move || {
                for k in mine {
                    conc.insert(k, k);
                }
            });
        }
    });
    let snap = conc.metrics();
    assert_eq!(
        snap.total_inserts(),
        n as u64,
        "concurrent counters must be exact"
    );
    assert_eq!(snap.insert_latency.count(), n as u64);
    push_phase(&mut out, &format!("concurrent_t{threads}"), &snap);

    out.push_str("]}");
    assert!(json_is_valid(&out), "emitted document must be valid JSON");
    assert!(out.contains("\"p99_ns\":"), "percentiles must be exported");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/metrics_smoke.json", &out).expect("write results/metrics_smoke.json");
    println!(
        "wrote results/metrics_smoke.json ({} bytes, {n} keys/phase)",
        out.len()
    );
    println!("all phase assertions passed (exact counters, histogram coverage, JSON validity)");
}

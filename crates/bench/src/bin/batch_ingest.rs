//! Batched sorted-run ingestion: `insert_batch` vs a per-key insert loop,
//! for QuIT and the classical B+-tree, across the K sortedness grid.
//!
//! On a fully sorted stream `insert_batch` detects one maximal run and
//! memcpy-appends it leaf by leaf — one fast-path validation and one stats
//! update per leaf instead of per key. The table reports the speedup and
//! verifies that both ingestion paths produce identical final contents.

use bods::BodsSpec;
use quit_bench::{ingest_index, ingest_index_batch, pct, print_table, Opts};
use quit_core::Variant;

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let mut rows = Vec::new();
    for k in [0.0, 0.05, 0.25, 1.0] {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        let mut row = vec![pct(k)];
        for variant in [Variant::Quit, Variant::Classic] {
            let build = || variant.build::<u64, u64>(opts.tree_config());
            let per_key = ingest_index(build, &keys, opts.reps);
            let batched = ingest_index_batch(build, &keys, opts.reps);
            let speedup = per_key.ns_per_insert / batched.ns_per_insert;
            assert_eq!(per_key.tree.len(), batched.tree.len(), "len mismatch");
            if n <= 4_000_000 {
                // Contents must be identical entry for entry (skipped at
                // very large N to keep the comparison out of the timings).
                assert!(
                    per_key.tree.iter().eq(batched.tree.iter()),
                    "contents diverge at K={k} ({variant:?})"
                );
            }
            row.extend([
                format!("{:.0}", per_key.ns_per_insert),
                format!("{:.0}", batched.ns_per_insert),
                format!("{speedup:.2}x"),
            ]);
            if variant == Variant::Quit {
                let s = batched.tree.metrics();
                row.push(format!(
                    "{:.0}",
                    100.0 * s.fast_inserts as f64 / (s.fast_inserts + s.top_inserts).max(1) as f64
                ));
            }
        }
        rows.push(row);
    }
    print_table(
        &format!("batch ingest — per-key vs insert_batch, ns/insert (N={n})"),
        &[
            "K%",
            "QuIT loop",
            "QuIT batch",
            "speedup",
            "fast%",
            "B+ loop",
            "B+ batch",
            "speedup",
        ],
        &rows,
    );
    println!("\nacceptance: QuIT batch >= 2x over the per-key loop on the fully sorted row;");
    println!("            the classical tree gains little (no fast-path leaf to append into)");
}

//! Table 2: space reduction of QuIT over the B+-tree baselines (tail and
//! ℓiℓ split 50/50 like the classical tree, so they share its footprint).

use bods::BodsSpec;
use quit_bench::{ingest, pct, print_table, Opts, K_GRID};
use quit_core::Variant;

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let mut rows = Vec::new();
    for &k in &K_GRID {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        let classic = ingest(Variant::Classic, opts.tree_config(), &keys);
        let quit = ingest(Variant::Quit, opts.tree_config(), &keys);
        let mc = classic.tree.memory_report();
        let mq = quit.tree.memory_report();
        rows.push(vec![
            pct(k),
            format!("{:.1}", mc.paged_bytes as f64 / (1 << 20) as f64),
            format!("{:.1}", mq.paged_bytes as f64 / (1 << 20) as f64),
            format!("{:.2}x", mc.paged_bytes as f64 / mq.paged_bytes as f64),
        ]);
    }
    print_table(
        &format!("Table 2 — space reduction of QuIT over B+-tree (N={n})"),
        &["K (%)", "B+-tree MiB", "QuIT MiB", "reduction"],
        &rows,
    );
    println!("\npaper: 1.96x at K=0, 1.5x/1.41x/1.32x/1.16x at 1/3/5/10%, ~1x at 50-100%");
}

//! Fig 13: concurrent throughput of QuIT vs the classical B+-tree as the
//! thread count grows, for (a) inserts at three sortedness levels and
//! (b) point lookups.

use bods::{point_lookup_keys, BodsSpec};
use quit_bench::{print_table, Opts};
use quit_concurrent::{ConcConfig, ConcurrentTree};
use std::sync::Arc;
use std::time::Instant;

fn run_inserts(keys: &[u64], threads: usize, pole: bool) -> f64 {
    let tree: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::new(
        ConcConfig::paper_default().with_pole(pole),
    ));
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = tree.clone();
            let slice: Vec<u64> = keys.iter().skip(t).step_by(threads).copied().collect();
            s.spawn(move || {
                for k in slice {
                    tree.insert(k, k);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(tree.len(), keys.len());
    keys.len() as f64 / secs
}

fn run_lookups(tree: &Arc<ConcurrentTree<u64, u64>>, probes: &[u64], threads: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = tree.clone();
            let slice: Vec<u64> = probes.iter().skip(t).step_by(threads).copied().collect();
            s.spawn(move || {
                let mut hits = 0usize;
                for k in slice {
                    if tree.get(k).is_some() {
                        hits += 1;
                    }
                }
                std::hint::black_box(hits);
            });
        }
    });
    probes.len() as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= opts.max_threads)
        .collect();
    let sortedness = [
        ("fully sorted", 0.0),
        ("near-sorted", 0.05),
        ("less sorted", 0.25),
    ];

    // (a) inserts
    let mut rows = Vec::new();
    for (label, k) in sortedness {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        for &t in &thread_counts {
            let quit = (0..opts.reps)
                .map(|_| run_inserts(&keys, t, true))
                .fold(f64::MIN, f64::max);
            let classic = (0..opts.reps)
                .map(|_| run_inserts(&keys, t, false))
                .fold(f64::MIN, f64::max);
            rows.push(vec![
                label.to_string(),
                t.to_string(),
                format!("{:.2}M", quit / 1e6),
                format!("{:.2}M", classic / 1e6),
                format!("{:.2}", quit / classic),
            ]);
        }
    }
    print_table(
        &format!("Fig 13a — concurrent insert throughput, op/sec (N={n})"),
        &["workload", "threads", "QuIT", "B+-tree", "QuIT/B+"],
        &rows,
    );
    println!("paper: QuIT 1.5-2x higher insert throughput, gap widens with threads");

    // (b) lookups
    let keys = BodsSpec::new(n, 0.05, 1.0).with_seed(opts.seed).generate();
    let quit_tree: Arc<ConcurrentTree<u64, u64>> =
        Arc::new(ConcurrentTree::new(ConcConfig::paper_default()));
    let classic_tree: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::new(
        ConcConfig::paper_default().with_pole(false),
    ));
    for &k in &keys {
        quit_tree.insert(k, k);
        classic_tree.insert(k, k);
    }
    let probes = point_lookup_keys(n, (n / 2).max(100_000), opts.seed ^ 3);
    let mut rows = Vec::new();
    for &t in &thread_counts {
        let q = (0..opts.reps)
            .map(|_| run_lookups(&quit_tree, &probes, t))
            .fold(f64::MIN, f64::max);
        let c = (0..opts.reps)
            .map(|_| run_lookups(&classic_tree, &probes, t))
            .fold(f64::MIN, f64::max);
        rows.push(vec![
            t.to_string(),
            format!("{:.2}M", q / 1e6),
            format!("{:.2}M", c / 1e6),
        ]);
    }
    print_table(
        "Fig 13b — concurrent lookup throughput, op/sec",
        &["threads", "QuIT", "B+-tree"],
        &rows,
    );
    println!("paper: both scale near-linearly to 8 threads, flattening at 16");
}

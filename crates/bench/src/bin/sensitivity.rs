//! Sensitivity sweeps for QuIT's two knobs — the IKR scale and the reset
//! threshold `T_R` — backing the paper's "little to no tuning" claim
//! (§4.4): performance should be flat across a wide band of settings.

use bods::BodsSpec;
use quit_bench::{pct, print_table, Opts};
use quit_core::{BpTree, FastPathMode};

fn main() {
    let opts = Opts::from_args();
    let n = opts.n;
    let workloads = [(0.05, "near-sorted"), (0.25, "less sorted")];

    // ---- IKR scale ----
    let mut rows = Vec::new();
    for (k, label) in workloads {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        for scale in [0.5, 1.0, 1.5, 2.0, 3.0, 5.0] {
            let config = opts.tree_config().with_ikr_scale(scale);
            let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, config);
            for (i, &key) in keys.iter().enumerate() {
                t.insert(key, i as u64);
            }
            rows.push(vec![
                label.to_string(),
                format!("{scale:.1}"),
                format!("{:.1}", t.stats().fast_insert_fraction() * 100.0),
                format!("{:.0}", t.memory_report().avg_leaf_occupancy * 100.0),
            ]);
        }
    }
    print_table(
        &format!("IKR scale sensitivity (N={n}, paper default 1.5)"),
        &["workload", "scale", "% fast-inserts", "% occupancy"],
        &rows,
    );

    // ---- reset threshold ----
    let mut rows = Vec::new();
    for (k, label) in workloads {
        let keys = BodsSpec::new(n, k, 1.0).with_seed(opts.seed).generate();
        for tr in [Some(1usize), Some(5), Some(22), Some(100), Some(500), None] {
            let config = opts.tree_config().with_reset_threshold(tr);
            let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, config);
            for (i, &key) in keys.iter().enumerate() {
                t.insert(key, i as u64);
            }
            rows.push(vec![
                label.to_string(),
                tr.map_or("off".into(), |v| v.to_string()),
                format!("{:.1}", t.stats().fast_insert_fraction() * 100.0),
                format!("{}", t.stats().fp_resets.get()),
            ]);
        }
    }
    print_table(
        &format!("reset threshold T_R sensitivity (N={n}, paper default 22)"),
        &["workload", "T_R", "% fast-inserts", "resets"],
        &rows,
    );
    println!(
        "\nnote: K values shown are {}% and {}% out-of-order entries",
        pct(workloads[0].0),
        pct(workloads[1].0)
    );
}

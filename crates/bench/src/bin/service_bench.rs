//! Closed-loop throughput/latency matrix for the sharded TCP service:
//! shards {1, 4} × clients {1, 4, 16, 64}, each client pipelining a
//! window of near-sorted inserts over its own connection, with per-request
//! latency recorded into a [`LatencyHistogram`] (p50/p99 at log2
//! resolution) and the whole matrix written as hand-rolled JSON to
//! `results/service.json`.
//!
//! The workload gives each client an interleaved key stripe of a single
//! collectively-ascending frontier — every client's stream is sorted, and
//! each shard's incoming runs all land near its tail, the regime the
//! router's run coalescing is built for. A bare single `ConcurrentTree`
//! fed the same frontier in `batch_max` runs provides the fast-path-rate
//! baseline the service must stay within 5 points of.
//!
//! `--check` turns the run into a self-asserting smoke test for CI:
//! valid JSON, every cell completed and kept its keys, every cell's
//! server-side fast-path rate within [`FASTPATH_SLACK`] of the
//! single-tree baseline, and 1→4-shard throughput scaling at the highest
//! client count (≥ [`MULTI_CORE_SPEEDUP`]× on multi-core machines; on
//! single-core runners, where shard workers serialize anyway, the check
//! degrades to the same no-collapse tolerance `scaling.rs` uses).

use quit_bench::{json_is_valid, print_table, Opts};
use quit_concurrent::{ConcConfig, ConcurrentTree};
use quit_core::{LatencyHistogram, SortedIndex};
use quit_service::{Client, Reply, Request, Server, ServiceConfig};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// A cell's fast-path rate may trail the bare single-tree baseline by at
/// most this much (absolute): the router adds run boundaries at batch
/// flushes and connection interleaving, each of which can cost one
/// top-insert per run.
const FASTPATH_SLACK: f64 = 0.05;

/// Required 1→4-shard speedup at the highest client count when the
/// machine has enough cores to actually run the shard workers in
/// parallel.
const MULTI_CORE_SPEEDUP: f64 = 2.0;

/// Single-core substitute (same rationale as `scaling.rs`): with one
/// physical core the four shard workers serialize, so 4 shards can't beat
/// 1 — the check only rejects a collapse.
const SCALING_TOLERANCE: f64 = 0.85;

/// In-flight requests per client connection.
const WINDOW: usize = 256;

struct Cell {
    shards: usize,
    clients: usize,
    ops: u64,
    secs: f64,
    p50_us: f64,
    p99_us: f64,
    fastpath: f64,
    wal_fsyncs: u64,
    server_len: u64,
}

impl Cell {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs.max(1e-9)
    }
}

fn service_config(opts: &Opts, shards: usize) -> ServiceConfig {
    ServiceConfig::paper_default()
        .with_shards(shards)
        .with_tree(ConcConfig::paper_default().with_leaf_capacity(opts.leaf_capacity))
}

/// One client's stream: the `t`-th contiguous segment of the keyspace,
/// streamed in sorted order. Segments keep each shard's incoming runs
/// tail-local per region — interleaving clients *at the same frontier*
/// would weave single keys between every connection's runs, a workload no
/// sorted-run detector (embedded or served) can amortize.
fn segment_key(i: u64, t: u64, per: u64, total: u64) -> u64 {
    (t * per + i).wrapping_mul(u64::MAX / total.max(1))
}

fn run_cell(opts: &Opts, shards: usize, clients: usize) -> Cell {
    let per = (opts.n / clients).max(1);
    let total = (per * clients) as u64;
    let mut best: Option<Cell> = None;
    for _ in 0..opts.reps.max(1) {
        let (server, _) =
            Server::start_in_memory(service_config(opts, shards), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let hist = Arc::new(LatencyHistogram::default());
        let barrier = Arc::new(Barrier::new(clients + 1));
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..clients {
                let (hist, barrier) = (hist.clone(), barrier.clone());
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let mut sent: HashMap<u64, Instant> = HashMap::with_capacity(WINDOW * 2);
                    barrier.wait();
                    let recv_one = |c: &mut Client, sent: &mut HashMap<u64, Instant>| {
                        let (id, reply) = c.recv().unwrap();
                        assert_eq!(reply.unwrap(), Reply::Inserted);
                        hist.record_since(sent.remove(&id).expect("unsolicited reply"));
                    };
                    for i in 0..per as u64 {
                        let key = segment_key(i, t as u64, per as u64, total);
                        let id = c.send(&Request::Insert { key, value: i }).unwrap();
                        sent.insert(id, Instant::now());
                        // Burst-drain pipelining: a full window goes out
                        // before any reply is read, so the server-side
                        // batcher sees window-length bursts to coalesce.
                        if c.pending() >= WINDOW {
                            c.flush().unwrap();
                            while c.pending() > 0 {
                                recv_one(&mut c, &mut sent);
                            }
                        }
                    }
                    c.flush().unwrap();
                    while c.pending() > 0 {
                        recv_one(&mut c, &mut sent);
                    }
                });
            }
            barrier.wait();
        });
        let secs = start.elapsed().as_secs_f64();
        let mut c = Client::connect(addr).unwrap();
        let stats = c.stats().unwrap();
        drop(c);
        server.shutdown().unwrap();
        let snap = hist.snapshot();
        let cell = Cell {
            shards,
            clients,
            ops: total,
            secs,
            p50_us: snap.p50_ns() as f64 / 1e3,
            p99_us: snap.p99_ns() as f64 / 1e3,
            fastpath: stats.fastpath_rate(),
            wal_fsyncs: stats.wal_fsyncs,
            server_len: stats.len,
        };
        if best.as_ref().is_none_or(|b| cell.secs < b.secs) {
            best = Some(cell);
        }
    }
    best.expect("at least one repetition")
}

/// The same workload pushed through one bare embedded `ConcurrentTree`:
/// window-length runs taken round-robin across the per-client segments,
/// exactly the multiplexed run sequence a server connection handler
/// produces. This is the apples-to-apples fast-path floor — with `c > 1`
/// segments the poℓe pays the paper's `T_R` reset penalty at every
/// segment switch whether the tree is embedded or served, so the service
/// is only charged for what the *wire* adds, not what the workload
/// costs inherently.
fn single_tree_baseline(opts: &Opts, clients: usize) -> f64 {
    let per = (opts.n / clients).max(1) as u64;
    let total = per * clients as u64;
    let mut tree: ConcurrentTree<u64, u64> =
        ConcurrentTree::new(ConcConfig::paper_default().with_leaf_capacity(opts.leaf_capacity));
    let mut done = vec![0u64; clients];
    let mut run = Vec::with_capacity(WINDOW);
    loop {
        let mut progressed = false;
        for (t, next) in done.iter_mut().enumerate() {
            if *next >= per {
                continue;
            }
            progressed = true;
            let end = (*next + WINDOW as u64).min(per);
            run.extend((*next..end).map(|i| {
                let k = segment_key(i, t as u64, per, total);
                (k, i)
            }));
            tree.insert_batch(&run);
            run.clear();
            *next = end;
        }
        if !progressed {
            break;
        }
    }
    SortedIndex::<u64, u64>::metrics(&tree).fast_insert_fraction()
}

fn parse_list(flag: &str, default: &[usize]) -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.split(',')
                .map(|p| p.parse().expect("list entries must be numbers"))
                .collect()
        })
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let opts = Opts::from_args();
    let check = std::env::args().any(|a| a == "--check");
    let shard_counts = parse_list("--shards", &[1, 4]);
    let client_counts = parse_list("--clients", &[1, 4, 16, 64]);

    let baselines: HashMap<usize, f64> = client_counts
        .iter()
        .map(|&c| (c, single_tree_baseline(&opts, c)))
        .collect();
    for &c in &client_counts {
        println!(
            "single-tree baseline fast-path rate at {c} client segment(s): {:.1}% (N={})",
            baselines[&c] * 100.0,
            opts.n
        );
    }

    let mut cells = Vec::new();
    for &shards in &shard_counts {
        for &clients in &client_counts {
            cells.push(run_cell(&opts, shards, clients));
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.shards.to_string(),
                c.clients.to_string(),
                format!("{:.2}M", c.ops_per_sec() / 1e6),
                format!("{:.0}", c.p50_us),
                format!("{:.0}", c.p99_us),
                format!("{:.1}%", c.fastpath * 100.0),
                c.wal_fsyncs.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Service throughput/latency (N={}, best of {})",
            opts.n, opts.reps
        ),
        &[
            "shards",
            "clients",
            "ops/sec",
            "p50 µs",
            "p99 µs",
            "fast-path",
            "fsyncs",
        ],
        &rows,
    );

    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = format!(
        "{{\"n\":{},\"reps\":{},\"available_parallelism\":{parallelism},\
         \"baselines\":[",
        opts.n, opts.reps
    );
    for (i, &c) in client_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"clients\":{c},\"fastpath_rate\":{:.6}}}",
            baselines[&c]
        ));
    }
    out.push_str("],\"rows\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"shards\":{},\"clients\":{},\"ops\":{},\"secs\":{:.6},\
             \"ops_per_sec\":{:.1},\"p50_us\":{:.3},\"p99_us\":{:.3},\
             \"fastpath_rate\":{:.6},\"wal_fsyncs\":{}}}",
            c.shards,
            c.clients,
            c.ops,
            c.secs,
            c.ops_per_sec(),
            c.p50_us,
            c.p99_us,
            c.fastpath,
            c.wal_fsyncs
        ));
    }
    out.push_str("]}");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/service.json", &out).expect("write results/service.json");
    println!("wrote results/service.json ({} bytes)", out.len());

    if check {
        assert!(json_is_valid(&out), "emitted document must be valid JSON");
        for c in &cells {
            assert!(c.ops > 0 && c.ops_per_sec() > 0.0, "cell made no progress");
            assert_eq!(
                c.server_len, c.ops,
                "{} shards / {} clients: server lost keys",
                c.shards, c.clients
            );
            let base = baselines[&c.clients];
            assert!(
                c.fastpath >= base - FASTPATH_SLACK,
                "{} shards / {} clients: fast-path rate {:.3} fell more than \
                 {FASTPATH_SLACK} below the single-tree baseline {:.3}",
                c.shards,
                c.clients,
                c.fastpath,
                base
            );
        }
        let top_clients = *client_counts.iter().max().unwrap();
        let tput = |shards| {
            cells
                .iter()
                .find(|c| c.shards == shards && c.clients == top_clients)
                .map(Cell::ops_per_sec)
        };
        if let (Some(one), Some(four)) = (tput(1), tput(4)) {
            let ratio = four / one;
            if parallelism >= 8 {
                assert!(
                    ratio >= MULTI_CORE_SPEEDUP,
                    "4-shard throughput only {ratio:.2}x the 1-shard run at \
                     {top_clients} clients ({parallelism} cores available)"
                );
            } else {
                // Single-core substitution: shard workers serialize, so
                // only reject a collapse (see scaling.rs).
                assert!(
                    ratio >= SCALING_TOLERANCE,
                    "4-shard throughput collapsed to {ratio:.2}x the 1-shard \
                     run at {top_clients} clients on a {parallelism}-core runner"
                );
            }
            println!(
                "check passed: JSON valid, all cells kept their keys, fast-path \
                 within {FASTPATH_SLACK} of matched baselines, 4/1-shard ratio \
                 {ratio:.2} ({parallelism} cores)"
            );
        } else {
            println!(
                "check passed: JSON valid, all cells kept their keys, fast-path \
                 within {FASTPATH_SLACK} of matched baselines (scaling pair not \
                 measured)"
            );
        }
    }
}

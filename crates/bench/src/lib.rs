//! # quit-bench — the experiment harness
//!
//! One runnable binary per table and figure of the paper's evaluation (§5),
//! plus Criterion micro-benchmarks. Every binary prints the same rows or
//! series the paper reports, at a container-friendly default scale that the
//! `--n` flag (or `QUIT_BENCH_N`) raises to paper scale.
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `fig1a`  | Fig 1a — insert/lookup latency teaser (tail vs SWARE vs QuIT) |
//! | `fig3`   | Fig 3 — tail-B+-tree fast-insert fraction vs K |
//! | `fig5`   | Fig 5a/5b — ℓiℓ vs tail, plus the analytic model |
//! | `fig8`   | Fig 8 — ingestion speedup vs classical B+-tree |
//! | `fig9`   | Fig 9 — fast- vs top-insert fractions |
//! | `fig10`  | Fig 10a/b/c — occupancy, point lookups, range accesses |
//! | `fig11`  | Fig 11 — K×L heatmaps (fast inserts, occupancy) |
//! | `fig12`  | Fig 12 — alternating-sortedness stress test |
//! | `fig13`  | Fig 13 — concurrent scaling |
//! | `fig14`  | Fig 14 — SWARE vs QuIT latencies |
//! | `fig15`  | Fig 15 — real-world (synthetic stock) ingestion |
//! | `table2` | Table 2 — space reduction |
//! | `table3` | Table 3 — scalability with data size |
//! | `sensitivity` | extra: IKR-scale and `T_R` tuning sweeps (§4.4's "little to no tuning") |
//! | `batch_ingest` | extra: `insert_batch` vs per-key loop across the K grid |
//! | `soak` | extra: `quit-testkit` differential-oracle soak over the K×L grid (correctness, not timing) |

#![warn(missing_docs)]

use quit_core::{BpTree, SortedIndex, TreeConfig, Variant};
use std::time::{Duration, Instant};

/// Common command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Base dataset size (entries). Paper default is 500M; harness default
    /// is 2M.
    pub n: usize,
    /// Workload seed.
    pub seed: u64,
    /// Leaf/internal capacity (510 = paper's 4 KB pages).
    pub leaf_capacity: usize,
    /// Max threads for concurrency experiments.
    pub max_threads: usize,
    /// Repetitions for wall-clock measurements; the best run is kept
    /// (noisy-neighbour mitigation on shared CPUs).
    pub reps: usize,
    /// Quick mode: shrink everything ~10× (CI smoke runs).
    pub quick: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            n: 2_000_000,
            seed: 0xB0D5,
            leaf_capacity: 510,
            max_threads: 16,
            reps: 3,
            quick: false,
        }
    }
}

impl Opts {
    /// Parses `--n`, `--seed`, `--leaf-capacity`, `--threads`, `--quick`
    /// from the process arguments (and `QUIT_BENCH_N` from the
    /// environment).
    pub fn from_args() -> Self {
        let mut o = Opts::default();
        if let Ok(n) = std::env::var("QUIT_BENCH_N") {
            if let Ok(n) = n.parse() {
                o.n = n;
            }
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            let take = |i: usize| args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
            match args[i].as_str() {
                "--n" => {
                    if let Some(v) = take(i) {
                        o.n = v as usize;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = take(i) {
                        o.seed = v;
                        i += 1;
                    }
                }
                "--leaf-capacity" => {
                    if let Some(v) = take(i) {
                        o.leaf_capacity = v as usize;
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(v) = take(i) {
                        o.max_threads = v as usize;
                        i += 1;
                    }
                }
                "--reps" => {
                    if let Some(v) = take(i) {
                        o.reps = (v as usize).max(1);
                        i += 1;
                    }
                }
                "--quick" => o.quick = true,
                // Parsed by individual binaries (`--check` self-asserts,
                // service_bench takes shard/client lists); recognized here
                // so they don't warn as unknown.
                "--check" => {}
                "--clients" | "--shards" => i += 1,
                "--help" | "-h" => {
                    eprintln!(
                        "options: --n <entries> --seed <u64> --leaf-capacity <n> --threads <n> --quick"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown option {other}"),
            }
            i += 1;
        }
        if o.quick {
            o.n = (o.n / 10).max(10_000);
        }
        o
    }

    /// Tree geometry derived from the options.
    pub fn tree_config(&self) -> TreeConfig {
        TreeConfig::paper_default().with_leaf_capacity(self.leaf_capacity)
    }
}

/// Result of ingesting a workload into one index.
///
/// Generic over the index family: the driver functions below go through
/// [`SortedIndex`], so every family (QuIT/B+-tree variants, the concurrent
/// tree, SWARE's SA-B+-tree) is measured by identical code.
pub struct IngestRun<T> {
    /// The populated index.
    pub tree: T,
    /// Wall-clock ingest time.
    pub elapsed: Duration,
    /// Nanoseconds per insert.
    pub ns_per_insert: f64,
}

/// Ingests `keys` per key (values = arrival positions) into a fresh index
/// from `build`, repeated `reps` times keeping the fastest wall clock
/// (noisy-neighbour mitigation; the returned index is from the final
/// repetition — contents and counters are identical across repetitions).
pub fn ingest_index<T, F>(mut build: F, keys: &[u64], reps: usize) -> IngestRun<T>
where
    T: SortedIndex<u64, u64>,
    F: FnMut() -> T,
{
    let mut best: Option<Duration> = None;
    let mut tree = build();
    for rep in 0..reps.max(1) {
        if rep > 0 {
            tree = build();
        }
        let start = Instant::now();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i as u64);
        }
        let elapsed = start.elapsed();
        best = Some(best.map_or(elapsed, |b| b.min(elapsed)));
    }
    let elapsed = best.expect("at least one repetition");
    IngestRun {
        ns_per_insert: elapsed.as_nanos() as f64 / keys.len().max(1) as f64,
        tree,
        elapsed,
    }
}

/// Like [`ingest_index`], but ingesting through one
/// [`SortedIndex::insert_batch`] call over the whole stream — the
/// batched-run counterpart measured by the `batch_ingest` binary.
pub fn ingest_index_batch<T, F>(mut build: F, keys: &[u64], reps: usize) -> IngestRun<T>
where
    T: SortedIndex<u64, u64>,
    F: FnMut() -> T,
{
    let entries: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let mut best: Option<Duration> = None;
    let mut tree = build();
    for rep in 0..reps.max(1) {
        if rep > 0 {
            tree = build();
        }
        let start = Instant::now();
        tree.insert_batch(&entries);
        let elapsed = start.elapsed();
        best = Some(best.map_or(elapsed, |b| b.min(elapsed)));
    }
    let elapsed = best.expect("at least one repetition");
    IngestRun {
        ns_per_insert: elapsed.as_nanos() as f64 / keys.len().max(1) as f64,
        tree,
        elapsed,
    }
}

/// Builds `variant` and ingests `keys` (values = arrival positions).
pub fn ingest(variant: Variant, config: TreeConfig, keys: &[u64]) -> IngestRun<BpTree<u64, u64>> {
    ingest_reps(variant, config, keys, 1)
}

/// Like [`ingest`], repeated `reps` times keeping the fastest wall clock.
pub fn ingest_reps(
    variant: Variant,
    config: TreeConfig,
    keys: &[u64],
    reps: usize,
) -> IngestRun<BpTree<u64, u64>> {
    ingest_index(|| variant.build::<u64, u64>(config.clone()), keys, reps)
}

/// Runs `f` `reps` times and returns the fastest wall clock.
pub fn time_best<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best: Option<Duration> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        best = Some(best.map_or(elapsed, |b| b.min(elapsed)));
    }
    best.expect("at least one repetition")
}

/// Times point lookups for every probe key; returns nanoseconds per lookup.
/// (`&mut` because [`SortedIndex::get`] is `&mut self`: SWARE's buffered
/// tree cracks pages on reads.)
pub fn time_point_lookups<T: SortedIndex<u64, u64>>(tree: &mut T, probes: &[u64]) -> f64 {
    let start = Instant::now();
    let mut hits = 0usize;
    for &k in probes {
        if tree.get(k).is_some() {
            hits += 1;
        }
    }
    let elapsed = start.elapsed();
    std::hint::black_box(hits);
    elapsed.as_nanos() as f64 / probes.len().max(1) as f64
}

/// Pretty-prints a table with a header row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Minimal JSON validity checker (objects, arrays, strings without escapes
/// beyond `\"`, numbers, booleans, null) shared by the self-asserting
/// binaries that emit hand-rolled JSON (`metrics_smoke`, `scaling`).
/// Returns the byte position after the value, or `None` on malformed
/// input. Deliberately dependency-free: the exporters it guards are
/// hand-rolled too.
fn skip_json_value(b: &[u8], mut i: usize) -> Option<usize> {
    while b.get(i) == Some(&b' ') {
        i += 1;
    }
    match *b.get(i)? {
        b'{' => {
            i += 1;
            if b.get(i) == Some(&b'}') {
                return Some(i + 1);
            }
            loop {
                i = skip_json_value(b, i)?; // key (validated as a string below)
                if b.get(i) != Some(&b':') {
                    return None;
                }
                i = skip_json_value(b, i + 1)?;
                match *b.get(i)? {
                    b',' => i += 1,
                    b'}' => return Some(i + 1),
                    _ => return None,
                }
            }
        }
        b'[' => {
            i += 1;
            if b.get(i) == Some(&b']') {
                return Some(i + 1);
            }
            loop {
                i = skip_json_value(b, i)?;
                match *b.get(i)? {
                    b',' => i += 1,
                    b']' => return Some(i + 1),
                    _ => return None,
                }
            }
        }
        b'"' => {
            i += 1;
            loop {
                match *b.get(i)? {
                    b'\\' => i += 2,
                    b'"' => return Some(i + 1),
                    _ => i += 1,
                }
            }
        }
        b't' => b[i..].starts_with(b"true").then_some(i + 4),
        b'f' => b[i..].starts_with(b"false").then_some(i + 5),
        b'n' => b[i..].starts_with(b"null").then_some(i + 4),
        b'0'..=b'9' | b'-' => {
            let start = i;
            while b.get(i).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                i += 1;
            }
            (i > start).then_some(i)
        }
        _ => None,
    }
}

/// Whether `doc` is one valid JSON value (plus trailing spaces/newlines).
pub fn json_is_valid(doc: &str) -> bool {
    let b = doc.as_bytes();
    skip_json_value(b, 0).is_some_and(|end| b[end..].iter().all(|&c| c == b' ' || c == b'\n'))
}

/// The K values (percent out-of-order) of Figs 8, 9, 10, 14 and Table 2.
pub const K_GRID: [f64; 8] = [0.0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50, 1.00];

/// Formats a fraction as a percent label like the paper axes.
pub fn pct(f: f64) -> String {
    if f == 0.0 {
        "0".into()
    } else if f < 0.01 {
        format!("{:.2}", f * 100.0)
    } else {
        format!("{:.0}", f * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_runs_and_counts() {
        let keys = bods::BodsSpec::new(20_000, 0.05, 1.0).generate();
        let run = ingest(Variant::Quit, TreeConfig::small(64), &keys);
        assert_eq!(run.tree.len(), 20_000);
        assert!(run.ns_per_insert > 0.0);
        run.tree.check_invariants().unwrap();
    }

    #[test]
    fn lookup_timer_finds_keys() {
        let keys: Vec<u64> = (0..10_000).collect();
        let mut run = ingest(Variant::Classic, TreeConfig::small(64), &keys);
        let probes = bods::point_lookup_keys(10_000, 1000, 7);
        let ns = time_point_lookups(&mut run.tree, &probes);
        assert!(ns > 0.0);
    }

    #[test]
    fn batch_ingest_matches_per_key() {
        let keys: Vec<u64> = (0..30_000).collect();
        let config = TreeConfig::small(64);
        let per_key = ingest(Variant::Quit, config.clone(), &keys);
        let batched = ingest_index_batch(|| Variant::Quit.build(config.clone()), &keys, 1);
        assert_eq!(per_key.tree.len(), batched.tree.len());
        let a: Vec<(u64, u64)> = per_key.tree.iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(u64, u64)> = batched.tree.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(a, b, "batch ingest must produce identical contents");
        batched.tree.check_invariants().unwrap();
    }

    #[test]
    fn ingest_index_drives_every_family() {
        // No per-family special-casing: the same generic driver handles
        // core, concurrent, and SWARE indexes.
        let keys = bods::BodsSpec::new(5_000, 0.05, 1.0).generate();
        let core = ingest_index(
            || Variant::Quit.build::<u64, u64>(TreeConfig::small(64)),
            &keys,
            1,
        );
        let conc = ingest_index(
            || {
                quit_concurrent::ConcurrentTree::<u64, u64>::new(
                    quit_concurrent::ConcConfig::paper_default(),
                )
            },
            &keys,
            1,
        );
        let mut sware = ingest_index(
            || sware::SaBpTree::<u64, u64>::new(sware::SwareConfig::small(256, 64)),
            &keys,
            1,
        );
        sware.tree.flush_all();
        assert_eq!(core.tree.len(), keys.len());
        assert_eq!(quit_concurrent::ConcurrentTree::len(&conc.tree), keys.len());
        assert_eq!(sware.tree.len(), keys.len());
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.0), "0");
        assert_eq!(pct(0.05), "5");
        assert_eq!(pct(0.001), "0.10");
        assert_eq!(pct(1.0), "100");
    }

    #[test]
    fn default_opts() {
        let o = Opts::default();
        assert_eq!(o.n, 2_000_000);
        assert_eq!(o.tree_config().leaf_capacity, 510);
    }
}

//! Criterion micro-benchmark: multi-threaded insert throughput, concurrent
//! QuIT vs concurrent B+-tree (the microbenchmark behind Fig 13a).

use bods::BodsSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quit_concurrent::{ConcConfig, ConcurrentTree};
use std::sync::Arc;

fn bench_concurrent(c: &mut Criterion) {
    let n = 100_000usize;
    let keys = BodsSpec::new(n, 0.05, 1.0).generate();
    let mut group = c.benchmark_group("concurrent_insert_near_sorted");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for threads in [1usize, 4] {
        for (name, pole) in [("QuIT", true), ("B+-tree", false)] {
            group.bench_with_input(BenchmarkId::new(name, threads), &keys, |b, keys| {
                b.iter(|| {
                    let tree: Arc<ConcurrentTree<u64, u64>> = Arc::new(ConcurrentTree::new(
                        ConcConfig::paper_default().with_pole(pole),
                    ));
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let tree = tree.clone();
                            let slice: Vec<u64> =
                                keys.iter().skip(t).step_by(threads).copied().collect();
                            s.spawn(move || {
                                for k in slice {
                                    tree.insert(k, k);
                                }
                            });
                        }
                    });
                    tree.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent);
criterion_main!(benches);

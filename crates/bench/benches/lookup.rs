//! Criterion micro-benchmark: point and range lookups, QuIT vs classical
//! B+-tree (the microbenchmark behind Fig 10b/c).

use bods::{point_lookup_keys, range_lookup_bounds, BodsSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quit_core::{BpTree, TreeConfig, Variant};

fn build(variant: Variant, keys: &[u64]) -> BpTree<u64, u64> {
    let mut tree = variant.build::<u64, u64>(TreeConfig::paper_default());
    for (i, &k) in keys.iter().enumerate() {
        tree.insert(k, i as u64);
    }
    tree
}

fn bench_point(c: &mut Criterion) {
    let n = 200_000usize;
    let keys = BodsSpec::new(n, 0.05, 1.0).generate();
    let probes = point_lookup_keys(n, 10_000, 7);
    let mut group = c.benchmark_group("point_lookup");
    group.throughput(Throughput::Elements(probes.len() as u64));
    for variant in [Variant::Classic, Variant::Quit] {
        let tree = build(variant, &keys);
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.name()),
            &tree,
            |b, t| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for &p in &probes {
                        if t.get(p).is_some() {
                            hits += 1;
                        }
                    }
                    hits
                })
            },
        );
    }
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let n = 200_000usize;
    let keys = BodsSpec::new(n, 0.05, 1.0).generate();
    let ranges = range_lookup_bounds(n, 100, 0.01, 11);
    let mut group = c.benchmark_group("range_scan_sel1pct");
    group.sample_size(20);
    for variant in [Variant::Classic, Variant::Quit] {
        let tree = build(variant, &keys);
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.name()),
            &tree,
            |b, t| {
                b.iter(|| {
                    let mut total = 0usize;
                    for &(s, e) in &ranges {
                        total += t.range(s..e).count();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_point, bench_range);
criterion_main!(benches);

//! Criterion micro-benchmark: ingestion throughput per index variant across
//! sortedness levels (the microbenchmark behind Figs 1a/8).

use bods::BodsSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quit_core::{TreeConfig, Variant};

fn bench_ingest(c: &mut Criterion) {
    let n = 100_000usize;
    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for (label, k) in [("sorted", 0.0), ("near5", 0.05), ("scrambled", 1.0)] {
        let keys = BodsSpec::new(n, k, 1.0).generate();
        for variant in [
            Variant::Classic,
            Variant::Tail,
            Variant::Lil,
            Variant::PoleOnly,
            Variant::Quit,
        ] {
            group.bench_with_input(BenchmarkId::new(variant.name(), label), &keys, |b, keys| {
                b.iter(|| {
                    let mut tree = variant.build::<u64, u64>(TreeConfig::paper_default());
                    for (i, &key) in keys.iter().enumerate() {
                        tree.insert(key, i as u64);
                    }
                    tree.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);

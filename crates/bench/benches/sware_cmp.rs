//! Criterion micro-benchmark: QuIT vs SWARE (SA-B+-tree), ingest and point
//! lookups on a near-sorted stream (the microbenchmark behind Fig 14).

use bods::{point_lookup_keys, BodsSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quit_core::{TreeConfig, Variant};
use sware::{SaBpTree, SwareConfig};

fn bench_sware_ingest(c: &mut Criterion) {
    let n = 100_000usize;
    let keys = BodsSpec::new(n, 0.05, 1.0).generate();
    let mut group = c.benchmark_group("sware_vs_quit_ingest");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("QuIT"), &keys, |b, keys| {
        b.iter(|| {
            let mut t = Variant::Quit.build::<u64, u64>(TreeConfig::paper_default());
            for (i, &k) in keys.iter().enumerate() {
                t.insert(k, i as u64);
            }
            t.len()
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("SWARE"), &keys, |b, keys| {
        b.iter(|| {
            let mut t: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::for_data_size(keys.len()));
            for (i, &k) in keys.iter().enumerate() {
                t.insert(k, i as u64);
            }
            t.len()
        })
    });
    group.finish();
}

fn bench_sware_lookup(c: &mut Criterion) {
    let n = 100_000usize;
    let keys = BodsSpec::new(n, 0.05, 1.0).generate();
    let probes = point_lookup_keys(n, 5_000, 3);
    let mut group = c.benchmark_group("sware_vs_quit_lookup");
    group.throughput(Throughput::Elements(probes.len() as u64));

    let mut quit = Variant::Quit.build::<u64, u64>(TreeConfig::paper_default());
    for (i, &k) in keys.iter().enumerate() {
        quit.insert(k, i as u64);
    }
    group.bench_function("QuIT", |b| {
        b.iter(|| probes.iter().filter(|&&p| quit.get(p).is_some()).count())
    });

    let mut sa: SaBpTree<u64, u64> = SaBpTree::new(SwareConfig::for_data_size(n));
    for (i, &k) in keys.iter().enumerate() {
        sa.insert(k, i as u64);
    }
    group.bench_function("SWARE", |b| {
        b.iter(|| probes.iter().filter(|&&p| sa.get(p).is_some()).count())
    });
    group.finish();
}

criterion_group!(benches, bench_sware_ingest, bench_sware_lookup);
criterion_main!(benches);

//! Criterion ablation bench: the design choices DESIGN.md calls out —
//! QuIT minus variable split, minus redistribution, minus reset, and the
//! two readings of Algorithm 2's split bound (Eq. 2 vs the literal line 4).

use bods::BodsSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quit_core::{BpTree, FastPathMode, SplitBoundRule, TreeConfig};

fn configs() -> Vec<(&'static str, TreeConfig)> {
    let full = TreeConfig::paper_default();
    vec![
        ("full", full.clone()),
        ("no-variable-split", full.clone().with_variable_split(false)),
        ("no-redistribute", full.clone().with_redistribute(false)),
        ("no-reset", full.clone().with_reset_threshold(None)),
        (
            "literal-alg2-bound",
            full.with_split_bound_rule(SplitBoundRule::Literal),
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let n = 100_000usize;
    let keys = BodsSpec::new(n, 0.05, 1.0).generate();
    let mut group = c.benchmark_group("quit_ablation_ingest_near5");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    for (name, config) in configs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &keys, |b, keys| {
            b.iter(|| {
                let mut t: BpTree<u64, u64> =
                    BpTree::with_config(FastPathMode::Pole, config.clone());
                for (i, &k) in keys.iter().enumerate() {
                    t.insert(k, i as u64);
                }
                t.len()
            })
        });
    }
    group.finish();

    // Occupancy consequences of each ablation (reported once, not timed).
    println!("\nablation leaf occupancy at K=5% (N={n}):");
    for (name, config) in configs() {
        let mut t: BpTree<u64, u64> = BpTree::with_config(FastPathMode::Pole, config);
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u64);
        }
        let m = t.memory_report();
        println!(
            "  {name:>20}: occupancy {:>5.1}%  fast-inserts {:>5.1}%",
            m.avg_leaf_occupancy * 100.0,
            t.stats().fast_insert_fraction() * 100.0
        );
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Structure-aware workload generation.
//!
//! A [`WorkloadSpec`] turns a seed plus the paper's BoDS sortedness knobs
//! (K% of keys out of place, L% displacement distance — the same
//! [`bods::BodsSpec`] distributions `quit-bench` drives its ingest
//! experiments with) into a sequence of [`Op`]s, and [`WorkloadStrategy`]
//! wraps that in a `proptest` [`Strategy`] whose `shrink` does real delta
//! debugging: aligned chunk removal over the op sequence, then per-op
//! minimization.

use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

/// Largest `InsertBatch` a generated workload emits.
pub const MAX_BATCH: usize = 16;
/// Largest `BulkLoad` run a generated workload emits.
pub const MAX_BULK: usize = 32;

/// One operation against every index family and the model at once.
///
/// Keys are `u64` (the paper's experiments index integer and integer-coded
/// attributes); values tag arrival order so the oracle can compare values,
/// not just key multiplicity, wherever that is well-defined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Point insert (duplicates allowed and retained).
    Insert(u64, u64),
    /// Batched insert, exploiting sorted runs where the family can.
    InsertBatch(Vec<(u64, u64)>),
    /// Point lookup.
    Get(u64),
    /// Point delete of one instance.
    Delete(u64),
    /// Ordered scan of `[start, end)`.
    Range(u64, u64),
    /// A sorted run above every previously generated key — eligible for
    /// `BpTree::append_sorted` in the original sequence (shrinking may
    /// break the watermark ordering; the oracle falls back to a batched
    /// insert in that case, so every shrunk sequence stays valid).
    BulkLoad(Vec<(u64, u64)>),
    /// Zeroes every family's metrics registry; contents must be untouched.
    ResetMetrics,
}

/// Relative weights for each op kind in a generated workload.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Weight of [`Op::Insert`].
    pub insert: u32,
    /// Weight of [`Op::InsertBatch`].
    pub insert_batch: u32,
    /// Weight of [`Op::Get`].
    pub get: u32,
    /// Weight of [`Op::Delete`].
    pub delete: u32,
    /// Weight of [`Op::Range`].
    pub range: u32,
    /// Weight of [`Op::BulkLoad`].
    pub bulk_load: u32,
    /// Weight of [`Op::ResetMetrics`].
    pub reset_metrics: u32,
}

impl OpMix {
    /// The default mixed read/write workload.
    pub fn mixed() -> Self {
        OpMix {
            insert: 52,
            insert_batch: 8,
            get: 16,
            delete: 10,
            range: 9,
            bulk_load: 3,
            reset_metrics: 2,
        }
    }

    /// Ingest-dominated: the regime where the QuIT fast paths (and their
    /// split/reset edge cases) fire constantly.
    pub fn ingest_heavy() -> Self {
        OpMix {
            insert: 72,
            insert_batch: 10,
            get: 6,
            delete: 2,
            range: 8,
            bulk_load: 1,
            reset_metrics: 1,
        }
    }

    fn total(&self) -> u64 {
        [
            self.insert,
            self.insert_batch,
            self.get,
            self.delete,
            self.range,
            self.bulk_load,
            self.reset_metrics,
        ]
        .iter()
        .map(|&w| w as u64)
        .sum()
    }
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix::mixed()
    }
}

/// Deterministic recipe for one workload: seed, length, sortedness knobs,
/// and op mix.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of operations to generate.
    pub ops: usize,
    /// BoDS K: fraction of insert keys displaced out of sorted order.
    pub k_fraction: f64,
    /// BoDS L: displacement distance as a fraction of the stream length.
    pub l_fraction: f64,
    /// Seed for both the key stream and the op-kind choices.
    pub seed: u64,
    /// Relative op-kind weights.
    pub mix: OpMix,
    /// Probability that a point insert re-uses an already-inserted key
    /// (exercises duplicate handling).
    pub dup_fraction: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            ops: 1000,
            k_fraction: 0.05,
            l_fraction: 1.0,
            seed: 0,
            mix: OpMix::mixed(),
            dup_fraction: 0.05,
        }
    }
}

/// Internal op-kind tags for the two-pass generator.
#[derive(Clone, Copy)]
enum Kind {
    Insert,
    Batch(usize),
    Get,
    Delete,
    Range,
    Bulk(usize),
    Reset,
}

/// Walks the weight table with a uniform draw in `[0, mix.total())`.
/// Batch/bulk lengths are drawn here so the RNG consumption per op is
/// fixed by the kind alone.
fn choose_kind(mix: &OpMix, mut pick: u32, rng: &mut TestRng) -> Kind {
    if pick < mix.insert {
        return Kind::Insert;
    }
    pick -= mix.insert;
    if pick < mix.insert_batch {
        return Kind::Batch(2 + rng.below((MAX_BATCH - 1) as u64) as usize);
    }
    pick -= mix.insert_batch;
    if pick < mix.get {
        return Kind::Get;
    }
    pick -= mix.get;
    if pick < mix.delete {
        return Kind::Delete;
    }
    pick -= mix.delete;
    if pick < mix.range {
        return Kind::Range;
    }
    pick -= mix.range;
    if pick < mix.bulk_load {
        return Kind::Bulk(2 + rng.below((MAX_BULK - 1) as u64) as usize);
    }
    Kind::Reset
}

impl WorkloadSpec {
    /// Generates the op sequence. Deterministic in the spec.
    ///
    /// Insert keys are drawn, in order, from a [`bods::BodsSpec`] stream
    /// with this spec's K/L knobs, so a `k_fraction` of 0 replays the
    /// paper's fully sorted ingest and higher values inject bounded
    /// disorder — the exact regimes that steer the poℓe fast path between
    /// its catch-up, variable-split, and reset behaviours. `BulkLoad` runs
    /// are placed above a high watermark so the original sequence is
    /// `append_sorted`-eligible.
    pub fn generate(&self) -> Vec<Op> {
        let mut rng = TestRng::from_seed(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mix_total = self.mix.total().max(1);

        // Pass 1: choose op kinds (and batch lengths), counting how many
        // stream keys the inserts will consume.
        let mut kinds = Vec::with_capacity(self.ops);
        let mut stream_demand = 0usize;
        for _ in 0..self.ops {
            let pick = rng.below(mix_total) as u32;
            let kind = choose_kind(&self.mix, pick, &mut rng);
            match kind {
                Kind::Insert => stream_demand += 1,
                Kind::Batch(len) => stream_demand += len,
                _ => {}
            }
            kinds.push(kind);
        }

        // Pass 2: materialize keys. The insert stream is a K/L-perturbed
        // permutation prefix of `0..stream_demand`; bulk runs live above it.
        let stream = bods::BodsSpec::new(
            stream_demand.max(1),
            self.k_fraction.clamp(0.0, 1.0),
            self.l_fraction.clamp(0.0, 1.0),
        )
        .with_seed(self.seed)
        .generate();
        let mut stream = stream.into_iter();
        let key_space = stream_demand.max(1) as u64;
        let mut watermark = key_space;
        let mut next_value = 0u64;
        let mut value = || {
            next_value += 1;
            next_value
        };
        let mut inserted: Vec<u64> = Vec::new();
        let dup_milli = (self.dup_fraction.clamp(0.0, 1.0) * 1000.0) as u64;

        let mut ops = Vec::with_capacity(self.ops);
        for kind in kinds {
            let op = match kind {
                Kind::Insert => {
                    let k = if !inserted.is_empty() && rng.below(1000) < dup_milli {
                        inserted[rng.below(inserted.len() as u64) as usize]
                    } else {
                        stream.next().unwrap_or_else(|| rng.below(key_space))
                    };
                    inserted.push(k);
                    Op::Insert(k, value())
                }
                Kind::Batch(len) => {
                    let mut entries = Vec::with_capacity(len);
                    for _ in 0..len {
                        let k = stream.next().unwrap_or_else(|| rng.below(key_space));
                        inserted.push(k);
                        entries.push((k, value()));
                    }
                    Op::InsertBatch(entries)
                }
                Kind::Get => Op::Get(self.point_key(&mut rng, &inserted, key_space)),
                Kind::Delete => Op::Delete(self.point_key(&mut rng, &inserted, key_space)),
                Kind::Range => {
                    let start = self.point_key(&mut rng, &inserted, key_space);
                    let width = rng.below(200);
                    Op::Range(start, start.saturating_add(width))
                }
                Kind::Bulk(len) => {
                    let entries: Vec<(u64, u64)> =
                        (0..len as u64).map(|i| (watermark + i, value())).collect();
                    watermark += len as u64;
                    for &(k, _) in &entries {
                        inserted.push(k);
                    }
                    Op::BulkLoad(entries)
                }
                Kind::Reset => Op::ResetMetrics,
            };
            ops.push(op);
        }
        ops
    }

    /// A key for point reads/deletes/scan starts: biased toward keys that
    /// exist (70%), with misses from the full key space otherwise.
    fn point_key(&self, rng: &mut TestRng, inserted: &[u64], key_space: u64) -> u64 {
        if !inserted.is_empty() && rng.below(10) < 7 {
            inserted[rng.below(inserted.len() as u64) as usize]
        } else {
            rng.below(key_space + 8)
        }
    }
}

/// A proptest [`Strategy`] over op sequences with real shrinking.
///
/// `sample` draws a fresh [`WorkloadSpec`] (length, K/L knobs, mix) and
/// generates it; `shrink` performs delta debugging directly on the op
/// sequence — aligned chunk removal, largest chunks first, then per-op
/// minimization (batch halving, range narrowing, key/value bisection) —
/// so counterexamples arrive as short, concrete op lists rather than as an
/// opaque seed.
#[derive(Clone, Debug)]
pub struct WorkloadStrategy {
    /// Minimum generated sequence length (before shrinking).
    pub min_ops: usize,
    /// Maximum generated sequence length.
    pub max_ops: usize,
    /// Upper bound (in thousandths) for the sampled K knob.
    pub k_milli_max: u64,
    /// Candidate op mixes; each sample picks one.
    pub mixes: Vec<OpMix>,
}

impl WorkloadStrategy {
    /// Mixed read/write workloads up to `max_ops` operations.
    pub fn mixed(max_ops: usize) -> Self {
        WorkloadStrategy {
            min_ops: 1,
            max_ops,
            k_milli_max: 500,
            mixes: vec![OpMix::mixed(), OpMix::ingest_heavy()],
        }
    }

    /// Ingest-dominated, near-sorted workloads — the regime that drives
    /// the poℓe split machinery hardest (used by the mutation smoke
    /// check).
    pub fn ingest_heavy(max_ops: usize) -> Self {
        WorkloadStrategy {
            min_ops: 16,
            max_ops,
            k_milli_max: 300,
            mixes: vec![OpMix::ingest_heavy()],
        }
    }
}

impl Strategy for WorkloadStrategy {
    type Value = Vec<Op>;

    fn sample(&self, rng: &mut TestRng) -> Vec<Op> {
        let span = (self.max_ops - self.min_ops).max(1) as u64;
        let spec = WorkloadSpec {
            ops: self.min_ops + rng.below(span) as usize,
            k_fraction: rng.below(self.k_milli_max + 1) as f64 / 1000.0,
            l_fraction: (1 + rng.below(1000)) as f64 / 1000.0,
            seed: rng.next_u64(),
            mix: self.mixes[rng.below(self.mixes.len() as u64) as usize],
            dup_fraction: rng.below(200) as f64 / 1000.0,
        };
        spec.generate()
    }

    fn shrink(&self, value: &Vec<Op>) -> Vec<Vec<Op>> {
        let n = value.len();
        let mut out: Vec<Vec<Op>> = Vec::new();
        // Phase 1: aligned chunk removal, largest chunks first.
        let mut chunk = n / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                if end > start {
                    let mut cand = Vec::with_capacity(n - (end - start));
                    cand.extend_from_slice(&value[..start]);
                    cand.extend_from_slice(&value[end..]);
                    out.push(cand);
                }
                start += chunk;
            }
            chunk /= 2;
        }
        // Phase 2: per-op minimization.
        for (i, op) in value.iter().enumerate() {
            for cand in shrink_op(op) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// One round of strictly simpler variants of a single op.
fn shrink_op(op: &Op) -> Vec<Op> {
    match op {
        Op::Insert(k, v) => {
            let mut out = Vec::new();
            if *k > 0 {
                out.push(Op::Insert(k / 2, *v));
                out.push(Op::Insert(k - 1, *v));
            }
            if *v > 1 {
                out.push(Op::Insert(*k, 1));
            }
            out
        }
        Op::InsertBatch(entries) => shrink_run(entries, Op::InsertBatch),
        Op::BulkLoad(entries) => shrink_run(entries, Op::BulkLoad),
        Op::Get(k) if *k > 0 => vec![Op::Get(k / 2), Op::Get(k - 1)],
        Op::Delete(k) if *k > 0 => vec![Op::Delete(k / 2), Op::Delete(k - 1)],
        Op::Range(s, e) if e > s => {
            let mut out = vec![Op::Range(*s, s + (e - s) / 2)];
            if *s > 0 {
                out.push(Op::Range(s / 2, e - (s - s / 2)));
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Halves a multi-entry run; a single-entry run decays to a point insert.
fn shrink_run(entries: &[(u64, u64)], wrap: fn(Vec<(u64, u64)>) -> Op) -> Vec<Op> {
    match entries.len() {
        0 => Vec::new(),
        1 => vec![Op::Insert(entries[0].0, entries[0].1)],
        n => {
            let mid = n / 2;
            vec![wrap(entries[..mid].to_vec()), wrap(entries[mid..].to_vec())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec {
            ops: 500,
            seed: 42,
            ..WorkloadSpec::default()
        };
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn bulk_runs_respect_the_watermark() {
        let spec = WorkloadSpec {
            ops: 2000,
            mix: OpMix {
                bulk_load: 20,
                ..OpMix::mixed()
            },
            seed: 7,
            ..WorkloadSpec::default()
        };
        let ops = spec.generate();
        // The real eligibility invariant: every bulk run is sorted and
        // starts at or above every key inserted before it, so the original
        // sequence is `append_sorted`-eligible end to end.
        let mut max_seen = 0u64;
        let mut bulk_seen = 0;
        for op in &ops {
            match op {
                Op::Insert(k, _) => max_seen = max_seen.max(*k),
                Op::InsertBatch(entries) => {
                    for &(k, _) in entries {
                        max_seen = max_seen.max(k);
                    }
                }
                Op::BulkLoad(entries) => {
                    bulk_seen += 1;
                    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "run sorted");
                    let first = entries.first().unwrap().0;
                    assert!(first >= max_seen, "run starts at or above every prior key");
                    max_seen = max_seen.max(entries.last().unwrap().0);
                }
                _ => {}
            }
        }
        assert!(bulk_seen > 0, "mix with weight 20 must emit bulk loads");
    }

    #[test]
    fn sortedness_knob_changes_the_stream() {
        let sorted = WorkloadSpec {
            ops: 400,
            k_fraction: 0.0,
            seed: 3,
            mix: OpMix::ingest_heavy(),
            dup_fraction: 0.0,
            ..WorkloadSpec::default()
        };
        let keys: Vec<u64> = sorted
            .generate()
            .iter()
            .filter_map(|op| match op {
                Op::Insert(k, _) => Some(*k),
                _ => None,
            })
            .collect();
        // K = 0: the point-insert stream is ascending (bulk keys above).
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "K=0 stream sorted");
    }

    /// Chunk removal only ever removes ops — no candidate grows the
    /// sequence — and per-op shrinking preserves the sequence length.
    #[test]
    fn shrink_candidates_never_grow() {
        let strategy = WorkloadStrategy::mixed(200);
        let ops = WorkloadSpec {
            ops: 120,
            seed: 11,
            ..WorkloadSpec::default()
        }
        .generate();
        for cand in strategy.shrink(&ops) {
            assert!(cand.len() <= ops.len(), "candidate grew");
            assert_ne!(cand, ops, "candidate identical to input");
        }
    }

    /// End-to-end shrinking through the proptest runner: a property that
    /// rejects any sequence containing a delete must minimize to exactly
    /// `[Delete(0)]`.
    #[test]
    fn shrinks_to_single_minimal_op() {
        use proptest::test_runner::{Config, Runner};
        let strategy = (WorkloadStrategy::mixed(300),);
        let failure = Runner::new("testkit_shrink_delete", Config::with_cases(64))
            .run(&strategy, |(ops,)| {
                if ops.iter().any(|op| matches!(op, Op::Delete(_))) {
                    Err("sequence contains a delete".to_string())
                } else {
                    Ok(())
                }
            })
            .expect_err("mixed workloads contain deletes");
        let minimal = &failure.minimal.0;
        assert_eq!(minimal.len(), 1, "minimal: {minimal:?}");
        assert_eq!(minimal[0], Op::Delete(0), "minimal: {minimal:?}");
    }
}

//! Snapshot-isolation history checking for `TxnStore`.
//!
//! The drivers here record every transaction's lifecycle against a real
//! [`TxnStore`] as a flat [`TxnEvent`] history — begin (with the engine's
//! snapshot timestamp), each read with the value it observed, each
//! buffered write, and the outcome (commit with the engine's commit
//! timestamp, or abort). [`check_history`] then re-derives the committed
//! multi-version state *from the history alone* and verifies the
//! snapshot-isolation axioms:
//!
//! * **snapshot reads** — every read observes exactly the newest
//!   committed version at or below its transaction's snapshot timestamp
//!   (overlaid with the transaction's own earlier writes). Because the
//!   expected value is reconstructed purely from *committed*
//!   transactions, this axiom also catches dirty reads and any
//!   half-visible (non-atomic) commit;
//! * **first-committer-wins** — no two committed transactions that wrote
//!   a common key overlapped: on every key, each committed version's
//!   writer must have had the previous version inside its snapshot.
//!   A violation here is precisely a lost update;
//! * **unique, monotonic commit timestamps** — writer commits carry
//!   globally unique timestamps strictly above their snapshots.
//!
//! Two drivers produce histories: [`replay_txn_history`] runs a
//! deterministic single-threaded interleaving of up to [`MAX_SLOTS`]
//! open transactions (proptest-shrinkable via [`TxnWorkloadStrategy`] —
//! this is the driver the `inject-txn-bug` mutation smoke check leans
//! on), and [`replay_txn_concurrent`] runs a true multi-writer soak over
//! one contended key space, merging per-thread event logs and checking
//! them against the engine-assigned timestamps. Both finish by comparing
//! the store's final visible state against the history's committed state
//! and re-running the tree's structural consistency check.

use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use quit_concurrent::ConcConfig;
use quit_core::Error;
use quit_durability::{DurabilityConfig, MemStorage, Storage, Txn, TxnConfig, TxnStats, TxnStore};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Deterministic stream for workload generation and the concurrent
/// driver's per-thread op choices (splitmix64, as in the crash module).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One recorded fact about a transaction's execution. `txn` is the
/// engine-assigned transaction id; timestamps are the engine's own, so
/// the checker verifies the engine against its published ordering rather
/// than against a parallel clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnEvent {
    /// The transaction began and was handed `snapshot_ts`.
    Begin {
        /// Engine transaction id.
        txn: u64,
        /// The snapshot timestamp all its reads resolve against.
        snapshot_ts: u64,
    },
    /// A read observed `value` (`None` = key absent or deleted).
    Read {
        /// Engine transaction id.
        txn: u64,
        /// Key read.
        key: u64,
        /// Value the engine returned.
        value: Option<u64>,
    },
    /// A write intent was buffered (`None` = delete).
    Write {
        /// Engine transaction id.
        txn: u64,
        /// Key written.
        key: u64,
        /// New value, or `None` for a delete.
        value: Option<u64>,
    },
    /// The transaction committed at `commit_ts` (for a read-only
    /// transaction this is its snapshot timestamp).
    Commit {
        /// Engine transaction id.
        txn: u64,
        /// Engine-assigned commit timestamp.
        commit_ts: u64,
    },
    /// The transaction aborted — explicitly, by drop, or as a
    /// first-committer-wins conflict loser.
    Abort {
        /// Engine transaction id.
        txn: u64,
    },
}

/// A snapshot-isolation axiom violation: which axiom, the transaction at
/// fault, and a human-readable reconstruction of the contradiction.
#[derive(Clone, Debug)]
pub struct SiViolation {
    /// Axiom that failed (`"snapshot-read"`, `"first-committer-wins"`,
    /// `"unique-commit-ts"`, `"monotonic-commit"`, `"final-state"`,
    /// `"tree-consistency"`, `"well-formed"`, or `"io"`).
    pub axiom: &'static str,
    /// Transaction id the violation is attributed to (0 when none).
    pub txn: u64,
    /// What the history says versus what was observed.
    pub detail: String,
}

impl fmt::Display for SiViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SI violation [{}] txn {}: {}",
            self.axiom, self.txn, self.detail
        )
    }
}

/// Totals from a verified (violation-free) history.
#[derive(Clone, Copy, Debug, Default)]
pub struct SiSummary {
    /// Transactions in the history.
    pub txns: usize,
    /// Committed transactions (read-only commits included).
    pub committed: usize,
    /// Committed transactions that wrote at least one key.
    pub committed_writers: usize,
    /// Aborted (or never-closed, which the checker treats as aborted)
    /// transactions.
    pub aborted: usize,
    /// Reads individually verified against the reconstructed state.
    pub reads_checked: usize,
    /// Committed versions across all keys.
    pub versions: usize,
}

/// Per-transaction record assembled from the flat event stream.
struct TxnRec {
    snapshot_ts: u64,
    /// `(is_read, key, value)` in program order.
    ops: Vec<(bool, u64, Option<u64>)>,
    commit_ts: Option<u64>,
    closed: bool,
}

fn assemble(events: &[TxnEvent]) -> Result<BTreeMap<u64, TxnRec>, SiViolation> {
    let malformed = |txn: u64, detail: String| SiViolation {
        axiom: "well-formed",
        txn,
        detail,
    };
    let mut txns: BTreeMap<u64, TxnRec> = BTreeMap::new();
    for ev in events {
        match *ev {
            TxnEvent::Begin { txn, snapshot_ts } => {
                let rec = TxnRec {
                    snapshot_ts,
                    ops: Vec::new(),
                    commit_ts: None,
                    closed: false,
                };
                if txns.insert(txn, rec).is_some() {
                    return Err(malformed(txn, "transaction id began twice".into()));
                }
            }
            TxnEvent::Read { txn, key, value } | TxnEvent::Write { txn, key, value } => {
                let is_read = matches!(ev, TxnEvent::Read { .. });
                let rec = txns
                    .get_mut(&txn)
                    .ok_or_else(|| malformed(txn, "op before begin".into()))?;
                if rec.closed {
                    return Err(malformed(txn, "op after commit/abort".into()));
                }
                rec.ops.push((is_read, key, value));
            }
            TxnEvent::Commit { txn, commit_ts } => {
                let rec = txns
                    .get_mut(&txn)
                    .ok_or_else(|| malformed(txn, "commit before begin".into()))?;
                if rec.closed {
                    return Err(malformed(txn, "closed twice".into()));
                }
                rec.closed = true;
                rec.commit_ts = Some(commit_ts);
            }
            TxnEvent::Abort { txn } => {
                let rec = txns
                    .get_mut(&txn)
                    .ok_or_else(|| malformed(txn, "abort before begin".into()))?;
                if rec.closed {
                    return Err(malformed(txn, "closed twice".into()));
                }
                rec.closed = true;
            }
        }
    }
    Ok(txns)
}

/// Verifies the snapshot-isolation axioms over a recorded history. See
/// the module docs for the axioms; returns the first violation found.
pub fn check_history(events: &[TxnEvent]) -> Result<SiSummary, SiViolation> {
    let txns = assemble(events)?;

    // Committed write sets -> per-key version lists, with commit-ts
    // uniqueness and snapshot-monotonicity along the way. Read-only
    // commits reuse their snapshot timestamp by design and create no
    // version, so they are excluded from both checks.
    let mut versions: BTreeMap<u64, Vec<(u64, u64, Option<u64>)>> = BTreeMap::new();
    let mut seen_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut summary = SiSummary {
        txns: txns.len(),
        ..SiSummary::default()
    };
    for (&tid, rec) in &txns {
        let Some(cts) = rec.commit_ts else {
            summary.aborted += 1;
            continue;
        };
        summary.committed += 1;
        let mut wset: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        for &(is_read, key, value) in &rec.ops {
            if !is_read {
                wset.insert(key, value);
            }
        }
        if wset.is_empty() {
            continue;
        }
        summary.committed_writers += 1;
        if cts <= rec.snapshot_ts {
            return Err(SiViolation {
                axiom: "monotonic-commit",
                txn: tid,
                detail: format!("commit ts {cts} not above snapshot {}", rec.snapshot_ts),
            });
        }
        if let Some(&other) = seen_ts.get(&cts) {
            return Err(SiViolation {
                axiom: "unique-commit-ts",
                txn: tid,
                detail: format!("commit ts {cts} already used by txn {other}"),
            });
        }
        seen_ts.insert(cts, tid);
        for (key, value) in wset {
            versions.entry(key).or_default().push((cts, tid, value));
        }
    }
    for list in versions.values_mut() {
        list.sort_unstable_by_key(|&(ts, _, _)| ts);
        summary.versions += list.len();
    }

    // First-committer-wins: along each key's version list, every writer
    // must have begun at or after the previous version committed —
    // overlapping committed writers on a shared key are a lost update.
    // (Consecutive pairs suffice: snapshots at or above the previous
    // commit are transitively above all earlier ones.)
    for (&key, list) in &versions {
        for w in list.windows(2) {
            let (c_prev, t_prev, _) = w[0];
            let (c_next, t_next, _) = w[1];
            let snap_next = txns[&t_next].snapshot_ts;
            if snap_next < c_prev {
                return Err(SiViolation {
                    axiom: "first-committer-wins",
                    txn: t_next,
                    detail: format!(
                        "lost update on key {key}: txn {t_next} (snapshot {snap_next}, \
                         commit {c_next}) overlapped txn {t_prev} (commit {c_prev}) \
                         yet both committed"
                    ),
                });
            }
        }
    }

    // Snapshot reads: replay each transaction's ops in program order
    // with a read-your-writes overlay; every read must equal the newest
    // committed version at or below the snapshot.
    for (&tid, rec) in &txns {
        let mut overlay: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        for &(is_read, key, value) in &rec.ops {
            if !is_read {
                overlay.insert(key, value);
                continue;
            }
            let expect = match overlay.get(&key) {
                Some(&intent) => intent,
                None => versions.get(&key).and_then(|list| {
                    list.iter()
                        .rev()
                        .find(|&&(ts, _, _)| ts <= rec.snapshot_ts)
                        .and_then(|&(_, _, v)| v)
                }),
            };
            if value != expect {
                return Err(SiViolation {
                    axiom: "snapshot-read",
                    txn: tid,
                    detail: format!(
                        "read of key {key} at snapshot {} observed {value:?}; \
                         the committed history says {expect:?}",
                        rec.snapshot_ts
                    ),
                });
            }
            summary.reads_checked += 1;
        }
    }
    Ok(summary)
}

/// The final committed state a history implies: every committed write
/// set applied in commit-timestamp order. Drivers compare this against
/// the store's final visible scan.
pub fn committed_state(events: &[TxnEvent]) -> BTreeMap<u64, u64> {
    let Ok(txns) = assemble(events) else {
        return BTreeMap::new();
    };
    let mut writes: Vec<(u64, u64, Option<u64>)> = Vec::new();
    for rec in txns.values() {
        let Some(cts) = rec.commit_ts else { continue };
        let mut wset: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        for &(is_read, key, value) in &rec.ops {
            if !is_read {
                wset.insert(key, value);
            }
        }
        for (key, value) in wset {
            writes.push((cts, key, value));
        }
    }
    writes.sort_unstable_by_key(|&(ts, key, _)| (ts, key));
    let mut state = BTreeMap::new();
    for (_, key, value) in writes {
        match value {
            Some(v) => {
                state.insert(key, v);
            }
            None => {
                state.remove(&key);
            }
        }
    }
    state
}

/// Open-transaction slots the single-threaded driver multiplexes over.
pub const MAX_SLOTS: usize = 8;

/// One step of the deterministic interleaved-transaction driver. The
/// slot selects which of the [`MAX_SLOTS`] open transactions the step
/// applies to; reads/writes on an empty slot implicitly begin one, so
/// shrunk sequences stay meaningful without their `Begin` steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnOp {
    /// Open a fresh transaction in the slot (aborting any occupant).
    Begin(u8),
    /// Read a key in the slot's transaction.
    Read(u8, u64),
    /// Buffer a write in the slot's transaction.
    Write(u8, u64, u64),
    /// Buffer a delete in the slot's transaction.
    Delete(u8, u64),
    /// Commit the slot's transaction (no-op on an empty slot).
    Commit(u8),
    /// Abort the slot's transaction (no-op on an empty slot).
    Abort(u8),
}

impl TxnOp {
    /// Which transaction slot the step applies to.
    pub fn slot(&self) -> u8 {
        match *self {
            TxnOp::Begin(s) | TxnOp::Commit(s) | TxnOp::Abort(s) => s,
            TxnOp::Read(s, _) | TxnOp::Delete(s, _) => s,
            TxnOp::Write(s, _, _) => s,
        }
    }
}

/// Deterministic recipe for an interleaved-transaction workload.
#[derive(Clone, Copy, Debug)]
pub struct TxnWorkloadSpec {
    /// Steps to generate.
    pub ops: usize,
    /// Transaction slots in play (clamped to [`MAX_SLOTS`]).
    pub slots: u8,
    /// Key-space size — small spaces force write-write conflicts.
    pub keys: u64,
    /// Seed for step choices.
    pub seed: u64,
}

impl Default for TxnWorkloadSpec {
    fn default() -> Self {
        TxnWorkloadSpec {
            ops: 1000,
            slots: 4,
            keys: 24,
            seed: 0,
        }
    }
}

impl TxnWorkloadSpec {
    /// Generates the step sequence. Deterministic in the spec; values
    /// tag arrival order so lost updates are visible as exact values.
    pub fn generate(&self) -> Vec<TxnOp> {
        let mut rng = self.seed ^ 0x51C4_EC4E_D00D_F00D;
        let slots = u64::from(self.slots.clamp(1, MAX_SLOTS as u8));
        let keys = self.keys.max(1);
        let mut next_value = 0u64;
        (0..self.ops)
            .map(|_| {
                let r = splitmix(&mut rng);
                let slot = (r % slots) as u8;
                let key = (r >> 8) % keys;
                match (r >> 56) % 100 {
                    0..=7 => TxnOp::Begin(slot),
                    8..=27 => TxnOp::Read(slot, key),
                    28..=67 => {
                        next_value += 1;
                        TxnOp::Write(slot, key, next_value)
                    }
                    68..=77 => TxnOp::Delete(slot, key),
                    78..=94 => TxnOp::Commit(slot),
                    _ => TxnOp::Abort(slot),
                }
            })
            .collect()
    }
}

/// A proptest [`Strategy`] over interleaved-transaction workloads with
/// the same delta-debugging shrinker shape as `WorkloadStrategy`:
/// aligned chunk removal, then per-step key/value minimization.
#[derive(Clone, Debug)]
pub struct TxnWorkloadStrategy {
    /// Minimum generated sequence length.
    pub min_ops: usize,
    /// Maximum generated sequence length.
    pub max_ops: usize,
    /// Upper bound for the sampled key-space size.
    pub max_keys: u64,
    /// Upper bound for the sampled slot count.
    pub slots: u8,
}

impl TxnWorkloadStrategy {
    /// Heavily contended workloads: few keys, several interleaved
    /// transactions — the regime where first-committer-wins does
    /// constant work (and where disabling it is caught immediately).
    pub fn contended(max_ops: usize) -> Self {
        TxnWorkloadStrategy {
            min_ops: 4,
            max_ops,
            max_keys: 16,
            slots: 4,
        }
    }
}

impl Strategy for TxnWorkloadStrategy {
    type Value = Vec<TxnOp>;

    fn sample(&self, rng: &mut TestRng) -> Vec<TxnOp> {
        let span = (self.max_ops.saturating_sub(self.min_ops)).max(1) as u64;
        TxnWorkloadSpec {
            ops: self.min_ops + rng.below(span) as usize,
            slots: (2 + rng.below(u64::from(self.slots.max(2)) - 1)) as u8,
            keys: 1 + rng.below(self.max_keys.max(1)),
            seed: rng.next_u64(),
        }
        .generate()
    }

    fn shrink(&self, value: &Vec<TxnOp>) -> Vec<Vec<TxnOp>> {
        let n = value.len();
        let mut out: Vec<Vec<TxnOp>> = Vec::new();
        let mut chunk = n / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                if end > start {
                    let mut cand = Vec::with_capacity(n - (end - start));
                    cand.extend_from_slice(&value[..start]);
                    cand.extend_from_slice(&value[end..]);
                    out.push(cand);
                }
                start += chunk;
            }
            chunk /= 2;
        }
        for (i, op) in value.iter().enumerate() {
            for cand in shrink_txn_op(op) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// One round of strictly simpler variants of a single step.
fn shrink_txn_op(op: &TxnOp) -> Vec<TxnOp> {
    match *op {
        TxnOp::Write(s, k, v) => {
            let mut out = Vec::new();
            if k > 0 {
                out.push(TxnOp::Write(s, k / 2, v));
                out.push(TxnOp::Write(s, k - 1, v));
            }
            if v > 1 {
                out.push(TxnOp::Write(s, k, 1));
            }
            out
        }
        TxnOp::Read(s, k) if k > 0 => vec![TxnOp::Read(s, k / 2), TxnOp::Read(s, k - 1)],
        TxnOp::Delete(s, k) if k > 0 => vec![TxnOp::Delete(s, k / 2), TxnOp::Delete(s, k - 1)],
        _ => Vec::new(),
    }
}

/// Everything a driver learned from one verified run.
#[derive(Clone, Copy, Debug)]
pub struct SiReport {
    /// Events recorded (the history length).
    pub events: usize,
    /// Axiom-check totals.
    pub summary: SiSummary,
    /// The engine's own transaction counters for the run.
    pub stats: TxnStats,
}

fn io_violation(stage: &'static str, e: impl fmt::Display) -> SiViolation {
    SiViolation {
        axiom: "io",
        txn: 0,
        detail: format!("{stage}: {e}"),
    }
}

/// Gets (beginning if needed) the slot's transaction, recording events.
fn ensure_open<'a, 'b>(
    store: &'a TxnStore<u64, u64>,
    slot: &'b mut Option<Txn<'a, u64, u64>>,
    events: &mut Vec<TxnEvent>,
) -> &'b mut Txn<'a, u64, u64> {
    if slot.is_none() {
        let txn = store.begin();
        events.push(TxnEvent::Begin {
            txn: txn.tid(),
            snapshot_ts: txn.snapshot_ts(),
        });
        *slot = Some(txn);
    }
    slot.as_mut().expect("just filled")
}

/// Shared tail of both drivers: structural consistency, final-state
/// equivalence, then the axiom check over the recorded history.
fn verify_run(store: &TxnStore<u64, u64>, events: &[TxnEvent]) -> Result<SiReport, SiViolation> {
    store.mvcc().check_consistency().map_err(|e| SiViolation {
        axiom: "tree-consistency",
        txn: 0,
        detail: e,
    })?;
    let got = store.scan(..);
    let want: Vec<(u64, u64)> = committed_state(events).into_iter().collect();
    if got != want {
        let at = got
            .iter()
            .zip(&want)
            .position(|(a, b)| a != b)
            .unwrap_or(got.len().min(want.len()));
        return Err(SiViolation {
            axiom: "final-state",
            txn: 0,
            detail: format!(
                "final visible state diverges from the committed history: \
                 {} vs {} keys, first mismatch at #{at} (engine {:?} vs history {:?})",
                got.len(),
                want.len(),
                got.get(at),
                want.get(at),
            ),
        });
    }
    let summary = check_history(events)?;
    Ok(SiReport {
        events: events.len(),
        summary,
        stats: store.txn_stats(),
    })
}

/// Runs a deterministic interleaved-transaction workload against a
/// fresh in-memory [`TxnStore`] (OLC or pessimistic descents), records
/// the full history, and verifies the snapshot-isolation axioms plus
/// final-state equivalence. Returns the first violation — directly
/// shrinkable by proptest over [`TxnWorkloadStrategy`].
pub fn replay_txn_history(ops: &[TxnOp], olc: bool) -> Result<SiReport, SiViolation> {
    let storage = Arc::new(MemStorage::new()) as Arc<dyn Storage>;
    let config = TxnConfig::default()
        .with_tree(ConcConfig::small(8).with_olc(olc))
        .with_durability(DurabilityConfig::buffered())
        .with_gc_every(16);
    let (store, _) = TxnStore::open(storage, config).map_err(|e| io_violation("open", e))?;
    let mut events: Vec<TxnEvent> = Vec::new();
    {
        let mut slots: Vec<Option<Txn<'_, u64, u64>>> = (0..MAX_SLOTS).map(|_| None).collect();
        for op in ops {
            let s = usize::from(op.slot()) % MAX_SLOTS;
            match *op {
                TxnOp::Begin(_) => {
                    if let Some(old) = slots[s].take() {
                        events.push(TxnEvent::Abort { txn: old.tid() });
                        old.abort();
                    }
                    ensure_open(&store, &mut slots[s], &mut events);
                }
                TxnOp::Read(_, key) => {
                    let txn = ensure_open(&store, &mut slots[s], &mut events);
                    let value = txn.get(key);
                    events.push(TxnEvent::Read {
                        txn: txn.tid(),
                        key,
                        value,
                    });
                }
                TxnOp::Write(_, key, value) => {
                    let txn = ensure_open(&store, &mut slots[s], &mut events);
                    txn.insert(key, value);
                    events.push(TxnEvent::Write {
                        txn: txn.tid(),
                        key,
                        value: Some(value),
                    });
                }
                TxnOp::Delete(_, key) => {
                    let txn = ensure_open(&store, &mut slots[s], &mut events);
                    txn.delete(key);
                    events.push(TxnEvent::Write {
                        txn: txn.tid(),
                        key,
                        value: None,
                    });
                }
                TxnOp::Commit(_) => {
                    if let Some(txn) = slots[s].take() {
                        let tid = txn.tid();
                        match txn.commit() {
                            Ok(commit_ts) => {
                                events.push(TxnEvent::Commit {
                                    txn: tid,
                                    commit_ts,
                                });
                            }
                            Err(Error::Conflict(_)) => events.push(TxnEvent::Abort { txn: tid }),
                            Err(e) => return Err(io_violation("commit", e)),
                        }
                    }
                }
                TxnOp::Abort(_) => {
                    if let Some(txn) = slots[s].take() {
                        events.push(TxnEvent::Abort { txn: txn.tid() });
                        txn.abort();
                    }
                }
            }
        }
        for slot in &mut slots {
            if let Some(txn) = slot.take() {
                events.push(TxnEvent::Abort { txn: txn.tid() });
            }
        }
    }
    verify_run(&store, &events)
}

/// Knobs for the multi-writer SI soak: N threads race transactions over
/// one shared key space while the version GC runs on its commit cadence,
/// and the merged history must satisfy every axiom.
#[derive(Clone, Copy, Debug)]
pub struct SiSoakSpec {
    /// Writer threads.
    pub threads: usize,
    /// Transactions per thread.
    pub txns_per_thread: usize,
    /// Maximum reads+writes per transaction (≥ 1 drawn uniformly).
    pub max_ops_per_txn: usize,
    /// Shared key-space size (small = constant conflicts).
    pub keys: u64,
    /// Percentage of decided transactions that abort instead of
    /// committing.
    pub abort_percent: u64,
    /// Barrier-aligned contention rounds per thread: all threads begin,
    /// write the same hot key, re-align, then race to commit — every
    /// round deterministically produces `threads - 1` first-committer
    /// conflicts regardless of scheduling (`0` disables).
    pub conflict_rounds: usize,
    /// Optimistic (`true`) or pessimistic (`false`) descents.
    pub olc: bool,
    /// Leaf capacity for the version tree.
    pub leaf_capacity: usize,
    /// Version-GC cadence while the soak runs (0 disables).
    pub gc_every: u64,
    /// Seed for every thread's op stream.
    pub seed: u64,
}

impl Default for SiSoakSpec {
    fn default() -> Self {
        SiSoakSpec {
            threads: 4,
            txns_per_thread: 500,
            max_ops_per_txn: 6,
            keys: 128,
            abort_percent: 10,
            conflict_rounds: 8,
            olc: true,
            leaf_capacity: 32,
            gc_every: 64,
            seed: 0x51_C4A5,
        }
    }
}

/// Runs the multi-writer soak: each thread loops begin → mixed
/// reads/writes/deletes over the shared key space → commit (or abort),
/// recording its own event log; conflict losers record aborts. The
/// merged history is then checked against the SI axioms using only the
/// engine's timestamps (no cross-thread ordering is assumed), plus the
/// final-state and structural checks.
pub fn replay_txn_concurrent(spec: &SiSoakSpec) -> Result<SiReport, SiViolation> {
    let storage = Arc::new(MemStorage::new()) as Arc<dyn Storage>;
    let config = TxnConfig::default()
        .with_tree(ConcConfig::small(spec.leaf_capacity.max(4)).with_olc(spec.olc))
        .with_durability(DurabilityConfig::group_commit())
        .with_gc_every(spec.gc_every);
    let (store, _) = TxnStore::open(storage, config).map_err(|e| io_violation("open", e))?;

    // Guaranteed-overlap cadence: on round steps every thread begins,
    // writes key 0, then re-aligns before anyone commits — all commits
    // land after every snapshot, so first-committer-wins must reject
    // exactly `threads - 1` of them, whatever the scheduler does.
    let round_every = if spec.conflict_rounds > 0 && spec.threads > 1 {
        (spec.txns_per_thread / spec.conflict_rounds).max(1)
    } else {
        0
    };
    let barrier = std::sync::Barrier::new(spec.threads);

    let logs: Vec<Result<Vec<TxnEvent>, SiViolation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|w| {
                let store = &store;
                let barrier = &barrier;
                let spec = *spec;
                scope.spawn(move || -> Result<Vec<TxnEvent>, SiViolation> {
                    let mut rng = spec.seed ^ (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut events: Vec<TxnEvent> = Vec::new();
                    let mut vseq = 0u64;
                    for t in 0..spec.txns_per_thread {
                        if round_every > 0 && t.is_multiple_of(round_every) {
                            barrier.wait();
                            let mut txn = store.begin();
                            let tid = txn.tid();
                            events.push(TxnEvent::Begin {
                                txn: tid,
                                snapshot_ts: txn.snapshot_ts(),
                            });
                            vseq += 1;
                            let value = ((w as u64) << 40) | vseq;
                            txn.insert(0, value);
                            events.push(TxnEvent::Write {
                                txn: tid,
                                key: 0,
                                value: Some(value),
                            });
                            barrier.wait();
                            match txn.commit() {
                                Ok(commit_ts) => events.push(TxnEvent::Commit {
                                    txn: tid,
                                    commit_ts,
                                }),
                                Err(Error::Conflict(_)) => {
                                    events.push(TxnEvent::Abort { txn: tid });
                                }
                                Err(e) => return Err(io_violation("round commit", e)),
                            }
                            continue;
                        }
                        let mut txn = store.begin();
                        let tid = txn.tid();
                        events.push(TxnEvent::Begin {
                            txn: tid,
                            snapshot_ts: txn.snapshot_ts(),
                        });
                        let n = 1 + splitmix(&mut rng) % spec.max_ops_per_txn.max(1) as u64;
                        for _ in 0..n {
                            let r = splitmix(&mut rng);
                            let key = r % spec.keys.max(1);
                            match (r >> 32) % 100 {
                                0..=49 => {
                                    vseq += 1;
                                    let value = ((w as u64) << 40) | vseq;
                                    txn.insert(key, value);
                                    events.push(TxnEvent::Write {
                                        txn: tid,
                                        key,
                                        value: Some(value),
                                    });
                                }
                                50..=64 => {
                                    txn.delete(key);
                                    events.push(TxnEvent::Write {
                                        txn: tid,
                                        key,
                                        value: None,
                                    });
                                }
                                _ => {
                                    let value = txn.get(key);
                                    events.push(TxnEvent::Read {
                                        txn: tid,
                                        key,
                                        value,
                                    });
                                }
                            }
                        }
                        if splitmix(&mut rng) % 100 < spec.abort_percent {
                            events.push(TxnEvent::Abort { txn: tid });
                            txn.abort();
                        } else {
                            match txn.commit() {
                                Ok(commit_ts) => events.push(TxnEvent::Commit {
                                    txn: tid,
                                    commit_ts,
                                }),
                                Err(Error::Conflict(_)) => {
                                    events.push(TxnEvent::Abort { txn: tid });
                                }
                                Err(e) => return Err(io_violation("commit", e)),
                            }
                        }
                    }
                    Ok(events)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak writer panicked"))
            .collect()
    });

    let mut events: Vec<TxnEvent> = Vec::new();
    for log in logs {
        events.extend(log?);
    }
    verify_run(&store, &events)
}

#[cfg(all(
    test,
    not(feature = "inject-txn-bug"),
    not(feature = "inject-wal-bug"),
    not(feature = "inject-split-bug"),
    not(feature = "inject-search-bug")
))]
mod tests {
    use super::*;

    #[test]
    fn a_small_legal_history_passes() {
        let events = vec![
            TxnEvent::Begin {
                txn: 1,
                snapshot_ts: 0,
            },
            TxnEvent::Write {
                txn: 1,
                key: 7,
                value: Some(70),
            },
            TxnEvent::Commit {
                txn: 1,
                commit_ts: 1,
            },
            TxnEvent::Begin {
                txn: 2,
                snapshot_ts: 1,
            },
            TxnEvent::Read {
                txn: 2,
                key: 7,
                value: Some(70),
            },
            TxnEvent::Write {
                txn: 2,
                key: 7,
                value: None,
            },
            TxnEvent::Read {
                txn: 2,
                key: 7,
                value: None,
            },
            TxnEvent::Commit {
                txn: 2,
                commit_ts: 2,
            },
        ];
        let summary = check_history(&events).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(summary.committed_writers, 2);
        assert_eq!(summary.reads_checked, 2);
        assert!(committed_state(&events).is_empty());
    }

    #[test]
    fn the_checker_catches_a_lost_update() {
        // Two writers of key 5 overlap (both snapshots predate the other's
        // commit) yet both commit: the canonical SI lost update.
        let events = vec![
            TxnEvent::Begin {
                txn: 1,
                snapshot_ts: 0,
            },
            TxnEvent::Begin {
                txn: 2,
                snapshot_ts: 0,
            },
            TxnEvent::Write {
                txn: 1,
                key: 5,
                value: Some(1),
            },
            TxnEvent::Write {
                txn: 2,
                key: 5,
                value: Some(2),
            },
            TxnEvent::Commit {
                txn: 1,
                commit_ts: 1,
            },
            TxnEvent::Commit {
                txn: 2,
                commit_ts: 2,
            },
        ];
        let v = check_history(&events).expect_err("overlapping writers must fail");
        assert_eq!(v.axiom, "first-committer-wins", "{v}");
    }

    #[test]
    fn the_checker_catches_a_stale_read() {
        let events = vec![
            TxnEvent::Begin {
                txn: 1,
                snapshot_ts: 0,
            },
            TxnEvent::Write {
                txn: 1,
                key: 3,
                value: Some(30),
            },
            TxnEvent::Commit {
                txn: 1,
                commit_ts: 1,
            },
            TxnEvent::Begin {
                txn: 2,
                snapshot_ts: 1,
            },
            // Snapshot 1 covers commit 1; observing the pre-image is wrong.
            TxnEvent::Read {
                txn: 2,
                key: 3,
                value: None,
            },
            TxnEvent::Abort { txn: 2 },
        ];
        let v = check_history(&events).expect_err("stale read must fail");
        assert_eq!(v.axiom, "snapshot-read", "{v}");
    }

    #[test]
    fn the_checker_catches_duplicate_commit_timestamps() {
        let events = vec![
            TxnEvent::Begin {
                txn: 1,
                snapshot_ts: 0,
            },
            TxnEvent::Write {
                txn: 1,
                key: 1,
                value: Some(1),
            },
            TxnEvent::Commit {
                txn: 1,
                commit_ts: 3,
            },
            TxnEvent::Begin {
                txn: 2,
                snapshot_ts: 1,
            },
            TxnEvent::Write {
                txn: 2,
                key: 9,
                value: Some(2),
            },
            TxnEvent::Commit {
                txn: 2,
                commit_ts: 3,
            },
        ];
        let v = check_history(&events).expect_err("duplicate commit ts must fail");
        assert_eq!(v.axiom, "unique-commit-ts", "{v}");
    }

    #[test]
    fn fixed_workloads_replay_cleanly_in_both_descent_modes() {
        let ops = TxnWorkloadSpec {
            ops: 800,
            seed: 42,
            ..TxnWorkloadSpec::default()
        }
        .generate();
        assert_eq!(
            ops,
            TxnWorkloadSpec {
                ops: 800,
                seed: 42,
                ..TxnWorkloadSpec::default()
            }
            .generate(),
            "generation is deterministic"
        );
        for olc in [false, true] {
            let report = replay_txn_history(&ops, olc).unwrap_or_else(|v| panic!("olc {olc}: {v}"));
            assert!(report.summary.committed > 10);
            assert!(report.summary.reads_checked > 10);
        }
    }

    #[test]
    fn a_tiny_concurrent_soak_passes() {
        let spec = SiSoakSpec {
            threads: 3,
            txns_per_thread: 120,
            keys: 32,
            ..SiSoakSpec::default()
        };
        let report = replay_txn_concurrent(&spec).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(report.summary.txns, 360);
        assert!(report.summary.committed > 100);
        // 8 barrier rounds × (3 - 1) losers, deterministically.
        assert!(report.stats.conflicts >= 16, "{:?}", report.stats);
    }

    #[test]
    fn shrink_candidates_never_grow() {
        let strategy = TxnWorkloadStrategy::contended(120);
        let ops = TxnWorkloadSpec {
            ops: 90,
            seed: 11,
            ..TxnWorkloadSpec::default()
        }
        .generate();
        for cand in strategy.shrink(&ops) {
            assert!(cand.len() <= ops.len(), "candidate grew");
            assert_ne!(cand, ops, "candidate identical to input");
        }
    }
}

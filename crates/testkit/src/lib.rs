//! Differential fuzzing and shrinking testkit for the Quick Insertion
//! Tree workspace.
//!
//! One oracle harness for every index family: a structure-aware
//! [`WorkloadSpec`] generates op sequences (insert / batched insert / get /
//! delete / range / bulk load / metrics reset) with the paper's BoDS
//! sortedness knobs, and [`replay`] executes each sequence against a
//! `BTreeMap` model and against `BpTree`, `SaBpTree`, and `ConcurrentTree`
//! simultaneously, re-checking every family's structural invariants as it
//! goes. [`WorkloadStrategy`] plugs the generator into the vendored
//! `proptest` engine, whose delta-debugging shrinker and
//! `.proptest-regressions` persistence turn any divergence into a small,
//! replayable counterexample.
//!
//! For the concurrent tree the single-threaded oracle is not enough:
//! optimistic lock coupling only does interesting work when versions
//! actually conflict. [`replay_concurrent`] runs a true multi-threaded
//! differential — N writers over disjoint key partitions (each checked
//! op-by-op against a private model), M readers validating value tags and
//! scan ordering, structural re-checks after every join, and a final
//! merged-model comparison (see [`ConcSpec`]).
//!
//! Durability gets the same treatment: the crash-recovery differential
//! mode ([`replay_crash`], [`replay_crash_concurrent`],
//! [`replay_crash_contended`]) drives workloads
//! through `quit-durability`'s `Durable` wrapper on an in-memory storage
//! whose crash model is an arbitrary byte prefix of the append order, then
//! recovers at fuzzed crash points and asserts prefix consistency against
//! the model replayed to the recovered LSN (see [`CrashSpec`]).
//!
//! Transactions get a history checker ([`replay_txn_history`],
//! [`replay_txn_concurrent`]): drivers record every begin / read / write /
//! commit / abort against a real `TxnStore` as a flat [`TxnEvent`] log,
//! and [`check_history`] re-derives the committed multi-version state
//! from the log alone to verify the snapshot-isolation axioms — snapshot
//! reads, first-committer-wins (no lost updates), and unique monotonic
//! commit timestamps — plus final-state equivalence and the version
//! tree's structural invariants. [`TxnCrashSpec`] extends the crash
//! differential to commit groups: the WAL is cut mid-group at fuzzed
//! byte offsets and recovery must equal some committed prefix — never a
//! partially applied transaction.
//!
//! The harness proves it can catch real bugs via a mutation smoke check:
//! building with `--features inject-split-bug` enables a deliberately
//! wrong Fig 7a split bound in `quit-core`, and `tests/mutation_smoke.rs`
//! asserts the oracle detects it and shrinks the trigger to a tiny op
//! sequence.
//!
//! Longer soaks scale with the `QUIT_FUZZ_CASES` environment variable (see
//! [`fuzz_cases`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod concurrent;
mod crash;
mod oracle;
mod si_checker;
mod workload;

pub use concurrent::{conc_base_seed, replay_concurrent, ConcReport, ConcSpec};
pub use crash::{
    replay_crash, replay_crash_concurrent, replay_crash_contended, replay_crash_ops,
    replay_crash_paged, replay_crash_paged_ops, replay_txn_crash, ConcCrashReport, ConcCrashSpec,
    ContendedSpec, CrashReport, CrashSpec, PagedCrashReport, PagedCrashSpec, TxnCrashReport,
    TxnCrashSpec,
};
pub use oracle::{replay, replay_guarded, Divergence, OracleBackend, OracleConfig, ReplayReport};
pub use si_checker::{
    check_history, committed_state, replay_txn_concurrent, replay_txn_history, SiReport,
    SiSoakSpec, SiSummary, SiViolation, TxnEvent, TxnOp, TxnWorkloadSpec, TxnWorkloadStrategy,
    MAX_SLOTS,
};
pub use workload::{Op, OpMix, WorkloadSpec, WorkloadStrategy, MAX_BATCH, MAX_BULK};

/// Number of fuzz cases to run: `QUIT_FUZZ_CASES` when set and parseable,
/// else `default_cases`. CI pins the default (~30 s budget); local soaks
/// export `QUIT_FUZZ_CASES=500` for an overnight run.
pub fn fuzz_cases(default_cases: usize) -> usize {
    std::env::var("QUIT_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_cases)
}
